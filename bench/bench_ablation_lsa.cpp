// E10 (extension) — §1.4 / §4.3.2 ablation: what LSA sorts by and what
// classify-and-select groups by.
//
// The paper takes Albagli-Kim et al.'s LSA, changes the consideration
// order from value to *density*, and classifies by *length* to get the
// O(log_{k+1} P) price; §1.4 notes the same machinery classified by value
// or density yields O(log ρ) and O(log σ).  This bench builds workloads
// where each axis (P, ρ, σ) is the small one and shows the matching
// classifier winning — the "who wins where" ablation behind the paper's
// choice to target P.
#include "bench_common.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/rng.hpp"
#include "pobp/util/stats.hpp"

namespace pobp {
namespace {

struct Workload {
  const char* name;
  JobGenConfig config;
};

void run(std::size_t k) {
  // Three workloads, each shrinking a different ratio:
  Workload workloads[3];
  workloads[0].name = "small P (uniform-ish lengths, wild values)";
  workloads[0].config.min_length = 32;
  workloads[0].config.max_length = 64;
  workloads[0].config.value_mode = JobGenConfig::ValueMode::kUniform;

  workloads[1].name = "small rho (unit-ish values, wild lengths)";
  workloads[1].config.min_length = 1;
  workloads[1].config.max_length = 1 << 12;
  workloads[1].config.value_mode = JobGenConfig::ValueMode::kUniform;

  workloads[2].name = "small sigma (value ~ length, wild lengths)";
  workloads[2].config.min_length = 1;
  workloads[2].config.max_length = 1 << 12;
  workloads[2].config.value_mode = JobGenConfig::ValueMode::kProportional;

  for (Workload& w : workloads) {
    w.config.n = 1200;
    w.config.min_laxity = static_cast<double>(k + 1);
    w.config.max_laxity = static_cast<double>(2 * (k + 1));
    w.config.horizon = 64LL * w.config.max_length *
                       static_cast<Time>(k + 1);  // congested
  }

  Table table("classify-and-select ablation, k=" + std::to_string(k) +
                  " (values = fraction of total value captured; 8 seeds)",
              {"workload", "P", "rho", "sigma", "by-length", "by-value",
               "by-density", "lsa(value order)"});

  for (const Workload& w : workloads) {
    RunningStats by_len, by_val, by_den, val_order;
    InstanceMetrics metrics;
    for (std::size_t seed = 0; seed < 8; ++seed) {
      Rng rng(0xAB1A + seed);
      const JobSet jobs = random_jobs(w.config, rng);
      metrics = compute_metrics(jobs);
      const Value total = jobs.total_value();
      const auto frac = [&](const LsaResult& r) {
        POBP_ASSERT(validate_machine(jobs, r.schedule, k).ok);
        return r.schedule.total_value(jobs) / total;
      };
      by_len.add(frac(lsa_cs(jobs, all_ids(jobs), k, ClassifyBy::kLength)));
      by_val.add(frac(lsa_cs(jobs, all_ids(jobs), k, ClassifyBy::kValue)));
      by_den.add(frac(lsa_cs(jobs, all_ids(jobs), k, ClassifyBy::kDensity)));
      val_order.add(frac(lsa_cs(jobs, all_ids(jobs), k, ClassifyBy::kLength,
                                LsaOrder::kValue)));
    }
    table.add_row({w.name, Table::fmt(metrics.P, 0),
                   Table::fmt(metrics.rho, 1), Table::fmt(metrics.sigma, 1),
                   Table::fmt(by_len.mean(), 3), Table::fmt(by_val.mean(), 3),
                   Table::fmt(by_den.mean(), 3),
                   Table::fmt(val_order.mean(), 3)});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pobp

int main() {
  pobp::bench::banner(
      "E10", "§1.4 + §4.3.2 (classify-and-select ablation)",
      "each classifier wins on the workload whose ratio it bounds "
      "(length↔P, value↔ρ, density↔σ); density ordering beats the "
      "original value ordering of [1]");
  for (const std::size_t k : {1, 2}) pobp::run(k);
  return 0;
}
