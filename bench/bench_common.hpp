// Shared helpers for the experiment harnesses in bench/.
#pragma once

#include <iostream>
#include <string>

#include "pobp/util/table.hpp"

namespace pobp::bench {

/// Prints the experiment banner: id, the paper artifact it regenerates, and
/// the claim being exercised — so bench output is self-describing when
/// captured into EXPERIMENTS.md.
inline void banner(const std::string& id, const std::string& artifact,
                   const std::string& claim) {
  std::cout << "\n=== " << id << " — " << artifact << " ===\n"
            << "claim: " << claim << "\n\n";
}

inline void emit(const Table& table) {
  table.print(std::cout);
  std::cout.flush();
}

}  // namespace pobp::bench
