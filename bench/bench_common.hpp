// Shared helpers for the experiment harnesses in bench/.
//
// Besides the human-readable banner/table output, benches can emit a
// machine-readable BENCH_*.json for the perf-regression gate
// (tools/bench_compare, tools/ci_check.sh):
//
//   pobp::bench::JsonWriter json("engine");
//   json.metric("solve_batch_w1").ns_per_op(...).allocs_per_op(...);
//   json.write("BENCH_engine.json");
//
// Format: {"bench": ..., "cores": ..., "peak_rss_kb": ...,
// "peak_rss_delta_kb": ...,
// "metrics": [{"name": ..., "ns_per_op": ..., "allocs_per_op": ...,
// "ops_per_s": ..., "value": ...}, ...]}.  allocs_per_op is only emitted
// when the binary links pobp::allocspy and counting is live
// (alloccount::arm()) — it is the machine-independent half of the gate,
// compared strictly; ns_per_op and ops_per_s are compared with a
// tolerance (lower/higher is better respectively); "value" is an
// ungated indicator (e.g. scaling efficiency).
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pobp/util/table.hpp"

namespace pobp::bench {

/// Prints the experiment banner: id, the paper artifact it regenerates, and
/// the claim being exercised — so bench output is self-describing when
/// captured into EXPERIMENTS.md.
inline void banner(const std::string& id, const std::string& artifact,
                   const std::string& claim) {
  std::cout << "\n=== " << id << " — " << artifact << " ===\n"
            << "claim: " << claim << "\n\n";
}

inline void emit(const Table& table) {
  table.print(std::cout);
  std::cout.flush();
}

/// Peak resident set size of this process in kB (VmHWM from
/// /proc/self/status), or 0 where unavailable.  Informational only — the
/// compare gate never fails on RSS.  VmHWM is a high-water mark, so a
/// single end-of-run sample mostly measures corpus construction and
/// warmup; JsonWriter therefore samples it both at construction (before
/// the measured region) and at write() and reports the delta — the peak
/// growth attributable to the measurements themselves.
inline std::uint64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::uint64_t kb = 0;
      std::istringstream(line.substr(6)) >> kb;
      return kb;
    }
  }
  return 0;
}

/// One named measurement inside a BENCH_*.json.
struct Metric {
  std::string name;
  double ns_per_op = -1;      ///< < 0 = not measured
  double allocs_per_op = -1;  ///< < 0 = not measured (counting disarmed)
  double ops_per_s = -1;      ///< throughput (gated: higher is better)
  double value = -1;          ///< free-form indicator (reported, not gated)

  Metric& ns(double v) {
    ns_per_op = v;
    return *this;
  }
  Metric& allocs(double v) {
    allocs_per_op = v;
    return *this;
  }
  Metric& ops(double v) {
    ops_per_s = v;
    return *this;
  }
  Metric& val(double v) {
    value = v;
    return *this;
  }
};

/// Collects metrics and writes the perf-gate JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name)
      : bench_(std::move(bench_name)), rss_before_kb_(peak_rss_kb()) {}

  Metric& metric(const std::string& name) {
    metrics_.push_back(Metric{name});
    return metrics_.back();
  }

  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write " << path << "\n";
      return false;
    }
    const std::uint64_t rss_after = peak_rss_kb();
    const std::uint64_t rss_delta =
        rss_after > rss_before_kb_ ? rss_after - rss_before_kb_ : 0;
    out << "{\n  \"bench\": \"" << bench_ << "\",\n"
        << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"peak_rss_kb\": " << rss_after << ",\n"
        << "  \"peak_rss_delta_kb\": " << rss_delta << ",\n"
        << "  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      out << "    {\"name\": \"" << m.name << "\"";
      if (m.ns_per_op >= 0) out << ", \"ns_per_op\": " << m.ns_per_op;
      if (m.allocs_per_op >= 0) {
        out << ", \"allocs_per_op\": " << m.allocs_per_op;
      }
      if (m.ops_per_s >= 0) out << ", \"ops_per_s\": " << m.ops_per_s;
      if (m.value >= 0) out << ", \"value\": " << m.value;
      out << "}" << (i + 1 < metrics_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  std::string bench_;
  std::uint64_t rss_before_kb_;  ///< VmHWM sampled before measurements
  std::vector<Metric> metrics_;
};

}  // namespace pobp::bench
