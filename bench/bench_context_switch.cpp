// E13 (extension) — §1.2 motivation, quantified: preemption has a price
// tag, so bounding it pays off.
//
// An online simulator charges `c` machine ticks per dispatch (context
// switch).  Policies: plain EDF (k = ∞) against budget-EDF with k ∈
// {0, 1, 2, 4}.  At c = 0 unlimited preemption dominates, exactly as the
// theory says (PoBP ≥ 1); as c grows, unlimited EDF burns its advantage in
// context switches and a small finite k wins — the regime the paper's
// bounded-preemption model is built for.  The offline cost-free pipeline
// value is printed as the reference ceiling.
#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/sim/policies.hpp"
#include "pobp/util/stats.hpp"

namespace pobp {
namespace {

/// Preemption-rewarding mix: long, lax bulk jobs (they survive being
/// parked) plus short urgent jobs that are lost unless something yields
/// the machine right now.  This is the §1.2 workload shape: preemption is
/// worth paying for — until each preemption costs real machine time.
JobSet make_mixed_workload(Rng& rng, std::size_t n) {
  JobSet jobs;
  for (std::size_t i = 0; i < n; ++i) {
    Job j;
    if (rng.bernoulli(0.3)) {  // bulk
      j.length = rng.uniform_int(200, 1200);
      const Duration window = j.length * rng.uniform_int(4, 10);
      j.release = rng.uniform_int(0, 40'000 - window);
      j.deadline = j.release + window;
      j.value = static_cast<Value>(j.length);  // pays by volume
    } else {  // urgent
      j.length = rng.uniform_int(2, 30);
      const Duration window =
          j.length + rng.uniform_int(0, j.length);  // λ ≤ 2
      j.release = rng.uniform_int(0, 40'000 - window);
      j.deadline = j.release + window;
      j.value = static_cast<Value>(rng.uniform_int(100, 400));
    }
    jobs.add(j);
  }
  return jobs;
}

void run() {
  Rng rng(0x51AB);
  const JobSet jobs = make_mixed_workload(rng, 500);

  const ScheduleResult offline = try_schedule_bounded(jobs, {.k = 2}).value();
  std::cout << "offline cost-free reference (k=2 pipeline): value "
            << offline.value << "\n\n";

  Table table("online policies under context-switch cost c (n=500)",
              {"c", "edf(k=inf)", "k=0", "k=1", "k=2", "k=4",
               "edf dispatches", "winner"});
  for (const Duration c : {Duration{0}, Duration{1}, Duration{4}, Duration{16},
                           Duration{64}, Duration{128}}) {
    sim::EdfPolicy edf;
    sim::BudgetEdfPolicy b0(0), b1(1), b2(2), b4(4);
    const sim::SimConfig sc{c};
    const auto r_inf = sim::simulate(jobs, edf, sc);
    const auto r0 = sim::simulate(jobs, b0, sc);
    const auto r1 = sim::simulate(jobs, b1, sc);
    const auto r2 = sim::simulate(jobs, b2, sc);
    const auto r4 = sim::simulate(jobs, b4, sc);

    const std::vector<std::pair<std::string, Value>> entries{
        {"k=inf", r_inf.value}, {"k=0", r0.value}, {"k=1", r1.value},
        {"k=2", r2.value},      {"k=4", r4.value}};
    std::string winner = entries[0].first;
    Value best = entries[0].second;
    for (const auto& [name, value] : entries) {
      if (value > best) {
        best = value;
        winner = name;
      }
    }
    table.add_row({Table::fmt(static_cast<std::int64_t>(c)),
                   Table::fmt(r_inf.value, 0), Table::fmt(r0.value, 0),
                   Table::fmt(r1.value, 0), Table::fmt(r2.value, 0),
                   Table::fmt(r4.value, 0),
                   Table::fmt(static_cast<std::uint64_t>(r_inf.dispatches)),
                   winner});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pobp

int main() {
  pobp::bench::banner(
      "E13", "§1.2 motivation (the cost of context switches)",
      "at c = 0 unrestricted EDF wins; as the per-dispatch cost grows, "
      "budgeted policies overtake it — bounding preemption is the right "
      "model exactly when switches are expensive");
  pobp::run();
  return 0;
}
