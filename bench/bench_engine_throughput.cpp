// E-ENGINE — batch-solve throughput of pobp::Engine vs worker count.
//
// Streams a fixed corpus of random instances through Engine::solve_batch_into
// at worker counts 1/2/4/8 and reports instances/sec and speedup over the
// 1-worker baseline.  Also re-checks the engine's determinism contract:
// every worker count must produce bit-identical schedules (the sharded
// work-stealing scheduler moves instances between sessions, never changes
// their results).
//
//   bench_engine_throughput [--smoke] [--instances N] [--repeats R]
//                           [--json PATH] [--gate-allocs N]
//                           [--gate-scaling X] [--lenient-scaling]
//
// --smoke shrinks the corpus for CI (tools/ci_check.sh).  The speedup
// column is reported, not asserted by default: single-core runners
// legitimately show ~1x for every worker count.
//
// Gates (tools/ci_check.sh perf stage):
//   --gate-allocs N    fail when steady-state allocs/solve exceeds N
//                      (machine-independent — always meaningful);
//   --gate-scaling X   fail when the 8-worker throughput is below X times
//                      the 1-worker throughput (only meaningful with ≥ 8
//                      real cores);
//   --lenient-scaling  demote a --gate-scaling failure to a warning — for
//                      CI runners with fewer cores than workers, where the
//                      floor is physically unreachable.
//
// --json writes BENCH_engine.json for the perf-regression gate
// (tools/bench_compare): ns/instance and instances/s at workers 1 and 8,
// the w8 scaling efficiency (speedup / 8, ungated — machine-sensitive),
// and the steady-state heap allocations per solve on a warmed session —
// the pooled result-arena contract that tools/ci_check.sh enforces
// strictly.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/alloccount.hpp"
#include "pobp/util/rng.hpp"
#include "pobp/util/table.hpp"
#include "pobp/util/timing.hpp"

namespace pobp {
namespace {

std::vector<JobSet> make_corpus(std::size_t count) {
  Rng rng(20180616);  // SPAA'18
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    JobGenConfig config;
    config.n = 24 + (i % 5) * 8;
    config.max_length = 1 << 7;
    config.horizon = 1 << 13;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

std::string fingerprint(const std::vector<ScheduleResult>& results) {
  std::string out;
  for (const ScheduleResult& r : results) {
    out += io::schedule_to_csv(r.schedule);
    out += '\n';
  }
  return out;
}

struct Gates {
  double max_allocs = -1;    ///< < 0 = no allocation gate
  double min_scaling = -1;   ///< < 0 = no scaling gate (w8 ≥ X · w1)
  bool lenient_scaling = false;
};

int run(std::size_t instance_count, std::size_t repeats,
        const std::string& json_path, const Gates& gates) {
  const std::vector<JobSet> instances = make_corpus(instance_count);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};
  const bool counting = alloccount::arm();

  bench::banner("E-ENGINE", "engine throughput",
                "solve_batch is deterministic across worker counts and "
                "scales with available cores");

  bench::JsonWriter json("engine");
  Table table("engine throughput",
              {"workers", "instances/s", "speedup", "mean solve ms"});
  double baseline = 0;
  double rate_w8 = 0;
  std::string expected;
  std::vector<ScheduleResult> results;  // reused: the harvest pattern
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    Engine engine({.schedule = schedule, .workers = workers});
    std::string got;
    for (std::size_t r = 0; r < repeats; ++r) {
      engine.solve_batch_into(instances, {}, results);
      got = fingerprint(results);
    }
    if (workers == 1) {
      expected = got;
    } else if (got != expected) {
      std::cerr << "FAIL: results with " << workers
                << " workers differ from the 1-worker baseline\n";
      return 1;
    }

    const EngineMetrics m = engine.metrics();
    const double rate = m.instances_per_second();
    if (workers == 1) baseline = rate;
    if (workers == 8) rate_w8 = rate;
    if (workers == 1 || workers == 8) {
      json.metric("solve_batch_w" + std::to_string(workers))
          .ns(rate > 0 ? 1e9 / rate : 0)
          .ops(rate);
    }
    table.add_row({Table::fmt(static_cast<std::uint64_t>(workers)),
                   Table::fmt(rate, 1),
                   Table::fmt(baseline > 0 ? rate / baseline : 0.0, 2),
                   Table::fmt(m.solve_seconds.mean() * 1e3, 3)});
  }
  bench::emit(table);
  std::cout << "\ndeterminism: all worker counts bit-identical over "
            << instance_count << " instances x " << repeats << " repeats\n";

  const double speedup_w8 = baseline > 0 ? rate_w8 / baseline : 0;
  json.metric("scaling_efficiency_w8").val(speedup_w8 / 8.0);
  std::cout << "scaling: w8 speedup " << speedup_w8 << "x (efficiency "
            << speedup_w8 / 8.0 << ")\n";

  // Steady-state allocations per solve: one warmed single-worker engine
  // solving into a reused results vector — the serving-loop shape.  The
  // warmup batch grows every scratch buffer and every pooled result
  // schedule; the measured batch must then stay off the heap.  This is the
  // result-arena contract — machine-independent and compared strictly by
  // tools/bench_compare (and gated absolutely by --gate-allocs).
  double steady_allocs = -1;
  {
    Engine engine({.schedule = schedule, .workers = 1});
    engine.solve_batch_into(instances, {}, results);  // grow scratch + arena
    bench::Metric& m = json.metric("steady_allocs_per_solve");
    if (counting) {
      const alloccount::Scope scope;
      engine.solve_batch_into(instances, {}, results);
      steady_allocs = static_cast<double>(scope.allocations()) /
                      static_cast<double>(instances.size());
      m.allocs(steady_allocs);
      std::cout << "steady-state allocs/solve: " << steady_allocs << "\n";
    } else {
      std::cout << "steady-state allocs/solve: (counting disarmed)\n";
    }
  }

  if (!json_path.empty() && !json.write(json_path)) return 1;

  int failures = 0;
  if (gates.max_allocs >= 0) {
    if (steady_allocs < 0) {
      std::cerr << "GATE allocs: counting disarmed, cannot enforce\n";
      ++failures;
    } else if (steady_allocs > gates.max_allocs) {
      std::cerr << "GATE allocs: " << steady_allocs
                << " allocs/solve exceeds the limit of " << gates.max_allocs
                << "\n";
      ++failures;
    } else {
      std::cout << "gate allocs: ok (" << steady_allocs << " <= "
                << gates.max_allocs << ")\n";
    }
  }
  if (gates.min_scaling >= 0) {
    if (speedup_w8 + 1e-9 < gates.min_scaling) {
      if (gates.lenient_scaling) {
        std::cout << "gate scaling: WARN w8 speedup " << speedup_w8
                  << "x below the floor of " << gates.min_scaling
                  << "x (lenient mode: not failing)\n";
      } else {
        std::cerr << "GATE scaling: w8 speedup " << speedup_w8
                  << "x below the floor of " << gates.min_scaling << "x\n";
        ++failures;
      }
    } else {
      std::cout << "gate scaling: ok (w8 speedup " << speedup_w8 << "x >= "
                << gates.min_scaling << "x)\n";
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace pobp

int main(int argc, char** argv) {
  std::size_t instances = 64;
  std::size_t repeats = 3;
  std::string json_path;
  pobp::Gates gates;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      instances = 8;
      repeats = 1;
    } else if (arg == "--instances" && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--gate-allocs" && i + 1 < argc) {
      gates.max_allocs = std::strtod(argv[++i], nullptr);
    } else if (arg == "--gate-scaling" && i + 1 < argc) {
      gates.min_scaling = std::strtod(argv[++i], nullptr);
    } else if (arg == "--lenient-scaling") {
      gates.lenient_scaling = true;
    } else {
      std::cerr << "usage: bench_engine_throughput [--smoke] "
                   "[--instances N] [--repeats R] [--json PATH] "
                   "[--gate-allocs N] [--gate-scaling X] "
                   "[--lenient-scaling]\n";
      return 2;
    }
  }
  return pobp::run(instances, repeats, json_path, gates);
}
