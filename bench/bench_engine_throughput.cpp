// E-ENGINE — batch-solve throughput of pobp::Engine vs worker count.
//
// Streams a fixed corpus of random instances through Engine::solve_batch_into
// at worker counts 1/2/4/8 and reports instances/sec and speedup over the
// 1-worker baseline.  Also re-checks the engine's determinism contract:
// every worker count must produce bit-identical schedules (the sharded
// work-stealing scheduler moves instances between sessions, never changes
// their results).
//
//   bench_engine_throughput [--smoke] [--instances N] [--repeats R]
//                           [--dup-rate R] [--json PATH] [--gate-allocs N]
//                           [--gate-scaling X] [--lenient-scaling]
//                           [--gate-cache-speedup X] [--gate-hit-allocs N]
//
// --smoke shrinks the corpus for CI (tools/ci_check.sh).  The speedup
// column is reported, not asserted by default: single-core runners
// legitimately show ~1x for every worker count.
//
// --dup-rate R adds the solve-cache experiment (docs/CACHE.md): a stream
// where each request is, with probability R, an exact duplicate of an
// earlier one, solved cache-off vs cold-cache vs warm-cache on one warmed
// single-worker engine.  Emits cache_off_dup_stream / cache_dup_stream /
// cache_warm_hit ns/op, the realized hit rate, and the warm-hit allocs/op
// (the O(1) copy-out contract).  --gate-cache-speedup X fails when the
// warm-cache pass is not at least X times faster than cache-off;
// --gate-hit-allocs N bounds warm-hit allocs/op (ci_check pins it to 0).
//
// Gates (tools/ci_check.sh perf stage):
//   --gate-allocs N    fail when steady-state allocs/solve exceeds N
//                      (machine-independent — always meaningful);
//   --gate-scaling X   fail when the 8-worker throughput is below X times
//                      the 1-worker throughput (only meaningful with ≥ 8
//                      real cores);
//   --lenient-scaling  demote a --gate-scaling failure to a warning — for
//                      CI runners with fewer cores than workers, where the
//                      floor is physically unreachable.
//
// --json writes BENCH_engine.json for the perf-regression gate
// (tools/bench_compare): ns/instance and instances/s at workers 1 and 8,
// the w8 scaling efficiency (speedup / 8, ungated — machine-sensitive),
// and the steady-state heap allocations per solve on a warmed session —
// the pooled result-arena contract that tools/ci_check.sh enforces
// strictly.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/alloccount.hpp"
#include "pobp/util/rng.hpp"
#include "pobp/util/table.hpp"
#include "pobp/util/timing.hpp"

namespace pobp {
namespace {

std::vector<JobSet> make_corpus(std::size_t count) {
  Rng rng(20180616);  // SPAA'18
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    JobGenConfig config;
    config.n = 24 + (i % 5) * 8;
    config.max_length = 1 << 7;
    config.horizon = 1 << 13;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

std::string fingerprint(const std::vector<ScheduleResult>& results) {
  std::string out;
  for (const ScheduleResult& r : results) {
    out += io::schedule_to_csv(r.schedule);
    out += '\n';
  }
  return out;
}

struct Gates {
  double max_allocs = -1;    ///< < 0 = no allocation gate
  double min_scaling = -1;   ///< < 0 = no scaling gate (w8 ≥ X · w1)
  bool lenient_scaling = false;
  double min_cache_speedup = -1;  ///< < 0 = no dup-stream speedup gate
  double max_hit_allocs = -1;     ///< < 0 = no warm-hit allocation gate
};

/// A request stream over `distinct` where each slot is, with probability
/// `dup_rate`, an exact duplicate of an earlier slot — the serving-loop
/// shape the solve cache targets (docs/CACHE.md).  Deterministic: the
/// stream depends only on (corpus, dup_rate).
std::vector<JobSet> dup_stream(const std::vector<JobSet>& distinct,
                               double dup_rate, std::size_t length) {
  Rng rng(424242);
  std::vector<JobSet> stream;
  stream.reserve(length);
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < length; ++i) {
    if (fresh > 0 && rng.bernoulli(dup_rate)) {
      stream.push_back(distinct[static_cast<std::size_t>(rng.uniform_int(
                           0, static_cast<std::int64_t>(fresh) - 1)) %
                                distinct.size()]);
    } else {
      stream.push_back(distinct[fresh % distinct.size()]);
      ++fresh;
    }
  }
  return stream;
}

/// The solve-cache experiment: a duplicate-heavy stream through one warmed
/// single-worker engine, cache off vs cold cache vs warm cache.  Reports
/// ns/op for each, the realized hit rate, and the warm-hit allocation
/// count (the O(1) copy-out contract: 0 allocs/op).  Returns the gate
/// failure count.
int run_cache(const std::vector<JobSet>& distinct, double dup_rate,
              bench::JsonWriter& json, const Gates& gates, bool counting) {
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};
  // Sized so the expected count of first occurrences equals the distinct
  // corpus: longer streams would wrap and push the realized duplicate
  // fraction above dup_rate.
  const std::size_t stream_len =
      dup_rate < 1.0
          ? static_cast<std::size_t>(
                static_cast<double>(distinct.size()) / (1.0 - dup_rate))
          : distinct.size() * 4;
  const std::vector<JobSet> stream = dup_stream(distinct, dup_rate,
                                                stream_len);
  std::vector<ScheduleResult> results;

  // Cache off: the baseline every duplicate pays full price for.
  double off_ns = 0;
  std::string expected;
  {
    Engine engine({.schedule = schedule, .workers = 1});
    engine.solve_batch_into(stream, {}, results);  // grow scratch + arena
    const Stopwatch timer;
    engine.solve_batch_into(stream, {}, results);
    off_ns = timer.seconds() * 1e9 / static_cast<double>(stream.size());
    expected = fingerprint(results);
  }
  json.metric("cache_off_dup_stream").ns(off_ns);

  // Cold cache over the same stream: first occurrences miss (and publish),
  // duplicates hit.  The engine is warmed first and the cache then
  // cleared, so the measured pass isolates cache behaviour from arena
  // growth.
  auto cache = std::make_shared<SolveCache>();
  Engine engine({.schedule = schedule,
                 .workers = 1,
                 .cache = cache,
                 .cache_mode = CacheMode::kReadWrite});
  engine.solve_batch_into(stream, {}, results);  // grow scratch + arena
  cache->clear();
  const EngineMetrics before = engine.metrics();
  double cold_ns = 0;
  {
    const Stopwatch timer;
    engine.solve_batch_into(stream, {}, results);
    cold_ns = timer.seconds() * 1e9 / static_cast<double>(stream.size());
  }
  if (fingerprint(results) != expected) {
    std::cerr << "FAIL: cached results differ from the cache-off baseline\n";
    return 1;
  }
  const EngineMetrics after = engine.metrics();
  const double hits = static_cast<double>(after.cache_hits -
                                          before.cache_hits);
  const double misses = static_cast<double>(after.cache_misses -
                                            before.cache_misses);
  const double hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0;
  json.metric("cache_dup_stream").ns(cold_ns);
  json.metric("cache_hit_rate").val(hit_rate);

  // Warm cache: every request hits — the O(1) copy-out path.
  double hit_ns = 0;
  double hit_allocs = -1;
  {
    bench::Metric& m = json.metric("cache_warm_hit");
    const Stopwatch timer;
    if (counting) {
      const alloccount::Scope scope;
      engine.solve_batch_into(stream, {}, results);
      hit_allocs = static_cast<double>(scope.allocations()) /
                   static_cast<double>(stream.size());
    } else {
      engine.solve_batch_into(stream, {}, results);
    }
    hit_ns = timer.seconds() * 1e9 / static_cast<double>(stream.size());
    m.ns(hit_ns);
    if (hit_allocs >= 0) m.allocs(hit_allocs);
  }
  if (fingerprint(results) != expected) {
    std::cerr << "FAIL: warm-hit results differ from the cache-off "
                 "baseline\n";
    return 1;
  }

  const double dup_speedup = cold_ns > 0 ? off_ns / cold_ns : 0;
  const double hit_speedup = hit_ns > 0 ? off_ns / hit_ns : 0;
  json.metric("cache_dup_speedup").val(dup_speedup);
  json.metric("cache_warm_speedup").val(hit_speedup);

  Table table("solve cache, " + Table::fmt(dup_rate * 100, 0) +
                  "% duplicate stream",
              {"mode", "ns/op", "speedup", "hit rate"});
  table.add_row({"cache off", Table::fmt(off_ns, 0), "1.00", "-"});
  table.add_row({"cold cache", Table::fmt(cold_ns, 0),
                 Table::fmt(dup_speedup, 2), Table::fmt(hit_rate, 3)});
  table.add_row({"warm cache", Table::fmt(hit_ns, 0),
                 Table::fmt(hit_speedup, 2), "1.000"});
  bench::emit(table);
  std::cout << "cache determinism: cached, warm-hit and uncached streams "
               "bit-identical over "
            << stream.size() << " requests\n";
  if (hit_allocs >= 0) {
    std::cout << "warm-hit allocs/op: " << hit_allocs << "\n";
  }

  int failures = 0;
  if (gates.min_cache_speedup >= 0) {
    // Gated on the warm-cache pass: the cold pass is structurally bounded
    // by 1 / miss-rate (every first occurrence still pays a full solve),
    // while the warm pass isolates the hit path the cache exists for.
    if (hit_speedup + 1e-9 < gates.min_cache_speedup) {
      std::cerr << "GATE cache speedup: warm-cache " << hit_speedup
                << "x below the floor of " << gates.min_cache_speedup
                << "x on the " << dup_rate * 100 << "% duplicate stream\n";
      ++failures;
    } else {
      std::cout << "gate cache speedup: ok (warm-cache " << hit_speedup
                << "x >= " << gates.min_cache_speedup << "x)\n";
    }
  }
  if (gates.max_hit_allocs >= 0) {
    if (hit_allocs < 0) {
      std::cerr << "GATE hit allocs: counting disarmed, cannot enforce\n";
      ++failures;
    } else if (hit_allocs > gates.max_hit_allocs) {
      std::cerr << "GATE hit allocs: " << hit_allocs
                << " allocs/op on the warm-hit path exceeds the limit of "
                << gates.max_hit_allocs << "\n";
      ++failures;
    } else {
      std::cout << "gate hit allocs: ok (" << hit_allocs << " <= "
                << gates.max_hit_allocs << ")\n";
    }
  }
  return failures;
}

int run(std::size_t instance_count, std::size_t repeats, double dup_rate,
        const std::string& json_path, const Gates& gates) {
  const std::vector<JobSet> instances = make_corpus(instance_count);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};
  const bool counting = alloccount::arm();

  bench::banner("E-ENGINE", "engine throughput",
                "solve_batch is deterministic across worker counts and "
                "scales with available cores");

  bench::JsonWriter json("engine");
  Table table("engine throughput",
              {"workers", "instances/s", "speedup", "mean solve ms"});
  double baseline = 0;
  double rate_w8 = 0;
  std::string expected;
  std::vector<ScheduleResult> results;  // reused: the harvest pattern
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    Engine engine({.schedule = schedule, .workers = workers});
    std::string got;
    for (std::size_t r = 0; r < repeats; ++r) {
      engine.solve_batch_into(instances, {}, results);
      got = fingerprint(results);
    }
    if (workers == 1) {
      expected = got;
    } else if (got != expected) {
      std::cerr << "FAIL: results with " << workers
                << " workers differ from the 1-worker baseline\n";
      return 1;
    }

    const EngineMetrics m = engine.metrics();
    const double rate = m.instances_per_second();
    if (workers == 1) baseline = rate;
    if (workers == 8) rate_w8 = rate;
    if (workers == 1 || workers == 8) {
      json.metric("solve_batch_w" + std::to_string(workers))
          .ns(rate > 0 ? 1e9 / rate : 0)
          .ops(rate);
    }
    table.add_row({Table::fmt(static_cast<std::uint64_t>(workers)),
                   Table::fmt(rate, 1),
                   Table::fmt(baseline > 0 ? rate / baseline : 0.0, 2),
                   Table::fmt(m.solve_seconds.mean() * 1e3, 3)});
  }
  bench::emit(table);
  std::cout << "\ndeterminism: all worker counts bit-identical over "
            << instance_count << " instances x " << repeats << " repeats\n";

  const double speedup_w8 = baseline > 0 ? rate_w8 / baseline : 0;
  json.metric("scaling_efficiency_w8").val(speedup_w8 / 8.0);
  std::cout << "scaling: w8 speedup " << speedup_w8 << "x (efficiency "
            << speedup_w8 / 8.0 << ")\n";

  // Steady-state allocations per solve: one warmed single-worker engine
  // solving into a reused results vector — the serving-loop shape.  The
  // warmup batch grows every scratch buffer and every pooled result
  // schedule; the measured batch must then stay off the heap.  This is the
  // result-arena contract — machine-independent and compared strictly by
  // tools/bench_compare (and gated absolutely by --gate-allocs).
  double steady_allocs = -1;
  {
    Engine engine({.schedule = schedule, .workers = 1});
    engine.solve_batch_into(instances, {}, results);  // grow scratch + arena
    bench::Metric& m = json.metric("steady_allocs_per_solve");
    if (counting) {
      const alloccount::Scope scope;
      engine.solve_batch_into(instances, {}, results);
      steady_allocs = static_cast<double>(scope.allocations()) /
                      static_cast<double>(instances.size());
      m.allocs(steady_allocs);
      std::cout << "steady-state allocs/solve: " << steady_allocs << "\n";
    } else {
      std::cout << "steady-state allocs/solve: (counting disarmed)\n";
    }
  }

  int failures = 0;
  if (dup_rate >= 0) {
    failures += run_cache(instances, dup_rate, json, gates, counting);
  }

  if (!json_path.empty() && !json.write(json_path)) return 1;

  if (gates.max_allocs >= 0) {
    if (steady_allocs < 0) {
      std::cerr << "GATE allocs: counting disarmed, cannot enforce\n";
      ++failures;
    } else if (steady_allocs > gates.max_allocs) {
      std::cerr << "GATE allocs: " << steady_allocs
                << " allocs/solve exceeds the limit of " << gates.max_allocs
                << "\n";
      ++failures;
    } else {
      std::cout << "gate allocs: ok (" << steady_allocs << " <= "
                << gates.max_allocs << ")\n";
    }
  }
  if (gates.min_scaling >= 0) {
    if (speedup_w8 + 1e-9 < gates.min_scaling) {
      if (gates.lenient_scaling) {
        std::cout << "gate scaling: WARN w8 speedup " << speedup_w8
                  << "x below the floor of " << gates.min_scaling
                  << "x (lenient mode: not failing)\n";
      } else {
        std::cerr << "GATE scaling: w8 speedup " << speedup_w8
                  << "x below the floor of " << gates.min_scaling << "x\n";
        ++failures;
      }
    } else {
      std::cout << "gate scaling: ok (w8 speedup " << speedup_w8 << "x >= "
                << gates.min_scaling << "x)\n";
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace pobp

int main(int argc, char** argv) {
  std::size_t instances = 64;
  std::size_t repeats = 3;
  double dup_rate = -1;
  std::string json_path;
  pobp::Gates gates;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      instances = 8;
      repeats = 1;
    } else if (arg == "--instances" && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--dup-rate" && i + 1 < argc) {
      dup_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--gate-allocs" && i + 1 < argc) {
      gates.max_allocs = std::strtod(argv[++i], nullptr);
    } else if (arg == "--gate-scaling" && i + 1 < argc) {
      gates.min_scaling = std::strtod(argv[++i], nullptr);
    } else if (arg == "--lenient-scaling") {
      gates.lenient_scaling = true;
    } else if (arg == "--gate-cache-speedup" && i + 1 < argc) {
      gates.min_cache_speedup = std::strtod(argv[++i], nullptr);
    } else if (arg == "--gate-hit-allocs" && i + 1 < argc) {
      gates.max_hit_allocs = std::strtod(argv[++i], nullptr);
    } else {
      std::cerr << "usage: bench_engine_throughput [--smoke] "
                   "[--instances N] [--repeats R] [--dup-rate R] "
                   "[--json PATH] [--gate-allocs N] [--gate-scaling X] "
                   "[--lenient-scaling] [--gate-cache-speedup X] "
                   "[--gate-hit-allocs N]\n";
      return 2;
    }
  }
  return pobp::run(instances, repeats, dup_rate, json_path, gates);
}
