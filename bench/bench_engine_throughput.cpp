// E-ENGINE — batch-solve throughput of pobp::Engine vs worker count.
//
// Streams a fixed corpus of random instances through Engine::solve_batch at
// worker counts 1/2/4/8 and reports instances/sec and speedup over the
// 1-worker baseline.  Also re-checks the engine's determinism contract:
// every worker count must produce bit-identical schedules.
//
//   bench_engine_throughput [--smoke] [--instances N] [--repeats R]
//                           [--json PATH]
//
// --smoke shrinks the corpus for CI (tools/ci_check.sh).  The speedup
// column is reported, not asserted: single-core runners legitimately show
// ~1x for every worker count.
//
// --json writes BENCH_engine.json for the perf-regression gate
// (tools/bench_compare): ns/instance at workers 1 and 8, plus the
// steady-state heap allocations per solve on a warmed session — the
// pooled-scratch contract that tools/ci_check.sh enforces strictly.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/alloccount.hpp"
#include "pobp/util/rng.hpp"
#include "pobp/util/table.hpp"
#include "pobp/util/timing.hpp"

namespace pobp {
namespace {

std::vector<JobSet> make_corpus(std::size_t count) {
  Rng rng(20180616);  // SPAA'18
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    JobGenConfig config;
    config.n = 24 + (i % 5) * 8;
    config.max_length = 1 << 7;
    config.horizon = 1 << 13;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

std::string fingerprint(const std::vector<ScheduleResult>& results) {
  std::string out;
  for (const ScheduleResult& r : results) {
    out += io::schedule_to_csv(r.schedule);
    out += '\n';
  }
  return out;
}

int run(std::size_t instance_count, std::size_t repeats,
        const std::string& json_path) {
  const std::vector<JobSet> instances = make_corpus(instance_count);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};
  const bool counting = alloccount::arm();

  bench::banner("E-ENGINE", "engine throughput",
                "solve_batch is deterministic across worker counts and "
                "scales with available cores");

  bench::JsonWriter json("engine");
  Table table("engine throughput",
              {"workers", "instances/s", "speedup", "mean solve ms"});
  double baseline = 0;
  std::string expected;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    Engine engine({.schedule = schedule, .workers = workers});
    std::string got;
    for (std::size_t r = 0; r < repeats; ++r) {
      got = fingerprint(engine.solve_batch(instances));
    }
    if (workers == 1) {
      expected = got;
    } else if (got != expected) {
      std::cerr << "FAIL: results with " << workers
                << " workers differ from the 1-worker baseline\n";
      return 1;
    }

    const EngineMetrics m = engine.metrics();
    const double rate = m.instances_per_second();
    if (workers == 1) baseline = rate;
    if (workers == 1 || workers == 8) {
      json.metric("solve_batch_w" + std::to_string(workers))
          .ns(rate > 0 ? 1e9 / rate : 0);
    }
    table.add_row({Table::fmt(static_cast<std::uint64_t>(workers)),
                   Table::fmt(rate, 1),
                   Table::fmt(baseline > 0 ? rate / baseline : 0.0, 2),
                   Table::fmt(m.solve_seconds.mean() * 1e3, 3)});
  }
  bench::emit(table);
  std::cout << "\ndeterminism: all worker counts bit-identical over "
            << instance_count << " instances x " << repeats << " repeats\n";

  // Steady-state allocations per solve: one warmed single-worker session,
  // one warmup pass to grow every scratch buffer, then count.  This is the
  // pooled-scratch contract — machine-independent and compared strictly by
  // tools/bench_compare.
  {
    Engine engine({.schedule = schedule, .workers = 1});
    auto warm = engine.solve_batch(instances);  // grow scratch buffers
    (void)warm;
    bench::Metric& m = json.metric("steady_allocs_per_solve");
    if (counting) {
      const alloccount::Scope scope;
      auto measured = engine.solve_batch(instances);
      (void)measured;
      const double per_solve =
          static_cast<double>(scope.allocations()) /
          static_cast<double>(instances.size());
      m.allocs(per_solve);
      std::cout << "steady-state allocs/solve: " << per_solve << "\n";
    } else {
      std::cout << "steady-state allocs/solve: (counting disarmed)\n";
    }
  }

  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace pobp

int main(int argc, char** argv) {
  std::size_t instances = 64;
  std::size_t repeats = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      instances = 8;
      repeats = 1;
    } else if (arg == "--instances" && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_engine_throughput [--smoke] "
                   "[--instances N] [--repeats R] [--json PATH]\n";
      return 2;
    }
  }
  return pobp::run(instances, repeats, json_path);
}
