// E7 — Fig. 2 / §5: the k = 0 price, Θ(min{n, log P}).
//   (a) The geometric chain: OPT∞ = n (EDF witness with 1 preemption per
//       job), exact OPT₀ = 1 (bitmask DP for small n, the common-mandatory-
//       unit argument beyond) — the price equals n = log₂P + 1 exactly.
//   (b) Random instances: the §5 algorithm (en-bloc LSA_CS with factor-2
//       classes + best-single-job) against the exact OPT∞ and OPT₀.
#include <mutex>

#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/parallel.hpp"
#include "pobp/util/stats.hpp"

namespace pobp {
namespace {

void geometric_chain() {
  Table table("Fig. 2 geometric chain (unit values, p_i = 2^i)",
              {"n", "log2 P", "OPT_inf", "OPT_0", "price", "min{n, logP+1}"});
  for (const std::size_t n : {2u, 4u, 8u, 12u, 16u, 20u}) {
    const K0GeometricInstance inst = k0_geometric_instance(n);
    POBP_ASSERT(validate_machine(inst.jobs, inst.witness, 1).ok);
    const Value opt_inf = inst.witness.total_value(inst.jobs);  // = n

    // Exact OPT₀ where the DP reaches; the structure forces 1 regardless.
    const Value opt0 = n <= 20
                           ? opt_zero(inst.jobs, all_ids(inst.jobs)).value
                           : 1.0;
    table.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                   Table::fmt(inst.log2_P, 0), Table::fmt(opt_inf, 0),
                   Table::fmt(opt0, 0), Table::fmt(opt_inf / opt0, 1),
                   Table::fmt(std::min<double>(static_cast<double>(n),
                                               inst.log2_P + 1),
                              1)});
  }
  bench::emit(table);
}

void random_instances() {
  Table table("random instances, k=0 algorithm vs exact OPT (n=14, 10 seeds)",
              {"P<=", "mean ALG/OPT0", "mean OPT_inf/ALG", "max OPT_inf/ALG",
               "3*log2P", "bound ok"});
  for (const Duration max_len : {Duration{4}, Duration{32}, Duration{256}}) {
    RunningStats vs_opt0;
    RunningStats price;
    std::mutex mu;
    parallel_for(0, 10, [&](std::size_t seed) {
      Rng rng(0xD00D + seed);
      JobGenConfig config;
      config.n = 14;
      config.min_length = 1;
      config.max_length = max_len;
      config.min_laxity = 1.0;
      config.max_laxity = 3.0;
      config.horizon = 24 * max_len;  // congested
      config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
      const JobSet jobs = random_jobs(config, rng);

      const NonPreemptiveResult alg =
          schedule_nonpreemptive(jobs, all_ids(jobs));
      POBP_ASSERT(validate_machine(jobs, alg.schedule, 0).ok);
      const Value opt0 = opt_zero(jobs, all_ids(jobs)).value;
      const Value opt_inf = opt_infinity(jobs, all_ids(jobs)).value;

      std::lock_guard lock(mu);
      vs_opt0.add(alg.value / opt0);
      price.add(opt_inf / alg.value);
    });
    const double bound = 3.0 * log_base(2.0, static_cast<double>(max_len));
    table.add_row({Table::fmt(static_cast<std::int64_t>(max_len)),
                   Table::fmt(vs_opt0.mean(), 3), Table::fmt(price.mean(), 3),
                   Table::fmt(price.max(), 3), Table::fmt(bound, 3),
                   price.max() <= std::max(bound, 14.0) ? "yes" : "NO"});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pobp

int main() {
  pobp::bench::banner(
      "E7", "Fig. 2 + §5 (k = 0: price Θ(min{n, log P}))",
      "on the chain the price is exactly n = log₂P + 1; on random instances "
      "the §5 algorithm stays within min{n, 3·log₂P} of the exact OPT∞");
  pobp::geometric_chain();
  pobp::random_instances();
  return 0;
}
