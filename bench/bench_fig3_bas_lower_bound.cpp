// E1 — Fig. 3 / Appendix A / Theorem 3.20: the k-BAS loss-factor lower
// bound.  Instantiates the Appendix-A tree with K = 2k for growing depth L
// and reports the exact optimal k-BAS value (TM) against the total value.
// The paper's claim: the ratio grows as Θ(log_{k+1} n) — every extra level
// adds a constant to the ratio while OPT stays below K/(K−k).
#include <cmath>

#include "bench_common.hpp"
#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/schedule/metrics.hpp"

namespace pobp {
namespace {

void run_for_k(std::size_t k) {
  const std::int64_t K = 2 * static_cast<std::int64_t>(k);
  Table table("Appendix-A tree, k=" + std::to_string(k) +
                  ", K=2k=" + std::to_string(K),
              {"L", "n", "total(=OPT_inf)", "opt k-BAS (TM)", "ratio",
               "log_{k+1} n", "ratio/log", "OPT cap K/(K-k)"});

  for (std::size_t L = 1;; ++L) {
    // Stop when the tree would exceed ~2M nodes or overflow values.
    if (!pow_fits_int64(K, static_cast<int>(L) + 1)) break;
    const std::int64_t nodes =
        (checked_pow(K, static_cast<int>(L) + 1) - 1) / (K - 1);
    if (nodes > 2'000'000) break;

    const BasLowerBoundTree lb = bas_lower_bound_tree(k, K, L);
    const TmResult tm = tm_optimal_bas(lb.forest, k);
    const double total = static_cast<double>(lb.total_value);
    const double ratio = total / tm.value;
    const double log_n = log_k1(k, static_cast<double>(lb.forest.size()));
    const double cap =
        static_cast<double>(K) / static_cast<double>(K - (std::int64_t)k);

    table.add_row({Table::fmt(static_cast<std::int64_t>(L)),
                   Table::fmt(static_cast<std::uint64_t>(lb.forest.size())),
                   Table::fmt(total, 0), Table::fmt(tm.value, 1),
                   Table::fmt(ratio, 3), Table::fmt(log_n, 3),
                   Table::fmt(ratio / log_n, 3),
                   Table::fmt(cap * std::pow(static_cast<double>(K),
                                             static_cast<double>(L)),
                              1)});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pobp

int main() {
  pobp::bench::banner(
      "E1", "Fig. 3 + Appendix A (Theorem 3.20)",
      "the optimal k-BAS of the K=2k tree loses Ω(log_{k+1} n): the ratio "
      "column grows ~linearly in L while ratio/log stays ~constant");
  for (const std::size_t k : {1, 2, 3, 7}) pobp::run_for_k(k);
  return 0;
}
