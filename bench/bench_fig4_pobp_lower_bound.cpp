// E4 — Fig. 4 / Appendix B / Theorems 4.3 & 4.13: the PoBP lower bound.
// Instantiates the Appendix-B job set with K = 2k for growing L, verifies
// OPT∞ = total value by running EDF over all jobs, runs the full bounded
// pipeline, and reports the realized price against log_{k+1} P and
// log_{k+1} n.  The paper's claim: price = Ω(log_{k+1} P) = Ω(log_{k+1} n)
// — the ratio column grows ~linearly in L while any k-bounded schedule
// stays below the Lemma-B.2 cap.
#include <cmath>

#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/gen/lower_bounds.hpp"

namespace pobp {
namespace {

void run_for_k(std::size_t k) {
  const std::int64_t K = 2 * static_cast<std::int64_t>(k);
  const std::size_t max_L = pobp_lower_bound_max_L(K, 600'000);
  Table table(
      "Appendix-B instance, k=" + std::to_string(k) + ", K=" +
          std::to_string(K),
      {"L", "n", "P", "OPT_inf", "ALG_k", "LemmaB2 cap", "price", "log_{k+1}P",
       "price/log"});

  for (std::size_t L = 1; L <= max_L; ++L) {
    const PobpLowerBoundInstance inst = pobp_lower_bound_instance(k, K, L);

    // OPT∞ witness: EDF schedules every job.
    const auto witness = edf_schedule(inst.jobs, all_ids(inst.jobs));
    POBP_ASSERT_MSG(witness.has_value(),
                    "Appendix-B instance must be fully feasible");
    POBP_ASSERT(validate_machine(inst.jobs, *witness).ok);

    const CombinedResult alg =
        k_preemption_combined(inst.jobs, *witness, {.k = k});
    POBP_ASSERT(validate_machine(inst.jobs, alg.schedule, k).ok);

    const double price = inst.total_value / alg.value;
    const double log_p = log_k1(k, inst.P);
    table.add_row(
        {Table::fmt(static_cast<std::int64_t>(L)),
         Table::fmt(static_cast<std::uint64_t>(inst.jobs.size())),
         Table::fmt(inst.P, 0), Table::fmt(inst.total_value, 0),
         Table::fmt(alg.value, 1), Table::fmt(inst.opt_k_upper, 1),
         Table::fmt(price, 3), Table::fmt(log_p, 3),
         Table::fmt(price / log_p, 4)});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pobp

int main() {
  pobp::bench::banner(
      "E4", "Fig. 4 + Appendix B (Theorems 4.3 / 4.13)",
      "on the K=2k instance every k-bounded schedule stays below the "
      "Lemma-B.2 cap while OPT∞ takes everything: the price grows "
      "Ω(log_{k+1} P) (price/log ~ constant)");
  for (const std::size_t k : {1, 2, 3}) pobp::run_for_k(k);
  return 0;
}
