// E8 — §4.3.4 and the multi-machine remarks: the price on m non-migrative
// machines.  Two workloads:
//   (a) replicated Appendix-B instances ("multiplied along a third axis"):
//       OPT∞ = m·total; the per-machine pipeline's price must stay
//       Ω(log_{k+1} P) — machines do not dilute the lower bound;
//   (b) random congested instances: iterative LSA_CS / combined across m,
//       showing value grows with m while the price bound is preserved.
#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/flow/migrative.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/stats.hpp"

namespace pobp {
namespace {

void replicated_lower_bound() {
  const std::size_t k = 1;
  const std::size_t L = 4;
  const PobpLowerBoundInstance base = pobp_lower_bound_instance(k, 2, L);
  Table table("replicated Appendix-B (k=1, K=2, L=4) across machines",
              {"m", "n", "OPT_inf", "ALG_k", "price", "log_{k+1} P"});
  for (const std::size_t m : {1u, 2u, 4u, 8u}) {
    const JobSet jobs = replicate(base.jobs, m);
    const ScheduleResult r = try_schedule_bounded(
        jobs, {.k = k, .machine_count = m}).value();
    POBP_ASSERT(validate(jobs, r.schedule, k).ok);
    const double opt_inf = base.total_value * static_cast<double>(m);
    table.add_row({Table::fmt(static_cast<std::uint64_t>(m)),
                   Table::fmt(static_cast<std::uint64_t>(jobs.size())),
                   Table::fmt(opt_inf, 0), Table::fmt(r.value, 1),
                   Table::fmt(opt_inf / r.value, 3),
                   Table::fmt(log_k1(k, base.P), 3)});
  }
  bench::emit(table);
}

void random_scaling() {
  Table table("random congested instance (n=600), value vs machine count",
              {"m", "k", "ALG value", "fraction of total", "max preemptions"});
  Rng rng(0xFEED);
  JobGenConfig config;
  config.n = 600;
  config.min_length = 1;
  config.max_length = 128;
  config.min_laxity = 1.0;
  config.max_laxity = 6.0;
  config.horizon = 4096;  // heavily congested: one machine cannot take all
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet jobs = random_jobs(config, rng);
  const Value total = jobs.total_value();

  for (const std::size_t k : {1u, 2u}) {
    for (const std::size_t m : {1u, 2u, 4u, 8u}) {
      const ScheduleResult r =
          try_schedule_bounded(jobs, {.k = k, .machine_count = m}).value();
      POBP_ASSERT(validate(jobs, r.schedule, k).ok);
      table.add_row({Table::fmt(static_cast<std::uint64_t>(m)),
                     Table::fmt(static_cast<std::uint64_t>(k)),
                     Table::fmt(r.value, 1), Table::fmt(r.value / total, 3),
                     Table::fmt(static_cast<std::uint64_t>(
                         r.schedule.max_preemptions()))});
    }
  }
  bench::emit(table);
}

void migrative_price() {
  // The migrative remark: the k-bounded *non-migrative* pipeline is
  // compared against the exact *migrative* OPT∞ (flow-based B&B) — the
  // strongest competitor the paper allows.  Theory: the price only grows
  // by the migration-elimination constant (≤ 6), staying O(log_{k+1} P).
  Table table("price vs exact MIGRATIVE OPT∞ (n=14, congested, k=1)",
              {"m", "migrative OPT_inf", "non-migrative ALG_1", "price",
               "6*log_{k+1}P"});
  Rng rng(0xAAA);
  JobGenConfig config;
  config.n = 14;
  config.min_length = 1;
  config.max_length = 64;
  config.min_laxity = 1.0;
  config.max_laxity = 3.0;
  config.horizon = 260;  // heavy congestion so machines matter
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet jobs = random_jobs(config, rng);

  for (const std::size_t m : {1u, 2u, 3u}) {
    const SubsetSolution opt = opt_infinity_migrative(jobs, all_ids(jobs), m);
    const ScheduleResult alg =
        try_schedule_bounded(jobs, {.k = 1, .machine_count = m}).value();
    POBP_ASSERT(validate(jobs, alg.schedule, 1).ok);
    table.add_row(
        {Table::fmt(static_cast<std::uint64_t>(m)), Table::fmt(opt.value, 1),
         Table::fmt(alg.value, 1), Table::fmt(opt.value / alg.value, 3),
         Table::fmt(6.0 * log_k1(1, jobs.length_ratio_P().to_double()), 3)});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pobp

int main() {
  pobp::bench::banner(
      "E8", "§4.3.4 (multi-machine, non-migrative)",
      "replicating the lower bound across machines preserves the "
      "Ω(log_{k+1} P) price; on random congested loads the iterative "
      "per-machine pipeline scales value with m within the preemption bound");
  pobp::replicated_lower_bound();
  pobp::random_scaling();
  pobp::migrative_price();
  return 0;
}
