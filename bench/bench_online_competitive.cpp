// E14 (extension) — measured competitive ratios of online k-bounded
// policies against the offline pipeline.
//
// The paper studies the offline price of bounded preemption; the serving
// layer runs *online*, so the natural follow-up question is how much of
// the offline value an online policy can collect when it must commit at
// release times and still respect the k budget.  For each k we run the
// three budgeted online policies (budget-EDF, SRPT with the halving rule
// of the Dürr–Jeż–Nguyen Thang line of work, and laxity-threshold EDF)
// over random congested workloads and report
//
//   ratio = OFF_k / ON_k    (>= 1; lower is better)
//
// where OFF_k is the cost-free offline k-bounded pipeline value on the
// same instance.  The unbounded offline value OFF_inf is printed as the
// reference ceiling: OFF_inf / OFF_k is the measured price of bounded
// preemption, the quantity the paper bounds by O(log_{k+1} P).
#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/sim/policies.hpp"

namespace pobp {
namespace {

constexpr std::size_t kSeeds = 8;

JobSet make_workload(std::uint64_t seed) {
  Rng rng(seed);
  JobGenConfig config;
  config.n = 160;
  config.max_length = 256;
  config.min_laxity = 1.0;
  config.max_laxity = 4.0;
  config.horizon = 8192;  // congested: choices matter
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  return random_jobs(config, rng);
}

struct Ratios {
  double sum = 0;
  double worst = 0;
  void add(double offline, double online) {
    // A zero online value would make the ratio degenerate; congested
    // random workloads never produce one, but guard anyway.
    const double r = online > 0 ? offline / online : 1e9;
    sum += r;
    worst = std::max(worst, r);
  }
  std::string mean() const { return Table::fmt(sum / kSeeds, 2); }
  std::string max() const { return Table::fmt(worst, 2); }
};

void run() {
  Table table("online vs offline value, ratio = OFF_k / ON_k "
              "(n=160, 8 seeds)",
              {"k", "OFF_inf/OFF_k", "budget-edf", "(max)", "srpt-budget",
               "(max)", "laxity", "(max)"});

  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    Ratios budget, srpt, laxity;
    double price_sum = 0;
    for (std::size_t s = 0; s < kSeeds; ++s) {
      const JobSet jobs = make_workload(0xE14 + 31 * s);
      const ScheduleResult offline =
          try_schedule_bounded(jobs, {.k = k}).value();
      price_sum += offline.price();

      sim::BudgetEdfPolicy p_budget(k);
      sim::SrptBudgetPolicy p_srpt(k);
      sim::LaxityThresholdPolicy p_laxity(k, 1.0);
      budget.add(offline.value, sim::simulate(jobs, p_budget).value);
      srpt.add(offline.value, sim::simulate(jobs, p_srpt).value);
      laxity.add(offline.value, sim::simulate(jobs, p_laxity).value);
    }
    table.add_row({Table::fmt(static_cast<std::uint64_t>(k)),
                   Table::fmt(price_sum / kSeeds, 3), budget.mean(),
                   budget.max(), srpt.mean(), srpt.max(), laxity.mean(),
                   laxity.max()});
  }
  bench::emit(table);
  std::cout << "\nreading: ratios are competitive-ratio estimates (mean and "
               "worst of 8 seeds); OFF_inf/OFF_k is the measured offline "
               "price of bounded preemption on the same instances.\n";
}

}  // namespace
}  // namespace pobp

int main() {
  pobp::bench::banner(
      "E14", "online k-bounded policies vs the offline pipeline",
      "an online policy that must commit at release times still collects a "
      "constant fraction of the offline k-bounded value on congested random "
      "workloads, and the k-budget is never exceeded");
  pobp::run();
  return 0;
}
