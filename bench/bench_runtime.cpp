// E9 — runtime claims (google-benchmark).
//
// The paper states TM and LevelledContraction run in O(|V|) (§3.2/§3.3);
// EDF and LSA are sort/heap dominated.  Each benchmark sweeps the input
// size so the per-element time (reported via SetComplexityN) exposes the
// growth rate.
#include <benchmark/benchmark.h>

#include <cmath>
#include <functional>
#include <utility>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/pobp.hpp"
#include "pobp/flow/migrative.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/reduction/schedule_forest.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/schedule/columns.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/alloccount.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/checked.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

Forest make_forest(std::size_t n) {
  Rng rng(42);
  ForestGenConfig config;
  config.nodes = n;
  config.max_degree = 8;
  return random_forest(config, rng);
}

LaminarInstance make_laminar(std::size_t n) {
  Rng rng(43);
  LaminarGenConfig config;
  config.target_jobs = n;
  return random_laminar_instance(config, rng);
}

JobSet make_lax_jobs(std::size_t n) {
  Rng rng(44);
  JobGenConfig config;
  config.n = n;
  config.min_length = 1;
  config.max_length = 1024;
  config.min_laxity = 2.0;
  config.max_laxity = 8.0;
  config.horizon = static_cast<Time>(64) * static_cast<Time>(n);
  return random_jobs(config, rng);
}

void BM_TmOptimalBas(benchmark::State& state) {
  const Forest f = make_forest(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm_optimal_bas(f, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TmOptimalBas)->Range(1 << 10, 1 << 20)->Complexity(benchmark::oN);

void BM_LevelledContraction(benchmark::State& state) {
  const Forest f = make_forest(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(levelled_contraction(f, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevelledContraction)
    ->Range(1 << 10, 1 << 20)
    ->Complexity(benchmark::oNLogN);

void BM_EdfSimulator(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(inst.jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_schedule(inst.jobs, ids));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfSimulator)
    ->Range(1 << 10, 1 << 17)
    ->Complexity(benchmark::oNLogN);

void BM_Laminarize(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(laminarize(inst.jobs, inst.schedule));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Laminarize)->Range(1 << 10, 1 << 16)->Complexity(benchmark::oNLogN);

void BM_ScheduleForestBuild(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_schedule_forest(inst.jobs, inst.schedule));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleForestBuild)
    ->Range(1 << 10, 1 << 17)
    ->Complexity(benchmark::oN);

void BM_FullReduction(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reduce_to_k_preemptive(inst.jobs, inst.schedule, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReduction)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oNLogN);

void BM_LsaCs(benchmark::State& state) {
  const JobSet jobs = make_lax_jobs(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsa_cs(jobs, ids, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LsaCs)->Range(1 << 8, 1 << 14)->Complexity();

void BM_Validator(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_machine(inst.jobs, inst.schedule));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Validator)->Range(1 << 10, 1 << 17)->Complexity(benchmark::oNLogN);

void BM_OptInfinityBB(benchmark::State& state) {
  Rng rng(45);
  JobGenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  config.max_length = 64;
  config.max_laxity = 3.0;
  config.horizon = 40 * 64;
  const JobSet jobs = random_jobs(config, rng);
  const std::vector<JobId> ids = all_ids(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt_infinity(jobs, ids));
  }
}
BENCHMARK(BM_OptInfinityBB)->DenseRange(10, 22, 4);


/// Records steady-state heap allocations per iteration as the "allocs_op"
/// counter (0 when the binary's counting hooks are disarmed, e.g. under the
/// sanitizer presets).  tools/bench_compare gates this strictly: the pooled
/// stages must stay allocation-free once their scratch has warmed up.
class AllocMeter {
 public:
  explicit AllocMeter(benchmark::State& state) : state_(state) {
    armed_ = pobp::alloccount::arm();
    start_ = pobp::alloccount::allocations();
  }
  ~AllocMeter() {
    state_.counters["allocs_op"] = benchmark::Counter(
        armed_ ? static_cast<double>(pobp::alloccount::allocations() - start_)
               : 0.0,
        benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  bool armed_ = false;
  std::uint64_t start_ = 0;
};

void BM_TmOptimalBasPooled(benchmark::State& state) {
  const Forest f = make_forest(static_cast<std::size_t>(state.range(0)));
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(f, 2, scratch, result);  // warm the scratch + result
  AllocMeter meter(state);
  for (auto _ : state) {
    tm_optimal_bas(f, 2, scratch, result);
    benchmark::DoNotOptimize(result.value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TmOptimalBasPooled)
    ->Range(1 << 10, 1 << 20)
    ->Complexity(benchmark::oN);

void BM_EdfSimulatorPooled(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(inst.jobs);
  EdfScratch scratch;
  (void)edf_feasible(inst.jobs, ids, scratch);  // warm the scratch
  AllocMeter meter(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_feasible(inst.jobs, ids, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfSimulatorPooled)
    ->Range(1 << 10, 1 << 17)
    ->Complexity(benchmark::oNLogN);

void BM_FullReductionPooled(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  ReductionScratch scratch;
  (void)reduce_to_k_preemptive(inst.jobs, inst.schedule, 2, nullptr,
                               &scratch);  // warm the scratch
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_to_k_preemptive(inst.jobs, inst.schedule,
                                                    2, nullptr, &scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReductionPooled)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oNLogN);

// BudgetGuard::poll() cost, uninstalled (the common case: a thread-local
// pointer test) and installed (atomic op count + amortized clock check).
// docs/PERF.md relates these to the per-iteration stage costs above to
// substantiate the "< 1% overhead" claim.
void BM_BudgetPollUninstalled(benchmark::State& state) {
  for (auto _ : state) {
    BudgetGuard::poll();
  }
}
BENCHMARK(BM_BudgetPollUninstalled);

void BM_BudgetPollInstalled(benchmark::State& state) {
  SolveBudget budget;
  budget.deadline_s = 1e9;  // installed but never fires
  BudgetGuard guard(budget);
  const BudgetGuard::Scope scope(&guard);
  for (auto _ : state) {
    BudgetGuard::poll();
  }
}
BENCHMARK(BM_BudgetPollInstalled);

// --- SoA/SIMD kernel rows (docs/PERF.md "Kernel microbenchmarks") -----------
//
// Each vectorized kernel is paired with a *ScalarRef row: a bench-local
// copy of the pre-SoA scalar implementation, run on the same input.  One
// run of this binary therefore measures the speedup directly (tools/
// bench_compare prints the X / XScalarRef ratio), and each pair asserts
// result equality at setup so the rows can never drift apart silently.

Forest make_wide_forest(std::size_t n) {
  Rng rng(47);
  ForestGenConfig config;
  config.nodes = n;
  config.max_degree = 64;  // wide parents: the child merge dominates
  return random_forest(config, rng);
}

/// Pre-SoA TM DP, complete: per-node CSR child walks over id-indexed t/m
/// arrays with a comparator-based top-k selection, then the top-down
/// decision pass — the full algorithm the slot-indexed kernel replaced.
struct ScalarTmRef {
  std::vector<Value> t, m;
  std::vector<char> keep;
  std::vector<NodeId> topk;
  std::vector<std::pair<NodeId, char>> stack;
};

Value scalar_ref_tm(const Forest& forest, std::size_t k, ScalarTmRef& s) {
  enum : char { kRetain = 0, kPruneUp = 1 };
  const std::size_t n = forest.size();
  auto& t = s.t;
  auto& m = s.m;
  t.assign(n, 0);
  m.assign(n, 0);
  s.keep.assign(n, 0);
  const auto top_k_children = [&](NodeId u) -> std::span<const NodeId> {
    const std::span<const NodeId> kids = forest.children(u);
    if (kids.size() <= k) return kids;
    s.topk.assign(kids.begin(), kids.end());
    std::nth_element(s.topk.begin(),
                     s.topk.begin() + static_cast<std::ptrdiff_t>(k),
                     s.topk.end(), [&](NodeId a, NodeId b) {
                       if (t[a] != t[b]) return t[a] > t[b];
                       return a < b;
                     });
    return {s.topk.data(), k};
  };
  for (std::size_t i = n; i-- > 0;) {
    BudgetGuard::poll();
    const NodeId u = static_cast<NodeId>(i);
    Value t_u = forest.value(u);
    for (const NodeId c : top_k_children(u)) t_u += t[c];
    Value m_u = 0;
    for (const NodeId c : forest.children(u)) m_u += std::max(t[c], m[c]);
    t[u] = t_u;
    m[u] = m_u;
  }
  auto& stack = s.stack;
  stack.clear();
  for (const NodeId r : forest.roots()) {
    stack.emplace_back(r, t[r] >= m[r] ? kRetain : kPruneUp);
  }
  while (!stack.empty()) {
    const auto [u, decision] = stack.back();
    stack.pop_back();
    if (decision == kRetain) {
      s.keep[u] = 1;
      for (const NodeId c : top_k_children(u)) stack.emplace_back(c, kRetain);
    } else {
      for (const NodeId c : forest.children(u)) {
        stack.emplace_back(c, t[c] >= m[c] ? kRetain : kPruneUp);
      }
    }
  }
  Value total = 0;
  for (const NodeId r : forest.roots()) total += std::max(t[r], m[r]);
  return total;
}

void BM_TmChildMerge(benchmark::State& state) {
  const Forest f = make_wide_forest(static_cast<std::size_t>(state.range(0)));
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(f, 2, scratch, result);  // warm the scratch + result
  AllocMeter meter(state);
  for (auto _ : state) {
    tm_optimal_bas(f, 2, scratch, result);
    benchmark::DoNotOptimize(result.value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TmChildMerge)->Range(1 << 12, 1 << 16)->Complexity(benchmark::oN);

void BM_TmChildMergeScalarRef(benchmark::State& state) {
  const Forest f = make_wide_forest(static_cast<std::size_t>(state.range(0)));
  ScalarTmRef ref;
  {  // the pair must agree before it is worth timing
    TmScratch scratch;
    TmResult result;
    tm_optimal_bas(f, 2, scratch, result);
    POBP_CHECK(scalar_ref_tm(f, 2, ref) == result.value);
    POBP_CHECK(ref.keep == result.selection.keep);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scalar_ref_tm(f, 2, ref));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TmChildMergeScalarRef)
    ->Range(1 << 12, 1 << 16)
    ->Complexity(benchmark::oN);

/// Pre-SoA EDF feasibility probe: comparator release sort over the Job AoS
/// plus a scalar admission scan inside the event loop.
bool scalar_ref_edf(const JobSet& jobs, std::span<const JobId> subset,
                    EdfScratch& s) {
  auto& by_release = s.by_release;
  by_release.assign(subset.begin(), subset.end());
  std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
    if (jobs[a].release != jobs[b].release) {
      return jobs[a].release < jobs[b].release;
    }
    return a < b;
  });
  if (s.remaining.size() < jobs.size()) s.remaining.resize(jobs.size(), 0);
  for (const JobId id : by_release) s.remaining[id] = jobs[id].length;
  auto& ready = s.ready;
  ready.clear();
  const bool feasible = [&] {
    std::size_t next_release = 0;
    Time now = 0;
    if (!by_release.empty()) now = jobs[by_release.front()].release;
    while (next_release < by_release.size() || !ready.empty()) {
      while (next_release < by_release.size() &&
             jobs[by_release[next_release]].release <= now) {
        const JobId id = by_release[next_release++];
        ready.emplace_back(jobs[id].deadline, id);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
      if (ready.empty()) {
        now = jobs[by_release[next_release]].release;
        continue;
      }
      const JobId top = ready.front().second;
      Time until = now + s.remaining[top];
      if (next_release < by_release.size()) {
        until = std::min(until, jobs[by_release[next_release]].release);
      }
      s.remaining[top] -= until - now;
      now = until;
      if (s.remaining[top] == 0) {
        if (now > jobs[top].deadline) return false;
        std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
        ready.pop_back();
      } else if (now > jobs[top].deadline) {
        return false;
      }
    }
    return true;
  }();
  for (const JobId id : by_release) s.remaining[id] = 0;
  return feasible;
}

void BM_EdfSweep(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(inst.jobs);
  EdfScratch scratch;
  scratch.columns.build(inst.jobs);  // the solve-level scratch owns the SoA
  const JobSetView view = scratch.columns.view();
  (void)edf_feasible(view, ids, scratch);  // warm the scratch
  AllocMeter meter(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_feasible(view, ids, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfSweep)->Range(1 << 12, 1 << 16)->Complexity(benchmark::oNLogN);

void BM_EdfSweepScalarRef(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(inst.jobs);
  EdfScratch scratch;
  scratch.columns.build(inst.jobs);
  POBP_CHECK(scalar_ref_edf(inst.jobs, ids, scratch) ==
             edf_feasible(scratch.columns.view(), ids, scratch));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scalar_ref_edf(inst.jobs, ids, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfSweepScalarRef)
    ->Range(1 << 12, 1 << 16)
    ->Complexity(benchmark::oNLogN);

/// Pre-SoA LSA_CS classification: per-job ilogb / floor_log class and a
/// stable_sort of (class, id) pairs.
void scalar_ref_classify(const JobSet& jobs, std::span<const JobId> ids,
                         std::size_t base,
                         std::vector<std::pair<std::size_t, JobId>>& classes) {
  classes.clear();
  classes.reserve(ids.size());
  for (const JobId id : ids) {
    classes.emplace_back(
        floor_log(static_cast<std::int64_t>(base), jobs[id].length), id);
  }
  std::stable_sort(
      classes.begin(), classes.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
}

void BM_LsaClassify(benchmark::State& state) {
  const JobSet jobs = make_lax_jobs(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(jobs);
  LsaScratch scratch;
  scratch.columns.build(jobs);
  const JobSetView view = scratch.columns.view();
  (void)lsa_classify(view, ids, 2, ClassifyBy::kLength, scratch);
  AllocMeter meter(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsa_classify(view, ids, 2, ClassifyBy::kLength, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LsaClassify)->Range(1 << 12, 1 << 16)->Complexity();

void BM_LsaClassifyScalarRef(benchmark::State& state) {
  const JobSet jobs = make_lax_jobs(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(jobs);
  std::vector<std::pair<std::size_t, JobId>> classes;
  {  // grouped output must match the SIMD + counting-sort path exactly
    LsaScratch scratch;
    scratch.columns.build(jobs);
    (void)lsa_classify(scratch.columns.view(), ids, 2, ClassifyBy::kLength,
                       scratch);
    scalar_ref_classify(jobs, ids, 3, classes);
    POBP_CHECK(classes == scratch.classes);
  }
  for (auto _ : state) {
    scalar_ref_classify(jobs, ids, 3, classes);
    benchmark::DoNotOptimize(classes.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LsaClassifyScalarRef)->Range(1 << 12, 1 << 16)->Complexity();

/// Pre-SoA validate_machine_fast: scalar per-segment predicate loop plus a
/// comparator-sorted TaggedSegment timeline for machine exclusivity.
bool scalar_ref_validate(const JobSet& jobs, const MachineSchedule& ms,
                         ValidateScratch& s) {
  for (const Assignment& a : ms.assignments()) {
    if (a.job >= jobs.size()) return false;
    const Job& job = jobs[a.job];
    if (a.segments.empty()) return false;
    Duration scheduled = 0;
    std::size_t prev = a.segments.size();
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
      const Segment& seg = a.segments[i];
      if (seg.empty()) return false;
      if (seg.begin < job.release || seg.end > job.deadline) return false;
      if (prev != a.segments.size() && a.segments[prev].end > seg.begin) {
        return false;
      }
      prev = i;
      scheduled += seg.length();
    }
    if (scheduled != job.length) return false;
  }
  ms.timeline_into(s.timeline);
  for (std::size_t i = 1; i < s.timeline.size(); ++i) {
    if (s.timeline[i - 1].segment.end > s.timeline[i].segment.begin) {
      return false;
    }
  }
  return true;
}

/// A preemption-heavy feasible instance: n/64 jobs × 64 unit segments each,
/// round-robin interleaved.  Wide segment lists drive the validator's 4-lane
/// predicate loop, and the exclusivity sweep sees all n segments — the two
/// halves of the kernel this row measures.
struct RoundRobinInstance {
  JobSet jobs;
  Schedule schedule{1};
};

RoundRobinInstance make_round_robin(std::size_t total_segments) {
  constexpr std::size_t kSegsPerJob = 64;
  const std::size_t jobs_n = std::max<std::size_t>(1, total_segments / kSegsPerJob);
  RoundRobinInstance inst;
  const Time horizon = static_cast<Time>(jobs_n * kSegsPerJob);
  for (std::size_t j = 0; j < jobs_n; ++j) {
    inst.jobs.add(Job{0, horizon, kSegsPerJob, 1.0});
  }
  std::vector<Segment> segs(kSegsPerJob);
  for (std::size_t j = 0; j < jobs_n; ++j) {
    for (std::size_t s = 0; s < kSegsPerJob; ++s) {
      const Time b = static_cast<Time>(s * jobs_n + j);
      segs[s] = {b, b + 1};
    }
    inst.schedule.machine(0).append_sorted(static_cast<JobId>(j), segs);
  }
  return inst;
}

void BM_ValidateFast(benchmark::State& state) {
  const RoundRobinInstance inst =
      make_round_robin(static_cast<std::size_t>(state.range(0)));
  ValidateScratch scratch;
  POBP_CHECK(
      validate_fast(inst.jobs, inst.schedule, kUnboundedPreemptions, scratch));
  AllocMeter meter(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_fast(inst.jobs, inst.schedule,
                                           kUnboundedPreemptions, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ValidateFast)
    ->Range(1 << 12, 1 << 16)
    ->Complexity(benchmark::oNLogN);

void BM_ValidateFastScalarRef(benchmark::State& state) {
  const RoundRobinInstance inst =
      make_round_robin(static_cast<std::size_t>(state.range(0)));
  ValidateScratch scratch;
  POBP_CHECK(scalar_ref_validate(inst.jobs, inst.schedule.machine(0), scratch));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scalar_ref_validate(inst.jobs, inst.schedule.machine(0), scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ValidateFastScalarRef)
    ->Range(1 << 12, 1 << 16)
    ->Complexity(benchmark::oNLogN);

void BM_MigrativeFeasibility(benchmark::State& state) {
  Rng rng(46);
  JobGenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  config.max_length = 256;
  config.max_laxity = 4.0;
  config.horizon = 64 * static_cast<Time>(state.range(0));
  const JobSet jobs = random_jobs(config, rng);
  const std::vector<JobId> ids = all_ids(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(migrative_feasible(jobs, ids, 4));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MigrativeFeasibility)->Range(1 << 4, 1 << 9)->Complexity();

}  // namespace
}  // namespace pobp
