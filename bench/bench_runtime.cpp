// E9 — runtime claims (google-benchmark).
//
// The paper states TM and LevelledContraction run in O(|V|) (§3.2/§3.3);
// EDF and LSA are sort/heap dominated.  Each benchmark sweeps the input
// size so the per-element time (reported via SetComplexityN) exposes the
// growth rate.
#include <benchmark/benchmark.h>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/pobp.hpp"
#include "pobp/flow/migrative.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/reduction/schedule_forest.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/util/alloccount.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

Forest make_forest(std::size_t n) {
  Rng rng(42);
  ForestGenConfig config;
  config.nodes = n;
  config.max_degree = 8;
  return random_forest(config, rng);
}

LaminarInstance make_laminar(std::size_t n) {
  Rng rng(43);
  LaminarGenConfig config;
  config.target_jobs = n;
  return random_laminar_instance(config, rng);
}

JobSet make_lax_jobs(std::size_t n) {
  Rng rng(44);
  JobGenConfig config;
  config.n = n;
  config.min_length = 1;
  config.max_length = 1024;
  config.min_laxity = 2.0;
  config.max_laxity = 8.0;
  config.horizon = static_cast<Time>(64) * static_cast<Time>(n);
  return random_jobs(config, rng);
}

void BM_TmOptimalBas(benchmark::State& state) {
  const Forest f = make_forest(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm_optimal_bas(f, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TmOptimalBas)->Range(1 << 10, 1 << 20)->Complexity(benchmark::oN);

void BM_LevelledContraction(benchmark::State& state) {
  const Forest f = make_forest(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(levelled_contraction(f, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevelledContraction)
    ->Range(1 << 10, 1 << 20)
    ->Complexity(benchmark::oNLogN);

void BM_EdfSimulator(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(inst.jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_schedule(inst.jobs, ids));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfSimulator)
    ->Range(1 << 10, 1 << 17)
    ->Complexity(benchmark::oNLogN);

void BM_Laminarize(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(laminarize(inst.jobs, inst.schedule));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Laminarize)->Range(1 << 10, 1 << 16)->Complexity(benchmark::oNLogN);

void BM_ScheduleForestBuild(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_schedule_forest(inst.jobs, inst.schedule));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleForestBuild)
    ->Range(1 << 10, 1 << 17)
    ->Complexity(benchmark::oN);

void BM_FullReduction(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reduce_to_k_preemptive(inst.jobs, inst.schedule, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReduction)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oNLogN);

void BM_LsaCs(benchmark::State& state) {
  const JobSet jobs = make_lax_jobs(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsa_cs(jobs, ids, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LsaCs)->Range(1 << 8, 1 << 14)->Complexity();

void BM_Validator(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_machine(inst.jobs, inst.schedule));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Validator)->Range(1 << 10, 1 << 17)->Complexity(benchmark::oNLogN);

void BM_OptInfinityBB(benchmark::State& state) {
  Rng rng(45);
  JobGenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  config.max_length = 64;
  config.max_laxity = 3.0;
  config.horizon = 40 * 64;
  const JobSet jobs = random_jobs(config, rng);
  const std::vector<JobId> ids = all_ids(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt_infinity(jobs, ids));
  }
}
BENCHMARK(BM_OptInfinityBB)->DenseRange(10, 22, 4);


/// Records steady-state heap allocations per iteration as the "allocs_op"
/// counter (0 when the binary's counting hooks are disarmed, e.g. under the
/// sanitizer presets).  tools/bench_compare gates this strictly: the pooled
/// stages must stay allocation-free once their scratch has warmed up.
class AllocMeter {
 public:
  explicit AllocMeter(benchmark::State& state) : state_(state) {
    armed_ = pobp::alloccount::arm();
    start_ = pobp::alloccount::allocations();
  }
  ~AllocMeter() {
    state_.counters["allocs_op"] = benchmark::Counter(
        armed_ ? static_cast<double>(pobp::alloccount::allocations() - start_)
               : 0.0,
        benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  bool armed_ = false;
  std::uint64_t start_ = 0;
};

void BM_TmOptimalBasPooled(benchmark::State& state) {
  const Forest f = make_forest(static_cast<std::size_t>(state.range(0)));
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(f, 2, scratch, result);  // warm the scratch + result
  AllocMeter meter(state);
  for (auto _ : state) {
    tm_optimal_bas(f, 2, scratch, result);
    benchmark::DoNotOptimize(result.value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TmOptimalBasPooled)
    ->Range(1 << 10, 1 << 20)
    ->Complexity(benchmark::oN);

void BM_EdfSimulatorPooled(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  const std::vector<JobId> ids = all_ids(inst.jobs);
  EdfScratch scratch;
  (void)edf_feasible(inst.jobs, ids, scratch);  // warm the scratch
  AllocMeter meter(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_feasible(inst.jobs, ids, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfSimulatorPooled)
    ->Range(1 << 10, 1 << 17)
    ->Complexity(benchmark::oNLogN);

void BM_FullReductionPooled(benchmark::State& state) {
  const LaminarInstance inst =
      make_laminar(static_cast<std::size_t>(state.range(0)));
  ReductionScratch scratch;
  (void)reduce_to_k_preemptive(inst.jobs, inst.schedule, 2, nullptr,
                               &scratch);  // warm the scratch
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_to_k_preemptive(inst.jobs, inst.schedule,
                                                    2, nullptr, &scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullReductionPooled)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oNLogN);

// BudgetGuard::poll() cost, uninstalled (the common case: a thread-local
// pointer test) and installed (atomic op count + amortized clock check).
// docs/PERF.md relates these to the per-iteration stage costs above to
// substantiate the "< 1% overhead" claim.
void BM_BudgetPollUninstalled(benchmark::State& state) {
  for (auto _ : state) {
    BudgetGuard::poll();
  }
}
BENCHMARK(BM_BudgetPollUninstalled);

void BM_BudgetPollInstalled(benchmark::State& state) {
  SolveBudget budget;
  budget.deadline_s = 1e9;  // installed but never fires
  BudgetGuard guard(budget);
  const BudgetGuard::Scope scope(&guard);
  for (auto _ : state) {
    BudgetGuard::poll();
  }
}
BENCHMARK(BM_BudgetPollInstalled);

void BM_MigrativeFeasibility(benchmark::State& state) {
  Rng rng(46);
  JobGenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  config.max_length = 256;
  config.max_laxity = 4.0;
  config.horizon = 64 * static_cast<Time>(state.range(0));
  const JobSet jobs = random_jobs(config, rng);
  const std::vector<JobId> ids = all_ids(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(migrative_feasible(jobs, ids, 4));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MigrativeFeasibility)->Range(1 << 4, 1 << 9)->Complexity();

}  // namespace
}  // namespace pobp
