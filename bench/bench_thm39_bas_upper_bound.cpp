// E2/E3 — Theorem 3.9 + Lemma 3.18: the k-BAS upper bound on arbitrary
// forests.  Sweeps random forests (several shapes and value distributions,
// up to 10^6 nodes) and reports, per (n, k):
//   * the worst observed loss factor total/TM vs. the log_{k+1} n bound,
//   * the worst observed LevelledContraction iteration count vs. the same
//     bound (Lemma 3.18),
//   * how much the optimal DP beats the contraction heuristic (ablation).
// Seeds fan out over the thread pool.
#include <atomic>
#include <cmath>
#include <mutex>

#include "bench_common.hpp"
#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/util/parallel.hpp"
#include "pobp/util/rng.hpp"
#include "pobp/util/stats.hpp"

namespace pobp {
namespace {

struct SweepResult {
  double worst_loss = 0;
  double worst_iters = 0;
  double mean_tm_vs_lc = 0;
};

SweepResult sweep(std::size_t n, std::size_t k, std::size_t seeds) {
  std::mutex mu;
  SweepResult out;
  RunningStats tm_vs_lc;

  parallel_for(0, seeds, [&](std::size_t seed) {
    Rng rng(0xBA5E + seed);
    ForestGenConfig config;
    config.nodes = n;
    config.max_degree = 2 + seed % 9;
    config.value_dist =
        seed % 3 == 0   ? ForestGenConfig::ValueDist::kUniform
        : seed % 3 == 1 ? ForestGenConfig::ValueDist::kHeavyTail
                        : ForestGenConfig::ValueDist::kDepthDecay;
    const Forest f = random_forest(config, rng);

    const TmResult tm = tm_optimal_bas(f, k);
    const ContractionResult lc = levelled_contraction(f, k);
    const double loss = f.total_value() / tm.value;
    const double iters = static_cast<double>(lc.iterations());
    const double gain = tm.value / lc.value;

    std::lock_guard lock(mu);
    out.worst_loss = std::max(out.worst_loss, loss);
    out.worst_iters = std::max(out.worst_iters, iters);
    tm_vs_lc.add(gain);
  });
  out.mean_tm_vs_lc = tm_vs_lc.mean();
  return out;
}

}  // namespace
}  // namespace pobp

int main() {
  using namespace pobp;
  bench::banner(
      "E2/E3", "Theorem 3.9 + Lemma 3.18 (upper bounds on random forests)",
      "worst loss factor ≤ log_{k+1} n and contraction iterations ≤ "
      "log_{k+1} n, across shapes and value distributions");

  for (const std::size_t k : {1, 2, 7}) {
    Table table("random forests, k=" + std::to_string(k) + " (16 seeds each)",
                {"n", "worst loss (TM)", "worst LC iters", "log_{k+1} n",
                 "bound ok", "mean TM/LC gain"});
    for (const std::size_t n :
         {std::size_t{100}, std::size_t{1000}, std::size_t{10'000},
          std::size_t{100'000}, std::size_t{1'000'000}}) {
      const SweepResult r = sweep(n, k, 16);
      const double bound = log_k1(k, static_cast<double>(n));
      const bool ok = r.worst_loss <= bound && r.worst_iters <= bound + 1;
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                     Table::fmt(r.worst_loss, 3), Table::fmt(r.worst_iters, 0),
                     Table::fmt(bound, 3), ok ? "yes" : "NO",
                     Table::fmt(r.mean_tm_vs_lc, 3)});
    }
    bench::emit(table);
  }
  return 0;
}
