// E5 — Theorem 4.2: the price as a function of n on random workloads.
// Random laminar ∞-schedules (OPT∞ = total value by construction) of
// growing size; the §4.2 reduction must stay within log_{k+1} n, and in
// practice pays far less.  Also ablates the forest pruner: optimal TM
// versus LevelledContraction (the algorithm the proof analyses).
#include <mutex>

#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/util/parallel.hpp"
#include "pobp/util/stats.hpp"

namespace pobp {
namespace {

struct Row {
  RunningStats price_tm;
  RunningStats price_lc;
  RunningStats forest_depth_proxy;
};

Row sweep(std::size_t n, std::size_t k, std::size_t seeds) {
  Row row;
  std::mutex mu;
  parallel_for(0, seeds, [&](std::size_t seed) {
    Rng rng(0xF00D + seed);
    LaminarGenConfig config;
    config.target_jobs = n;
    config.max_children = 2 + seed % 5;
    config.value_dist = seed % 2 == 0
                            ? LaminarGenConfig::ValueDist::kUniform
                            : LaminarGenConfig::ValueDist::kDepthGrow;
    const LaminarInstance inst = random_laminar_instance(config, rng);
    const Value total = inst.jobs.total_value();

    const CombinedResult tm = k_preemption_combined(
        inst.jobs, inst.schedule, {.k = k, .use_tm = true});
    const CombinedResult lc = k_preemption_combined(
        inst.jobs, inst.schedule, {.k = k, .use_tm = false});
    POBP_ASSERT(validate_machine(inst.jobs, tm.schedule, k).ok);
    POBP_ASSERT(validate_machine(inst.jobs, lc.schedule, k).ok);

    std::lock_guard lock(mu);
    row.price_tm.add(total / tm.value);
    row.price_lc.add(total / lc.value);
  });
  return row;
}

}  // namespace
}  // namespace pobp

int main() {
  using namespace pobp;
  bench::banner(
      "E5", "Theorem 4.2 (price vs n on random ∞-schedules)",
      "price of the reduction ≤ log_{k+1} n on every instance; TM (optimal "
      "pruning) ≤ LevelledContraction (analyzed pruning)");

  for (const std::size_t k : {1, 2, 4}) {
    Table table("random laminar schedules, k=" + std::to_string(k) +
                    " (12 seeds each)",
                {"~n", "mean price(TM)", "max price(TM)", "mean price(LC)",
                 "max price(LC)", "log_{k+1} n", "bound ok"});
    for (const std::size_t n :
         {std::size_t{100}, std::size_t{1000}, std::size_t{10'000},
          std::size_t{50'000}}) {
      const Row row = sweep(n, k, 12);
      const double bound = log_k1(k, static_cast<double>(n));
      const bool ok = row.price_tm.max() <= bound && row.price_lc.max() <= bound;
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                     Table::fmt(row.price_tm.mean(), 3),
                     Table::fmt(row.price_tm.max(), 3),
                     Table::fmt(row.price_lc.mean(), 3),
                     Table::fmt(row.price_lc.max(), 3), Table::fmt(bound, 3),
                     ok ? "yes" : "NO"});
    }
    bench::emit(table);
  }
  return 0;
}
