// E6 — Theorem 4.5 / Lemma 4.10: the price as a function of P = p_max/p_min.
// Two regimes:
//   (a) small congested lax instances with the *exact* OPT∞ (B&B): LSA_CS
//       and the combined algorithm must stay within 6·log_{k+1} P;
//   (b) large lax instances (exact OPT out of reach): price measured
//       against the total-value upper bound on OPT∞ — an over-estimate,
//       so the reported price is itself an upper bound on the true one.
#include <mutex>

#include "bench_common.hpp"
#include "pobp/pobp.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/parallel.hpp"
#include "pobp/util/stats.hpp"

namespace pobp {
namespace {

JobGenConfig lax_config(std::size_t n, Duration max_len, std::size_t k) {
  JobGenConfig config;
  config.n = n;
  config.min_length = 1;
  config.max_length = max_len;
  config.min_laxity = static_cast<double>(k + 1);
  config.max_laxity = static_cast<double>(2 * (k + 1));
  config.horizon = static_cast<Time>(
      std::max<Duration>(2048, 8 * max_len * static_cast<Duration>(k + 1)));
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  return config;
}

void exact_regime(std::size_t k) {
  Table table("exact regime (n=16, congested), k=" + std::to_string(k) +
                  " (10 seeds each)",
              {"P<=", "mean price", "max price", "6*log_{k+1}P", "bound ok"});
  for (const Duration max_len : {Duration{8}, Duration{64}, Duration{512},
                                 Duration{4096}}) {
    RunningStats price;
    std::mutex mu;
    parallel_for(0, 10, [&](std::size_t seed) {
      Rng rng(0xCAFE + seed);
      JobGenConfig config = lax_config(16, max_len, k);
      config.horizon = 40 * max_len;  // congested: OPT∞ must reject jobs
      const JobSet jobs = random_jobs(config, rng);

      const SubsetSolution opt = opt_infinity(jobs, all_ids(jobs));
      const auto seed_schedule = edf_schedule(jobs, opt.members);
      POBP_ASSERT(seed_schedule.has_value());
      const CombinedResult alg =
          k_preemption_combined(jobs, *seed_schedule, {.k = k});

      std::lock_guard lock(mu);
      price.add(opt.value / alg.value);
    });
    const double bound = 6.0 * log_k1(k, static_cast<double>(max_len));
    table.add_row({Table::fmt(static_cast<std::int64_t>(max_len)),
                   Table::fmt(price.mean(), 3), Table::fmt(price.max(), 3),
                   Table::fmt(bound, 3),
                   price.max() <= bound ? "yes" : "NO"});
  }
  bench::emit(table);
}

void scale_regime(std::size_t k) {
  Table table("scale regime (n=4000, price vs total-value bound), k=" +
                  std::to_string(k) + " (6 seeds each)",
              {"P<=", "mean price<=", "max price<=", "6*log_{k+1}P"});
  for (const Duration max_len :
       {Duration{16}, Duration{256}, Duration{4096}, Duration{65536}}) {
    RunningStats price;
    std::mutex mu;
    parallel_for(0, 6, [&](std::size_t seed) {
      Rng rng(0xBEEF + seed);
      JobGenConfig config = lax_config(4000, max_len, k);
      const JobSet jobs = random_jobs(config, rng);
      const LsaResult alg = lsa_cs(jobs, all_ids(jobs), k);
      POBP_ASSERT(validate_machine(jobs, alg.schedule, k).ok);
      std::lock_guard lock(mu);
      price.add(jobs.total_value() / alg.schedule.total_value(jobs));
    });
    table.add_row({Table::fmt(static_cast<std::int64_t>(max_len)),
                   Table::fmt(price.mean(), 3), Table::fmt(price.max(), 3),
                   Table::fmt(6.0 * log_k1(k, static_cast<double>(max_len)),
                              3)});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pobp

int main() {
  using namespace pobp;
  bench::banner(
      "E6", "Theorem 4.5 + Lemma 4.10 (price vs P on lax workloads)",
      "LSA_CS/combined stay within 6·log_{k+1} P of OPT∞; the measured "
      "price grows much slower than the bound as P sweeps 4 decades");
  for (const std::size_t k : {1, 2}) {
    exact_regime(k);
    scale_regime(k);
  }
  return 0;
}
