// k-BAS as a stand-alone combinatorial tool: fan-out-bounded selection in
// a hierarchy.
//
// Scenario: a CDN must pick which objects of a site hierarchy to pin in an
// edge cache.  Pinning a directory only pays off if its hot children are
// pinned with it, but each pinned node may keep at most k pinned children
// (per-node index fan-out).  Sections of the tree must not be pinned
// "around a hole" (a pinned ancestor with an unpinned link to a pinned
// descendant is useless) — which is precisely ancestor independence.
// Maximizing pinned hit-value under those rules is the k-BAS problem the
// paper solves optimally with the TM dynamic program (§3.2).
//
//   ./build/examples/bas_pruning [nodes] [k]
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace pobp;
  const std::size_t nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100'000;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  // Site hierarchy with heavy-tailed popularity (a few viral objects).
  Rng rng(99);
  ForestGenConfig config;
  config.nodes = nodes;
  config.max_degree = 12;
  config.value_dist = ForestGenConfig::ValueDist::kHeavyTail;
  const Forest site = random_forest(config, rng);
  std::printf("hierarchy: %zu objects, %zu roots, total hit-value %.0f\n\n",
              site.size(), site.roots().size(), site.total_value());

  const std::set<std::size_t> fans{1, 2, k, 4, 8};
  for (const std::size_t fan : fans) {
    const TmResult optimal = tm_optimal_bas(site, fan);
    const ContractionResult heuristic = levelled_contraction(site, fan);
    const BasCheck check = validate_bas(site, optimal.selection, fan);
    if (!check) {
      std::printf("invalid selection: %s\n", check.error.c_str());
      return 1;
    }
    std::printf(
        "fan-out k=%zu: pin %7zu objects, value %12.0f (%.1f%% of total) | "
        "levelled-contraction heuristic %.1f%% | guarantee ≥ %.1f%%\n",
        fan, optimal.selection.kept_count(), optimal.value,
        100.0 * optimal.value / site.total_value(),
        100.0 * heuristic.value / site.total_value(),
        100.0 / log_k1(fan, static_cast<double>(site.size())));
  }

  // Heterogeneous budgets: shallow nodes (cheap index entries) tolerate a
  // wide fan-out, deep ones only k — the per-node generalization of TM.
  std::vector<std::size_t> budgets(site.size());
  for (NodeId v = 0; v < site.size(); ++v) {
    budgets[v] = site.depth(v) < 2 ? 16 : k;
  }
  const TmResult mixed = tm_optimal_bas(site, budgets);
  const BasCheck mixed_check = validate_bas(site, mixed.selection, budgets);
  std::printf(
      "\nper-node budgets (fan-out 16 near the roots, %zu below): value "
      "%.0f (%.1f%% of total) — %s\n",
      k, mixed.value, 100.0 * mixed.value / site.total_value(),
      mixed_check ? "valid" : mixed_check.error.c_str());

  std::printf(
      "\nreading: the optimal DP retains most of the value even at k=1 — "
      "far better than its worst-case 1/log_{k+1} n guarantee — and the "
      "paper's contraction heuristic trails it by a bounded factor.\n");
  return 0;
}
