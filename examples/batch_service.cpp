// batch_service — serving-shaped use of pobp::StreamEngine.
//
// Simulates a scheduling service: instances arrive as a JSONL stream (the
// same format `pobp batch --jsonl` and `pobp serve` read), a long-lived
// StreamEngine answers one future per request, and the per-stage metrics
// are printed the way a service would export them to a dashboard.
//
// Build: cmake --build build --target batch_service && ./build/examples/batch_service
#include <future>
#include <iostream>
#include <utility>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/rng.hpp"

int main() {
  // --- 1. Instances arrive as JSONL (here: an inline request log). --------
  const std::string request_log = R"({"name": "web", "jobs": [[0,10,4,5.0],[2,7,3,2.5],[1,12,5,4.0]]}
{"name": "batch-etl", "jobs": [{"release":0,"deadline":40,"length":12,"value":9},{"release":5,"deadline":30,"length":8,"value":6}]}
)";
  std::vector<pobp::io::BatchInstance> requests =
      pobp::io::instances_from_jsonl(request_log);

  // ...plus a burst of synthetic tenants.
  pobp::Rng rng(4);
  for (int tenant = 0; tenant < 6; ++tenant) {
    pobp::JobGenConfig config;
    config.n = 16;
    requests.push_back({"tenant" + std::to_string(tenant),
                        pobp::random_jobs(config, rng)});
  }

  // --- 2. One StreamEngine for the life of the service. -------------------
  // Options are validated once up front — a service should reject a bad
  // configuration at startup, not per request.
  const pobp::ScheduleOptions schedule{.k = 1, .machine_count = 2};
  if (auto probe = pobp::try_schedule_bounded(pobp::JobSet{}, schedule);
      !probe) {
    std::cerr << "bad configuration: " << probe.error().first_error() << "\n";
    return 1;
  }
  pobp::StreamOptions options;
  options.engine.schedule = schedule;
  options.engine.workers = 4;
  pobp::StreamEngine service(options);

  // --- 3. Submit the stream; one future per request. ----------------------
  std::vector<std::future<pobp::SolveOutcome>> pending;
  pending.reserve(requests.size());
  for (const auto& request : requests) {
    pobp::SubmitOptions submit;
    submit.tenant = request.name;
    pending.push_back(service.submit(request.jobs, std::move(submit)));
  }

  for (std::size_t i = 0; i < pending.size(); ++i) {
    const pobp::SolveOutcome outcome = pending[i].get();
    if (!outcome) {
      std::cout << requests[i].name << ": REJECTED ("
                << outcome.error().first_error() << ")\n";
      continue;
    }
    std::cout << requests[i].name << ": scheduled "
              << outcome->schedule.job_count() << "/"
              << requests[i].jobs.size() << " jobs, value " << outcome->value
              << ", price " << outcome->price() << "\n";
  }

  // --- 4. Export metrics (ASCII here; to_json() for dashboards). ----------
  std::cout << "\n" << service.metrics().to_table();
  return 0;
}
