// Online scheduling under context-switch costs — the §1.2 motivation as a
// runnable scenario.
//
// A realtime audio/IO node processes a mix of long batch chunks and short
// urgent control events.  Every dispatch costs `c` microseconds of context
// switching.  This example sweeps policies and costs and prints where
// bounded preemption starts to pay.
//
//   ./build/examples/online_policies [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "pobp/sim/policies.hpp"
#include "pobp/sim/sim.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/rng.hpp"

namespace {

pobp::JobSet make_workload(std::size_t n, std::uint64_t seed) {
  pobp::Rng rng(seed);
  pobp::JobSet jobs;
  for (std::size_t i = 0; i < n; ++i) {
    pobp::Job j;
    if (rng.bernoulli(0.25)) {  // batch chunk
      j.length = rng.uniform_int(300, 1500);
      const pobp::Duration window = j.length * rng.uniform_int(4, 8);
      j.release = rng.uniform_int(0, 50'000 - window);
      j.deadline = j.release + window;
      j.value = static_cast<double>(j.length) / 4.0;
    } else {  // control event
      j.length = rng.uniform_int(2, 25);
      const pobp::Duration window = j.length + rng.uniform_int(2, 30);
      j.release = rng.uniform_int(0, 50'000 - window);
      j.deadline = j.release + window;
      j.value = static_cast<double>(rng.uniform_int(50, 250));
    }
    jobs.add(j);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pobp;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  const JobSet jobs = make_workload(n, seed);

  std::printf("%zu jobs, total value %.0f\n\n", jobs.size(),
              jobs.total_value());
  std::printf("%6s | %12s %12s %12s %12s | %s\n", "cost", "edf", "k=1", "k=2",
              "nonpreempt", "best");

  for (const Duration cost : {0, 2, 8, 32, 96}) {
    sim::EdfPolicy edf;
    sim::BudgetEdfPolicy b1(1), b2(2);
    sim::NonPreemptivePolicy np;
    const sim::SimConfig config{cost};

    struct Row {
      const char* name;
      Value value;
    };
    const Row rows[] = {
        {"edf", sim::simulate(jobs, edf, config).value},
        {"k=1", sim::simulate(jobs, b1, config).value},
        {"k=2", sim::simulate(jobs, b2, config).value},
        {"nonpreempt", sim::simulate(jobs, np, config).value},
    };
    const Row* best = &rows[0];
    for (const Row& r : rows) {
      if (r.value > best->value) best = &r;
    }
    std::printf("%6ld | %12.0f %12.0f %12.0f %12.0f | %s\n",
                static_cast<long>(cost), rows[0].value, rows[1].value,
                rows[2].value, rows[3].value, best->name);
  }

  // Budgeted policies always produce Def.-2.1-valid k-bounded schedules.
  sim::BudgetEdfPolicy b2(2);
  const sim::SimResult checked = sim::simulate(jobs, b2, {.dispatch_cost = 8});
  const ValidationResult ok = validate_machine(jobs, checked.schedule, 2);
  std::printf("\nbudget-edf(2) at cost 8: %zu completed, %zu dropped, "
              "overhead %ld ticks — validator: %s\n",
              checked.completed, checked.dropped,
              static_cast<long>(checked.overhead_time),
              ok ? "feasible, k ≤ 2" : ok.error.c_str());
  return ok ? 0 : 1;
}
