// Packet/flow scheduling on a bottleneck link, served online.
//
// The intro's real-world motivation for bounding preemption: every preempt
// of a flow transmission costs a context switch (buffer swap, DMA
// re-arm), so a link scheduler wants deadline-constrained flows with a
// *hard cap* on per-flow preemptions.  This example drives the streaming
// service end-to-end: a pobp::StreamEngine plays the link's control plane,
// flow batches arrive as requests from several tenants, and a k-sweep over
// the same workload shows the value/preemption trade-off the paper
// quantifies — value climbs like the bounds predict and saturates once k
// exceeds the workload's natural nesting depth.
//
//   ./build/examples/packet_scheduler [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/rng.hpp"

namespace {

// Bursty mix: many short urgent control packets + long bulk transfers.
pobp::JobSet make_flows(std::size_t n, std::uint64_t seed) {
  pobp::Rng rng(seed);
  pobp::JobSet flows;
  for (std::size_t i = 0; i < n; ++i) {
    const bool bulk = rng.bernoulli(0.3);
    pobp::Job f;
    f.length = bulk ? rng.uniform_int(200, 2000) : rng.uniform_int(2, 30);
    const double laxity = bulk ? rng.uniform_real(2.0, 6.0)
                               : rng.uniform_real(1.0, 2.5);
    const pobp::Duration window = static_cast<pobp::Duration>(
        laxity * static_cast<double>(f.length)) + 1;
    f.release = rng.uniform_int(0, 20'000 - window);
    f.deadline = f.release + window;
    // Value: control packets are precious per byte, bulk pays by volume.
    f.value = bulk ? static_cast<double>(f.length) *
                         rng.uniform_real(0.5, 1.5)
                   : rng.uniform_real(50.0, 200.0);
    flows.add(f);
  }
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pobp;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const JobSet flows = make_flows(n, seed);
  const InstanceMetrics metrics = compute_metrics(flows);
  std::printf("workload: %s\n\n", metrics.to_string().c_str());

  // The link's control plane: one long-lived streaming service.
  StreamOptions options;
  options.engine.workers = 4;
  StreamEngine service(options);

  // --- 1. k-sweep over the same workload, submitted as a request burst. ---
  // Every request is independent; the service answers each with a future.
  const std::size_t sweep[] = {0, 1, 2, 3, 5, 8};
  std::vector<std::pair<std::size_t, std::future<SolveOutcome>>> pending;
  for (const std::size_t k : sweep) {
    SubmitOptions submit;
    submit.tenant = "sweep";
    pending.emplace_back(
        k, service.submit(flows, ScheduleOptions{.k = k}, std::move(submit)));
  }

  std::printf("%4s %10s %10s %8s %12s %14s\n", "k", "flows", "value",
              "price", "max preempt", "log_{k+1} P");
  double ref_value = 0;
  for (auto& [k, future] : pending) {
    const SolveOutcome outcome = future.get();
    if (!outcome) {
      std::printf("k=%zu rejected: %s\n", k,
                  outcome.error().first_error().c_str());
      return 1;
    }
    const ScheduleResult& r = *outcome;
    if (ref_value == 0) ref_value = r.unbounded_value;
    const ValidationResult check = validate(flows, r.schedule, k);
    if (!check) {
      std::printf("validator failed: %s\n", check.error.c_str());
      return 1;
    }
    const double logp =
        k >= 1 ? log_k1(k, metrics.P) : log_base(2.0, metrics.P);
    std::printf("%4zu %10zu %10.0f %8.3f %12zu %14.2f\n", k,
                r.schedule.job_count(), r.value, r.price(),
                r.schedule.max_preemptions(), logp);
  }
  std::printf("\nreading: the price column should track (a small fraction "
              "of) the log_{k+1} P column, and collapse toward 1 as k "
              "grows — the paper's Theorem 4.5 in action.\n\n");

  // --- 2. Multi-tenant traffic through the same service. ------------------
  // Three tenants share the link; per-tenant counters come out of
  // tenant_stats() the way a dashboard would scrape them.
  std::vector<std::future<SolveOutcome>> traffic;
  for (std::size_t i = 0; i < 12; ++i) {
    SubmitOptions submit;
    submit.tenant = "tenant" + std::to_string(i % 3);
    traffic.push_back(service.submit(make_flows(60, seed + 1 + i),
                                     ScheduleOptions{.k = 1},
                                     std::move(submit)));
  }
  double served_value = 0;
  for (auto& future : traffic) {
    const SolveOutcome outcome = future.get();
    if (outcome) served_value += outcome->value;
  }
  std::printf("tenant traffic: %zu requests served, total value %.0f\n",
              traffic.size(), served_value);
  for (const auto& [tenant, stats] : service.tenant_stats()) {
    std::printf("  %-8s submitted %llu completed %llu failed %llu\n",
                tenant.c_str(),
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.failed));
  }
  return 0;
}
