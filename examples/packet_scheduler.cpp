// Packet/flow scheduling on a bottleneck link.
//
// The intro's real-world motivation for bounding preemption: every preempt
// of a flow transmission costs a context switch (buffer swap, DMA
// re-arm), so a link scheduler wants deadline-constrained flows with a
// *hard cap* on per-flow preemptions.  This example builds a bursty flow
// workload, sweeps k = 0..∞, and shows the value/preemption trade-off the
// paper quantifies: value climbs like the bounds predict and saturates
// once k exceeds the workload's natural nesting depth.
//
//   ./build/examples/packet_scheduler [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "pobp/pobp.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/rng.hpp"

namespace {

// Bursty mix: many short urgent control packets + long bulk transfers.
pobp::JobSet make_flows(std::size_t n, std::uint64_t seed) {
  pobp::Rng rng(seed);
  pobp::JobSet flows;
  for (std::size_t i = 0; i < n; ++i) {
    const bool bulk = rng.bernoulli(0.3);
    pobp::Job f;
    f.length = bulk ? rng.uniform_int(200, 2000) : rng.uniform_int(2, 30);
    const double laxity = bulk ? rng.uniform_real(2.0, 6.0)
                               : rng.uniform_real(1.0, 2.5);
    const pobp::Duration window = static_cast<pobp::Duration>(
        laxity * static_cast<double>(f.length)) + 1;
    f.release = rng.uniform_int(0, 20'000 - window);
    f.deadline = f.release + window;
    // Value: control packets are precious per byte, bulk pays by volume.
    f.value = bulk ? static_cast<double>(f.length) *
                         rng.uniform_real(0.5, 1.5)
                   : rng.uniform_real(50.0, 200.0);
    flows.add(f);
  }
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pobp;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const JobSet flows = make_flows(n, seed);
  const InstanceMetrics metrics = compute_metrics(flows);
  std::printf("workload: %s\n\n", metrics.to_string().c_str());

  // Unbounded-preemption reference (greedy density + EDF).
  const MachineSchedule reference = greedy_infinity(flows, all_ids(flows));
  const Value ref_value = reference.total_value(flows);
  std::printf("unbounded reference: %zu flows, value %.0f, "
              "max preemptions %zu\n\n",
              reference.job_count(), ref_value, reference.max_preemptions());

  std::printf("%4s %10s %10s %8s %12s %14s\n", "k", "flows", "value",
              "price", "max preempt", "log_{k+1} P");
  for (const std::size_t k : {0u, 1u, 2u, 3u, 5u, 8u}) {
    Value value = 0;
    std::size_t count = 0;
    std::size_t preempts = 0;
    if (k == 0) {
      const NonPreemptiveResult r = schedule_nonpreemptive(flows, all_ids(flows));
      value = r.value;
      count = r.schedule.job_count();
    } else {
      const CombinedResult r = k_preemption_combined(flows, reference, {.k = k});
      value = r.value;
      count = r.schedule.job_count();
      preempts = r.schedule.max_preemptions();
      const ValidationResult check = validate_machine(flows, r.schedule, k);
      if (!check) {
        std::printf("validator failed: %s\n", check.error.c_str());
        return 1;
      }
    }
    const double logp = k >= 1 ? log_k1(k, metrics.P) : log_base(2.0, metrics.P);
    std::printf("%4zu %10zu %10.0f %8.3f %12zu %14.2f\n", k, count, value,
                ref_value / value, preempts, logp);
  }
  std::printf("\nreading: the price column should track (a small fraction "
              "of) the log_{k+1} P column, and collapse toward 1 as k "
              "grows — the paper's Theorem 4.5 in action.\n");
  return 0;
}
