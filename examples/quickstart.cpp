// Quickstart: schedule a handful of jobs with at most one preemption each.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "pobp/pobp.hpp"

int main() {
  using namespace pobp;

  // A job is ⟨release, deadline, length, value⟩.
  JobSet jobs;
  jobs.add({.release = 0, .deadline = 14, .length = 6, .value = 9.0});
  jobs.add({.release = 2, .deadline = 7, .length = 3, .value = 5.0});
  jobs.add({.release = 4, .deadline = 11, .length = 2, .value = 4.0});
  jobs.add({.release = 0, .deadline = 30, .length = 10, .value = 3.0});
  jobs.add({.release = 16, .deadline = 22, .length = 5, .value = 7.0});

  // One call: build an unbounded-preemption reference schedule, then bound
  // each job to at most k preemptions (Alon–Azar–Berlin, SPAA'18).  Bad
  // options come back as a rule-tagged report instead of a throw.
  const auto solved = try_schedule_bounded(jobs, {.k = 1});
  if (!solved) {
    std::printf("rejected: %s\n", solved.error().first_error().c_str());
    return 1;
  }
  const ScheduleResult& result = *solved;

  std::printf("scheduled %zu of %zu jobs, value %.1f of %.1f (price %.3f)\n",
              result.schedule.job_count(), jobs.size(), result.value,
              result.unbounded_value, result.price());
  std::printf("max preemptions used: %zu (bound k=1)\n\n",
              result.schedule.max_preemptions());
  std::printf("timeline (machine 0):\n%s",
              result.schedule.machine(0).to_string(jobs).c_str());
  std::printf("\n%s", render_gantt(jobs, result.schedule).c_str());

  // Every schedule the library returns passes the Def. 2.1 validator:
  const ValidationResult check = validate(jobs, result.schedule, /*k=*/1);
  std::printf("\nvalidator: %s\n", check ? "feasible" : check.error.c_str());
  return check ? 0 : 1;
}
