// Render-farm batch scheduling across multiple non-migrative machines.
//
// Render jobs have firm delivery deadlines and checkpointing is expensive:
// a render preempted k times must be checkpointed/restored k times, so the
// farm caps k per job.  Migration is even worse (assets must move hosts),
// so jobs are pinned to one machine — exactly the paper's non-migrative
// multi-machine model (§4.3.4).
//
//   ./build/examples/render_farm [machines] [jobs] [k]
#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <set>

#include "pobp/pobp.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace pobp;
  const std::size_t machines =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;
  const std::size_t k = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2;

  // Overnight batch: shots of widely varying frame counts, all due by
  // morning, with per-shot priorities from production.
  Rng rng(2024);
  JobGenConfig config;
  config.n = n;
  config.min_length = 10;     // minutes of render time
  config.max_length = 600;
  config.min_laxity = 1.2;
  config.max_laxity = 10.0;
  config.horizon = 12 * 60 * 8;  // an 8-night backlog window, in minutes
  config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
  const JobSet shots = random_jobs(config, rng);

  std::printf("render farm: %zu machines, %zu shots, k=%zu checkpoint cap\n",
              machines, n, k);
  std::printf("workload: %s\n\n", compute_metrics(shots).to_string().c_str());

  const std::set<std::size_t> machine_counts{
      1, std::max<std::size_t>(machines / 2, 1), machines, machines * 2};
  for (const std::size_t m : machine_counts) {
    const ScheduleResult r = try_schedule_bounded(
        shots, {.k = k, .machine_count = m}).value();
    const ValidationResult check = validate(shots, r.schedule, k);
    if (!check) {
      std::printf("validator failed: %s\n", check.error.c_str());
      return 1;
    }
    std::printf("m=%2zu: delivered %4zu/%zu shots, value %9.0f (%.1f%% of "
                "backlog), price vs unbounded %.3f\n",
                m, r.schedule.job_count(), n, r.value,
                100.0 * r.value / shots.total_value(), r.price());
  }

  // Per-machine utilization report for the configured machine count.
  const ScheduleResult r =
      try_schedule_bounded(shots, {.k = k, .machine_count = machines}).value();
  std::printf("\nper-machine load (m=%zu):\n", machines);
  for (std::size_t m = 0; m < machines; ++m) {
    const MachineSchedule& ms = r.schedule.machine(m);
    std::printf("  machine %zu: %4zu shots, busy %6ld min, "
                "max checkpoints %zu\n",
                m, ms.job_count(), static_cast<long>(ms.busy_time()),
                ms.max_preemptions());
  }
  return 0;
}
