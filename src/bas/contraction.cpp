#include "pobp/bas/contraction.hpp"

#include <algorithm>

#include "pobp/util/assert.hpp"

namespace pobp {

ContractionResult levelled_contraction(const Forest& forest, std::size_t k) {
  POBP_ASSERT_MSG(k >= 1, "LevelledContraction requires k >= 1 (paper §3)");
  const std::size_t n = forest.size();
  ContractionResult result;
  result.selection.keep.assign(n, 0);
  if (n == 0) return result;

  // The alive set is upward-closed at all times (whole subtrees are removed),
  // so an alive node's ancestors are alive too.
  std::vector<char> alive(n, 1);
  std::vector<NodeId> alive_nodes(n);
  for (NodeId v = 0; v < n; ++v) alive_nodes[v] = v;

  std::vector<char> contractible(n, 0);
  std::vector<NodeId> dfs_stack;

  while (!alive_nodes.empty()) {
    // --- MaxContract: mark contractibility bottom-up (Def. 3.10). ---
    // alive_nodes is sorted ascending by id = parents-first, so a reverse
    // scan visits children before parents.
    for (auto it = alive_nodes.rbegin(); it != alive_nodes.rend(); ++it) {
      const NodeId u = *it;
      std::size_t alive_children = 0;
      bool all_contractible = true;
      for (const NodeId c : forest.children(u)) {
        if (!alive[c]) continue;
        ++alive_children;
        all_contractible = all_contractible && contractible[c];
      }
      contractible[u] = alive_children <= k && all_contractible;
    }

    // --- Take aside the leaves after contraction: the maximal contractible
    // nodes, i.e. contractible nodes without a contractible parent. ---
    ContractionLevel level;
    for (const NodeId u : alive_nodes) {
      if (!contractible[u]) continue;
      const NodeId p = forest.parent(u);
      if (p != kNoNode && contractible[p]) continue;  // not maximal
      level.roots.push_back(u);
      // Remove u's entire (alive) subtree; up-closedness of `alive` means
      // that is exactly all descendants of u that are still alive.
      dfs_stack.assign(1, u);
      while (!dfs_stack.empty()) {
        const NodeId v = dfs_stack.back();
        dfs_stack.pop_back();
        POBP_DASSERT(alive[v]);
        alive[v] = 0;
        level.members.push_back(v);
        level.value += forest.value(v);
        for (const NodeId c : forest.children(v)) {
          if (alive[c]) dfs_stack.push_back(c);
        }
      }
    }
    POBP_ASSERT_MSG(!level.roots.empty(),
                    "every iteration removes at least the current leaves");
    result.levels.push_back(std::move(level));

    // Compact the alive list for the next iteration.
    std::erase_if(alive_nodes, [&](NodeId v) { return !alive[v]; });
  }

  // Return argmax over levels (line 19 of Alg. 1).
  const auto best = std::max_element(
      result.levels.begin(), result.levels.end(),
      [](const ContractionLevel& a, const ContractionLevel& b) {
        return a.value < b.value;
      });
  result.value = best->value;
  for (const NodeId v : best->members) result.selection.keep[v] = 1;
  return result;
}

Value levelled_contraction_select(const Forest& forest, std::size_t k,
                                  ContractionScratch& s, SubForest& out) {
  POBP_ASSERT_MSG(k >= 1, "LevelledContraction requires k >= 1 (paper §3)");
  const std::size_t n = forest.size();
  out.keep.assign(n, 0);
  if (n == 0) return 0;

  s.alive.assign(n, 1);
  s.alive_nodes.resize(n);
  for (NodeId v = 0; v < n; ++v) s.alive_nodes[v] = v;
  s.contractible.assign(n, 0);
  s.best_members.clear();

  // Same iteration structure as levelled_contraction above; the only
  // difference is that a level's members are kept only while it is the
  // current argmax (ties resolve to the earliest level, matching
  // std::max_element).
  Value best_value = 0;
  bool have_best = false;
  while (!s.alive_nodes.empty()) {
    for (auto it = s.alive_nodes.rbegin(); it != s.alive_nodes.rend(); ++it) {
      const NodeId u = *it;
      std::size_t alive_children = 0;
      bool all_contractible = true;
      for (const NodeId c : forest.children(u)) {
        if (!s.alive[c]) continue;
        ++alive_children;
        all_contractible = all_contractible && s.contractible[c];
      }
      s.contractible[u] = alive_children <= k && all_contractible;
    }

    s.members.clear();
    Value level_value = 0;
    bool any_root = false;
    for (const NodeId u : s.alive_nodes) {
      if (!s.contractible[u]) continue;
      const NodeId p = forest.parent(u);
      if (p != kNoNode && s.contractible[p]) continue;  // not maximal
      any_root = true;
      s.dfs_stack.assign(1, u);
      while (!s.dfs_stack.empty()) {
        const NodeId v = s.dfs_stack.back();
        s.dfs_stack.pop_back();
        POBP_DASSERT(s.alive[v]);
        s.alive[v] = 0;
        s.members.push_back(v);
        level_value += forest.value(v);
        for (const NodeId c : forest.children(v)) {
          if (s.alive[c]) s.dfs_stack.push_back(c);
        }
      }
    }
    POBP_ASSERT_MSG(any_root,
                    "every iteration removes at least the current leaves");
    if (!have_best || level_value > best_value) {
      have_best = true;
      best_value = level_value;
      std::swap(s.members, s.best_members);
    }

    std::erase_if(s.alive_nodes, [&](NodeId v) { return !s.alive[v]; });
  }

  for (const NodeId v : s.best_members) out.keep[v] = 1;
  return best_value;
}

}  // namespace pobp
