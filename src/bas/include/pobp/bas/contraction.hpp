// Algorithm 1 (§3.3): MaxContract and LevelledContraction.
//
// LevelledContraction repeatedly performs a maximal k-contraction, takes the
// resulting leaf set aside as one candidate k-BAS "level", removes it, and
// finally returns the best level.  Its loss factor is ≤ log_{k+1} n
// (Lemmas 3.17–3.18), which is how the paper bounds the loss factor of the
// optimal DP.  The instrumented result exposes the per-level structure so
// the benches can verify Lemma 3.18 (≤ log_{k+1} n iterations) and
// Lemma 4.6 (the window-based iteration bound for strict jobs).
#pragma once

#include <cstddef>
#include <vector>

#include "pobp/forest/bas.hpp"
#include "pobp/forest/forest.hpp"

namespace pobp {

/// One iteration's take-aside set S_i.
struct ContractionLevel {
  /// Maximal contractible nodes at this iteration (the "leaves after
  /// MaxContract"); the corresponding k-BAS piece is each root's still-alive
  /// subtree.
  std::vector<NodeId> roots;
  /// Every node removed this iteration (union of the roots' subtrees).
  std::vector<NodeId> members;
  /// Σ val over `members` (= Σ of contracted leaf values).
  Value value = 0;
};

struct ContractionResult {
  SubForest selection;                    ///< best level, as a k-BAS mask
  Value value = 0;                        ///< val(selection)
  std::vector<ContractionLevel> levels;   ///< all iterations, in order
  std::size_t iterations() const { return levels.size(); }
};

/// Runs LevelledContraction on the whole forest.  O(|V|) total: each node is
/// examined a constant number of times per iteration it survives, and every
/// iteration removes at least the current leaves.
ContractionResult levelled_contraction(const Forest& forest, std::size_t k);

/// Reusable buffers for the select-only form.
struct ContractionScratch {
  std::vector<char> alive;
  std::vector<char> contractible;
  std::vector<NodeId> alive_nodes;
  std::vector<NodeId> dfs_stack;
  std::vector<NodeId> members;       ///< current level's removed nodes
  std::vector<NodeId> best_members;  ///< best level seen so far
};

/// Select-only form of levelled_contraction: identical selection and value,
/// but only the winning level is kept (no per-level instrumentation) and
/// every working buffer comes from `scratch`.  `out` is overwritten.
/// Returns the selection's value.
Value levelled_contraction_select(const Forest& forest, std::size_t k,
                                  ContractionScratch& scratch,
                                  SubForest& out);

}  // namespace pobp
