// Procedure TM (§3.2): the optimal dynamic program for max-value k-BAS.
//
// Bottom-up it computes, for every node u,
//   t(u) = val(u) + Σ_{v ∈ C_k(u)} t(v)      (u retained; C_k = top-k by t)
//   m(u) = Σ_{v ∈ C(u)} max(t(v), m(v))      (u pruned-up)
// and top-down it materializes the decisions (Obs. 3.8): a retained node
// keeps its top-k children and prunes-down the rest; a pruned-up node lets
// each child independently choose retained vs pruned-up.
//
// Runs in O(|V|) time up to the top-k selection (O(deg log deg) per node via
// nth_element — linear overall in practice) and is exact (Theorem: it
// implements equation 3.1).
//
// The scratch-taking forms reuse every DP buffer (including the TmResult's
// own arrays via assign()), so a warmed-up TmScratch + TmResult pair makes
// the whole DP allocation-free — the property the deep-chain stress test
// pins down.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pobp/forest/bas.hpp"
#include "pobp/forest/forest.hpp"

namespace pobp {

/// Result of the TM dynamic program.
struct TmResult {
  SubForest selection;     ///< the optimal k-BAS
  Value value = 0;         ///< val(selection) = Σ_roots max(t, m)
  std::vector<Value> t;    ///< t(u) per node (aggregate value if retained)
  std::vector<Value> m;    ///< m(u) per node (aggregate value if pruned-up)
};

/// Per-root-tree buffers for tm_optimal_bas_forked (one per concurrent
/// root task, recycled across solves).
struct TmForkTask {
  std::vector<NodeId> nodes;  ///< root subtree, parents-first
  std::vector<NodeId> topk;   ///< per-task top-k staging (arena slots)
  std::vector<std::pair<NodeId, char>> stack;  ///< per-task decision stack
};

/// Reusable buffers for the DP passes.
///
/// The DP tables come in two layouts: the node-indexed t/m arrays live in
/// TmResult (they are outputs), and slot-indexed mirrors live here, keyed
/// by the forest's flat CSR child arena (Forest::child_slot).  A parent's
/// children occupy one contiguous slot range, so the bottom-up merge reads
/// two sequential streams (slot_t, slot_m) instead of two gathers per
/// child — the SoA form of the R1 child-merge.  slot_m[s] caches
/// max(t(c), m(c)) at the moment child c finishes, so the parent's m-sum
/// is a single streaming pass.
struct TmScratch {
  std::vector<NodeId> topk;  ///< top-k selection staging (arena slots)
  std::vector<std::pair<NodeId, char>> stack;  ///< top-down decision stack
  std::vector<TmForkTask> fork_tasks;  ///< per-root tasks (forked entry)
  std::vector<Value> slot_t;  ///< t(c) by arena slot of c
  std::vector<Value> slot_m;  ///< max(t(c), m(c)) by arena slot of c
};

/// Computes the optimal (max-value) k-BAS of `forest` for degree bound k.
TmResult tm_optimal_bas(const Forest& forest, std::size_t k);

/// Scratch-reusing form (identical result): `out` is overwritten.
void tm_optimal_bas(const Forest& forest, std::size_t k, TmScratch& scratch,
                    TmResult& out);

/// Per-node degree budgets k(v) — the DP is unchanged except that C_k(u)
/// becomes C_{k(u)}(u).  Useful for hierarchy-selection applications where
/// different nodes tolerate different fan-outs.
TmResult tm_optimal_bas(const Forest& forest,
                        std::span<const std::size_t> degree_bounds);

/// Scratch-reusing form of the per-node-budget variant.
void tm_optimal_bas(const Forest& forest,
                    std::span<const std::size_t> degree_bounds,
                    TmScratch& scratch, TmResult& out);

/// Intra-solve parallel form: identical (bit-for-bit) result to
/// tm_optimal_bas — root subtrees are disjoint and every DP quantity
/// depends only on a node's descendants, so running the per-root DPs
/// concurrently and summing root optima in root order changes nothing —
/// but fans the roots out across the global thread pool when the forest
/// has at least `fork_min_nodes` nodes and more than one root
/// (`fork_min_nodes` = 0 disables forking).  Falls back to the serial DP
/// when a SolveBudget is active: budget op accounting is thread-local and
/// the exhaustion point must not depend on the worker count.  Inside an
/// engine batch worker parallel_for itself degrades to a serial loop, so
/// the fan-out only ever uses otherwise-idle threads.
void tm_optimal_bas_forked(const Forest& forest, std::size_t k,
                           TmScratch& scratch, TmResult& out,
                           std::size_t fork_min_nodes);

}  // namespace pobp
