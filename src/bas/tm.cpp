#include "pobp/bas/tm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/parallel.hpp"

namespace pobp {
namespace {

/// The ids of the (up to) k children of u with the highest t values.
/// Deterministic: ties broken toward smaller node id.  When u has at most k
/// children the CSR child view is returned directly; otherwise the
/// selection happens in `topk` (no per-node allocation once it has grown).
std::span<const NodeId> top_k_children(const Forest& forest,
                                       const std::vector<Value>& t, NodeId u,
                                       std::size_t k,
                                       std::vector<NodeId>& topk) {
  const std::span<const NodeId> kids = forest.children(u);
  if (kids.size() <= k) return kids;
  topk.assign(kids.begin(), kids.end());
  std::nth_element(topk.begin(), topk.begin() + static_cast<std::ptrdiff_t>(k),
                   topk.end(), [&](NodeId a, NodeId b) {
                     if (t[a] != t[b]) return t[a] > t[b];
                     return a < b;
                   });
  return {topk.data(), k};
}

enum : char { kRetain = 0, kPruneUp = 1 };

template <typename BoundFn>
void tm_optimal_bas_impl(const Forest& forest, BoundFn&& k_of,
                         TmScratch& scratch, TmResult& result) {
  POBP_FAULT_POINT(kTmDp);
  const std::size_t n = forest.size();
  result.value = 0;
  result.t.assign(n, 0);
  result.m.assign(n, 0);
  result.selection.keep.assign(n, 0);

  // Bottom-up pass (ids are parents-first, so descending id order works).
  for (std::size_t i = n; i-- > 0;) {
    BudgetGuard::poll();  // one operation per DP node
    const NodeId u = static_cast<NodeId>(i);
    Value t_u = forest.value(u);
    for (const NodeId c :
         top_k_children(forest, result.t, u, k_of(u), scratch.topk)) {
      t_u += result.t[c];
    }
    Value m_u = 0;
    for (const NodeId c : forest.children(u)) {
      m_u += std::max(result.t[c], result.m[c]);
    }
    result.t[u] = t_u;
    result.m[u] = m_u;
  }

  // Top-down decision pass.  State per node: RETAIN, PRUNE_UP or discard
  // (pruned-down nodes are simply never visited).
  auto& stack = scratch.stack;
  stack.clear();
  auto choose = [&](NodeId v) {
    stack.emplace_back(v,
                       result.t[v] >= result.m[v] ? kRetain : kPruneUp);
  };
  for (const NodeId r : forest.roots()) choose(r);

  while (!stack.empty()) {
    const auto [u, decision] = stack.back();
    stack.pop_back();
    if (decision == kRetain) {
      result.selection.keep[u] = 1;
      // Top-k children stay retained; the rest are pruned-down (discarded
      // with all their descendants) — Obs. 3.8(a): a retained node cannot
      // have pruned-up descendants.
      for (const NodeId c :
           top_k_children(forest, result.t, u, k_of(u), scratch.topk)) {
        stack.emplace_back(c, kRetain);
      }
    } else {
      for (const NodeId c : forest.children(u)) choose(c);
    }
  }

  Value total = 0;
  for (const NodeId r : forest.roots()) {
    total += std::max(result.t[r], result.m[r]);
  }
  result.value = total;

  // Different summation order than the DP, so compare with a tolerance.
  POBP_DASSERT(std::abs(result.selection.value(forest) - result.value) <=
               1e-9 * (1.0 + std::abs(result.value)));
}

/// One root's share of the DP: bottom-up over the root's subtree (reverse
/// parents-first order = children before parents), then the top-down
/// decision pass from that root.  Writes only to this subtree's entries of
/// t/m/keep — disjoint from every other root task by construction.
void tm_root_task(const Forest& forest, std::size_t k, NodeId root,
                  TmForkTask& task, TmResult& result) {
  forest.subtree(root, task.nodes);
  for (std::size_t i = task.nodes.size(); i-- > 0;) {
    const NodeId u = task.nodes[i];
    Value t_u = forest.value(u);
    for (const NodeId c :
         top_k_children(forest, result.t, u, k, task.topk)) {
      t_u += result.t[c];
    }
    Value m_u = 0;
    for (const NodeId c : forest.children(u)) {
      m_u += std::max(result.t[c], result.m[c]);
    }
    result.t[u] = t_u;
    result.m[u] = m_u;
  }

  auto& stack = task.stack;
  stack.clear();
  stack.emplace_back(root,
                     result.t[root] >= result.m[root] ? kRetain : kPruneUp);
  while (!stack.empty()) {
    const auto [u, decision] = stack.back();
    stack.pop_back();
    if (decision == kRetain) {
      result.selection.keep[u] = 1;
      for (const NodeId c :
           top_k_children(forest, result.t, u, k, task.topk)) {
        stack.emplace_back(c, kRetain);
      }
    } else {
      for (const NodeId c : forest.children(u)) {
        stack.emplace_back(c, result.t[c] >= result.m[c] ? kRetain
                                                         : kPruneUp);
      }
    }
  }
}

}  // namespace

void tm_optimal_bas_forked(const Forest& forest, std::size_t k,
                           TmScratch& scratch, TmResult& out,
                           std::size_t fork_min_nodes) {
  const std::span<const NodeId> roots = forest.roots();
  if (fork_min_nodes == 0 || forest.size() < fork_min_nodes ||
      roots.size() < 2 || BudgetGuard::active() != nullptr) {
    tm_optimal_bas(forest, k, scratch, out);
    return;
  }
  POBP_FAULT_POINT(kTmDp);  // same site + call count as the serial entry
  forest.finalize();        // CSR must exist before const cross-thread use

  const std::size_t n = forest.size();
  out.value = 0;
  out.t.assign(n, 0);
  out.m.assign(n, 0);
  out.selection.keep.assign(n, 0);

  auto& tasks = scratch.fork_tasks;
  if (tasks.size() < roots.size()) tasks.resize(roots.size());

  // Exceptions must not escape into the pool (fatal by ThreadPool
  // contract): capture per root, rethrow the lowest-indexed one.
  std::vector<std::exception_ptr> errors(roots.size());
  parallel_for(0, roots.size(), [&](std::size_t i) {
    try {
      tm_root_task(forest, k, roots[i], tasks[i], out);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  Value total = 0;
  for (const NodeId r : roots) {
    total += std::max(out.t[r], out.m[r]);
  }
  out.value = total;

  POBP_DASSERT(std::abs(out.selection.value(forest) - out.value) <=
               1e-9 * (1.0 + std::abs(out.value)));
}

void tm_optimal_bas(const Forest& forest, std::size_t k, TmScratch& scratch,
                    TmResult& out) {
  tm_optimal_bas_impl(forest, [k](NodeId) { return k; }, scratch, out);
}

void tm_optimal_bas(const Forest& forest,
                    std::span<const std::size_t> degree_bounds,
                    TmScratch& scratch, TmResult& out) {
  POBP_ASSERT(degree_bounds.size() == forest.size());
  tm_optimal_bas_impl(forest, [&](NodeId v) { return degree_bounds[v]; },
                      scratch, out);
}

TmResult tm_optimal_bas(const Forest& forest, std::size_t k) {
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(forest, k, scratch, result);
  return result;
}

TmResult tm_optimal_bas(const Forest& forest,
                        std::span<const std::size_t> degree_bounds) {
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(forest, degree_bounds, scratch, result);
  return result;
}

}  // namespace pobp
