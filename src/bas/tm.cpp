#include "pobp/bas/tm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/parallel.hpp"

namespace pobp {
namespace {

// The DP tables are kept in two layouts (see TmScratch): node-indexed
// t/m in the TmResult (outputs, and what the root decisions read), and
// slot-indexed slot_t/slot_m keyed by the forest's flat CSR child arena.
// Within one parent's slot range, ascending slot order equals ascending
// child-id order, and slot_t[s] == t(child_at(s)) bit-for-bit, so every
// selection and every double summation below performs *exactly* the
// operations of the node-indexed formulation, in the same order — the
// layout change alters no result byte.

/// The arena slots of the (up to) k children of u with the highest t
/// values.  Deterministic: ties broken toward smaller slot (= smaller
/// child id).  When u has at most k children the whole contiguous range
/// [first, last) is the answer and `topk` is untouched; otherwise the
/// selection happens in `topk` (no per-node allocation once it has grown).
std::span<const NodeId> top_k_slots(NodeId first, NodeId last,
                                    const std::vector<Value>& slot_t,
                                    std::size_t k,
                                    std::vector<NodeId>& topk) {
  topk.resize(last - first);
  for (NodeId s = first; s < last; ++s) topk[s - first] = s;
  std::nth_element(topk.begin(), topk.begin() + static_cast<std::ptrdiff_t>(k),
                   topk.end(), [&](NodeId a, NodeId b) {
                     if (slot_t[a] != slot_t[b]) return slot_t[a] > slot_t[b];
                     return a < b;
                   });
  return {topk.data(), k};
}

enum : char { kRetain = 0, kPruneUp = 1 };

/// Bottom-up step for one node: t(u) over the top-k child slots, m(u) as
/// one streaming pass over the cached child maxima, and the slot mirror
/// write that makes u visible to its own parent's stream.
template <typename BoundFn>
void tm_visit(const Forest& forest, BoundFn&& k_of, NodeId u,
              std::vector<NodeId>& topk, TmScratch& scratch,
              TmResult& result) {
  const auto [first, last] = forest.child_range(u);
  const std::size_t k = k_of(u);
  Value t_u = forest.value(u);
  if (last - first <= k) {
    for (NodeId s = first; s < last; ++s) t_u += scratch.slot_t[s];
  } else {
    for (const NodeId s : top_k_slots(first, last, scratch.slot_t, k, topk)) {
      t_u += scratch.slot_t[s];
    }
  }
  Value m_u = 0;
  for (NodeId s = first; s < last; ++s) m_u += scratch.slot_m[s];
  result.t[u] = t_u;
  result.m[u] = m_u;
  const NodeId slot = forest.child_slot(u);
  if (slot != kNoNode) {
    scratch.slot_t[slot] = t_u;
    scratch.slot_m[slot] = std::max(t_u, m_u);
  }
}

/// Pushes u's retained-children onto the decision stack: the top-k child
/// slots, mapped back to ids through the arena.
template <typename BoundFn>
void push_retained(const Forest& forest, BoundFn&& k_of, NodeId u,
                   std::vector<NodeId>& topk, TmScratch& scratch,
                   std::vector<std::pair<NodeId, char>>& stack) {
  const auto [first, last] = forest.child_range(u);
  const std::size_t k = k_of(u);
  if (last - first <= k) {
    for (NodeId s = first; s < last; ++s) {
      stack.emplace_back(forest.child_at(s), kRetain);
    }
  } else {
    for (const NodeId s : top_k_slots(first, last, scratch.slot_t, k, topk)) {
      stack.emplace_back(forest.child_at(s), kRetain);
    }
  }
}

template <typename BoundFn>
void tm_optimal_bas_impl(const Forest& forest, BoundFn&& k_of,
                         TmScratch& scratch, TmResult& result) {
  POBP_FAULT_POINT(kTmDp);
  const std::size_t n = forest.size();
  forest.finalize();
  result.value = 0;
  result.t.assign(n, 0);
  result.m.assign(n, 0);
  result.selection.keep.assign(n, 0);
  scratch.slot_t.assign(forest.child_slot_count(), 0);
  scratch.slot_m.assign(forest.child_slot_count(), 0);

  // Bottom-up pass (ids are parents-first, so descending id order works).
  for (std::size_t i = n; i-- > 0;) {
    BudgetGuard::poll();  // one operation per DP node
    tm_visit(forest, k_of, static_cast<NodeId>(i), scratch.topk, scratch,
             result);
  }

  // Top-down decision pass.  State per node: RETAIN, PRUNE_UP or discard
  // (pruned-down nodes are simply never visited).
  auto& stack = scratch.stack;
  stack.clear();
  auto choose = [&](NodeId v) {
    stack.emplace_back(v,
                       result.t[v] >= result.m[v] ? kRetain : kPruneUp);
  };
  for (const NodeId r : forest.roots()) choose(r);

  while (!stack.empty()) {
    const auto [u, decision] = stack.back();
    stack.pop_back();
    if (decision == kRetain) {
      result.selection.keep[u] = 1;
      // Top-k children stay retained; the rest are pruned-down (discarded
      // with all their descendants) — Obs. 3.8(a): a retained node cannot
      // have pruned-up descendants.
      push_retained(forest, k_of, u, scratch.topk, scratch, stack);
    } else {
      for (const NodeId c : forest.children(u)) choose(c);
    }
  }

  Value total = 0;
  for (const NodeId r : forest.roots()) {
    total += std::max(result.t[r], result.m[r]);
  }
  result.value = total;

  // Different summation order than the DP, so compare with a tolerance.
  POBP_DASSERT(std::abs(result.selection.value(forest) - result.value) <=
               1e-9 * (1.0 + std::abs(result.value)));
}

/// One root's share of the DP: bottom-up over the root's subtree (reverse
/// parents-first order = children before parents), then the top-down
/// decision pass from that root.  Writes only to this subtree's entries of
/// t/m/keep — and, because a node's arena slot lies in its parent's range,
/// only to this subtree's slot_t/slot_m slots — disjoint from every other
/// root task by construction.
void tm_root_task(const Forest& forest, std::size_t k, NodeId root,
                  TmForkTask& task, TmScratch& scratch, TmResult& result) {
  const auto k_of = [k](NodeId) { return k; };
  forest.subtree(root, task.nodes);
  for (std::size_t i = task.nodes.size(); i-- > 0;) {
    tm_visit(forest, k_of, task.nodes[i], task.topk, scratch, result);
  }

  auto& stack = task.stack;
  stack.clear();
  stack.emplace_back(root,
                     result.t[root] >= result.m[root] ? kRetain : kPruneUp);
  while (!stack.empty()) {
    const auto [u, decision] = stack.back();
    stack.pop_back();
    if (decision == kRetain) {
      result.selection.keep[u] = 1;
      push_retained(forest, k_of, u, task.topk, scratch, stack);
    } else {
      for (const NodeId c : forest.children(u)) {
        stack.emplace_back(c, result.t[c] >= result.m[c] ? kRetain
                                                         : kPruneUp);
      }
    }
  }
}

}  // namespace

void tm_optimal_bas_forked(const Forest& forest, std::size_t k,
                           TmScratch& scratch, TmResult& out,
                           std::size_t fork_min_nodes) {
  const std::span<const NodeId> roots = forest.roots();
  if (fork_min_nodes == 0 || forest.size() < fork_min_nodes ||
      roots.size() < 2 || BudgetGuard::active() != nullptr) {
    tm_optimal_bas(forest, k, scratch, out);
    return;
  }
  POBP_FAULT_POINT(kTmDp);  // same site + call count as the serial entry
  forest.finalize();        // CSR must exist before const cross-thread use

  const std::size_t n = forest.size();
  out.value = 0;
  out.t.assign(n, 0);
  out.m.assign(n, 0);
  out.selection.keep.assign(n, 0);
  scratch.slot_t.assign(forest.child_slot_count(), 0);
  scratch.slot_m.assign(forest.child_slot_count(), 0);

  auto& tasks = scratch.fork_tasks;
  if (tasks.size() < roots.size()) tasks.resize(roots.size());

  // Exceptions must not escape into the pool (fatal by ThreadPool
  // contract): capture per root, rethrow the lowest-indexed one.
  std::vector<std::exception_ptr> errors(roots.size());
  parallel_for(0, roots.size(), [&](std::size_t i) {
    try {
      tm_root_task(forest, k, roots[i], tasks[i], scratch, out);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  Value total = 0;
  for (const NodeId r : roots) {
    total += std::max(out.t[r], out.m[r]);
  }
  out.value = total;

  POBP_DASSERT(std::abs(out.selection.value(forest) - out.value) <=
               1e-9 * (1.0 + std::abs(out.value)));
}

void tm_optimal_bas(const Forest& forest, std::size_t k, TmScratch& scratch,
                    TmResult& out) {
  tm_optimal_bas_impl(forest, [k](NodeId) { return k; }, scratch, out);
}

void tm_optimal_bas(const Forest& forest,
                    std::span<const std::size_t> degree_bounds,
                    TmScratch& scratch, TmResult& out) {
  POBP_ASSERT(degree_bounds.size() == forest.size());
  tm_optimal_bas_impl(forest, [&](NodeId v) { return degree_bounds[v]; },
                      scratch, out);
}

TmResult tm_optimal_bas(const Forest& forest, std::size_t k) {
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(forest, k, scratch, result);
  return result;
}

TmResult tm_optimal_bas(const Forest& forest,
                        std::span<const std::size_t> degree_bounds) {
  TmScratch scratch;
  TmResult result;
  tm_optimal_bas(forest, degree_bounds, scratch, result);
  return result;
}

}  // namespace pobp
