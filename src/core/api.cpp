#include <algorithm>
#include <vector>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/core/pobp.hpp"
#include "pobp/core/scratch.hpp"
#include "pobp/diag/registry.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"

namespace pobp {

Schedule seed_unbounded_schedule(const JobSet& jobs,
                                 const ScheduleOptions& options) {
  const std::vector<JobId> ids = all_ids(jobs);
  return seed_unbounded_schedule(jobs, options, ids);
}

void seed_unbounded_schedule_into(const JobSet& jobs,
                                  const ScheduleOptions& options,
                                  std::span<const JobId> ids,
                                  SolveScratch& scratch, Schedule& out) {
  if (options.seed == ScheduleOptions::Seed::kGreedyDensity) {
    // Build the SoA mirror once in the solve-level scratch; the greedy and
    // EDF inner loops then run entirely on contiguous columns.
    scratch.columns.build(jobs);
    greedy_infinity_multi_into(scratch.columns.view(), ids,
                               options.machine_count, scratch.greedy, out);
    return;
  }
  // Exact B&B seed — a cold path (n ≤ kExactSeedJobLimit): the output is
  // pooled, but the solver's own allocations are not worth chasing.
  out.reset(options.machine_count);
  auto& remaining = scratch.remaining;
  remaining.assign(ids.begin(), ids.end());
  for (std::size_t m = 0; m < options.machine_count && !remaining.empty();
       ++m) {
    BudgetGuard::poll();
    const SubsetSolution sol = opt_infinity(jobs, remaining);
    if (!sol.members.empty()) {
      auto schedule = edf_schedule(jobs, sol.members);
      POBP_CHECK_MSG(schedule.has_value(),
                     "B&B returned an infeasible subset");
      out.machine(m).assign_from(*schedule);
    }
    std::erase_if(remaining,
                  [&](JobId id) { return out.machine(m).contains(id); });
  }
}

Schedule seed_unbounded_schedule(const JobSet& jobs,
                                 const ScheduleOptions& options,
                                 std::span<const JobId> ids,
                                 SolveScratch* scratch) {
  Schedule out(options.machine_count);
  if (scratch != nullptr) {
    seed_unbounded_schedule_into(jobs, options, ids, *scratch, out);
  } else {
    SolveScratch local;
    seed_unbounded_schedule_into(jobs, options, ids, local, out);
  }
  return out;
}

diag::Report check_schedule_options(const JobSet& jobs,
                                    const ScheduleOptions& options) {
  diag::Report report;
  if (options.machine_count == 0) {
    report
        .add(std::string(diag::rules::kOptMachineCount),
             "machine_count must be at least 1")
        .with("machine_count", options.machine_count);
  }
  if (options.seed == ScheduleOptions::Seed::kExact &&
      jobs.size() > kExactSeedJobLimit) {
    report
        .add(std::string(diag::rules::kOptExactSeedLimit),
             "exact B&B seed is exponential in n; use the greedy seed for "
             "this instance")
        .with("n", jobs.size())
        .with("limit", kExactSeedJobLimit);
  }
  return report;
}

namespace {

/// True when machine `m` of the current seed is stage-for-stage identical
/// to the delta neighbor's: same assignments (job ids, segment lists, in
/// order) and no job on it with changed attributes.  Under that condition
/// every per-machine reduction stage sees byte-identical inputs, so the
/// neighbor's branch output for the machine can be reused verbatim.
bool delta_machine_reusable(const MachineSchedule& cur,
                            const MachineSchedule& prev,
                            const std::uint8_t* changed) {
  if (cur.job_count() != prev.job_count()) return false;
  const std::span<const Assignment> ca = cur.assignments();
  const std::span<const Assignment> pa = prev.assignments();
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (ca[i].job != pa[i].job) return false;
    if (changed[ca[i].job] != 0) return false;
    if (ca[i].segments != pa[i].segments) return false;
  }
  return true;
}

/// Validates hint shape once per solve: a malformed hint (machine-count
/// mismatch) disables reuse rather than corrupting the solve.
bool delta_usable(const SolveDeltaHint* delta, std::size_t machines) {
  return delta != nullptr && delta->seed != nullptr &&
         delta->strict_sched != nullptr && delta->full_sched != nullptr &&
         delta->job_changed != nullptr &&
         delta->seed->machine_count() == machines &&
         delta->strict_sched->machine_count() == machines &&
         delta->full_sched->machine_count() == machines;
}

}  // namespace

CombinedMultiValues k_preemption_combined_multi_into(
    const JobSet& jobs, const Schedule& unbounded,
    const CombinedOptions& options, PipelineTimings* timings,
    SolveScratch& s, Schedule& out, const SolveDeltaHint* delta) {
  CombinedMultiValues values;
  const std::size_t machines = unbounded.machine_count();
  const Rational threshold(static_cast<std::int64_t>(options.k) + 1);
  ReductionScratch& rs = s.reduction;
  if (!delta_usable(delta, machines)) delta = nullptr;

  // Strict branch: reduce each machine's restriction separately.  The
  // restriction itself is never materialized — the laminar rearrangement is
  // a pure function of the strict job subset (see laminarize_subset).
  Stopwatch sw;
  Schedule& strict_schedule = s.strict_sched;
  strict_schedule.reset(machines);
  auto& lax_ids = s.lax_ids;
  lax_ids.clear();
  for (std::size_t m = 0; m < machines; ++m) {
    BudgetGuard::poll();
    auto& strict_ids = s.strict_ids;
    strict_ids.clear();
    for (const Assignment& a : unbounded.machine(m).assignments()) {
      (jobs[a.job].laxity() >= threshold ? lax_ids : strict_ids)
          .push_back(a.job);
    }
    if (strict_ids.empty()) continue;
    if (delta != nullptr &&
        delta_machine_reusable(unbounded.machine(m), delta->seed->machine(m),
                               delta->job_changed)) {
      strict_schedule.machine(m).assign_from(delta->strict_sched->machine(m));
      continue;
    }
    sw.lap();
    laminarize_subset_into(jobs, strict_ids, rs.laminar, s.laminar_stage);
    if (timings) timings->laminarize_s += sw.lap();
    build_schedule_forest(jobs, s.laminar_stage, rs.sf, rs.forest_build);
    if (timings) timings->forest_s += sw.lap();
    const SubForest* sel;
    if (options.use_tm) {
      tm_optimal_bas_forked(rs.sf.forest, options.k, rs.tm, rs.tm_result,
                            options.tm_fork_min_nodes);
      sel = &rs.tm_result.selection;
    } else {
      levelled_contraction_select(rs.sf.forest, options.k, rs.contraction,
                                  rs.contraction_sel);
      sel = &rs.contraction_sel;
    }
    if (timings) timings->prune_s += sw.lap();
    rebuild_schedule_into(jobs, rs.sf, *sel, rs.rebuild,
                          strict_schedule.machine(m));
    if (timings) timings->merge_s += sw.lap();
  }
  values.strict_value = strict_schedule.total_value(jobs);

  // Lax branch: iterative multi-machine LSA_CS on all lax jobs.
  sw.lap();
  Schedule& lax_schedule = s.lax_sched;
  s.columns.build(jobs);  // SoA mirror for the LSA_CS class-selection loops
  lsa_cs_multi_into(s.columns.view(), lax_ids, options.k, machines, s.lsa,
                    lax_schedule);
  if (timings) timings->lsa_s += sw.lap();
  values.lax_value = lax_schedule.total_value(jobs);

  // Full-reduction branch (Theorem 4.2, per machine): the same four stages
  // as the strict branch on each machine's whole job set, always pruned
  // with the exact TM DP (mirrors reduce_to_k_preemptive, pooled).
  Schedule& full_schedule = s.full_sched;
  full_schedule.reset(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    const MachineSchedule& input = unbounded.machine(m);
    if (input.empty()) continue;
    if (delta != nullptr &&
        delta_machine_reusable(input, delta->seed->machine(m),
                               delta->job_changed)) {
      full_schedule.machine(m).assign_from(delta->full_sched->machine(m));
      continue;
    }
    sw.lap();
    laminarize_into(jobs, input, rs.laminar, s.laminar_stage);
    if (timings) timings->laminarize_s += sw.lap();
    build_schedule_forest(jobs, s.laminar_stage, rs.sf, rs.forest_build);
    if (timings) timings->forest_s += sw.lap();
    tm_optimal_bas_forked(rs.sf.forest, options.k, rs.tm, rs.tm_result,
                          options.tm_fork_min_nodes);
    if (timings) timings->prune_s += sw.lap();
    rebuild_schedule_into(jobs, rs.sf, rs.tm_result.selection, rs.rebuild,
                          full_schedule.machine(m));
    if (timings) timings->merge_s += sw.lap();
  }
  const Value full_value = full_schedule.total_value(jobs);

  if (full_value >= values.strict_value && full_value >= values.lax_value) {
    out.assign_from(full_schedule);
    values.value = full_value;
  } else if (values.strict_value >= values.lax_value) {
    out.assign_from(strict_schedule);
    values.value = values.strict_value;
  } else {
    out.assign_from(lax_schedule);
    values.value = values.lax_value;
  }
  return values;
}

CombinedMultiResult k_preemption_combined_multi(
    const JobSet& jobs, const Schedule& unbounded,
    const CombinedOptions& options, PipelineTimings* timings,
    SolveScratch* scratch) {
  CombinedMultiResult result;
  CombinedMultiValues values;
  if (scratch != nullptr) {
    values = k_preemption_combined_multi_into(jobs, unbounded, options,
                                              timings, *scratch,
                                              result.schedule);
  } else {
    SolveScratch local;
    values = k_preemption_combined_multi_into(jobs, unbounded, options,
                                              timings, local,
                                              result.schedule);
  }
  result.value = values.value;
  result.strict_value = values.strict_value;
  result.lax_value = values.lax_value;
  return result;
}

}  // namespace pobp
