#include <algorithm>
#include <vector>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/core/pobp.hpp"
#include "pobp/core/scratch.hpp"
#include "pobp/diag/registry.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"

namespace pobp {

Schedule seed_unbounded_schedule(const JobSet& jobs,
                                 const ScheduleOptions& options) {
  const std::vector<JobId> ids = all_ids(jobs);
  return seed_unbounded_schedule(jobs, options, ids);
}

Schedule seed_unbounded_schedule(const JobSet& jobs,
                                 const ScheduleOptions& options,
                                 std::span<const JobId> ids,
                                 SolveScratch* scratch) {
  if (options.seed == ScheduleOptions::Seed::kGreedyDensity) {
    if (scratch != nullptr) {
      return greedy_infinity_multi(jobs, ids, options.machine_count,
                                   scratch->greedy);
    }
    return greedy_infinity_multi(jobs, ids, options.machine_count);
  }
  Schedule out(options.machine_count);
  std::vector<JobId> remaining(ids.begin(), ids.end());
  for (std::size_t m = 0; m < options.machine_count && !remaining.empty();
       ++m) {
    BudgetGuard::poll();
    const SubsetSolution sol = opt_infinity(jobs, remaining);
    if (!sol.members.empty()) {
      auto schedule = edf_schedule(jobs, sol.members);
      POBP_CHECK_MSG(schedule.has_value(),
                     "B&B returned an infeasible subset");
      out.machine(m) = std::move(*schedule);
    }
    std::erase_if(remaining,
                  [&](JobId id) { return out.machine(m).contains(id); });
  }
  return out;
}

diag::Report check_schedule_options(const JobSet& jobs,
                                    const ScheduleOptions& options) {
  diag::Report report;
  if (options.machine_count == 0) {
    report
        .add(std::string(diag::rules::kOptMachineCount),
             "machine_count must be at least 1")
        .with("machine_count", options.machine_count);
  }
  if (options.seed == ScheduleOptions::Seed::kExact &&
      jobs.size() > kExactSeedJobLimit) {
    report
        .add(std::string(diag::rules::kOptExactSeedLimit),
             "exact B&B seed is exponential in n; use the greedy seed for "
             "this instance")
        .with("n", jobs.size())
        .with("limit", kExactSeedJobLimit);
  }
  return report;
}

CombinedMultiResult k_preemption_combined_multi(
    const JobSet& jobs, const Schedule& unbounded,
    const CombinedOptions& options, PipelineTimings* timings,
    SolveScratch* scratch) {
  CombinedMultiResult result;
  const std::size_t machines = unbounded.machine_count();
  const Rational threshold(static_cast<std::int64_t>(options.k) + 1);

  SolveScratch local;
  SolveScratch& s = scratch != nullptr ? *scratch : local;
  ReductionScratch& rs = s.reduction;

  // Strict branch: reduce each machine's restriction separately.  The
  // restriction itself is never materialized — the laminar rearrangement is
  // a pure function of the strict job subset (see laminarize_subset).
  Stopwatch sw;
  Schedule strict_schedule(machines);
  auto& lax_ids = s.lax_ids;
  lax_ids.clear();
  for (std::size_t m = 0; m < machines; ++m) {
    BudgetGuard::poll();
    auto& strict_ids = s.strict_ids;
    strict_ids.clear();
    for (const Assignment& a : unbounded.machine(m).assignments()) {
      (jobs[a.job].laxity() >= threshold ? lax_ids : strict_ids)
          .push_back(a.job);
    }
    if (strict_ids.empty()) continue;
    sw.lap();
    const MachineSchedule laminar =
        laminarize_subset(jobs, strict_ids, rs.laminar);
    if (timings) timings->laminarize_s += sw.lap();
    build_schedule_forest(jobs, laminar, rs.sf, rs.forest_build);
    if (timings) timings->forest_s += sw.lap();
    const SubForest* sel;
    if (options.use_tm) {
      tm_optimal_bas(rs.sf.forest, options.k, rs.tm, rs.tm_result);
      sel = &rs.tm_result.selection;
    } else {
      levelled_contraction_select(rs.sf.forest, options.k, rs.contraction,
                                  rs.contraction_sel);
      sel = &rs.contraction_sel;
    }
    if (timings) timings->prune_s += sw.lap();
    strict_schedule.machine(m) = rebuild_schedule(jobs, rs.sf, *sel,
                                                  rs.rebuild);
    if (timings) timings->merge_s += sw.lap();
  }
  result.strict_value = strict_schedule.total_value(jobs);

  // Lax branch: iterative multi-machine LSA_CS on all lax jobs.
  sw.lap();
  Schedule lax_schedule =
      lsa_cs_multi(jobs, lax_ids, options.k, machines, s.lsa);
  if (timings) timings->lsa_s += sw.lap();
  result.lax_value = lax_schedule.total_value(jobs);

  // Full-reduction branch (Theorem 4.2, per machine).
  Schedule full_schedule(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    full_schedule.machine(m) =
        reduce_to_k_preemptive(jobs, unbounded.machine(m), options.k, timings,
                               &rs)
            .bounded;
  }
  const Value full_value = full_schedule.total_value(jobs);

  if (full_value >= result.strict_value && full_value >= result.lax_value) {
    result.schedule = std::move(full_schedule);
    result.value = full_value;
  } else if (result.strict_value >= result.lax_value) {
    result.schedule = std::move(strict_schedule);
    result.value = result.strict_value;
  } else {
    result.schedule = std::move(lax_schedule);
    result.value = result.lax_value;
  }
  return result;
}

}  // namespace pobp
