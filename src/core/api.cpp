#include <algorithm>
#include <vector>

#include "pobp/core/pobp.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

/// Seed ∞-preemptive schedule across machines: exact B&B applied
/// iteratively to the residual set, or the density-greedy heuristic.
Schedule seed_unbounded(const JobSet& jobs, const ScheduleOptions& options) {
  const std::vector<JobId> ids = all_ids(jobs);
  if (options.seed == ScheduleOptions::Seed::kGreedyDensity) {
    return greedy_infinity_multi(jobs, ids, options.machine_count);
  }
  Schedule out(options.machine_count);
  std::vector<JobId> remaining = ids;
  for (std::size_t m = 0; m < options.machine_count && !remaining.empty();
       ++m) {
    const SubsetSolution sol = opt_infinity(jobs, remaining);
    if (!sol.members.empty()) {
      auto schedule = edf_schedule(jobs, sol.members);
      POBP_ASSERT_MSG(schedule.has_value(),
                      "B&B returned an infeasible subset");
      out.machine(m) = std::move(*schedule);
    }
    std::erase_if(remaining,
                  [&](JobId id) { return out.machine(m).contains(id); });
  }
  return out;
}

}  // namespace

CombinedMultiResult k_preemption_combined_multi(
    const JobSet& jobs, const Schedule& unbounded,
    const CombinedOptions& options) {
  CombinedMultiResult result;
  const std::size_t machines = unbounded.machine_count();
  const Rational threshold(static_cast<std::int64_t>(options.k) + 1);

  // Strict branch: reduce each machine's restriction separately.
  Schedule strict_schedule(machines);
  std::vector<JobId> lax_ids;
  for (std::size_t m = 0; m < machines; ++m) {
    std::vector<JobId> strict_ids;
    for (const JobId id : unbounded.machine(m).scheduled_jobs()) {
      (jobs[id].laxity() >= threshold ? lax_ids : strict_ids).push_back(id);
    }
    if (strict_ids.empty()) continue;
    const MachineSchedule restricted =
        restrict_schedule(unbounded.machine(m), strict_ids);
    const MachineSchedule laminar = laminarize(jobs, restricted);
    const ScheduleForest sf = build_schedule_forest(jobs, laminar);
    const SubForest sel =
        options.use_tm ? tm_optimal_bas(sf.forest, options.k).selection
                       : levelled_contraction(sf.forest, options.k).selection;
    strict_schedule.machine(m) = rebuild_schedule(jobs, sf, sel);
  }
  result.strict_value = strict_schedule.total_value(jobs);

  // Lax branch: iterative multi-machine LSA_CS on all lax jobs.
  Schedule lax_schedule =
      lsa_cs_multi(jobs, lax_ids, options.k, machines);
  result.lax_value = lax_schedule.total_value(jobs);

  // Full-reduction branch (Theorem 4.2, per machine).
  Schedule full_schedule(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    full_schedule.machine(m) =
        reduce_to_k_preemptive(jobs, unbounded.machine(m), options.k).bounded;
  }
  const Value full_value = full_schedule.total_value(jobs);

  if (full_value >= result.strict_value && full_value >= result.lax_value) {
    result.schedule = std::move(full_schedule);
    result.value = full_value;
  } else if (result.strict_value >= result.lax_value) {
    result.schedule = std::move(strict_schedule);
    result.value = result.strict_value;
  } else {
    result.schedule = std::move(lax_schedule);
    result.value = result.lax_value;
  }
  return result;
}

ScheduleResult schedule_bounded(const JobSet& jobs,
                                const ScheduleOptions& options) {
  POBP_ASSERT(options.machine_count >= 1);
  ScheduleResult result;
  result.schedule = Schedule(options.machine_count);
  if (jobs.empty()) return result;

  const Schedule seed = seed_unbounded(jobs, options);
  result.unbounded_value = seed.total_value(jobs);

  if (options.k == 0) {
    // §5: iterative per-machine non-preemptive scheduling of the residual.
    std::vector<JobId> remaining = all_ids(jobs);
    for (std::size_t m = 0;
         m < options.machine_count && !remaining.empty(); ++m) {
      NonPreemptiveResult r = schedule_nonpreemptive(jobs, remaining);
      result.schedule.machine(m) = std::move(r.schedule);
      std::erase_if(remaining, [&](JobId id) {
        return result.schedule.machine(m).contains(id);
      });
    }
  } else {
    CombinedOptions combined{options.k, options.use_tm};
    result.schedule =
        k_preemption_combined_multi(jobs, seed, combined).schedule;
  }
  result.value = result.schedule.total_value(jobs);
  return result;
}

}  // namespace pobp
