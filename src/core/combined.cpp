#include "pobp/core/combined.hpp"

#include <algorithm>
#include <unordered_set>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

MachineSchedule restrict_schedule(const MachineSchedule& ms,
                                  std::span<const JobId> keep) {
  // POBP-SRC-010: membership test only; output order follows assignments()
  std::unordered_set<JobId> wanted(keep.begin(), keep.end());
  MachineSchedule out;
  for (const Assignment& a : ms.assignments()) {
    if (wanted.count(a.job)) out.add(a);
  }
  return out;
}

CombinedResult k_preemption_combined(const JobSet& jobs,
                                     const MachineSchedule& unbounded,
                                     const CombinedOptions& options) {
  const std::size_t k = options.k;
  POBP_ASSERT_MSG(k >= 1, "use schedule_nonpreemptive for k = 0");

  CombinedResult result;
  if (unbounded.empty()) return result;

  // Line 1–2 of Alg. 3: split the *scheduled* jobs by relative laxity.
  // Lax ⟺ λ_j ≥ k+1 (the LSA analysis needs the window ≥ (k+1)·p_j).
  const Rational threshold(static_cast<std::int64_t>(k) + 1);
  std::vector<JobId> strict_ids;
  std::vector<JobId> lax_ids;
  for (const JobId id : unbounded.scheduled_jobs()) {
    (jobs[id].laxity() >= threshold ? lax_ids : strict_ids).push_back(id);
  }
  result.strict_jobs = strict_ids.size();
  result.lax_jobs = lax_ids.size();

  // Strict branch: §4.1 reduction on the restriction of the schedule.
  MachineSchedule strict_schedule;
  if (!strict_ids.empty()) {
    const MachineSchedule restricted = restrict_schedule(unbounded, strict_ids);
    const MachineSchedule laminar = laminarize(jobs, restricted);
    const ScheduleForest sf = build_schedule_forest(jobs, laminar);
    const SubForest sel = options.use_tm
                              ? tm_optimal_bas(sf.forest, k).selection
                              : levelled_contraction(sf.forest, k).selection;
    strict_schedule = rebuild_schedule(jobs, sf, sel);
  }
  result.strict_value = strict_schedule.total_value(jobs);

  // Lax branch: LSA_CS on a fresh machine.
  LsaResult lax = lsa_cs(jobs, lax_ids, k);
  result.lax_value = lax.schedule.total_value(jobs);

  // Third branch (§4.2): reduce the whole schedule — this is the branch
  // Theorem 4.2's log_{k+1} n bound is proved about.
  auto pruner = [&](const Forest& forest) {
    return options.use_tm ? tm_optimal_bas(forest, k).selection
                          : levelled_contraction(forest, k).selection;
  };
  const MachineSchedule laminar_all = laminarize(jobs, unbounded);
  const ScheduleForest sf_all = build_schedule_forest(jobs, laminar_all);
  MachineSchedule full_schedule =
      rebuild_schedule(jobs, sf_all, pruner(sf_all.forest));
  result.full_reduction_value = full_schedule.total_value(jobs);

  // Line 5 of Alg. 3 (extended): keep the best branch.
  if (result.full_reduction_value >= result.strict_value &&
      result.full_reduction_value >= result.lax_value) {
    result.schedule = std::move(full_schedule);
    result.value = result.full_reduction_value;
  } else if (result.strict_value >= result.lax_value) {
    result.schedule = std::move(strict_schedule);
    result.value = result.strict_value;
  } else {
    result.schedule = std::move(lax.schedule);
    result.value = result.lax_value;
  }
  return result;
}

Value schedule_nonpreemptive_into(const JobSet& jobs,
                                  std::span<const JobId> candidates,
                                  PipelineTimings* timings,
                                  LsaScratch& scratch, MachineSchedule& out) {
  out.clear();
  if (candidates.empty()) return 0;

  // Branch (a): LSA_CS with k = 0 (en-bloc placement, length classes of
  // ratio ≤ 2 — §5's adjustment of Alg. 2).  cs_best is the scratch's
  // pooled staging result (lsa_cs_into itself stages through
  // scratch.attempt, so the two never alias).
  Stopwatch sw;
  LsaResult& cs = scratch.cs_best;
  lsa_cs_into(jobs, candidates, /*k=*/0, ClassifyBy::kLength,
              LsaOrder::kDensity, scratch, cs);
  if (timings) timings->lsa_s += sw.lap();
  const Value cs_value = cs.schedule.total_value(jobs);

  // Branch (b): the single most valuable job — a feasible non-preemptive
  // schedule on its own, and the witness of the price ≤ n upper bound.
  const JobId best_single = *std::max_element(
      candidates.begin(), candidates.end(),
      [&](JobId a, JobId b) { return jobs[a].value < jobs[b].value; });

  if (cs_value >= jobs[best_single].value) {
    out.assign_from(cs.schedule);
    return cs_value;
  }
  const Job& j = jobs[best_single];
  out.add_block(best_single, j.release, j.length);
  return j.value;
}

NonPreemptiveResult schedule_nonpreemptive(const JobSet& jobs,
                                           std::span<const JobId> candidates,
                                           PipelineTimings* timings,
                                           LsaScratch* scratch) {
  NonPreemptiveResult result;
  LsaScratch local;
  result.value = schedule_nonpreemptive_into(
      jobs, candidates, timings, scratch != nullptr ? *scratch : local,
      result.schedule);
  return result;
}

}  // namespace pobp
