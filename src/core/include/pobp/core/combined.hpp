// Algorithm 3 (§4.3.3): k-PreemptionCombined.
//
// Input: a job set J together with a feasible ∞-preemptive schedule of
// (a subset of) J.  The jobs are split by relative laxity:
//   * strict jobs (λ_j < k+1) go through the §4.1 reduction — laminarize,
//     build the schedule forest, prune to an optimal k-BAS, rebuild —
//     losing at most a log_{k+1} P factor (Lemma 4.6);
//   * lax jobs (λ_j ≥ k+1) go through LSA_CS, losing at most 6·log_{k+1} P
//     (Lemma 4.10).
// The better of the two is returned, which costs at most another factor 2
// and gives PoBP_k = O(log_{k+1} P) overall (Theorem 4.5); by Theorem 4.2
// the same pipeline is also within log_{k+1} n of the input's value.
#pragma once

#include <cstddef>
#include <span>

#include "pobp/schedule/schedule.hpp"
#include "pobp/util/timing.hpp"

namespace pobp {

/// Default forest size above which the TM DP forks per root tree across
/// idle threads (see tm_optimal_bas_forked; results are bit-identical
/// either way, so this is purely a parallelism-overhead cutoff).
inline constexpr std::size_t kDefaultTmForkMinNodes = 1024;

struct CombinedOptions {
  std::size_t k = 1;  ///< preemption bound

  /// Prune the schedule forest with the optimal TM dynamic program (default)
  /// or with LevelledContraction (the algorithm the paper's upper-bound
  /// proof analyses) — exposed so the benches can compare both.
  bool use_tm = true;

  /// Fork the TM DP per root tree across the global thread pool when the
  /// schedule forest has at least this many nodes; 0 disables intra-solve
  /// parallelism.  Bit-identical results either way.
  std::size_t tm_fork_min_nodes = kDefaultTmForkMinNodes;
};

struct CombinedResult {
  MachineSchedule schedule;   ///< feasible k-preemptive schedule
  Value value = 0;            ///< val(schedule)
  Value strict_value = 0;     ///< value achieved by the strict-jobs reduction
  Value lax_value = 0;        ///< value achieved by the LSA_CS branch
  /// Value achieved by reducing the *whole* schedule (§4.2).  Not part of
  /// the paper's Alg. 3, but it is what Theorem 4.2's log_{k+1} n bound is
  /// proved about, so we run it as a third branch: the combined result then
  /// provably satisfies both the n-bound and the P-bound.
  Value full_reduction_value = 0;
  std::size_t strict_jobs = 0;
  std::size_t lax_jobs = 0;
};

/// Runs Algorithm 3 on one machine.  `unbounded` must validate against
/// `jobs` with unlimited preemptions.  Requires k >= 1 (see
/// schedule_nonpreemptive for k = 0).
CombinedResult k_preemption_combined(const JobSet& jobs,
                                     const MachineSchedule& unbounded,
                                     const CombinedOptions& options);

/// The §5 algorithm for k = 0: the better of (a) LSA_CS with en-bloc
/// placement and factor-2 length classes and (b) the single job of maximum
/// value (which is what makes the price ≤ n tight).  Achieves
/// OPT∞ / O(min{n, log P}).
struct NonPreemptiveResult {
  MachineSchedule schedule;
  Value value = 0;
};
struct LsaScratch;
NonPreemptiveResult schedule_nonpreemptive(const JobSet& jobs,
                                           std::span<const JobId> candidates,
                                           PipelineTimings* timings = nullptr,
                                           LsaScratch* scratch = nullptr);

/// Pooled form of schedule_nonpreemptive: writes the winning branch into
/// `out` (cleared first, segment capacity retained) and returns its value.
/// Bit-identical to the allocating form; allocation-free once `scratch`
/// and `out` are warmed.  `out` must not alias a schedule owned by
/// `scratch`.
Value schedule_nonpreemptive_into(const JobSet& jobs,
                                  std::span<const JobId> candidates,
                                  PipelineTimings* timings,
                                  LsaScratch& scratch, MachineSchedule& out);

/// Restriction of a machine schedule to the jobs in `keep` (a feasible
/// schedule stays feasible under restriction).
MachineSchedule restrict_schedule(const MachineSchedule& ms,
                                  std::span<const JobId> keep);

}  // namespace pobp
