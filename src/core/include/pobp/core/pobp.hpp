// pobp — The Price of Bounded Preemption (Alon, Azar, Berlin; SPAA'18).
//
// Umbrella header: include this to get the whole public API.
//
// Quick start (see examples/quickstart.cpp):
//
//   pobp::JobSet jobs;
//   jobs.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
//   ...
//   auto result = pobp::schedule_bounded(jobs, {.k = 1});
//   // result.schedule is a feasible schedule where no job is preempted
//   // more than once, within O(log_{k+1} min{n, P}) of the unbounded
//   // optimum's value.
#pragma once

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/core/combined.hpp"
#include "pobp/flow/maxflow.hpp"
#include "pobp/flow/migrative.hpp"
#include "pobp/forest/bas.hpp"
#include "pobp/forest/forest.hpp"
#include "pobp/io/csv.hpp"
#include "pobp/io/forest_csv.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/reduction/schedule_forest.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/gantt.hpp"
#include "pobp/schedule/interval_condition.hpp"
#include "pobp/schedule/interval_cover.hpp"
#include "pobp/schedule/job.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/schedule/report.hpp"
#include "pobp/schedule/schedule.hpp"
#include "pobp/schedule/segment.hpp"
#include "pobp/schedule/timeline.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/solvers/solvers.hpp"

namespace pobp {

/// Options for the one-call entry point.
struct ScheduleOptions {
  std::size_t k = 1;             ///< preemption bound (0 = non-preemptive)
  std::size_t machine_count = 1; ///< non-migrative identical machines

  /// How the reference ∞-preemptive schedule is obtained before bounding:
  enum class Seed {
    kGreedyDensity,  ///< density-greedy + EDF check — fast, any n (default)
    kExact,          ///< branch-and-bound OPT∞ — exponential, n ≲ 26
  };
  Seed seed = Seed::kGreedyDensity;

  bool use_tm = true;  ///< see CombinedOptions::use_tm
};

struct ScheduleResult {
  Schedule schedule;          ///< feasible k-preemptive schedule
  Value value = 0;            ///< val(schedule)
  Value unbounded_value = 0;  ///< value of the seed ∞-preemptive schedule
  /// unbounded_value / value (1 when both are 0) — the empirically paid
  /// price; the paper guarantees O(log_{k+1} min{n, P}).
  double price() const {
    return value > 0 ? unbounded_value / value : 1.0;
  }
};

/// One-call pipeline: build an ∞-preemptive reference schedule, then bound
/// its preemptions with Algorithm 3 (k ≥ 1) or the §5 non-preemptive
/// algorithm (k = 0), per machine.
ScheduleResult schedule_bounded(const JobSet& jobs,
                                const ScheduleOptions& options = {});

/// Multi-machine Algorithm 3: the strict branch reduces each machine of the
/// given ∞-preemptive schedule separately (§4.1 remark); the lax branch
/// runs the iterative multi-machine LSA_CS (§4.3.4).  Better branch wins.
struct CombinedMultiResult {
  Schedule schedule;
  Value value = 0;
  Value strict_value = 0;
  Value lax_value = 0;
};
CombinedMultiResult k_preemption_combined_multi(const JobSet& jobs,
                                                const Schedule& unbounded,
                                                const CombinedOptions& options);

}  // namespace pobp
