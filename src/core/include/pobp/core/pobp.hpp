// pobp — The Price of Bounded Preemption (Alon, Azar, Berlin; SPAA'18).
//
// One-call solve API.  Most applications should include the curated
// umbrella "pobp/pobp.hpp" instead, which re-exports this header together
// with the batch engine (pobp/engine/engine.hpp) and the common IO /
// rendering helpers; the per-module headers under pobp/<module>/ are the
// internal pipeline surface.
//
// Quick start (see examples/quickstart.cpp and examples/batch_service.cpp):
//
//   pobp::JobSet jobs;
//   jobs.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
//   ...
//   auto result = pobp::try_schedule_bounded(jobs, {.k = 1});
//   if (result) {
//     // result->schedule is a feasible schedule where no job is preempted
//     // more than once, within O(log_{k+1} min{n, P}) of the unbounded
//     // optimum's value.
//   }
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "pobp/core/combined.hpp"
#include "pobp/diag/diagnostic.hpp"
#include "pobp/schedule/job.hpp"
#include "pobp/schedule/schedule.hpp"
#include "pobp/util/expected.hpp"
#include "pobp/util/timing.hpp"

namespace pobp {

/// Options for the one-call entry points and the engine.
struct ScheduleOptions {
  std::size_t k = 1;             ///< preemption bound (0 = non-preemptive)
  std::size_t machine_count = 1; ///< non-migrative identical machines

  /// How the reference ∞-preemptive schedule is obtained before bounding:
  enum class Seed {
    kGreedyDensity,  ///< density-greedy + EDF check — fast, any n (default)
    kExact,          ///< branch-and-bound OPT∞ — exponential, n ≲ 26
  };
  Seed seed = Seed::kGreedyDensity;

  bool use_tm = true;  ///< see CombinedOptions::use_tm

  /// See CombinedOptions::tm_fork_min_nodes: minimum schedule-forest size
  /// for the TM DP to fork per root tree across idle threads (0 disables).
  /// Results are bit-identical regardless of this knob.
  std::size_t tm_fork_min_nodes = kDefaultTmForkMinNodes;
};

/// Largest instance the checked entry points accept with Seed::kExact
/// (rule POBP-OPT-002): the B&B seed is exponential in n.
inline constexpr std::size_t kExactSeedJobLimit = 32;

struct ScheduleResult {
  Schedule schedule;          ///< feasible k-preemptive schedule
  Value value = 0;            ///< val(schedule)
  Value unbounded_value = 0;  ///< value of the seed ∞-preemptive schedule

  /// True when the solve exceeded its SolveBudget and the engine fell
  /// back to the approximate greedy + LSA_CS path (DegradePolicy::
  /// kApproximate) instead of the exact pipeline.  Degraded results are
  /// still feasible k-preemptive schedules; only the price guarantee of
  /// the full pipeline is forfeited.
  bool degraded = false;
  /// unbounded_value / value — the empirically paid price; the paper
  /// guarantees O(log_{k+1} min{n, P}).  Degenerate cases: 1 when both
  /// values are 0 (nothing to lose), +inf when value == 0 but the seed
  /// scheduled something (total loss).
  [[nodiscard]] double price() const {
    if (value > 0) return unbounded_value / value;
    return unbounded_value > 0 ? std::numeric_limits<double>::infinity()
                               : 1.0;
  }
};

/// Rule-tagged validation of the solve options against an instance
/// (POBP-OPT-*).  Empty report ⟺ the options are accepted.
[[nodiscard]] diag::Report check_schedule_options(
    const JobSet& jobs, const ScheduleOptions& options);

/// One-call pipeline: build an ∞-preemptive reference schedule, then bound
/// its preemptions with Algorithm 3 (k ≥ 1) or the §5 non-preemptive
/// algorithm (k = 0), per machine.  Bad options are reported as a
/// diag::Report tagged with POBP-OPT-* rule ids instead of being thrown.
///
/// Runs on the process-wide default Engine (pobp/engine/engine.hpp);
/// construct a dedicated pobp::Engine for batch workloads or custom
/// worker/metrics configuration.
[[nodiscard]] Expected<ScheduleResult, diag::Report> try_schedule_bounded(
    const JobSet& jobs, const ScheduleOptions& options = {});

/// Seed ∞-preemptive schedule across machines: the density-greedy heuristic
/// or the exact B&B applied iteratively to the residual set, per
/// ScheduleOptions::seed.  This is stage 1 of the pipeline; exported so the
/// engine can time it separately.
[[nodiscard]] Schedule seed_unbounded_schedule(const JobSet& jobs,
                                               const ScheduleOptions& options);

/// Every reusable buffer a pipeline solve needs (see pobp/core/scratch.hpp).
struct SolveScratch;

/// Scratch-reusing variant: `ids` must be all job ids [0, n) (the engine's
/// sessions keep this buffer alive across instances).  With a non-null
/// `scratch` the seed additionally reuses the greedy/EDF buffers — results
/// are bit-identical either way.
[[nodiscard]] Schedule seed_unbounded_schedule(const JobSet& jobs,
                                               const ScheduleOptions& options,
                                               std::span<const JobId> ids,
                                               SolveScratch* scratch = nullptr);

/// Pooled form of the scratch-reusing seed: writes the seed schedule into
/// `out` (reset first, segment capacity retained).  Allocation-free once
/// the scratch and `out` are warmed (greedy seed; the exact B&B seed is a
/// cold path and still allocates internally).  `out` must not alias a
/// schedule owned by `scratch`.
void seed_unbounded_schedule_into(const JobSet& jobs,
                                  const ScheduleOptions& options,
                                  std::span<const JobId> ids,
                                  SolveScratch& scratch, Schedule& out);

/// Multi-machine Algorithm 3: the strict branch reduces each machine of the
/// given ∞-preemptive schedule separately (§4.1 remark); the lax branch
/// runs the iterative multi-machine LSA_CS (§4.3.4).  Better branch wins.
struct CombinedMultiResult {
  Schedule schedule;
  Value value = 0;
  Value strict_value = 0;
  Value lax_value = 0;
};
[[nodiscard]] CombinedMultiResult k_preemption_combined_multi(
    const JobSet& jobs, const Schedule& unbounded,
    const CombinedOptions& options, PipelineTimings* timings = nullptr,
    SolveScratch* scratch = nullptr);

/// Branch values of a pooled Algorithm-3 run (the winning schedule itself
/// goes to the caller's `out`).
struct CombinedMultiValues {
  Value value = 0;         ///< val(out) — the winning branch
  Value strict_value = 0;  ///< strict (reduction) branch value
  Value lax_value = 0;     ///< lax (LSA_CS) branch value
};

/// Neighbor-reuse hint for an incremental (delta) re-solve, produced by
/// the engine's content-addressed solve cache (docs/CACHE.md).  All
/// pointers describe one previously solved instance that differs from the
/// current one only in jobs with `job_changed[id] != 0` (same n, same
/// options).  The per-machine reduction stages are pure functions of
/// (that machine's seed assignments, the attributes of the jobs on it),
/// so any machine whose seed assignments match the neighbor's and hosts
/// no changed job can reuse the neighbor's branch schedule verbatim —
/// skipping laminarize → forest → TM DP → left-merge for that root forest
/// — with a bit-identical outcome.  Machines that fail the check (a
/// changed job landed there, or the greedy seed rearranged it, which is
/// the "patch invalidates laminarity" case) fall back to the full stages.
struct SolveDeltaHint {
  const Schedule* seed = nullptr;          ///< neighbor's ∞-preemptive seed
  const Schedule* strict_sched = nullptr;  ///< neighbor's strict branch
  const Schedule* full_sched = nullptr;    ///< neighbor's full-reduction branch
  const std::uint8_t* job_changed = nullptr;  ///< size n, 1 = attrs differ
};

/// Pooled form of k_preemption_combined_multi: all three branch schedules
/// are materialized in the scratch's result arena and the winner is
/// deep-copied (pooled, capacity-retaining) into `out`.  Allocation-free
/// once scratch and `out` are warmed; results bit-identical to the
/// allocating form.  `out` must not alias a schedule owned by `scratch`
/// and `unbounded` may be `scratch.seed` (it is only read).  A non-null
/// `delta` enables per-machine neighbor reuse (see SolveDeltaHint); the
/// result is bit-identical with or without it.
CombinedMultiValues k_preemption_combined_multi_into(
    const JobSet& jobs, const Schedule& unbounded,
    const CombinedOptions& options, PipelineTimings* timings,
    SolveScratch& scratch, Schedule& out,
    const SolveDeltaHint* delta = nullptr);

}  // namespace pobp
