// SolveScratch: every reusable buffer one full pipeline solve needs.
//
// The engine's per-worker Session owns exactly one SolveScratch and passes
// it down through seed → laminarize → forest → prune → left-merge → LSA_CS.
// Each stage's typed scratch struct lives where it is consumed (EdfScratch
// in schedule/, TmScratch in bas/, ...); this header only aggregates them —
// plus the shared id-partition buffers — so the core entry points can
// thread one pointer instead of seven.
//
// Contract (see docs/PERF.md): a scratch must only ever be used by one
// thread at a time, results are bit-identical with and without a scratch,
// and once every buffer has grown to the largest instance seen, a solve
// performs no steady-state heap allocations in the TM / laminarize /
// left-merge path beyond materializing its result schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "pobp/lsa/lsa.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/columns.hpp"
#include "pobp/schedule/job.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/solvers/solvers.hpp"

namespace pobp {

struct SolveScratch {
  GreedyScratch greedy;        ///< seed stage
  ReductionScratch reduction;  ///< laminarize/forest/TM/left-merge stages
  LsaScratch lsa;              ///< lax branch and k = 0 path
  JobColumns columns;  ///< SoA job mirror, built once per pipeline entry

  std::vector<JobId> ids;        ///< all-ids staging
  std::vector<std::uint64_t> subhashes;  ///< solve-cache per-job sub-hashes
  std::vector<JobId> remaining;  ///< k = 0 residual staging
  std::vector<JobId> strict_ids; ///< per-machine strict partition
  std::vector<JobId> lax_ids;    ///< accumulated lax partition

  // --- result arena (docs/PERF.md) -----------------------------------------
  // Pooled materialization targets for every schedule the pipeline builds:
  // Schedule::reset() / MachineSchedule::clear() retain the per-job segment
  // vectors and the flat job index, so a warmed session re-solves without
  // touching the heap.  The winning branch is deep-copied — pooled, via
  // Schedule::assign_from — into the caller's ScheduleResult; moving it out
  // instead would strip the arena's capacity every solve.
  Schedule seed{1};           ///< stage-1 ∞-preemptive reference schedule
  Schedule strict_sched{1};   ///< Alg. 3 strict branch
  Schedule lax_sched{1};      ///< Alg. 3 lax branch (LSA_CS)
  Schedule full_sched{1};     ///< Theorem 4.2 full-reduction branch
  MachineSchedule laminar_stage;  ///< per-machine laminarize staging
  ValidateScratch validate;   ///< allocation-free validator state
};

}  // namespace pobp
