#include "pobp/diag/diagnostic.hpp"

#include <algorithm>
#include <sstream>

#include "pobp/diag/registry.hpp"

namespace pobp::diag {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}

Location Location::at(std::string path, std::size_t line_number,
                      std::size_t column_number) {
  Location loc;
  loc.file = std::move(path);
  loc.line = line_number;
  if (column_number != 0) loc.column = column_number;
  return loc;
}

std::string Location::to_string() const {
  std::ostringstream os;
  const char* sep = "";
  if (file) {
    os << *file;
    if (line) {
      os << ':' << *line;
      if (column) os << ':' << *column;
    }
    sep = ", ";
  }
  if (machine) {
    os << "machine " << *machine;
    sep = ", ";
  }
  if (job) {
    os << sep << "job#" << *job;
    sep = ", ";
  }
  if (node) {
    os << sep << "node " << *node;
    sep = ", ";
  }
  if (segment) {
    os << sep << "segment " << *segment;
    sep = ", ";
  }
  if (begin && end) {
    os << sep << "[" << *begin << ", " << *end << ")";
  } else if (begin) {
    os << sep << "t=" << *begin;
  }
  return os.str();
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << rule << " [" << diag::to_string(severity) << "]";
  const std::string at = where.to_string();
  if (!at.empty()) os << " " << at << ":";
  os << " " << message;
  return os.str();
}

Diagnostic& Report::add(std::string rule, std::string message,
                        Location where) {
  const RuleInfo* info = find_rule(rule);
  const Severity severity = info ? info->default_severity : Severity::kError;
  return add(std::move(rule), severity, std::move(message), where);
}

Diagnostic& Report::add(std::string rule, Severity severity,
                        std::string message, Location where) {
  diagnostics_.push_back(
      Diagnostic{std::move(rule), severity, std::move(message), where, {}});
  return diagnostics_.back();
}

std::size_t Report::error_count() const { return count(Severity::kError); }

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

std::size_t Report::count(std::string_view rule) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::string Report::first_error() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) return d.message;
  }
  return {};
}

std::vector<std::string> Report::rule_ids() const {
  std::vector<std::string> ids;
  for (const Diagnostic& d : diagnostics_) {
    if (std::find(ids.begin(), ids.end(), d.rule) == ids.end()) {
      ids.push_back(d.rule);
    }
  }
  return ids;
}

void Report::merge(Report other) {
  diagnostics_.insert(diagnostics_.end(),
                      std::make_move_iterator(other.diagnostics_.begin()),
                      std::make_move_iterator(other.diagnostics_.end()));
}

}  // namespace pobp::diag
