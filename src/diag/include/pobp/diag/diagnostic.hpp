// Structured diagnostics for invariant checking.
//
// Every machine-checkable invariant in the library — Def. 2.1 feasibility,
// §4.1 laminarity, Defs. 3.1–3.2 k-BAS rules, the §4.1 Hall-type interval
// condition, Appendix-B generator ranges — reports violations as Diagnostic
// records collected in a Report.  Unlike the historical first-failure
// strings, a Report accumulates *all* violations of *all* rules, each tagged
// with a stable rule id (e.g. "POBP-SCHED-005") so tools, tests and CI can
// match on ids instead of message text.
//
// The diag layer depends only on pobp_util; locations are expressed with
// raw integer ids so schedule/forest modules can layer on top of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pobp::diag {

enum class Severity {
  kError,    ///< invariant violated; artifact must be rejected
  kWarning,  ///< suspicious but not invalidating (e.g. infeasible whole set)
  kNote,     ///< informational findings
};

std::string_view to_string(Severity severity);

/// Where a finding anchors.  All fields optional; raw integers keep the
/// diag module independent of the schedule/forest type headers.  Instance
/// rules anchor in artifact coordinates (machine/job/segment/ticks); the
/// source-analysis rules (POBP-SRC-*, src/srclint) anchor in file
/// coordinates (path, 1-based line/column).
struct Location {
  std::optional<std::size_t> machine;   ///< machine index
  std::optional<std::uint32_t> job;     ///< JobId
  std::optional<std::uint32_t> node;    ///< forest NodeId
  std::optional<std::size_t> segment;   ///< segment index within a job
  std::optional<std::int64_t> begin;    ///< time range start (ticks)
  std::optional<std::int64_t> end;      ///< time range end (ticks)

  std::optional<std::string> file;      ///< repo-relative source path
  std::optional<std::size_t> line;      ///< 1-based source line
  std::optional<std::size_t> column;    ///< 1-based source column

  /// Builds a file anchor ("src/x.cpp:12").
  static Location at(std::string path, std::size_t line_number,
                     std::size_t column_number = 0);

  std::string to_string() const;  ///< "machine 0, job#3, segment 2, [4, 9)"
};

/// One finding: a rule id, a severity, a human message, an anchor, and a
/// machine-readable key/value payload (numbers serialized as decimal).
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
  Location where;
  std::vector<std::pair<std::string, std::string>> payload;

  Diagnostic& with(std::string key, std::string value) {
    payload.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Diagnostic& with(std::string key, std::int64_t value) {
    return with(std::move(key), std::to_string(value));
  }
  Diagnostic& with(std::string key, std::size_t value) {
    return with(std::move(key), std::to_string(value));
  }

  /// "POBP-SCHED-005 [error] machine 0, job#3: segment outside window"
  std::string to_string() const;
};

/// Accumulates diagnostics.  Checkers append with add(); callers inspect
/// counts or render the whole report.
class Report {
 public:
  /// Appends a finding; severity defaults to the registry's default for
  /// `rule` (kError when the rule id is unknown).  Returns the record so
  /// call sites can chain `.with(...)` payload entries.
  Diagnostic& add(std::string rule, std::string message, Location where = {});

  /// Appends with an explicit severity override.
  Diagnostic& add(std::string rule, Severity severity, std::string message,
                  Location where = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }

  /// True iff no error-severity findings (warnings/notes allowed).
  bool ok() const { return error_count() == 0; }
  std::size_t error_count() const;
  std::size_t count(Severity severity) const;

  /// Number of findings carrying the given rule id.
  std::size_t count(std::string_view rule) const;

  /// Message of the first error-severity finding ("" when ok) — the
  /// back-compat bridge for first-failure interfaces.
  std::string first_error() const;

  /// Distinct rule ids present, in first-appearance order.
  std::vector<std::string> rule_ids() const;

  /// Merges another report's findings (append, preserving order).
  void merge(Report other);

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace pobp::diag
