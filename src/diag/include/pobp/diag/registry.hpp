// The rule catalogue: every stable diagnostic id the library can emit.
//
// Rules are registered centrally (registry.cpp) rather than via static
// initializers in the emitting modules — static registration objects in
// static libraries are silently dropped by the linker unless forced, and a
// single table is also the natural place to keep the paper cross-references
// that docs/LINT.md renders.
#pragma once

#include <span>
#include <string_view>

#include "pobp/diag/diagnostic.hpp"

namespace pobp::diag {

struct RuleInfo {
  std::string_view id;          ///< stable, e.g. "POBP-SCHED-005"
  Severity default_severity;
  std::string_view title;       ///< short noun phrase
  std::string_view paper_ref;   ///< paper anchor, e.g. "Def. 2.1(b)"
  std::string_view description; ///< one-paragraph explanation
};

/// All registered rules, ordered by id.
std::span<const RuleInfo> all_rules();

/// Lookup by id (nullptr when unknown).
const RuleInfo* find_rule(std::string_view id);

// Stable rule ids.  New rules append within their family; ids are never
// reused or renumbered (tests and external tooling match on them).
namespace rules {

// Schedule feasibility (Def. 2.1 plus the multi-machine extension).
inline constexpr std::string_view kSchedUnknownJob = "POBP-SCHED-001";
inline constexpr std::string_view kSchedEmptyAssignment = "POBP-SCHED-002";
inline constexpr std::string_view kSchedEmptySegment = "POBP-SCHED-003";
inline constexpr std::string_view kSchedUnsortedSegments = "POBP-SCHED-004";
inline constexpr std::string_view kSchedWindowEscape = "POBP-SCHED-005";
inline constexpr std::string_view kSchedLengthMismatch = "POBP-SCHED-006";
inline constexpr std::string_view kSchedPreemptionBudget = "POBP-SCHED-007";
inline constexpr std::string_view kSchedMachineConflict = "POBP-SCHED-008";
inline constexpr std::string_view kSchedMigration = "POBP-SCHED-009";

// Laminar normal form (§4.1).
inline constexpr std::string_view kLaminarInterleaving = "POBP-LAM-001";

// k-BAS selection rules (Defs. 3.1–3.2).
inline constexpr std::string_view kBasMaskSize = "POBP-BAS-001";
inline constexpr std::string_view kBasAncestorDependence = "POBP-BAS-002";
inline constexpr std::string_view kBasDegreeOverflow = "POBP-BAS-003";

// Input loading (CSV / manifest / JSONL hardening).
inline constexpr std::string_view kIoParse = "POBP-IO-001";
inline constexpr std::string_view kIoNumeric = "POBP-IO-002";
inline constexpr std::string_view kIoJobDomain = "POBP-IO-003";

// Instance-level job rules.
inline constexpr std::string_view kJobMalformed = "POBP-JOB-001";

// Solve-option rules (the checked schedule_bounded entry points).
inline constexpr std::string_view kOptMachineCount = "POBP-OPT-001";
inline constexpr std::string_view kOptExactSeedLimit = "POBP-OPT-002";

// Serving-layer fault containment (Session::solve boundary) and the
// streaming admission control (StreamEngine, docs/SERVING.md).
inline constexpr std::string_view kRunPipelineFault = "POBP-RUN-001";
inline constexpr std::string_view kRunDeadline = "POBP-RUN-002";
inline constexpr std::string_view kRunBudget = "POBP-RUN-003";
inline constexpr std::string_view kRunAdmission = "POBP-RUN-004";
inline constexpr std::string_view kRunTenantQuota = "POBP-RUN-005";
inline constexpr std::string_view kRunRateLimited = "POBP-RUN-006";
inline constexpr std::string_view kRunBreakerOpen = "POBP-RUN-007";
inline constexpr std::string_view kRunCachePressure = "POBP-RUN-008";

// Hall-type interval feasibility (§4.1).
inline constexpr std::string_view kIntervalOverload = "POBP-INT-001";

// Generator parameter ranges (Appendix B).
inline constexpr std::string_view kGenParamDomain = "POBP-GEN-001";
inline constexpr std::string_view kGenOverflow = "POBP-GEN-002";

// Source-level static analysis (src/srclint, `pobp_srclint` /
// `pobp lint-src`).  These rules lint the repository's own source tree
// against the project engineering contracts (docs/PERF.md,
// docs/ENGINE.md); each is suppressible at a site with a
// `// POBP-SRC-nnn: reason` comment on the finding line or the line
// above.
inline constexpr std::string_view kSrcNakedAlloc = "POBP-SRC-001";
inline constexpr std::string_view kSrcHotPathAlloc = "POBP-SRC-002";
inline constexpr std::string_view kSrcImplicitMemoryOrder = "POBP-SRC-003";
inline constexpr std::string_view kSrcNondeterminism = "POBP-SRC-004";
inline constexpr std::string_view kSrcLayering = "POBP-SRC-005";
inline constexpr std::string_view kSrcThrowInContainment = "POBP-SRC-006";
inline constexpr std::string_view kSrcBlockingSubmit = "POBP-SRC-007";
inline constexpr std::string_view kSrcUnboundedRetry = "POBP-SRC-008";
inline constexpr std::string_view kSrcRawIntrinsics = "POBP-SRC-009";
inline constexpr std::string_view kSrcDefaultHash = "POBP-SRC-010";

}  // namespace rules

}  // namespace pobp::diag
