// Report renderers: line-per-finding text for terminals, and a
// SARIF-2.1.0-shaped JSON document for editor/CI integrations.
#pragma once

#include <string>

#include "pobp/diag/diagnostic.hpp"

namespace pobp::diag {

/// One line per finding ("RULE [severity] location: message"), followed by
/// a severity summary line.  Empty reports render as "no findings\n".
std::string to_text(const Report& report);

/// SARIF 2.1.0-shaped JSON: a single run whose tool.driver carries the
/// registry entries of every rule referenced by the report, and one result
/// per finding (payload entries land in result.properties).
std::string to_sarif(const Report& report, std::string_view tool_name = "pobp_lint");

/// Compact single-line JSON for wire embedding (the `pobp serve` error
/// frames): {"findings":[{"rule","severity","message","where"?,
/// "payload"?}...]} with no newlines, so a frame stays one JSONL record.
std::string to_json(const Report& report);

}  // namespace pobp::diag
