#include "pobp/diag/registry.hpp"

#include <algorithm>

namespace pobp::diag {
namespace {

using rules::kBasAncestorDependence;
using rules::kBasDegreeOverflow;
using rules::kBasMaskSize;
using rules::kGenOverflow;
using rules::kGenParamDomain;
using rules::kIntervalOverload;
using rules::kIoJobDomain;
using rules::kIoNumeric;
using rules::kIoParse;
using rules::kJobMalformed;
using rules::kLaminarInterleaving;
using rules::kOptExactSeedLimit;
using rules::kOptMachineCount;
using rules::kRunAdmission;
using rules::kRunBreakerOpen;
using rules::kRunBudget;
using rules::kRunCachePressure;
using rules::kRunDeadline;
using rules::kRunPipelineFault;
using rules::kRunRateLimited;
using rules::kRunTenantQuota;
using rules::kSchedEmptyAssignment;
using rules::kSchedEmptySegment;
using rules::kSchedLengthMismatch;
using rules::kSchedMachineConflict;
using rules::kSchedMigration;
using rules::kSchedPreemptionBudget;
using rules::kSchedUnknownJob;
using rules::kSchedUnsortedSegments;
using rules::kSchedWindowEscape;
using rules::kSrcDefaultHash;
using rules::kSrcHotPathAlloc;
using rules::kSrcImplicitMemoryOrder;
using rules::kSrcLayering;
using rules::kSrcNakedAlloc;
using rules::kSrcBlockingSubmit;
using rules::kSrcNondeterminism;
using rules::kSrcThrowInContainment;
using rules::kSrcRawIntrinsics;
using rules::kSrcUnboundedRetry;

// Ordered by id; find_rule binary-searches this table.
constexpr RuleInfo kCatalogue[] = {
    {kBasMaskSize, Severity::kError, "selection mask size mismatch",
     "Def. 3.1",
     "A sub-forest selection must carry exactly one keep flag per node of "
     "the host forest; a mask of any other size cannot describe a "
     "sub-forest."},
    {kBasAncestorDependence, Severity::kError,
     "ancestor independence violated", "Def. 3.2",
     "A kept node whose parent is deleted roots a component of the "
     "sub-forest and therefore must not have any kept proper ancestor; "
     "otherwise the selection is not ancestor-independent."},
    {kBasDegreeOverflow, Severity::kError, "degree bound exceeded",
     "Def. 3.1",
     "Every kept node may retain at most k kept children (per-node bounds "
     "in the generalized variant); more kept children than the bound "
     "breaks the k-bounded-degree property."},
    {kGenParamDomain, Severity::kError, "generator parameters out of domain",
     "Appendix B",
     "The Appendix-B lower-bound construction requires k >= 1 and "
     "branching factor K > k (the paper instantiates K = 2k)."},
    {kGenOverflow, Severity::kError, "generator range overflow",
     "Appendix B",
     "Job lengths in the Appendix-B instance grow as (3K^2)^L * (3K-1); "
     "for the chosen (K, L) the tick arithmetic would overflow int64 (or "
     "exceed the job budget), so the instance cannot be materialized "
     "exactly."},
    {kIntervalOverload, Severity::kError, "interval demand exceeds capacity",
     "§4.1",
     "Hall-type feasibility: for every interval [r, d] spanned by a "
     "release and a deadline, the total length of jobs whose windows lie "
     "inside it must not exceed d - r; an overloaded interval proves the "
     "set has no preemptive schedule."},
    {kIoParse, Severity::kError, "unparseable input", "§2.1 (instances)",
     "A jobs CSV, batch manifest or JSONL instance file is syntactically "
     "malformed (missing header, wrong cell count, non-numeric cell, "
     "truncated JSON); the instance cannot be loaded."},
    {kIoNumeric, Severity::kError, "numeric field out of range",
     "§2.1 (tick arithmetic)",
     "A parsed numeric field is NaN, infinite, fractional where a tick is "
     "required, or outside the int64 tick range; admitting it would make "
     "downstream tick arithmetic overflow or become undefined."},
    {kIoJobDomain, Severity::kError, "job outside the §2.1 domain",
     "§2.1",
     "A syntactically valid row describes a job violating the instance "
     "domain: length < 1, value <= 0, a window shorter than the length, or "
     "a window so wide that d - r overflows int64."},
    {kJobMalformed, Severity::kError, "malformed job", "§2.1",
     "A job must satisfy p >= 1, val > 0 and window d - r >= p; otherwise "
     "it cannot be feasibly scheduled even alone."},
    {kLaminarInterleaving, Severity::kError, "interleaved preemptions",
     "§4.1, Fig. 1",
     "In a laminar schedule the 'preempts' relation forms a forest: "
     "segments a1 < b1 < a2 < b2 of two jobs (each resuming under the "
     "other) are forbidden.  Interleavings break the Schedule Forest "
     "reduction."},
    {kOptMachineCount, Severity::kError, "machine count out of domain",
     "§2.1 (multi-machine)",
     "The multi-machine setting schedules on m >= 1 identical non-migrative "
     "machines; machine_count = 0 describes no machine to place work on."},
    {kOptExactSeedLimit, Severity::kError, "exact seed instance too large",
     "§2.1 (OPT∞)",
     "The exact ∞-preemptive seed enumerates job subsets with "
     "branch-and-bound, which is exponential in n; instances beyond the "
     "supported bound would effectively never terminate, so the checked "
     "entry points reject them instead (use the greedy-density seed)."},
    {kRunPipelineFault, Severity::kError, "pipeline fault contained",
     "§4 (pipeline)",
     "An exception or internal invariant failure escaped the solve "
     "pipeline for one instance and was caught at the Session boundary; "
     "the instance has no result but the batch and the process continue."},
    {kRunDeadline, Severity::kError, "solve deadline exceeded",
     "§4.3 (LSA_CS as fallback)",
     "The instance's wall-clock deadline (SolveBudget::deadline_s) expired "
     "before the pipeline finished, and the degrade policy did not produce "
     "a fallback result."},
    {kRunBudget, Severity::kError, "solve operation budget exhausted",
     "§4.3 (LSA_CS as fallback)",
     "The instance's cooperative operation budget (SolveBudget::max_ops) "
     "ran out before the pipeline finished, and the degrade policy did not "
     "produce a fallback result."},
    {kRunAdmission, Severity::kError, "submission shed at admission",
     "§4.3 (overload behaviour)",
     "The streaming engine's bounded submission queue was full (or the "
     "engine was shutting down) and the request was submitted on the "
     "non-blocking path, so admission control shed it instead of queueing; "
     "the request was never solved and can be resubmitted."},
    {kRunTenantQuota, Severity::kError, "tenant in-flight quota exceeded",
     "§4.3 (overload behaviour)",
     "The submitting tenant already had the configured maximum number of "
     "requests in flight (StreamOptions::tenant_max_in_flight), so "
     "admission control rejected this one to protect other tenants; the "
     "request was never solved and can be resubmitted after completions."},
    {kRunRateLimited, Severity::kError, "tenant rate limit exceeded",
     "§4.3 (overload behaviour)",
     "The submitting tenant's token bucket (StreamOptions::tenant_rate / "
     "SubmitOptions::rate_limit) was empty, so admission control shed this "
     "request before it touched the queue; the request was never solved "
     "and can be resubmitted once the bucket refills."},
    {kRunBreakerOpen, Severity::kError, "tenant circuit breaker open",
     "§4.3 (overload behaviour)",
     "The tenant's circuit breaker tripped after N consecutive contained "
     "pipeline faults (POBP-RUN-001) and is shedding submissions while "
     "open; after the cooldown a limited number of half-open probe "
     "admissions either close it again or re-open it."},
    {kRunCachePressure, Severity::kWarning, "solve cache under pressure",
     "§4.3 (overload behaviour)",
     "The content-addressed solve cache (docs/CACHE.md) is thrashing: "
     "CLOCK evictions are keeping pace with insertions, so entries are "
     "reclaimed before their first hit and the duplicate-stream fast path "
     "stays cold.  Raise the cache byte budget or reduce the keyed "
     "diversity of the stream; results are unaffected (the cache is "
     "bit-transparent), only latency is."},
    {kSchedUnknownJob, Severity::kError, "unknown job id", "Def. 2.1",
     "An assignment references a job id outside the instance."},
    {kSchedEmptyAssignment, Severity::kError, "empty segment list",
     "Def. 2.1",
     "A scheduled job must execute in at least one segment."},
    {kSchedEmptySegment, Severity::kError, "empty or inverted segment",
     "Def. 2.1(a)",
     "Every execution segment [begin, end) must have begin < end; "
     "zero-length or inverted segments carry no machine time and usually "
     "indicate generator or serialization bugs."},
    {kSchedUnsortedSegments, Severity::kError,
     "segments not sorted or overlapping", "Def. 2.1(a)",
     "A job's segments must be sorted by start time and pairwise disjoint "
     "(adjacency allowed); overlap within a job double-books the "
     "machine."},
    {kSchedWindowEscape, Severity::kError, "segment outside job window",
     "Def. 2.1(b)",
     "Every segment of job j must lie inside [r_j, d_j): work before "
     "release or after deadline does not count."},
    {kSchedLengthMismatch, Severity::kError, "processed length mismatch",
     "Def. 2.1(b)",
     "The segments of a scheduled job must sum to exactly p_j; a job is "
     "only counted when fully processed."},
    {kSchedPreemptionBudget, Severity::kError, "preemption budget exceeded",
     "Def. 2.1(c)",
     "A k-preemptive schedule allows at most k preemptions per job, i.e. "
     "at most k+1 segments."},
    {kSchedMachineConflict, Severity::kError, "machine double-booked",
     "Def. 2.1(a)",
     "Segments of different jobs on the same machine must not overlap: "
     "one machine executes at most one job at any moment."},
    {kSchedMigration, Severity::kError, "job scheduled on two machines",
     "§2.1 (multi-machine)",
     "The multi-machine setting is non-migrative: a job's segments must "
     "all live on a single machine."},
    {kSrcNakedAlloc, Severity::kError, "naked allocation",
     "docs/PERF.md (allocation discipline)",
     "Raw new/delete/malloc/free outside the allocator modules (allocspy, "
     "the arenas).  All ownership goes through containers, smart pointers "
     "and arenas so the counting hooks and the zero-allocation perf gate "
     "see every allocation.  Suppress with `// POBP-SRC-001: reason`."},
    {kSrcHotPathAlloc, Severity::kError, "allocation call on the hot path",
     "docs/PERF.md (zero-allocation hot path)",
     "An allocation-capable call (new/delete, malloc-family, "
     "make_unique/make_shared) inside a pooled `*_into` producer or a "
     "function marked `// POBP_NOALLOC`.  Hot-path functions recycle "
     "caller-owned storage; capacity operations (reserve/resize) are the "
     "only sanctioned growth.  Suppress with `// POBP-SRC-002: reason`."},
    {kSrcImplicitMemoryOrder, Severity::kError,
     "atomic operation without explicit memory order",
     "docs/PERF.md (work-stealing scheduler)",
     "A std::atomic load/store/RMW in the concurrency-bearing modules "
     "(engine, util, solvers) relying on the implicit seq_cst default.  "
     "Every atomic op must spell its std::memory_order so the "
     "synchronization protocol is reviewable and TSan findings map to "
     "stated intent.  Suppress with `// POBP-SRC-003: reason`."},
    {kSrcNondeterminism, Severity::kError,
     "nondeterminism in result-affecting code",
     "docs/ENGINE.md (determinism contract)",
     "Result-affecting modules must be pure functions of (jobs, options): "
     "unseeded randomness (rand/random_device), wall-clock reads "
     "(system_clock), or iteration over unordered_{map,set} feeding "
     "results would break bit-identity across worker counts.  Suppress "
     "with `// POBP-SRC-004: reason`."},
    {kSrcLayering, Severity::kError, "module layering violation",
     "DESIGN.md (module layers)",
     "An #include crossing the declared layer map upward (e.g. schedule "
     "or core including engine, diag including a solver).  The layer map "
     "mirrors the CMake link graph; a violating include compiles today "
     "and becomes a cycle tomorrow.  Suppress with "
     "`// POBP-SRC-005: reason`."},
    {kSrcThrowInContainment, Severity::kError,
     "throw inside a fault-containment boundary",
     "docs/ROBUSTNESS.md (fault containment)",
     "`try_*` entry points are the containment boundary: they convert "
     "every pipeline failure into an Expected/diag::Report outcome.  A "
     "throw statement inside one can escape to a pool worker and take "
     "down the batch.  Suppress with `// POBP-SRC-006: reason`."},
    {kSrcBlockingSubmit, Severity::kError,
     "blocking call in the submission hot path",
     "docs/SERVING.md (submission queue)",
     "The MPSC submission queue (engine/submit) is the lock-free producer "
     "fast path of the streaming engine: a blocking syscall or primitive "
     "(sleep/wait/IO, mutexes, condition variables) inside it would stall "
     "every producer behind one descheduled thread.  Blocking backpressure "
     "belongs in the StreamEngine layer above the queue.  Suppress with "
     "`// POBP-SRC-007: reason`."},
    {kSrcUnboundedRetry, Severity::kError,
     "unbounded sleep-retry loop in the engine",
     "docs/ROBUSTNESS.md (retry discipline)",
     "A loop in src/engine/ that sleeps between iterations (a retry/"
     "backoff loop) must be bounded: either an explicit attempt cap "
     "(an `attempt`/`max_retries`-style counter in the loop) or a "
     "BudgetGuard poll/charge so the request's SolveBudget can stop it.  "
     "An unbounded sleep-retry can stall a pool worker forever and blow "
     "through every request deadline.  Suppress with "
     "`// POBP-SRC-008: reason`."},
    {kSrcRawIntrinsics, Severity::kError,
     "raw ISA intrinsic outside the portable SIMD wrapper",
     "docs/PERF.md (portable SIMD)",
     "Vector kernels must go through pobp/util/simd.hpp, whose "
     "vector-extension helpers compile on every GCC/Clang target and "
     "degrade to a scalar fallback elsewhere.  A raw x86 `_mm*`/"
     "`__m128`-family or NEON `vld1`-style intrinsic pins the file to "
     "one ISA, breaks the scalar build, and bypasses the wrapper's "
     "bit-identity contract.  Suppress with `// POBP-SRC-009: reason`."},
    {kSrcDefaultHash, Severity::kError,
     "implementation-defined hashing on a result path",
     "docs/CACHE.md (keying)",
     "std::hash and the std::unordered_* containers hash with an "
     "implementation-defined function: the same bytes key different "
     "buckets across standard libraries and builds, which breaks "
     "cross-build determinism wherever hashing can reach results or "
     "cache keys.  Result-path modules use the flat open-addressing "
     "indexes (MachineSchedule) or the specified mixers in "
     "engine/cache.cpp instead.  Suppress with "
     "`// POBP-SRC-010: reason` where only membership is observed."},
};

constexpr bool catalogue_sorted() {
  for (std::size_t i = 1; i < std::size(kCatalogue); ++i) {
    if (!(kCatalogue[i - 1].id < kCatalogue[i].id)) return false;
  }
  return true;
}
static_assert(catalogue_sorted(), "rule catalogue must be ordered by id");

}  // namespace

std::span<const RuleInfo> all_rules() { return kCatalogue; }

const RuleInfo* find_rule(std::string_view id) {
  const auto it = std::lower_bound(
      std::begin(kCatalogue), std::end(kCatalogue), id,
      [](const RuleInfo& info, std::string_view key) { return info.id < key; });
  if (it == std::end(kCatalogue) || it->id != id) return nullptr;
  return it;
}

}  // namespace pobp::diag
