#include "pobp/diag/render.hpp"

#include <sstream>

#include "pobp/diag/registry.hpp"

namespace pobp::diag {
namespace {

/// Minimal JSON string escaping (the catalogue and messages are ASCII, but
/// CSV-derived payload values could contain anything).
void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string_view sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}

}  // namespace

std::string to_text(const Report& report) {
  if (report.empty()) return "no findings\n";
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics()) {
    os << d.to_string() << '\n';
  }
  os << report.count(Severity::kError) << " error(s), "
     << report.count(Severity::kWarning) << " warning(s), "
     << report.count(Severity::kNote) << " note(s)\n";
  return os.str();
}

std::string to_sarif(const Report& report, std::string_view tool_name) {
  std::ostringstream os;
  os << "{\"version\":\"2.1.0\","
     << "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
     << "\"runs\":[{\"tool\":{\"driver\":{\"name\":";
  append_json_string(os, tool_name);
  os << ",\"rules\":[";
  bool first = true;
  for (const std::string& id : report.rule_ids()) {
    const RuleInfo* info = find_rule(id);
    if (!first) os << ',';
    first = false;
    os << "{\"id\":";
    append_json_string(os, id);
    if (info) {
      os << ",\"shortDescription\":{\"text\":";
      append_json_string(os, info->title);
      os << "},\"fullDescription\":{\"text\":";
      append_json_string(os, info->description);
      os << "},\"properties\":{\"paperRef\":";
      append_json_string(os, info->paper_ref);
      os << "}";
    }
    os << "}";
  }
  os << "]}},\"results\":[";
  first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ruleId\":";
    append_json_string(os, d.rule);
    os << ",\"level\":\"" << sarif_level(d.severity)
       << "\",\"message\":{\"text\":";
    append_json_string(os, d.message);
    os << "}";
    // Source-anchored findings (POBP-SRC-*) render as a SARIF
    // physicalLocation so editors and CI annotate the file directly.
    if (d.where.file) {
      os << ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
            "{\"uri\":";
      append_json_string(os, *d.where.file);
      os << "}";
      if (d.where.line) {
        os << ",\"region\":{\"startLine\":" << *d.where.line;
        if (d.where.column) os << ",\"startColumn\":" << *d.where.column;
        os << "}";
      }
      os << "}}]";
    }
    os << ",\"properties\":{";
    bool first_prop = true;
    const auto prop = [&](std::string_view key, std::string_view value,
                          bool quote) {
      if (!first_prop) os << ',';
      first_prop = false;
      append_json_string(os, key);
      os << ':';
      if (quote) {
        append_json_string(os, value);
      } else {
        os << value;
      }
    };
    if (d.where.machine) prop("machine", std::to_string(*d.where.machine), false);
    if (d.where.job) prop("job", std::to_string(*d.where.job), false);
    if (d.where.node) prop("node", std::to_string(*d.where.node), false);
    if (d.where.segment) prop("segment", std::to_string(*d.where.segment), false);
    if (d.where.begin) prop("begin", std::to_string(*d.where.begin), false);
    if (d.where.end) prop("end", std::to_string(*d.where.end), false);
    for (const auto& [key, value] : d.payload) prop(key, value, true);
    os << "}}";
  }
  os << "]}]}";
  return os.str();
}

std::string to_json(const Report& report) {
  std::ostringstream os;
  os << "{\"findings\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":";
    append_json_string(os, d.rule);
    os << ",\"severity\":\"" << sarif_level(d.severity)
       << "\",\"message\":";
    append_json_string(os, d.message);
    const std::string where = d.where.to_string();
    if (!where.empty()) {
      os << ",\"where\":";
      append_json_string(os, where);
    }
    if (!d.payload.empty()) {
      os << ",\"payload\":{";
      bool first_prop = true;
      for (const auto& [key, value] : d.payload) {
        if (!first_prop) os << ',';
        first_prop = false;
        append_json_string(os, key);
        os << ':';
        append_json_string(os, value);
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace pobp::diag
