#include "pobp/engine/cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "pobp/diag/registry.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

// splitmix64 finalizer: the avalanche stage of every mix below.  Chosen
// over std::hash (POBP-SRC-010) because it is fully specified — the same
// bytes key the same entry on every platform, standard library and build.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kSeedLo = 0xcbf29ce484222325ull;  // FNV offset basis
constexpr std::uint64_t kSeedHi = 0x9ae16a3b2f90404full;

std::uint64_t fold(std::uint64_t acc, std::uint64_t x) {
  return (acc ^ mix64(x)) * kFnvPrime;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Rough resident-size estimate of one machine schedule: slots + segments.
std::size_t machine_bytes(const MachineSchedule& ms) {
  std::size_t bytes = ms.job_count() * sizeof(Assignment);
  for (const Assignment& a : ms.assignments()) {
    bytes += a.segments.size() * sizeof(Segment);
  }
  return bytes;
}

std::size_t schedule_bytes(const Schedule& s) {
  std::size_t bytes = s.machine_count() * sizeof(MachineSchedule);
  for (std::size_t m = 0; m < s.machine_count(); ++m) {
    bytes += machine_bytes(s.machine(m));
  }
  return bytes;
}

}  // namespace

// --- shard ------------------------------------------------------------------

struct SolveCache::Shard {
  /// One cached solve.  Slots are recycled: eviction keeps the vectors'
  /// and schedules' capacity so re-publishing into a freed slot is mostly
  /// allocation-free.
  struct Entry {
    CacheKey key;
    std::uint64_t params_sig = 0;
    std::uint32_t n = 0;
    bool live = false;
    bool referenced = false;     ///< CLOCK second-chance bit
    bool delta_capable = false;  ///< seed/strict/full schedules populated

    // Verbatim copy of the instance's job columns: the collision guard on
    // hits and the ground truth for the delta changed-mask.
    JobColumns jobs;
    std::vector<std::uint64_t> subhashes;

    ScheduleResult result;
    Schedule seed{1};
    Schedule strict_sched{1};
    Schedule full_sched{1};

    std::size_t bytes = 0;
  };

  mutable util::Mutex mutex;
  std::vector<Entry> entries POBP_GUARDED_BY(mutex);
  std::size_t bytes POBP_GUARDED_BY(mutex) = 0;
  std::size_t live POBP_GUARDED_BY(mutex) = 0;
  std::size_t clock_hand POBP_GUARDED_BY(mutex) = 0;

  std::uint64_t hits POBP_GUARDED_BY(mutex) = 0;
  std::uint64_t misses POBP_GUARDED_BY(mutex) = 0;
  std::uint64_t insertions POBP_GUARDED_BY(mutex) = 0;
  std::uint64_t evictions POBP_GUARDED_BY(mutex) = 0;
  std::uint64_t delta_hits POBP_GUARDED_BY(mutex) = 0;

  /// Index of the live entry holding `key`, or entries.size().  Linear
  /// scan over the (byte-budget-bounded) slot array: 16 bytes per probe,
  /// branch-free on the common mismatch, and immune to tombstone decay.
  std::size_t find(const CacheKey& key) const POBP_REQUIRES(mutex) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].live && entries[i].key == key) return i;
    }
    return entries.size();
  }

  /// Evicts one entry by CLOCK/second-chance.  False when nothing is live.
  bool evict_one() POBP_REQUIRES(mutex) {
    if (live == 0) return false;
    for (;;) {
      Entry& e = entries[clock_hand];
      clock_hand = (clock_hand + 1) % entries.size();
      if (!e.live) continue;
      if (e.referenced) {
        e.referenced = false;  // second chance
        continue;
      }
      e.live = false;
      bytes -= e.bytes;
      e.bytes = 0;
      --live;
      ++evictions;
      return true;
    }
  }
};

// --- construction -----------------------------------------------------------

SolveCache::SolveCache(SolveCacheOptions options) : options_(options) {
  const std::size_t count = round_up_pow2(std::max<std::size_t>(
      1, options_.shards));
  shard_mask_ = count - 1;
  shard_budget_ = std::max<std::size_t>(1, options_.max_bytes / count);
  shards_ = std::make_unique<Shard[]>(count);
}

SolveCache::~SolveCache() = default;

std::size_t SolveCache::shard_count() const { return shard_mask_ + 1; }

SolveCache::Shard& SolveCache::shard_for(std::uint64_t params_sig,
                                         std::size_t n) const {
  // Sharding on (params, n) only — not the full key — pins every possible
  // delta neighbor of an instance into the same shard, so the neighbor
  // scan happens under the single lock the lookup already holds.
  return shards_[mix64(params_sig ^ mix64(n)) & shard_mask_];
}

// --- keying -----------------------------------------------------------------

std::uint64_t SolveCache::params_signature(const ScheduleOptions& options,
                                           bool approximate) {
  std::uint64_t sig = kSeedLo;
  sig = fold(sig, options.k);
  sig = fold(sig, options.machine_count);
  sig = fold(sig, static_cast<std::uint64_t>(options.seed));
  sig = fold(sig, options.use_tm ? 1 : 0);
  // The approximate (degraded / sampled) tier keys under a disjoint
  // signature so it can never alias an exact result.
  sig = fold(sig, approximate ? 0x5eed5eed5eed5eedull : 0);
  return sig;
}

void SolveCache::job_subhashes(const JobSetView& view, std::uint64_t* out) {
  // Independent per job — no loop-carried state — so the compiler can
  // vectorize the column reads; doubles are hashed by bit pattern, which
  // is exactly the equality the determinism contract cares about.
  for (std::size_t i = 0; i < view.n; ++i) {
    std::uint64_t h = mix64(static_cast<std::uint64_t>(view.release[i]));
    h = mix64(h ^ static_cast<std::uint64_t>(view.deadline[i]));
    h = mix64(h ^ static_cast<std::uint64_t>(view.length[i]));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(view.value[i]));
    out[i] = h;
  }
}

CacheKey SolveCache::instance_key(const JobSetView& view,
                                  const std::uint64_t* subhashes,
                                  std::uint64_t params_sig) {
  CacheKey key{kSeedHi, kSeedLo};
  for (std::size_t i = 0; i < view.n; ++i) {
    // Positional mixing: lane-rotated on the hi word so swapping two jobs
    // changes both words.
    key.lo = (key.lo ^ subhashes[i]) * kFnvPrime;
    key.hi = (key.hi ^ std::rotl(subhashes[i], 31) ^ i) * kFnvPrime;
  }
  key.lo = mix64(key.lo ^ view.n);
  key.hi = mix64(key.hi ^ params_sig);
  return key;
}

// --- lookup / publish -------------------------------------------------------

namespace {

/// Byte-for-byte column equality — the collision guard.  memcmp over the
/// four contiguous columns, so the common (equal) case is a straight
/// vectorized compare.
bool columns_equal(const JobColumns& stored, const JobSetView& view) {
  if (stored.size() != view.n) return false;
  const std::size_t n = view.n;
  if (n == 0) return true;  // empty columns may have null data pointers
  return std::memcmp(stored.release.data(), view.release,
                     n * sizeof(Time)) == 0 &&
         std::memcmp(stored.deadline.data(), view.deadline,
                     n * sizeof(Time)) == 0 &&
         std::memcmp(stored.length.data(), view.length,
                     n * sizeof(Duration)) == 0 &&
         std::memcmp(stored.value.data(), view.value,
                     n * sizeof(Value)) == 0;
}

void copy_columns(const JobSetView& view, JobColumns& out) {
  out.release.assign(view.release, view.release + view.n);
  out.deadline.assign(view.deadline, view.deadline + view.n);
  out.length.assign(view.length, view.length + view.n);
  out.value.assign(view.value, view.value + view.n);
}

void assign_result(const ScheduleResult& from, ScheduleResult& to) {
  to.schedule.assign_from(from.schedule);
  to.value = from.value;
  to.unbounded_value = from.unbounded_value;
  to.degraded = from.degraded;
}

}  // namespace

bool SolveCache::try_get(const CacheKey& key, const JobSetView& jobs,
                         std::uint64_t params_sig, ScheduleResult& out) {
  Shard& shard = shard_for(params_sig, jobs.n);
  util::MutexLock lock(shard.mutex);
  const std::size_t i = shard.find(key);
  if (i == shard.entries.size()) {
    ++shard.misses;
    return false;
  }
  Shard::Entry& e = shard.entries[i];
  if (e.params_sig != params_sig || !columns_equal(e.jobs, jobs)) {
    ++shard.misses;  // 128-bit collision: treat as a miss, never serve
    return false;
  }
  e.referenced = true;
  ++shard.hits;
  assign_result(e.result, out);
  return true;
}

std::size_t SolveCache::insert(const CacheKey& key, const JobSetView& jobs,
                               const std::uint64_t* subhashes,
                               std::uint64_t params_sig,
                               const ScheduleResult& result,
                               const Schedule* seed,
                               const Schedule* strict_sched,
                               const Schedule* full_sched) {
  const bool delta_capable =
      seed != nullptr && strict_sched != nullptr && full_sched != nullptr;
  std::size_t need = sizeof(Shard::Entry) +
                     jobs.n * (2 * sizeof(Time) + sizeof(Duration) +
                               sizeof(Value) + sizeof(std::uint64_t)) +
                     schedule_bytes(result.schedule);
  if (delta_capable) {
    need += schedule_bytes(*seed) + schedule_bytes(*strict_sched) +
            schedule_bytes(*full_sched);
  }
  if (need > shard_budget_) return 0;  // would monopolize the shard

  Shard& shard = shard_for(params_sig, jobs.n);
  util::MutexLock lock(shard.mutex);
  if (shard.find(key) != shard.entries.size()) return 0;  // already published

  std::size_t evicted = 0;
  while (shard.bytes + need > shard_budget_) {
    if (!shard.evict_one()) break;
    ++evicted;
  }

  // Recycle the first dead slot (capacity-preserving) or grow by one.
  std::size_t slot = shard.entries.size();
  for (std::size_t i = 0; i < shard.entries.size(); ++i) {
    if (!shard.entries[i].live) {
      slot = i;
      break;
    }
  }
  if (slot == shard.entries.size()) shard.entries.emplace_back();
  Shard::Entry& e = shard.entries[slot];

  e.key = key;
  e.params_sig = params_sig;
  e.n = static_cast<std::uint32_t>(jobs.n);
  copy_columns(jobs, e.jobs);
  e.subhashes.assign(subhashes, subhashes + jobs.n);
  assign_result(result, e.result);
  e.delta_capable = delta_capable;
  if (delta_capable) {
    e.seed.assign_from(*seed);
    e.strict_sched.assign_from(*strict_sched);
    e.full_sched.assign_from(*full_sched);
  }
  e.bytes = need;
  e.live = true;
  e.referenced = true;
  shard.bytes += need;
  ++shard.live;
  ++shard.insertions;
  return evicted;
}

// --- delta neighbors --------------------------------------------------------

bool SolveCache::copy_delta_neighbor(const JobSetView& jobs,
                                     const std::uint64_t* subhashes,
                                     std::uint64_t params_sig,
                                     DeltaNeighbor& out) {
  if (!delta_enabled()) return false;
  const std::size_t budget = options_.delta_max_jobs;
  Shard& shard = shard_for(params_sig, jobs.n);
  util::MutexLock lock(shard.mutex);

  // Bounded scan: sub-hash arrays are compared with an early-out counter,
  // so a non-neighbor costs O(first budget+1 diffs) column-width compares.
  constexpr std::size_t kMaxCandidates = 8;
  std::size_t candidates = 0;
  for (std::size_t i = 0;
       i < shard.entries.size() && candidates < kMaxCandidates; ++i) {
    Shard::Entry& e = shard.entries[i];
    if (!e.live || !e.delta_capable || e.params_sig != params_sig ||
        e.n != jobs.n) {
      continue;
    }
    ++candidates;
    std::size_t diffs = 0;
    for (std::size_t j = 0; j < jobs.n && diffs <= budget; ++j) {
      if (e.subhashes[j] != subhashes[j]) ++diffs;
    }
    if (diffs == 0 || diffs > budget) continue;  // exact dup or too far

    // Confirm on the columns themselves: the changed mask must mark every
    // attribute-wise difference, sub-hash collisions included, or a reused
    // machine could silently carry a stale job.
    out.changed.assign(jobs.n, 0);
    out.changed_count = 0;
    bool confirmed = true;
    for (std::size_t j = 0; j < jobs.n; ++j) {
      const bool differs = e.jobs.release[j] != jobs.release[j] ||
                           e.jobs.deadline[j] != jobs.deadline[j] ||
                           e.jobs.length[j] != jobs.length[j] ||
                           std::bit_cast<std::uint64_t>(e.jobs.value[j]) !=
                               std::bit_cast<std::uint64_t>(jobs.value[j]);
      if (differs) {
        out.changed[j] = 1;
        if (++out.changed_count > budget) {
          confirmed = false;
          break;
        }
      }
    }
    if (!confirmed || out.changed_count == 0) continue;

    out.seed.assign_from(e.seed);
    out.strict_sched.assign_from(e.strict_sched);
    out.full_sched.assign_from(e.full_sched);
    e.referenced = true;
    ++shard.delta_hits;
    return true;
  }
  return false;
}

// --- introspection ----------------------------------------------------------

CacheStats SolveCache::stats() const {
  CacheStats total;
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    const Shard& shard = shards_[s];
    util::MutexLock lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.delta_hits += shard.delta_hits;
    total.bytes += shard.bytes;
    total.entries += shard.live;
  }
  return total;
}

diag::Report SolveCache::check_pressure() const {
  const CacheStats s = stats();
  diag::Report report;
  // Thrash heuristic: at least half of everything ever published has been
  // evicted again.  A warm cache evicts rarely; sustained churn means the
  // byte budget cannot hold the duplicate working set and hit rates will
  // stay near zero no matter how long the stream runs.
  if (s.insertions >= 8 && s.evictions * 2 >= s.insertions) {
    report
        .add(std::string(diag::rules::kRunCachePressure),
             "solve cache is thrashing: evictions keep pace with "
             "insertions, so entries rarely survive to their first hit; "
             "raise the cache byte budget (docs/CACHE.md)")
        .with("insertions", s.insertions)
        .with("evictions", s.evictions)
        .with("bytes", s.bytes)
        .with("budget_bytes", options_.max_bytes);
  }
  return report;
}

void SolveCache::clear() {
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    Shard& shard = shards_[s];
    util::MutexLock lock(shard.mutex);
    shard.entries.clear();
    shard.entries.shrink_to_fit();
    shard.bytes = 0;
    shard.live = 0;
    shard.clock_hand = 0;
  }
}

}  // namespace pobp
