#include "pobp/engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <utility>

#include "pobp/core/scratch.hpp"
#include "pobp/diag/registry.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/parallel.hpp"

namespace pobp {
namespace {

/// One-finding report for a contained solve failure (POBP-RUN-*).
diag::Report run_report(std::string_view rule, std::string message,
                        std::size_t instance) {
  diag::Report report;
  diag::Diagnostic& d = report.add(std::string(rule), std::move(message));
  if (instance != Session::kNoInstance) d.with("instance", instance);
  return report;
}

/// Sleeps the policy's deterministic backoff before retry `attempt`
/// (1-based), seeded by the instance id so replaying a request reproduces
/// its exact backoff schedule.  Clamped to the remaining wall-clock
/// deadline: a budgeted request never dozes past expiry — the next
/// attempt's first poll converts it into DeadlineExceeded instead.
/// Called from a catch handler, so it must not throw.
void backoff_before_retry(const RetryPolicy& policy, std::size_t attempt,
                          std::size_t instance, const BudgetGuard* guard) {
  const std::uint64_t seed = instance == Session::kNoInstance
                                 ? 0
                                 : static_cast<std::uint64_t>(instance);
  double delay = retry_backoff_s(policy, attempt, seed);
  if (guard != nullptr) {
    delay = std::min(delay, std::max(0.0, guard->remaining_deadline_s()));
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

// --- work-stealing shards ---------------------------------------------------
//
// One worker's shard of a batch: a half-open range [lo, hi) of instance
// indices packed into a single atomic word, so the owner's front-pop and a
// thief's steal-half are each one CAS on the same word.  Cache-line
// aligned: a worker hammering its own slot never invalidates a neighbour's.
// Ranges only ever shrink or split — a given packed value always denotes
// the same instance set — so the CAS is ABA-safe without tags.
struct alignas(64) WorkerSlot {
  std::atomic<std::uint64_t> range{0};
};

constexpr std::uint64_t pack_range(std::uint64_t lo, std::uint64_t hi) {
  return (lo << 32) | hi;
}
constexpr std::uint32_t range_lo(std::uint64_t r) {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_hi(std::uint64_t r) {
  return static_cast<std::uint32_t>(r);
}

}  // namespace

// --- Session ----------------------------------------------------------------

Session::Session(EngineOptions options)
    : options_(std::move(options)),
      scratch_(std::make_unique<SolveScratch>()) {}

Session::~Session() = default;

ScheduleResult Session::solve(const JobSet& jobs) {
  return solve(jobs, options_.schedule);
}

ScheduleResult Session::solve(const JobSet& jobs,
                              const ScheduleOptions& options) {
  ScheduleResult result;
  solve_into(jobs, options, result);
  return result;
}

void Session::solve_into(const JobSet& jobs, ScheduleResult& out) {
  solve_into(jobs, options_.schedule, out);
}

void Session::solve_into(const JobSet& jobs, const ScheduleOptions& options,
                         ScheduleResult& out) {
  if (!options_.budget.unlimited()) {
    BudgetGuard guard(options_.budget);
    try {
      const BudgetGuard::Scope budget_scope(&guard);
      solve_pipeline_into(jobs, options, options_.cache_mode, out);
      return;
    } catch (const BudgetError&) {
      if (options_.degrade != DegradePolicy::kApproximate) throw;
    }
    // guard uninstalled
    solve_degraded_into(jobs, options, options_.cache_mode, out);
    return;
  }
  solve_pipeline_into(jobs, options, options_.cache_mode, out);
}

CacheKey Session::cache_key_into_scratch(const JobSet& jobs,
                                         const ScheduleOptions& options,
                                         bool approximate,
                                         std::uint64_t& params_sig) {
  // Canonicalization happens here: the SoA mirror *is* the canonical form
  // (job-id order, one contiguous column per attribute), so keying reuses
  // the same staging the pipeline solves from.  All buffers are pooled —
  // a warm probe allocates nothing.
  SolveScratch& s = *scratch_;
  s.columns.build(jobs);
  params_sig = SolveCache::params_signature(options, approximate);
  s.subhashes.resize(jobs.size());
  SolveCache::job_subhashes(s.columns.view(), s.subhashes.data());
  return SolveCache::instance_key(s.columns.view(), s.subhashes.data(),
                                  params_sig);
}

bool Session::try_solve_cached(const JobSet& jobs,
                               const ScheduleOptions& options,
                               ScheduleResult& out) {
  SolveCache* cache = options_.cache.get();
  if (cache == nullptr || jobs.empty()) return false;
  std::uint64_t params_sig = 0;
  const CacheKey key =
      cache_key_into_scratch(jobs, options, /*approximate=*/false, params_sig);
  if (!cache->try_get(key, scratch_->columns.view(), params_sig, out)) {
    return false;
  }
  last_cache_hit_ = true;
  if (options_.collect_metrics) {
    ++metrics_.cache_hits;
    metrics_.record(jobs, out, PipelineTimings{}, 0.0, true);
  }
  return true;
}

void Session::solve_pipeline_into(const JobSet& jobs,
                                  const ScheduleOptions& options,
                                  CacheMode cache_mode, ScheduleResult& out) {
  POBP_CHECK(options.machine_count >= 1);
  // Cache probe before anything can fault or spend budget: an exact hit is
  // the memoized output of this very pipeline (pure in (jobs, options)), so
  // serving it is bit-identical to re-solving.  Empty instances are not
  // cached — the empty fast path below is already O(1).
  SolveCache* cache = options_.cache.get();
  const bool cacheable = cache != nullptr && !jobs.empty() &&
                         cache_mode != CacheMode::kOff;
  last_cache_hit_ = false;
  CacheKey key{};
  std::uint64_t params_sig = 0;
  if (cacheable) {
    key = cache_key_into_scratch(jobs, options, /*approximate=*/false,
                                 params_sig);
    if (cache->try_get(key, scratch_->columns.view(), params_sig, out)) {
      last_cache_hit_ = true;
      if (options_.collect_metrics) {
        ++metrics_.cache_hits;
        metrics_.record(jobs, out, PipelineTimings{}, 0.0, true);
      }
      return;
    }
    if (options_.collect_metrics) ++metrics_.cache_misses;
  }
  POBP_FAULT_POINT(kAlloc);
  Stopwatch total;
  PipelineTimings timings;

  out.value = 0;
  out.unbounded_value = 0;
  out.degraded = false;
  out.schedule.reset(options.machine_count);
  if (jobs.empty()) {
    if (options_.collect_metrics) {
      metrics_.record(jobs, out, timings, total.seconds(), true);
    }
    return;
  }

  // Stage 1: the ∞-preemptive reference schedule.  scratch_ is the
  // session's pooled pipeline state — every stage below reuses its buffers
  // (including the result arena's branch schedules), so nothing
  // reallocates once they have grown to the largest instance seen.
  Stopwatch sw;
  SolveScratch& s = *scratch_;
  s.ids.resize(jobs.size());
  std::iota(s.ids.begin(), s.ids.end(), JobId{0});
  seed_unbounded_schedule_into(jobs, options, s.ids, s, s.seed);
  timings.seed_s = sw.lap();
  out.unbounded_value = s.seed.total_value(jobs);

  if (options.k == 0) {
    // §5: iterative per-machine non-preemptive scheduling of the residual.
    s.remaining.assign(s.ids.begin(), s.ids.end());
    for (std::size_t m = 0;
         m < options.machine_count && !s.remaining.empty(); ++m) {
      schedule_nonpreemptive_into(jobs, s.remaining, &timings, s.lsa,
                                  out.schedule.machine(m));
      std::erase_if(s.remaining, [&](JobId id) {
        return out.schedule.machine(m).contains(id);
      });
    }
  } else {
    CombinedOptions combined;
    combined.k = options.k;
    combined.use_tm = options.use_tm;
    combined.tm_fork_min_nodes = options.tm_fork_min_nodes;
    // Delta re-solve: a cached near-duplicate (≤ delta_max_jobs mutated
    // jobs, same params) lets machines whose seed assignments the mutation
    // left untouched reuse the neighbor's branch schedules verbatim — the
    // per-machine stages are pure, so the result stays bit-identical
    // (SolveDeltaHint in pobp/core/pobp.hpp).
    SolveDeltaHint hint;
    const SolveDeltaHint* delta = nullptr;
    if (cacheable && cache->delta_enabled() &&
        cache->copy_delta_neighbor(s.columns.view(), s.subhashes.data(),
                                   params_sig, delta_)) {
      hint.seed = &delta_.seed;
      hint.strict_sched = &delta_.strict_sched;
      hint.full_sched = &delta_.full_sched;
      hint.job_changed = delta_.changed.data();
      delta = &hint;
      if (options_.collect_metrics) ++metrics_.cache_delta_patches;
    }
    k_preemption_combined_multi_into(jobs, s.seed, combined, &timings, s,
                                     out.schedule, delta);
  }
  out.value = out.schedule.total_value(jobs);

  bool valid = true;
  if (options_.validate) {
    sw.lap();
    // Verdict-only fast path: same predicates as validate(), but no
    // diag::Report (string) construction and zero allocations.  The full
    // diagnostics run only on the failure path, which trips the metrics
    // counter below and is investigated with pobp_lint / diagnose_schedule.
    valid = validate_fast(jobs, out.schedule, options.k, s.validate);
    timings.validate_s = sw.lap();
  }
  if (options_.collect_metrics) {
    metrics_.record(jobs, out, timings, total.seconds(), valid);
  }
  // Publish only after the pipeline returned cleanly AND the validator
  // passed: any fault above propagates out before this point, so a
  // mid-solve fault can never leave a partial entry behind.  The stage
  // schedules (seed + both reduction branches) make the entry a delta
  // neighbor for future near-duplicates; the k = 0 path has no reduction
  // branches, so its entry is result-only.
  if (cacheable && valid && cache_mode == CacheMode::kReadWrite) {
    const bool delta_capable = options.k != 0;
    const std::size_t evicted = cache->insert(
        key, s.columns.view(), s.subhashes.data(), params_sig, out,
        delta_capable ? &s.seed : nullptr,
        delta_capable ? &s.strict_sched : nullptr,
        delta_capable ? &s.full_sched : nullptr);
    if (options_.collect_metrics) {
      ++metrics_.cache_insertions;
      metrics_.cache_evictions += evicted;
    }
  }
}

void Session::solve_degraded_into(const JobSet& jobs,
                                  const ScheduleOptions& options,
                                  CacheMode cache_mode, ScheduleResult& out) {
  POBP_CHECK(options.machine_count >= 1);
  // Degraded results are cached too — under the *approximate* parameter
  // signature, so the sampled tier can never alias an exact answer (and
  // vice versa).  No stage schedules: degraded entries are result-only.
  SolveCache* cache = options_.cache.get();
  const bool cacheable = cache != nullptr && !jobs.empty() &&
                         cache_mode != CacheMode::kOff;
  last_cache_hit_ = false;
  CacheKey key{};
  std::uint64_t params_sig = 0;
  if (cacheable) {
    key = cache_key_into_scratch(jobs, options, /*approximate=*/true,
                                 params_sig);
    if (cache->try_get(key, scratch_->columns.view(), params_sig, out)) {
      last_cache_hit_ = true;
      if (options_.collect_metrics) {
        ++metrics_.cache_hits;
        metrics_.record(jobs, out, PipelineTimings{}, 0.0, true);
      }
      return;
    }
    if (options_.collect_metrics) ++metrics_.cache_misses;
  }
  Stopwatch total;
  PipelineTimings timings;

  out.value = 0;
  out.unbounded_value = 0;
  out.degraded = true;
  out.schedule.reset(options.machine_count);
  if (!jobs.empty()) {
    // The §4.3 approximate path: greedy-density seed for the reference
    // value, then LSA_CS directly on all jobs — no exact DP/B&B, no
    // laminarization, no forest.  Runs without a budget guard: it is the
    // fallback after the budget already fired.
    Stopwatch sw;
    SolveScratch& s = *scratch_;
    s.ids.resize(jobs.size());
    std::iota(s.ids.begin(), s.ids.end(), JobId{0});
    greedy_infinity_multi_into(jobs, s.ids, options.machine_count, s.greedy,
                               s.seed);
    timings.seed_s = sw.lap();
    out.unbounded_value = s.seed.total_value(jobs);
    lsa_cs_multi_into(jobs, s.ids, options.k, options.machine_count, s.lsa,
                      out.schedule);
    timings.lsa_s = sw.lap();
    out.value = out.schedule.total_value(jobs);
  }

  bool valid = true;
  if (options_.validate) {
    Stopwatch sw;
    valid = validate_fast(jobs, out.schedule, options.k, scratch_->validate);
    timings.validate_s = sw.lap();
  }
  if (options_.collect_metrics) {
    metrics_.record(jobs, out, timings, total.seconds(), valid);
  }
  if (cacheable && valid && cache_mode == CacheMode::kReadWrite) {
    const std::size_t evicted =
        cache->insert(key, scratch_->columns.view(), scratch_->subhashes.data(),
                      params_sig, out, nullptr, nullptr, nullptr);
    if (options_.collect_metrics) {
      ++metrics_.cache_insertions;
      metrics_.cache_evictions += evicted;
    }
  }
}

SolveOutcome Session::try_solve(const JobSet& jobs, std::size_t instance) {
  return try_solve_impl(jobs, options_.schedule, options_.budget,
                        options_.degrade, options_.cache_mode, instance);
}

SolveOutcome Session::try_solve(const JobSet& jobs,
                                const ScheduleOptions& options,
                                std::size_t instance) {
  return try_solve_impl(jobs, options, options_.budget, options_.degrade,
                        options_.cache_mode, instance);
}

SolveOutcome Session::try_solve(const JobSet& jobs,
                                const ScheduleOptions& options,
                                const SubmitOptions& submit,
                                std::size_t instance) {
  SolveBudget budget = submit.budget.value_or(options_.budget);
  // A request deadline tightens (never widens) the budget deadline.
  if (submit.deadline_s > 0 &&
      (budget.deadline_s <= 0 || submit.deadline_s < budget.deadline_s)) {
    budget.deadline_s = submit.deadline_s;
  }
  return try_solve_impl(jobs, options, budget,
                        submit.degrade.value_or(options_.degrade),
                        submit.cache.value_or(options_.cache_mode), instance);
}

std::optional<diag::Report> Session::try_solve_into(
    const JobSet& jobs, const ScheduleOptions& options,
    const SubmitOptions& submit, std::size_t instance, ScheduleResult& out) {
  SolveBudget budget = submit.budget.value_or(options_.budget);
  if (submit.deadline_s > 0 &&
      (budget.deadline_s <= 0 || submit.deadline_s < budget.deadline_s)) {
    budget.deadline_s = submit.deadline_s;
  }
  std::optional<diag::Report> failed = try_solve_into_impl(
      jobs, options, budget, submit.degrade.value_or(options_.degrade),
      submit.cache.value_or(options_.cache_mode), instance, out);
  // A failed solve may have left a partially written result behind; reset
  // the slot so callers never observe it (costs storage only on failure).
  if (failed) out = ScheduleResult{};
  return failed;
}

SolveOutcome Session::try_solve_degraded(const JobSet& jobs,
                                         const ScheduleOptions& options,
                                         std::size_t instance) {
  diag::Report rejected = check_schedule_options(jobs, options);
  if (!rejected.ok()) return Unexpected{std::move(rejected)};
  const fault::InstanceScope fault_scope(instance);
  try {
    ScheduleResult result;
    solve_degraded_into(jobs, options, options_.cache_mode, result);
    return result;
  } catch (const std::exception& e) {
    if (options_.collect_metrics) ++metrics_.pipeline_faults;
    return Unexpected{
        run_report(diag::rules::kRunPipelineFault, e.what(), instance)};
  } catch (...) {
    if (options_.collect_metrics) ++metrics_.pipeline_faults;
    return Unexpected{run_report(diag::rules::kRunPipelineFault,
                                 "unknown pipeline exception", instance)};
  }
}

SolveOutcome Session::try_solve_impl(const JobSet& jobs,
                                     const ScheduleOptions& options,
                                     const SolveBudget& budget,
                                     DegradePolicy degrade,
                                     CacheMode cache_mode,
                                     std::size_t instance) {
  ScheduleResult result;
  std::optional<diag::Report> failed = try_solve_into_impl(
      jobs, options, budget, degrade, cache_mode, instance, result);
  if (failed) return Unexpected{std::move(*failed)};
  return result;
}

std::optional<diag::Report> Session::try_solve_into_impl(
    const JobSet& jobs, const ScheduleOptions& options,
    const SolveBudget& budget, DegradePolicy degrade, CacheMode cache_mode,
    std::size_t instance, ScheduleResult& out) {
  diag::Report rejected = check_schedule_options(jobs, options);
  if (!rejected.ok()) return rejected;

  // Fault-injection triggers key on (site, instance, nth-call-within-
  // instance); the scope resets the per-site counters so placement is
  // identical for every worker count.
  const fault::InstanceScope fault_scope(instance);
  const RetryPolicy& retry = options_.retry;
  // EngineOptions::max_retries predates RetryPolicy; the effective attempt
  // cap honours whichever grants more attempts.
  const std::size_t attempts = std::max<std::size_t>(
      std::max<std::size_t>(1, retry.max_attempts), options_.max_retries + 1);
  const bool budgeted = !budget.unlimited();
  // One guard spans every attempt: the wall-clock deadline keeps running
  // and the op counter accumulates across retries, so retrying (and the
  // backoff sleeps between attempts) can never spend beyond the request's
  // SolveBudget.
  std::optional<BudgetGuard> guard;
  if (budgeted) guard.emplace(budget);
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      if (!budgeted) {
        solve_pipeline_into(jobs, options, cache_mode, out);
        return std::nullopt;
      }
      const BudgetGuard::Scope budget_scope(&*guard);
      solve_pipeline_into(jobs, options, cache_mode, out);
      return std::nullopt;
    } catch (const DeadlineExceeded& e) {
      return budget_fallback_into(jobs, options, degrade, cache_mode, instance,
                                  /*deadline=*/true, e.what(), out);
    } catch (const BudgetExhausted& e) {
      return budget_fallback_into(jobs, options, degrade, cache_mode, instance,
                                  /*deadline=*/false, e.what(), out);
    } catch (const std::exception& e) {
      if (attempt < attempts) {
        if (options_.collect_metrics) ++metrics_.retries;
        backoff_before_retry(retry, attempt, instance,
                             guard ? &*guard : nullptr);
        continue;
      }
      // Final-attempt downgrade: when every full-pipeline attempt
      // faulted, the policy may answer on the approximate path instead of
      // reporting the instance failed (result tagged degraded).
      if (retry.degrade_final_attempt) {
        try {
          solve_degraded_into(jobs, options, cache_mode, out);
          return std::nullopt;
        } catch (const std::exception& degraded_error) {
          if (options_.collect_metrics) ++metrics_.pipeline_faults;
          return run_report(diag::rules::kRunPipelineFault,
                            degraded_error.what(), instance);
        }
      }
      if (options_.collect_metrics) ++metrics_.pipeline_faults;
      return run_report(diag::rules::kRunPipelineFault, e.what(), instance);
    } catch (...) {
      if (options_.collect_metrics) ++metrics_.pipeline_faults;
      return run_report(diag::rules::kRunPipelineFault,
                        "unknown pipeline exception", instance);
    }
  }
}

std::optional<diag::Report> Session::budget_fallback_into(
    const JobSet& jobs, const ScheduleOptions& options, DegradePolicy degrade,
    CacheMode cache_mode, std::size_t instance, bool deadline,
    const char* what, ScheduleResult& out) {
  if (degrade == DegradePolicy::kApproximate) {
    try {
      solve_degraded_into(jobs, options, cache_mode, out);
      return std::nullopt;
    } catch (const std::exception& e) {
      if (options_.collect_metrics) ++metrics_.pipeline_faults;
      return run_report(diag::rules::kRunPipelineFault, e.what(), instance);
    }
  }
  if (options_.collect_metrics) {
    ++(deadline ? metrics_.deadline_exceeded : metrics_.budget_exhausted);
  }
  return run_report(deadline ? diag::rules::kRunDeadline
                             : diag::rules::kRunBudget,
                    what, instance);
}

// --- Engine -----------------------------------------------------------------

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      workers_(options_.workers != 0
                   ? options_.workers
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency())),
      inline_session_(options_) {
  // Fault-injection triggers are process-wide (the harness keys them by
  // instance + site); an explicit EngineOptions spec wins, otherwise the
  // POBP_FAULT_INJECT env var is honoured when set.
  if (!options_.fault_injection.empty()) {
    fault::arm(fault::parse_spec(options_.fault_injection));
  } else {
    fault::arm_from_env();
  }
}

Engine::~Engine() = default;

ScheduleResult Engine::solve(const JobSet& jobs) {
  return solve(jobs, options_.schedule);
}

ScheduleResult Engine::solve(const JobSet& jobs,
                             const ScheduleOptions& options) {
  util::MutexLock lock(inline_mutex_);
  return inline_session_.solve(jobs, options);
}

std::vector<ScheduleResult> Engine::solve_batch(
    std::span<const JobSet> instances, const SubmitOptions& submit) {
  std::vector<ScheduleResult> results;
  solve_batch_into(instances, submit, results);
  return results;
}

void Engine::solve_batch_into(std::span<const JobSet> instances,
                              const SubmitOptions& submit,
                              std::vector<ScheduleResult>& results) {
  // resize() keeps the surviving elements — and hence their schedules'
  // pooled storage — intact, so round-tripping the same vector gives
  // allocation-free steady-state batches (try_solve_into recycles
  // results[i]'s storage the way solve_into does).
  //
  // Contained form: a failed instance leaves a default (empty, value 0)
  // result in its slot and is reported through submit.on_error instead of
  // throwing out of a pool worker.  The error book-keeping is only
  // allocated when a callback wants it.
  results.resize(instances.size());
  const bool collect_errors = static_cast<bool>(submit.on_error);
  std::vector<std::optional<diag::Report>> errors(
      collect_errors ? instances.size() : 0);
  run_batch(instances.size(), [&](Session& session, std::size_t i) {
    std::optional<diag::Report> failed = session.try_solve_into(
        instances[i], options_.schedule, submit, i, results[i]);
    if (failed && collect_errors) errors[i] = std::move(failed);
  });
  if (collect_errors) {
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (errors[i].has_value()) submit.on_error(i, *errors[i]);
    }
  }
}

std::vector<SolveOutcome> Engine::try_solve_batch(
    std::span<const JobSet> instances, const SubmitOptions& submit) {
  std::vector<std::optional<SolveOutcome>> slots(instances.size());
  run_batch(instances.size(), [&](Session& session, std::size_t i) {
    slots[i].emplace(
        session.try_solve(instances[i], options_.schedule, submit, i));
  });
  std::vector<SolveOutcome> results;
  results.reserve(instances.size());
  for (std::optional<SolveOutcome>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  if (submit.on_error) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].has_value()) submit.on_error(i, results[i].error());
    }
  }
  return results;
}

// Deprecated pre-SubmitOptions shims: defaulted SubmitOptions means every
// knob falls back to EngineOptions, so these are pure delegations.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::vector<ScheduleResult> Engine::solve_batch(
    std::span<const JobSet> instances) {
  return solve_batch(instances, SubmitOptions{});
}

void Engine::solve_batch_into(std::span<const JobSet> instances,
                              std::vector<ScheduleResult>& results) {
  solve_batch_into(instances, SubmitOptions{}, results);
}

std::vector<SolveOutcome> Engine::try_solve_batch(
    std::span<const JobSet> instances) {
  return try_solve_batch(instances, SubmitOptions{});
}
#pragma GCC diagnostic pop

SolveOutcome Engine::try_solve(const JobSet& jobs) {
  util::MutexLock lock(inline_mutex_);
  return inline_session_.try_solve(jobs);
}

SolveOutcome Engine::try_solve(const JobSet& jobs,
                               const ScheduleOptions& options) {
  util::MutexLock lock(inline_mutex_);
  return inline_session_.try_solve(jobs, options);
}

void Engine::for_each_result(std::span<const JobSet> instances,
                             const ResultCallback& on_result) {
  std::vector<ScheduleResult> results(instances.size());
  std::mutex callback_mutex;
  run_batch(instances.size(), [&](Session& session, std::size_t i) {
    results[i] = session.solve(instances[i]);
    std::lock_guard cb_lock(callback_mutex);
    on_result(i, results[i]);
  });
}

void Engine::run_batch(std::size_t count, InstanceFn work) {
  if (count == 0) return;
  util::MutexLock lock(mutex_);
  Stopwatch batch;

  while (sessions_.size() < workers_) {
    sessions_.push_back(std::make_unique<Session>(options_));
  }

  const std::size_t active = std::min(workers_, count);
  if (active <= 1) {
    // Inline drain on the caller: no pool hop, no atomics — and the w = 1
    // steady-state path the allocation gate measures.
    Session& session = *sessions_[0];
    for (std::size_t i = 0; i < count; ++i) work(session, i);
    batch_seconds_ += batch.seconds();
    return;
  }

  // Sharded work stealing.  Every worker starts with a contiguous slice of
  // the instance indices in its own cache-line-sized slot; a worker whose
  // slice drains steals the upper half of the first non-empty victim in a
  // round-robin sweep seeded by its own index (deterministic victim
  // order).  Compare with the previous single shared fetch_add cursor:
  // under short solves every worker hammered one cache line per instance,
  // and the line bounced across every core in the pool.  Here the common
  // case touches only the worker's own slot; cross-worker traffic happens
  // only on the (rare) steals that rebalance skewed batches.
  POBP_CHECK_MSG(count <= std::numeric_limits<std::uint32_t>::max(),
                 "solve_batch: more than 2^32 instances per batch");
  const auto slots = std::make_unique<WorkerSlot[]>(active);
  const std::size_t base = count / active;
  const std::size_t extra = count % active;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < active; ++w) {
    const std::size_t end = begin + base + (w < extra ? 1 : 0);
    slots[w].range.store(pack_range(begin, end), std::memory_order_relaxed);
    begin = end;
  }

  // Termination: every instance index leaves exactly one slot exactly once
  // (a successful CAS), so `completed` reaching `count` means all work()
  // calls have returned and every worker's spin can exit.
  std::atomic<std::size_t> completed{0};
  const auto run_worker = [&](std::size_t self) {
    WorkerSlot& mine = slots[self];
    for (;;) {
      // Drain the own shard front to back.
      for (;;) {
        std::uint64_t cur = mine.range.load(std::memory_order_acquire);
        const std::uint32_t lo = range_lo(cur);
        const std::uint32_t hi = range_hi(cur);
        if (lo >= hi) break;
        if (!mine.range.compare_exchange_weak(cur, pack_range(lo + 1, hi),
                                              std::memory_order_acq_rel)) {
          continue;  // a thief moved hi; reread
        }
        work(*sessions_[self], lo);
        completed.fetch_add(1, std::memory_order_acq_rel);
      }
      if (completed.load(std::memory_order_acquire) >= count) return;

      // Steal the upper half of the first victim with ≥ 2 instances left
      // (a single remaining instance stays with its owner — stealing it
      // would just move the cache miss).  The stolen range is published to
      // the empty own slot, which only its owner ever writes.
      bool stole = false;
      for (std::size_t step = 1; step < active && !stole; ++step) {
        WorkerSlot& victim = slots[(self + step) % active];
        std::uint64_t cur = victim.range.load(std::memory_order_acquire);
        const std::uint32_t lo = range_lo(cur);
        const std::uint32_t hi = range_hi(cur);
        if (lo >= hi || hi - lo < 2) continue;
        const std::uint32_t mid = lo + (hi - lo + 1) / 2;  // victim keeps ⌈·⌉
        if (!victim.range.compare_exchange_strong(
                cur, pack_range(lo, mid), std::memory_order_acq_rel)) {
          continue;  // raced with the owner or another thief; next victim
        }
        mine.range.store(pack_range(mid, hi), std::memory_order_release);
        stole = true;
      }
      if (!stole) {
        if (completed.load(std::memory_order_acquire) >= count) return;
        std::this_thread::yield();
      }
    }
  };

  if (!pool_) pool_ = std::make_unique<ThreadPool>(workers_);
  for (std::size_t w = 0; w < active; ++w) {
    pool_->submit([&run_worker, w] { run_worker(w); });
  }
  pool_->wait_idle();

  batch_seconds_ += batch.seconds();
}

EngineMetrics Engine::metrics() const {
  EngineMetrics merged;
  {
    util::MutexLock lock(mutex_);
    for (const auto& session : sessions_) merged.merge(session->metrics());
    merged.batch_seconds += batch_seconds_;
  }
  {
    util::MutexLock lock(inline_mutex_);
    merged.merge(inline_session_.metrics());
  }
  return merged;
}

void Engine::reset_metrics() {
  {
    util::MutexLock lock(mutex_);
    for (const auto& session : sessions_) session->reset_metrics();
    batch_seconds_ = 0;
  }
  util::MutexLock lock(inline_mutex_);
  inline_session_.reset_metrics();
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

// --- one-call shim ----------------------------------------------------------

Expected<ScheduleResult, diag::Report> try_schedule_bounded(
    const JobSet& jobs, const ScheduleOptions& options) {
  // Fully contained: bad options come back as POBP-OPT-* findings,
  // in-pipeline faults as POBP-RUN-* findings.
  return Engine::shared().try_solve(jobs, options);
}

}  // namespace pobp
