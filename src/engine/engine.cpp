#include "pobp/engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "pobp/core/scratch.hpp"
#include "pobp/diag/registry.hpp"
#include "pobp/lsa/lsa.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/parallel.hpp"

namespace pobp {
namespace {

/// One-finding report for a contained solve failure (POBP-RUN-*).
diag::Report run_report(std::string_view rule, std::string message,
                        std::size_t instance) {
  diag::Report report;
  diag::Diagnostic& d = report.add(std::string(rule), std::move(message));
  if (instance != Session::kNoInstance) d.with("instance", instance);
  return report;
}

}  // namespace

// --- Session ----------------------------------------------------------------

Session::Session(EngineOptions options)
    : options_(std::move(options)),
      scratch_(std::make_unique<SolveScratch>()) {}

Session::~Session() = default;

ScheduleResult Session::solve(const JobSet& jobs) {
  return solve(jobs, options_.schedule);
}

ScheduleResult Session::solve(const JobSet& jobs,
                              const ScheduleOptions& options) {
  if (!options_.budget.unlimited()) {
    BudgetGuard guard(options_.budget);
    try {
      const BudgetGuard::Scope budget_scope(&guard);
      return solve_pipeline(jobs, options);
    } catch (const BudgetError&) {
      if (options_.degrade != DegradePolicy::kApproximate) throw;
    }
    return solve_degraded(jobs, options);  // guard uninstalled
  }
  return solve_pipeline(jobs, options);
}

ScheduleResult Session::solve_pipeline(const JobSet& jobs,
                                       const ScheduleOptions& options) {
  POBP_CHECK(options.machine_count >= 1);
  POBP_FAULT_POINT(kAlloc);
  Stopwatch total;
  PipelineTimings timings;

  ScheduleResult result;
  result.schedule = Schedule(options.machine_count);
  if (jobs.empty()) {
    if (options_.collect_metrics) {
      metrics_.record(jobs, result, timings, total.seconds(), true);
    }
    return result;
  }

  // Stage 1: the ∞-preemptive reference schedule.  scratch_ is the
  // session's pooled pipeline state — every stage below reuses its buffers,
  // so nothing reallocates once they have grown to the largest instance
  // seen.
  Stopwatch sw;
  SolveScratch& s = *scratch_;
  s.ids.resize(jobs.size());
  std::iota(s.ids.begin(), s.ids.end(), JobId{0});
  const Schedule seed = seed_unbounded_schedule(jobs, options, s.ids, &s);
  timings.seed_s = sw.lap();
  result.unbounded_value = seed.total_value(jobs);

  if (options.k == 0) {
    // §5: iterative per-machine non-preemptive scheduling of the residual.
    s.remaining.assign(s.ids.begin(), s.ids.end());
    for (std::size_t m = 0;
         m < options.machine_count && !s.remaining.empty(); ++m) {
      NonPreemptiveResult r =
          schedule_nonpreemptive(jobs, s.remaining, &timings, &s.lsa);
      result.schedule.machine(m) = std::move(r.schedule);
      std::erase_if(s.remaining, [&](JobId id) {
        return result.schedule.machine(m).contains(id);
      });
    }
  } else {
    const CombinedOptions combined{options.k, options.use_tm};
    result.schedule =
        k_preemption_combined_multi(jobs, seed, combined, &timings, &s)
            .schedule;
  }
  result.value = result.schedule.total_value(jobs);

  bool valid = true;
  if (options_.validate) {
    sw.lap();
    valid = static_cast<bool>(validate(jobs, result.schedule, options.k));
    timings.validate_s = sw.lap();
  }
  if (options_.collect_metrics) {
    metrics_.record(jobs, result, timings, total.seconds(), valid);
  }
  return result;
}

ScheduleResult Session::solve_degraded(const JobSet& jobs,
                                       const ScheduleOptions& options) {
  POBP_CHECK(options.machine_count >= 1);
  Stopwatch total;
  PipelineTimings timings;

  ScheduleResult result;
  result.degraded = true;
  result.schedule = Schedule(options.machine_count);
  if (!jobs.empty()) {
    // The §4.3 approximate path: greedy-density seed for the reference
    // value, then LSA_CS directly on all jobs — no exact DP/B&B, no
    // laminarization, no forest.  Runs without a budget guard: it is the
    // fallback after the budget already fired.
    Stopwatch sw;
    SolveScratch& s = *scratch_;
    s.ids.resize(jobs.size());
    std::iota(s.ids.begin(), s.ids.end(), JobId{0});
    const Schedule seed = greedy_infinity_multi(
        jobs, s.ids, options.machine_count, s.greedy);
    timings.seed_s = sw.lap();
    result.unbounded_value = seed.total_value(jobs);
    result.schedule = lsa_cs_multi(jobs, s.ids, options.k,
                                   options.machine_count, s.lsa);
    timings.lsa_s = sw.lap();
    result.value = result.schedule.total_value(jobs);
  }

  bool valid = true;
  if (options_.validate) {
    Stopwatch sw;
    valid = static_cast<bool>(validate(jobs, result.schedule, options.k));
    timings.validate_s = sw.lap();
  }
  if (options_.collect_metrics) {
    metrics_.record(jobs, result, timings, total.seconds(), valid);
  }
  return result;
}

SolveOutcome Session::try_solve(const JobSet& jobs, std::size_t instance) {
  return try_solve(jobs, options_.schedule, instance);
}

SolveOutcome Session::try_solve(const JobSet& jobs,
                                const ScheduleOptions& options,
                                std::size_t instance) {
  diag::Report rejected = check_schedule_options(jobs, options);
  if (!rejected.ok()) return Unexpected{std::move(rejected)};

  // Fault-injection triggers key on (site, instance, nth-call-within-
  // instance); the scope resets the per-site counters so placement is
  // identical for every worker count.
  const fault::InstanceScope fault_scope(instance);
  const bool budgeted = !options_.budget.unlimited();
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (!budgeted) return solve_pipeline(jobs, options);
      BudgetGuard guard(options_.budget);
      const BudgetGuard::Scope budget_scope(&guard);
      return solve_pipeline(jobs, options);
    } catch (const DeadlineExceeded& e) {
      return budget_fallback(jobs, options, instance, /*deadline=*/true,
                             e.what());
    } catch (const BudgetExhausted& e) {
      return budget_fallback(jobs, options, instance, /*deadline=*/false,
                             e.what());
    } catch (const std::exception& e) {
      if (attempt < options_.max_retries) {
        if (options_.collect_metrics) ++metrics_.retries;
        continue;
      }
      if (options_.collect_metrics) ++metrics_.pipeline_faults;
      return Unexpected{
          run_report(diag::rules::kRunPipelineFault, e.what(), instance)};
    } catch (...) {
      if (options_.collect_metrics) ++metrics_.pipeline_faults;
      return Unexpected{run_report(diag::rules::kRunPipelineFault,
                                   "unknown pipeline exception", instance)};
    }
  }
}

SolveOutcome Session::budget_fallback(const JobSet& jobs,
                                      const ScheduleOptions& options,
                                      std::size_t instance, bool deadline,
                                      const char* what) {
  if (options_.degrade == DegradePolicy::kApproximate) {
    try {
      return solve_degraded(jobs, options);
    } catch (const std::exception& e) {
      if (options_.collect_metrics) ++metrics_.pipeline_faults;
      return Unexpected{
          run_report(diag::rules::kRunPipelineFault, e.what(), instance)};
    }
  }
  if (options_.collect_metrics) {
    ++(deadline ? metrics_.deadline_exceeded : metrics_.budget_exhausted);
  }
  return Unexpected{run_report(deadline ? diag::rules::kRunDeadline
                                        : diag::rules::kRunBudget,
                               what, instance)};
}

// --- Engine -----------------------------------------------------------------

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      workers_(options_.workers != 0
                   ? options_.workers
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency())),
      inline_session_(options_) {
  // Fault-injection triggers are process-wide (the harness keys them by
  // instance + site); an explicit EngineOptions spec wins, otherwise the
  // POBP_FAULT_INJECT env var is honoured when set.
  if (!options_.fault_injection.empty()) {
    fault::arm(fault::parse_spec(options_.fault_injection));
  } else {
    fault::arm_from_env();
  }
}

Engine::~Engine() = default;

ScheduleResult Engine::solve(const JobSet& jobs) {
  return solve(jobs, options_.schedule);
}

ScheduleResult Engine::solve(const JobSet& jobs,
                             const ScheduleOptions& options) {
  std::lock_guard lock(inline_mutex_);
  return inline_session_.solve(jobs, options);
}

std::vector<ScheduleResult> Engine::solve_batch(
    std::span<const JobSet> instances) {
  std::vector<ScheduleResult> results(instances.size());
  run_batch(instances.size(), [&](Session& session, std::size_t i) {
    results[i] = session.solve(instances[i]);
  });
  return results;
}

std::vector<SolveOutcome> Engine::try_solve_batch(
    std::span<const JobSet> instances) {
  // SolveOutcome has no default constructor (it is a value or an error);
  // the workers fill optional slots which are then move-unwrapped.
  std::vector<std::optional<SolveOutcome>> slots(instances.size());
  run_batch(instances.size(), [&](Session& session, std::size_t i) {
    slots[i].emplace(session.try_solve(instances[i], i));
  });
  std::vector<SolveOutcome> results;
  results.reserve(instances.size());
  for (std::optional<SolveOutcome>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

SolveOutcome Engine::try_solve(const JobSet& jobs) {
  std::lock_guard lock(inline_mutex_);
  return inline_session_.try_solve(jobs);
}

SolveOutcome Engine::try_solve(const JobSet& jobs,
                               const ScheduleOptions& options) {
  std::lock_guard lock(inline_mutex_);
  return inline_session_.try_solve(jobs, options);
}

void Engine::for_each_result(std::span<const JobSet> instances,
                             const ResultCallback& on_result) {
  std::vector<ScheduleResult> results(instances.size());
  std::mutex callback_mutex;
  run_batch(instances.size(), [&](Session& session, std::size_t i) {
    results[i] = session.solve(instances[i]);
    std::lock_guard cb_lock(callback_mutex);
    on_result(i, results[i]);
  });
}

void Engine::run_batch(std::size_t count, const InstanceFn& work) {
  if (count == 0) return;
  std::lock_guard lock(mutex_);
  Stopwatch batch;

  while (sessions_.size() < workers_) {
    sessions_.push_back(std::make_unique<Session>(options_));
  }

  std::atomic<std::size_t> next{0};
  const auto drain = [&](Session& session) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      work(session, i);
    }
  };

  const std::size_t active = std::min(workers_, count);
  if (active <= 1) {
    drain(*sessions_[0]);
  } else {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(workers_);
    for (std::size_t w = 0; w < active; ++w) {
      Session& session = *sessions_[w];
      pool_->submit([&drain, &session] { drain(session); });
    }
    pool_->wait_idle();
  }

  batch_seconds_ += batch.seconds();
}

EngineMetrics Engine::metrics() const {
  EngineMetrics merged;
  {
    std::lock_guard lock(mutex_);
    for (const auto& session : sessions_) merged.merge(session->metrics());
    merged.batch_seconds += batch_seconds_;
  }
  {
    std::lock_guard lock(inline_mutex_);
    merged.merge(inline_session_.metrics());
  }
  return merged;
}

void Engine::reset_metrics() {
  {
    std::lock_guard lock(mutex_);
    for (const auto& session : sessions_) session->reset_metrics();
    batch_seconds_ = 0;
  }
  std::lock_guard lock(inline_mutex_);
  inline_session_.reset_metrics();
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

// --- one-call shims ---------------------------------------------------------

Expected<ScheduleResult, diag::Report> try_schedule_bounded(
    const JobSet& jobs, const ScheduleOptions& options) {
  // Fully contained: bad options come back as POBP-OPT-* findings,
  // in-pipeline faults as POBP-RUN-* findings.
  return Engine::shared().try_solve(jobs, options);
}

ScheduleResult schedule_bounded(const JobSet& jobs,
                                const ScheduleOptions& options) {
  auto result = try_schedule_bounded(jobs, options);
  if (!result) {
    throw std::invalid_argument("schedule_bounded: " +
                                result.error().first_error());
  }
  return std::move(result).value();
}

}  // namespace pobp
