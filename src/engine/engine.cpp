#include "pobp/engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "pobp/schedule/validate.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/parallel.hpp"

namespace pobp {

// --- Session ----------------------------------------------------------------

Session::Session(EngineOptions options) : options_(std::move(options)) {}

ScheduleResult Session::solve(const JobSet& jobs) {
  return solve(jobs, options_.schedule);
}

ScheduleResult Session::solve(const JobSet& jobs,
                              const ScheduleOptions& options) {
  POBP_ASSERT(options.machine_count >= 1);
  Stopwatch total;
  PipelineTimings timings;

  ScheduleResult result;
  result.schedule = Schedule(options.machine_count);
  if (jobs.empty()) {
    if (options_.collect_metrics) {
      metrics_.record(jobs, result, timings, total.seconds(), true);
    }
    return result;
  }

  // Stage 1: the ∞-preemptive reference schedule (ids_ is the session's
  // reusable scratch — no reallocation once it has grown to the largest
  // instance seen).
  Stopwatch sw;
  ids_.resize(jobs.size());
  std::iota(ids_.begin(), ids_.end(), JobId{0});
  const Schedule seed = seed_unbounded_schedule(jobs, options, ids_);
  timings.seed_s = sw.lap();
  result.unbounded_value = seed.total_value(jobs);

  if (options.k == 0) {
    // §5: iterative per-machine non-preemptive scheduling of the residual.
    remaining_.assign(ids_.begin(), ids_.end());
    for (std::size_t m = 0;
         m < options.machine_count && !remaining_.empty(); ++m) {
      NonPreemptiveResult r =
          schedule_nonpreemptive(jobs, remaining_, &timings);
      result.schedule.machine(m) = std::move(r.schedule);
      std::erase_if(remaining_, [&](JobId id) {
        return result.schedule.machine(m).contains(id);
      });
    }
  } else {
    const CombinedOptions combined{options.k, options.use_tm};
    result.schedule =
        k_preemption_combined_multi(jobs, seed, combined, &timings).schedule;
  }
  result.value = result.schedule.total_value(jobs);

  bool valid = true;
  if (options_.validate) {
    sw.lap();
    valid = static_cast<bool>(validate(jobs, result.schedule, options.k));
    timings.validate_s = sw.lap();
  }
  if (options_.collect_metrics) {
    metrics_.record(jobs, result, timings, total.seconds(), valid);
  }
  return result;
}

// --- Engine -----------------------------------------------------------------

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      workers_(options_.workers != 0
                   ? options_.workers
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency())),
      inline_session_(options_) {}

Engine::~Engine() = default;

ScheduleResult Engine::solve(const JobSet& jobs) {
  return solve(jobs, options_.schedule);
}

ScheduleResult Engine::solve(const JobSet& jobs,
                             const ScheduleOptions& options) {
  std::lock_guard lock(inline_mutex_);
  return inline_session_.solve(jobs, options);
}

std::vector<ScheduleResult> Engine::solve_batch(
    std::span<const JobSet> instances) {
  std::vector<ScheduleResult> results(instances.size());
  run_batch(instances, results.data(), nullptr);
  return results;
}

void Engine::for_each_result(std::span<const JobSet> instances,
                             const ResultCallback& on_result) {
  std::vector<ScheduleResult> results(instances.size());
  run_batch(instances, results.data(), &on_result);
}

void Engine::run_batch(std::span<const JobSet> instances,
                       ScheduleResult* results,
                       const ResultCallback* on_result) {
  if (instances.empty()) return;
  std::lock_guard lock(mutex_);
  Stopwatch batch;

  while (sessions_.size() < workers_) {
    sessions_.push_back(std::make_unique<Session>(options_));
  }

  std::mutex callback_mutex;
  const auto drain = [&](Session& session, std::atomic<std::size_t>& next) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= instances.size()) return;
      results[i] = session.solve(instances[i]);
      if (on_result) {
        std::lock_guard cb_lock(callback_mutex);
        (*on_result)(i, results[i]);
      }
    }
  };

  std::atomic<std::size_t> next{0};
  const std::size_t active = std::min(workers_, instances.size());
  if (active <= 1) {
    drain(*sessions_[0], next);
  } else {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(workers_);
    for (std::size_t w = 0; w < active; ++w) {
      Session& session = *sessions_[w];
      pool_->submit([&drain, &session, &next] { drain(session, next); });
    }
    pool_->wait_idle();
  }

  batch_seconds_ += batch.seconds();
}

EngineMetrics Engine::metrics() const {
  EngineMetrics merged;
  {
    std::lock_guard lock(mutex_);
    for (const auto& session : sessions_) merged.merge(session->metrics());
    merged.batch_seconds += batch_seconds_;
  }
  {
    std::lock_guard lock(inline_mutex_);
    merged.merge(inline_session_.metrics());
  }
  return merged;
}

void Engine::reset_metrics() {
  {
    std::lock_guard lock(mutex_);
    for (const auto& session : sessions_) session->reset_metrics();
    batch_seconds_ = 0;
  }
  std::lock_guard lock(inline_mutex_);
  inline_session_.reset_metrics();
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

// --- one-call shims ---------------------------------------------------------

Expected<ScheduleResult, diag::Report> try_schedule_bounded(
    const JobSet& jobs, const ScheduleOptions& options) {
  diag::Report report = check_schedule_options(jobs, options);
  if (!report.ok()) return Unexpected{std::move(report)};
  return Engine::shared().solve(jobs, options);
}

ScheduleResult schedule_bounded(const JobSet& jobs,
                                const ScheduleOptions& options) {
  auto result = try_schedule_bounded(jobs, options);
  if (!result) {
    throw std::invalid_argument("schedule_bounded: " +
                                result.error().first_error());
  }
  return std::move(result).value();
}

}  // namespace pobp
