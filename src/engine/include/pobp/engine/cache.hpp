// Content-addressed solve cache with incremental delta re-solve
// (docs/CACHE.md).
//
// Serving streams are full of duplicate and near-duplicate instances: the
// same job set resubmitted by another tenant, or a set that differs from a
// recent one by a handful of jobs.  SolveCache memoizes finished
// ScheduleResults under a deterministic 128-bit structural hash of
// (jobs, solve parameters) so an exact duplicate is answered with one
// pooled copy-out instead of a pipeline run, and keeps enough per-entry
// state (the seed and per-branch stage schedules plus per-job sub-hashes)
// for the engine to *delta-solve* near-duplicates — re-running only the
// machines whose laminar forests the mutation actually touched (see
// SolveDeltaHint in pobp/core/pobp.hpp).
//
// Determinism contract: a solve result is a pure function of
// (jobs, options), so serving a memoized result is bit-identical to
// re-solving by construction — provided the cache never aliases two
// distinct inputs.  Three mechanisms enforce that:
//   * the key is a 128-bit mix with no std::hash dependence (POBP-SRC-010:
//     std::hash is implementation-defined and differs across libraries);
//   * a hit additionally verifies the stored job columns byte-for-byte, so
//     even a 128-bit collision cannot surface a wrong result;
//   * exact and approximate (degraded-path) results key under different
//     parameter signatures, so the Fu/Huo/Zhao-style sampled tier can
//     never alias an exact answer.
//
// Concurrency: the table is sharded (power-of-two shard count) with one
// annotated Mutex per shard; eviction is CLOCK/second-chance under a byte
// budget.  Entries are recycled in place (capacity-preserving), so a warm
// hit performs zero steady-state heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "pobp/core/pobp.hpp"
#include "pobp/diag/diagnostic.hpp"
#include "pobp/schedule/columns.hpp"
#include "pobp/util/thread_annotations.hpp"

namespace pobp {

struct SolveCacheOptions {
  /// Total byte budget across all shards.  Entries are CLOCK-evicted when
  /// a shard outgrows its share; an entry larger than a whole shard's
  /// share is simply not admitted.
  std::size_t max_bytes = std::size_t{64} << 20;

  /// Shard count, rounded up to a power of two (minimum 1).  Instances
  /// with the same (parameter signature, n) always map to the same shard
  /// so delta neighbors are found under a single lock.
  std::size_t shards = 8;

  /// Maximum number of mutated jobs for which a near-duplicate qualifies
  /// as a delta-solve neighbor (0 disables delta solving).
  std::size_t delta_max_jobs = 4;
};

/// The 128-bit structural key: an FNV/xxhash-style mix over the job
/// columns and the solve parameters (see SolveCache::instance_key).
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Point-in-time counters (aggregated across shards).
struct CacheStats {
  std::uint64_t hits = 0;         ///< exact-key copy-outs served
  std::uint64_t misses = 0;       ///< lookups that found nothing
  std::uint64_t insertions = 0;   ///< entries published
  std::uint64_t evictions = 0;    ///< entries CLOCK-evicted for space
  std::uint64_t delta_hits = 0;   ///< near-duplicate neighbors served
  std::uint64_t bytes = 0;        ///< resident entry bytes
  std::uint64_t entries = 0;      ///< live entries
};

class SolveCache {
 public:
  explicit SolveCache(SolveCacheOptions options = {});
  ~SolveCache();

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  // --- keying (allocation-free, no std::hash) -----------------------------

  /// Folds every result-affecting ScheduleOptions field (k, machine count,
  /// seed strategy, TM toggle) plus the exact/approximate tier into one
  /// signature.  tm_fork_min_nodes is deliberately excluded: results are
  /// bit-identical regardless of it.
  static std::uint64_t params_signature(const ScheduleOptions& options,
                                        bool approximate);

  /// Per-job 64-bit sub-hash of (release, deadline, length, value-bits):
  /// independent per job (vectorizable) and the unit of delta detection.
  /// `out` must have room for view.n values.
  static void job_subhashes(const JobSetView& view, std::uint64_t* out);

  /// The instance key: sub-hashes folded in canonical (job-id) order with
  /// positional mixing, then n and the parameter signature.  Job-id order
  /// *is* the canonical order here — JobIds are positional and results
  /// address jobs by id, so two attribute-wise equal sets in different
  /// orders have genuinely different (permuted) results and must not
  /// alias (docs/CACHE.md, "Canonicalization").
  static CacheKey instance_key(const JobSetView& view,
                               const std::uint64_t* subhashes,
                               std::uint64_t params_sig);

  // --- lookup / publish ----------------------------------------------------

  /// Exact hit: copies the memoized result into `out` via pooled
  /// assign_from (zero steady-state allocations) and returns true.  The
  /// stored job columns are verified byte-for-byte before serving, so a
  /// key collision degrades to a miss, never to a wrong result.
  bool try_get(const CacheKey& key, const JobSetView& jobs,
               std::uint64_t params_sig, ScheduleResult& out);

  /// Publishes a finished solve.  Pass the stage schedules (seed / strict
  /// branch / full-reduction branch) to make the entry a delta-solve
  /// neighbor for future near-duplicates; pass nullptr (k = 0 path,
  /// degraded path) for a result-only entry.  Idempotent on an existing
  /// key.  Returns the number of entries evicted to make room.
  std::size_t insert(const CacheKey& key, const JobSetView& jobs,
                     const std::uint64_t* subhashes, std::uint64_t params_sig,
                     const ScheduleResult& result, const Schedule* seed,
                     const Schedule* strict_sched, const Schedule* full_sched);

  // --- delta neighbors -----------------------------------------------------

  /// Pooled copy-out target for a delta neighbor (owned by the caller —
  /// one per engine Session — so nothing borrows cache memory outside the
  /// shard lock).
  struct DeltaNeighbor {
    Schedule seed{1};
    Schedule strict_sched{1};
    Schedule full_sched{1};
    std::vector<std::uint8_t> changed;  ///< per-job "attributes differ" mask
    std::size_t changed_count = 0;
  };

  /// Finds a delta-capable entry with the same (params, n) differing from
  /// `jobs` in at most delta_max_jobs positions (pre-filtered on the
  /// per-job sub-hashes, confirmed on the columns themselves) and copies
  /// its stage schedules + changed mask into `out`.  False when delta
  /// solving is disabled or no neighbor qualifies.
  bool copy_delta_neighbor(const JobSetView& jobs,
                           const std::uint64_t* subhashes,
                           std::uint64_t params_sig, DeltaNeighbor& out);

  // --- introspection -------------------------------------------------------

  CacheStats stats() const;

  /// POBP-RUN-008 cache-pressure check: a non-empty report when the cache
  /// is thrashing (evictions keeping pace with insertions), meaning the
  /// byte budget is too small for the working set to ever get warm.
  [[nodiscard]] diag::Report check_pressure() const;

  /// Drops every entry (storage released; counters kept).
  void clear();

  const SolveCacheOptions& options() const { return options_; }
  std::size_t shard_count() const;
  bool delta_enabled() const { return options_.delta_max_jobs > 0; }

 private:
  struct Shard;

  Shard& shard_for(std::uint64_t params_sig, std::size_t n) const;

  SolveCacheOptions options_;
  std::size_t shard_mask_;        ///< shard count - 1 (power of two)
  std::size_t shard_budget_;      ///< max_bytes / shard count
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace pobp
