// pobp::Engine — reusable pipeline sessions and the parallel batch-solve
// runtime.
//
// The engine is the serving-shaped entry point to the pipeline: construct
// one Engine from EngineOptions, then stream instances through it —
//
//   pobp::Engine engine({.schedule = {.k = 1}, .workers = 8});
//   pobp::ScheduleResult one = engine.solve(jobs);
//   std::vector<pobp::ScheduleResult> all = engine.solve_batch(instances);
//   std::vector<pobp::SolveOutcome> out =
//       engine.try_solve_batch(instances, pobp::SubmitOptions{
//           .budget = pobp::SolveBudget{.deadline_s = 0.5},
//           .degrade = pobp::DegradePolicy::kApproximate});
//   std::cout << engine.metrics().to_table();
//
// solve_batch shards the instance list over a dedicated pobp::ThreadPool
// (one Session per worker).  Each worker owns a contiguous shard of the
// instance indices in a cache-line-aligned slot; when its shard drains it
// steals the upper half of the first non-empty victim's shard (sweep order
// seeded by the worker index — see docs/PERF.md).  The schedule is
// bit-deterministic: the results are identical for every worker count,
// because each instance's solve is a pure function of (jobs, options).
//
// For long-lived online serving — a bounded submission queue, admission
// control, per-tenant quotas and futures per request — see
// pobp::StreamEngine (engine/serve.hpp, docs/SERVING.md), which feeds this
// batch scheduler from a pump thread.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pobp/core/pobp.hpp"
#include "pobp/engine/cache.hpp"
#include "pobp/engine/metrics.hpp"
#include "pobp/engine/resilience.hpp"
#include "pobp/engine/submit.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/thread_annotations.hpp"

namespace pobp {

class ThreadPool;

struct EngineOptions {
  ScheduleOptions schedule;  ///< pipeline options applied to every instance

  /// Worker threads for solve_batch / for_each_result
  /// (0 = hardware_concurrency).  Single solve() always runs inline.
  std::size_t workers = 0;

  /// Run the Def. 2.1 validator on every result (timed as the validate
  /// stage; failures are counted in EngineMetrics::validation_failures).
  bool validate = true;

  bool collect_metrics = true;

  /// Per-instance solve limits (default: unlimited).  Enforced on the
  /// try_solve / try_solve_batch paths; plain solve()/solve_batch() throw
  /// BudgetError when a limit fires and no degrade policy absorbs it.
  SolveBudget budget = {};

  /// Fallback when `budget` is exhausted mid-pipeline.
  DegradePolicy degrade = DegradePolicy::kNone;

  /// Extra full-pipeline attempts after a contained pipeline fault
  /// (POBP-RUN-001) before the instance is reported as failed.  Budget and
  /// deadline faults are never retried (they would fail identically or
  /// blow through the deadline again).
  std::size_t max_retries = 0;

  /// Retry discipline for contained pipeline faults: attempts beyond the
  /// first wait a deterministic capped-exponential backoff (jitter seeded
  /// by the instance id, so replay is byte-identical) and draw from the
  /// *same* SolveBudget as the first attempt — retrying never spends
  /// beyond the request's limits.  `max_retries` above predates this
  /// policy; the effective attempt cap is
  /// max(retry.max_attempts, max_retries + 1).
  RetryPolicy retry = {};

  /// Fault-injection trigger spec (see pobp/util/faultinject.hpp), armed
  /// process-wide at Engine construction.  Empty = arm from the
  /// POBP_FAULT_INJECT environment variable if set.  Only live in
  /// POBP_FAULT_INJECTION builds (the asan-ubsan preset).
  std::string fault_injection = {};

  /// Content-addressed solve cache shared by every session of this engine
  /// (docs/CACHE.md).  nullptr disables caching entirely.  The cache is
  /// thread-safe and may be shared across engines.
  std::shared_ptr<SolveCache> cache = nullptr;

  /// Default cache discipline when `cache` is set; SubmitOptions::cache
  /// overrides it per request.
  CacheMode cache_mode = CacheMode::kReadWrite;
};

/// Per-instance outcome of the fault-contained solve paths: a result, or
/// the rule-tagged report (POBP-OPT-* / POBP-RUN-*) explaining why this
/// instance has none.
using SolveOutcome = Expected<ScheduleResult, diag::Report>;

/// One worker's reusable pipeline state: scratch id buffers pre-sized once
/// and reused across instances, plus a private metrics shard (so recording
/// is contention-free).  A Session is single-threaded; the Engine owns one
/// per worker.
class Session {
 public:
  explicit Session(EngineOptions options = {});
  ~Session();

  /// Runs the full pipeline (seed → laminarize → forest → prune / LSA_CS →
  /// left-merge → validate) on one instance with this session's options.
  /// Budget exhaustion that the degrade policy does not absorb, and
  /// pipeline faults, propagate as exceptions — use try_solve for the
  /// contained per-instance form.
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs);

  /// Same, overriding the schedule options for this call only.
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs,
                                     const ScheduleOptions& options);

  /// Pooled form of solve(): writes the result into `out`, whose schedule
  /// storage is recycled (capacity-retaining reset) instead of freed.
  /// Re-solving into the same ScheduleResult on a warmed session performs
  /// no steady-state heap allocations — the property the perf gate pins.
  void solve_into(const JobSet& jobs, ScheduleResult& out);
  void solve_into(const JobSet& jobs, const ScheduleOptions& options,
                  ScheduleResult& out);

  /// Fault-contained solve: every pipeline exception, invariant failure or
  /// budget/deadline overrun is caught at this boundary and converted into
  /// a rule-tagged diag::Report (POBP-OPT-* for rejected options,
  /// POBP-RUN-001/002/003 for pipeline fault / deadline / budget).
  /// `instance` is the batch index (used by fault-injection triggers and
  /// the report payload); pass kNoInstance for standalone solves.
  static constexpr std::size_t kNoInstance = static_cast<std::size_t>(-1);
  [[nodiscard]] SolveOutcome try_solve(const JobSet& jobs,
                                       std::size_t instance = kNoInstance);
  [[nodiscard]] SolveOutcome try_solve(const JobSet& jobs,
                                       const ScheduleOptions& options,
                                       std::size_t instance = kNoInstance);

  /// Per-request form: SubmitOptions overrides the session's budget and
  /// degrade policy for this call, and `submit.deadline_s` tightens the
  /// effective wall-clock deadline (the streaming path uses it to charge
  /// queue time against the request).  `submit.on_error` is not invoked —
  /// the outcome already carries the report.
  [[nodiscard]] SolveOutcome try_solve(const JobSet& jobs,
                                       const ScheduleOptions& options,
                                       const SubmitOptions& submit,
                                       std::size_t instance = kNoInstance);

  /// Pooled contained form: writes into `out` (schedule storage recycled,
  /// like solve_into) and returns the failure report instead of throwing —
  /// nullopt on success.  On failure `out` is left reset to the empty
  /// result.  This is the batch hot path under SubmitOptions: success
  /// costs no steady-state allocations.
  [[nodiscard]] std::optional<diag::Report> try_solve_into(
      const JobSet& jobs, const ScheduleOptions& options,
      const SubmitOptions& submit, std::size_t instance, ScheduleResult& out);

  /// Fault-contained solve on the §4.3 approximate path only (greedy
  /// seed + LSA_CS, result tagged degraded) — the overload tier of the
  /// streaming engine's admission control.
  [[nodiscard]] SolveOutcome try_solve_degraded(
      const JobSet& jobs, const ScheduleOptions& options,
      std::size_t instance = kNoInstance);

  /// Read-only cache probe: true iff the engine's solve cache already holds
  /// the exact answer for (jobs, options), copied into `out` (pooled).
  /// Never solves, never publishes, never throws on the lookup path.  The
  /// streaming engine's admission control uses this so queue-pressure
  /// degradation is bypassed for instances the cache can answer exactly
  /// (docs/SERVING.md).
  [[nodiscard]] bool try_solve_cached(const JobSet& jobs,
                                      const ScheduleOptions& options,
                                      ScheduleResult& out);

  /// True when the most recent successful solve on this session was served
  /// from the cache (exact hit) rather than computed.
  bool last_solve_was_cache_hit() const { return last_cache_hit_; }

  const EngineOptions& options() const { return options_; }
  const EngineMetrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = EngineMetrics(); }

 private:
  void solve_pipeline_into(const JobSet& jobs, const ScheduleOptions& options,
                           CacheMode cache_mode, ScheduleResult& out);
  void solve_degraded_into(const JobSet& jobs, const ScheduleOptions& options,
                           CacheMode cache_mode, ScheduleResult& out);
  /// Computes the cache key for (jobs, options) into the scratch staging
  /// buffers (columns + per-job sub-hashes) and returns it.  `approximate`
  /// selects the degraded-tier parameter signature, which never aliases
  /// the exact one.
  CacheKey cache_key_into_scratch(const JobSet& jobs,
                                  const ScheduleOptions& options,
                                  bool approximate,
                                  std::uint64_t& params_sig);
  SolveOutcome try_solve_impl(const JobSet& jobs,
                              const ScheduleOptions& options,
                              const SolveBudget& budget, DegradePolicy degrade,
                              CacheMode cache_mode, std::size_t instance);
  std::optional<diag::Report> try_solve_into_impl(
      const JobSet& jobs, const ScheduleOptions& options,
      const SolveBudget& budget, DegradePolicy degrade, CacheMode cache_mode,
      std::size_t instance, ScheduleResult& out);
  std::optional<diag::Report> budget_fallback_into(
      const JobSet& jobs, const ScheduleOptions& options,
      DegradePolicy degrade, CacheMode cache_mode, std::size_t instance,
      bool deadline, const char* what, ScheduleResult& out);

  EngineOptions options_;
  /// Private metrics shard, cache-line aligned so two sessions' hot
  /// counters never share a line: recording during a batch is entirely
  /// contention-free, and Engine::metrics() merges the shards once per
  /// snapshot (docs/ENGINE.md).
  alignas(64) EngineMetrics metrics_;
  // Every reusable pipeline buffer (pobp/core/scratch.hpp), heap-held so
  // this header stays light.  Grows to the largest instance seen, then the
  // pipeline hot path performs no steady-state allocations.
  std::unique_ptr<SolveScratch> scratch_;
  /// Pooled staging for a delta-solve neighbor copied out of the cache
  /// (session-owned so nothing borrows cache memory past the shard lock).
  SolveCache::DeltaNeighbor delta_;
  bool last_cache_hit_ = false;
};

/// Thread-safe batch-solve runtime: a fixed option set, a lazily created
/// worker pool, and one Session per worker.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Solves one instance on the calling thread (the inline session).
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs);
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs,
                                     const ScheduleOptions& options);

  /// Solves every instance in parallel; results[i] corresponds to
  /// instances[i].  Deterministic: identical output for any worker count.
  /// Every instance solves under `submit`'s budget / degrade / deadline
  /// overrides, **fault-contained** — an instance that fails yields a
  /// default (empty, value 0) ScheduleResult in its slot and
  /// `submit.on_error(i, report)` is invoked for it (serialized, in
  /// instance order, after the batch).
  [[nodiscard]] std::vector<ScheduleResult> solve_batch(
      std::span<const JobSet> instances, const SubmitOptions& submit);

  /// Pooled batch: fills `results` (resized to instances.size()) in place.
  /// Re-running batches into the same vector recycles every result's
  /// schedule storage — the serving-loop harvest pattern: pop what you
  /// need out of `results`, then pass the vector back in.  Success costs
  /// no steady-state allocations (the perf-gated property); the error path
  /// allocates only for failed slots.
  void solve_batch_into(std::span<const JobSet> instances,
                        const SubmitOptions& submit,
                        std::vector<ScheduleResult>& results);

  /// Fault-contained batch: results[i] is either instance i's result or
  /// the diag::Report explaining its failure (POBP-RUN-*).  One poisoned
  /// instance never aborts the batch or the process, and the successful
  /// entries are bit-identical to a fault-free solve_batch for every
  /// worker count.  Budget / degrade / deadline come from `submit`
  /// (falling back to EngineOptions); `submit.on_error` fires for each
  /// failed instance (serialized, in instance order, after the batch).
  [[nodiscard]] std::vector<SolveOutcome> try_solve_batch(
      std::span<const JobSet> instances, const SubmitOptions& submit);

  // --- deprecated pre-SubmitOptions signatures (one release) ------------
  // Thin delegating shims.  Note the semantic change carried by the
  // redesign: the solve_batch family is now fault-contained (failed slot =
  // empty result) instead of throwing out of a pool worker.
  [[deprecated("pass a SubmitOptions (use {} for engine defaults)")]]
  [[nodiscard]] std::vector<ScheduleResult> solve_batch(
      std::span<const JobSet> instances);
  [[deprecated("pass a SubmitOptions (use {} for engine defaults)")]]
  void solve_batch_into(std::span<const JobSet> instances,
                        std::vector<ScheduleResult>& results);
  [[deprecated("pass a SubmitOptions (use {} for engine defaults)")]]
  [[nodiscard]] std::vector<SolveOutcome> try_solve_batch(
      std::span<const JobSet> instances);

  /// Fault-contained single solve on the calling thread.
  [[nodiscard]] SolveOutcome try_solve(const JobSet& jobs);
  [[nodiscard]] SolveOutcome try_solve(const JobSet& jobs,
                                       const ScheduleOptions& options);

  /// Streaming variant: `on_result(index, result)` is invoked once per
  /// instance as it completes (unordered).  Callback invocations are
  /// serialized — the callback need not be thread-safe — and the result
  /// reference is only valid during the call.
  using ResultCallback =
      std::function<void(std::size_t, const ScheduleResult&)>;
  [[deprecated(
      "use StreamEngine::submit for streaming completion, or solve_batch "
      "with SubmitOptions::on_error")]] void
  for_each_result(std::span<const JobSet> instances,
                  const ResultCallback& on_result);

  /// Merged snapshot across the inline session and every worker session.
  [[nodiscard]] EngineMetrics metrics() const;
  void reset_metrics();

  const EngineOptions& options() const { return options_; }
  std::size_t worker_count() const { return workers_; }

  /// Process-wide default engine (what try_schedule_bounded runs on).
  static Engine& shared();

 private:
  /// The streaming front end pumps admitted requests into run_batch.
  friend class StreamEngine;
  /// Non-owning callable view over the batch lambdas.  A std::function
  /// here would heap-allocate once per batch (the capture lists outgrow
  /// the small-object buffer), which the steady-state allocation gate
  /// counts; the callee never outlives the caller's lambda, so a borrowed
  /// pointer pair is enough.
  class InstanceFn {
   public:
    template <typename F>
    InstanceFn(const F& fn)  // NOLINT(google-explicit-constructor)
        : ctx_(&fn), call_([](const void* ctx, Session& session,
                              std::size_t i) {
            (*static_cast<const F*>(ctx))(session, i);
          }) {}
    void operator()(Session& session, std::size_t i) const {
      call_(ctx_, session, i);
    }

   private:
    const void* ctx_;
    void (*call_)(const void*, Session&, std::size_t);
  };
  /// Drains instances [0, count) over the worker sessions with the sharded
  /// work-stealing scheduler (contiguous per-worker ranges, steal-half);
  /// `work(session, i)` must handle instance i completely (including error
  /// capture — an exception escaping `work` on a pool thread is fatal by
  /// ThreadPool contract).
  void run_batch(std::size_t count, InstanceFn work);

  EngineOptions options_;
  std::size_t workers_;

  /// Serializes batches and metrics access.
  mutable util::Mutex mutex_;
  /// Lazy, workers_ threads.
  std::unique_ptr<ThreadPool> pool_ POBP_GUARDED_BY(mutex_);
  /// One per worker, lazy.
  std::vector<std::unique_ptr<Session>> sessions_ POBP_GUARDED_BY(mutex_);
  /// Σ solve_batch wall time.
  double batch_seconds_ POBP_GUARDED_BY(mutex_) = 0;
  /// solve() / try_solve() state, serialized by its own lock so inline
  /// solves never contend with a running batch.
  mutable util::Mutex inline_mutex_;
  Session inline_session_ POBP_GUARDED_BY(inline_mutex_);
};

}  // namespace pobp
