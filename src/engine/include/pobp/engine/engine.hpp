// pobp::Engine — reusable pipeline sessions and the parallel batch-solve
// runtime.
//
// The one-shot schedule_bounded() free function re-allocates every scratch
// structure and solves exactly one instance per call.  The engine is the
// serving-shaped entry point: construct one Engine from EngineOptions, then
// stream instances through it —
//
//   pobp::Engine engine({.schedule = {.k = 1}, .workers = 8});
//   pobp::ScheduleResult one = engine.solve(jobs);
//   std::vector<pobp::ScheduleResult> all = engine.solve_batch(instances);
//   engine.for_each_result(instances, [&](std::size_t i, const auto& r) {
//     ...  // streaming: called as instances complete
//   });
//   std::cout << engine.metrics().to_table();
//
// solve_batch shards the instance list over a dedicated pobp::ThreadPool
// (one Session per worker, work-queue by instance index) and is
// bit-deterministic: the results are identical for every worker count,
// because each instance's solve is a pure function of (jobs, options).
//
// schedule_bounded() remains as a thin shim over the process-wide
// Engine::shared() instance.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "pobp/core/pobp.hpp"
#include "pobp/engine/metrics.hpp"

namespace pobp {

class ThreadPool;

struct EngineOptions {
  ScheduleOptions schedule;  ///< pipeline options applied to every instance

  /// Worker threads for solve_batch / for_each_result
  /// (0 = hardware_concurrency).  Single solve() always runs inline.
  std::size_t workers = 0;

  /// Run the Def. 2.1 validator on every result (timed as the validate
  /// stage; failures are counted in EngineMetrics::validation_failures).
  bool validate = true;

  bool collect_metrics = true;
};

/// One worker's reusable pipeline state: scratch id buffers pre-sized once
/// and reused across instances, plus a private metrics shard (so recording
/// is contention-free).  A Session is single-threaded; the Engine owns one
/// per worker.
class Session {
 public:
  explicit Session(EngineOptions options = {});

  /// Runs the full pipeline (seed → laminarize → forest → prune / LSA_CS →
  /// left-merge → validate) on one instance with this session's options.
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs);

  /// Same, overriding the schedule options for this call only.
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs,
                                     const ScheduleOptions& options);

  const EngineOptions& options() const { return options_; }
  const EngineMetrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = EngineMetrics(); }

 private:
  EngineOptions options_;
  EngineMetrics metrics_;
  std::vector<JobId> ids_;        // all_ids scratch
  std::vector<JobId> remaining_;  // k = 0 residual scratch
};

/// Thread-safe batch-solve runtime: a fixed option set, a lazily created
/// worker pool, and one Session per worker.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Solves one instance on the calling thread (the inline session).
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs);
  [[nodiscard]] ScheduleResult solve(const JobSet& jobs,
                                     const ScheduleOptions& options);

  /// Solves every instance in parallel; results[i] corresponds to
  /// instances[i].  Deterministic: identical output for any worker count.
  [[nodiscard]] std::vector<ScheduleResult> solve_batch(
      std::span<const JobSet> instances);

  /// Streaming variant: `on_result(index, result)` is invoked once per
  /// instance as it completes (unordered).  Callback invocations are
  /// serialized — the callback need not be thread-safe — and the result
  /// reference is only valid during the call.
  using ResultCallback =
      std::function<void(std::size_t, const ScheduleResult&)>;
  void for_each_result(std::span<const JobSet> instances,
                       const ResultCallback& on_result);

  /// Merged snapshot across the inline session and every worker session.
  [[nodiscard]] EngineMetrics metrics() const;
  void reset_metrics();

  const EngineOptions& options() const { return options_; }
  std::size_t worker_count() const { return workers_; }

  /// Process-wide default engine (what schedule_bounded runs on).
  static Engine& shared();

 private:
  void run_batch(std::span<const JobSet> instances, ScheduleResult* results,
                 const ResultCallback* on_result);

  EngineOptions options_;
  std::size_t workers_;

  mutable std::mutex mutex_;  // serializes batches and metrics access
  std::unique_ptr<ThreadPool> pool_;            // lazy, workers_ threads
  std::vector<std::unique_ptr<Session>> sessions_;  // one per worker, lazy
  double batch_seconds_ = 0;                    // Σ solve_batch wall time
  Session inline_session_;                      // solve() state
  mutable std::mutex inline_mutex_;
};

}  // namespace pobp
