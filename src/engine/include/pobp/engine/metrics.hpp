// Per-stage metrics for the batch-solve engine.
//
// Every Session accumulates one EngineMetrics shard while it solves;
// Engine::metrics() merges the shards into a snapshot.  The schema is
// documented in docs/ENGINE.md and is exported two ways: an ASCII table
// (to_table) for terminals and a single JSON object (to_json) for
// dashboards and CI artifacts.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "pobp/core/pobp.hpp"
#include "pobp/util/stats.hpp"
#include "pobp/util/timing.hpp"

namespace pobp {

/// The pipeline stages the engine times (order = report order).
enum class Stage : std::size_t {
  kSeed = 0,    ///< ∞-preemptive reference schedule
  kLaminarize,  ///< restrict + laminarize (§4.1)
  kForest,      ///< build_schedule_forest
  kPrune,       ///< TM / LevelledContraction k-BAS pruning
  kLsa,         ///< LSA_CS branches (whole §5 path when k = 0)
  kMerge,       ///< left-merge rebuild (Lemma 4.1)
  kValidate,    ///< Def. 2.1 validation of the result
};
inline constexpr std::size_t kStageCount = 7;

std::string_view to_string(Stage stage);

/// Fixed-edge histogram: counts_[0] = (-inf, edges[0]), counts_[i] =
/// [edges[i-1], edges[i]), counts_.back() = [edges.back(), +inf).
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void add(double x);
  void merge(const Histogram& other);  ///< edges must match

  const std::vector<double>& edges() const { return edges_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t total() const;

  /// "[1.5, 2)" / "< 1" / ">= 10" — the i-th bucket's label.
  std::string bucket_label(std::size_t i) const;

 private:
  std::vector<double> edges_;          // ascending
  std::vector<std::size_t> counts_;    // edges_.size() + 1 buckets
};

/// Aggregated over every instance a Session / Engine solved.
struct EngineMetrics {
  EngineMetrics();

  std::size_t instances = 0;
  std::size_t validation_failures = 0;  ///< should stay 0
  std::size_t jobs_seen = 0;            ///< Σ n over instances
  std::size_t jobs_scheduled = 0;
  std::size_t preemptions = 0;          ///< Σ preemptions over all jobs
  std::size_t infinite_prices = 0;      ///< value == 0 < unbounded_value

  // Fault-containment counters (the try_solve paths; docs/ROBUSTNESS.md).
  std::size_t degraded_solves = 0;      ///< budget hit → approximate fallback
  std::size_t pipeline_faults = 0;      ///< POBP-RUN-001 reports
  std::size_t deadline_exceeded = 0;    ///< POBP-RUN-002 reports
  std::size_t budget_exhausted = 0;     ///< POBP-RUN-003 reports
  std::size_t retries = 0;              ///< pipeline re-attempts (max_retries)

  // Solve-cache counters (docs/CACHE.md).  Hits/misses are counted at the
  // session, not the cache, so a shared SolveCache still yields per-engine
  // numbers; delta_patches counts solves that reused a near-duplicate
  // neighbor's stage schedules.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_insertions = 0;
  std::size_t cache_evictions = 0;
  std::size_t cache_delta_patches = 0;

  Value value_bounded = 0;              ///< Σ val(schedule)
  Value value_unbounded = 0;            ///< Σ val(seed schedule)
  double batch_seconds = 0;             ///< wall time of solve_batch calls

  RunningStats solve_seconds;           ///< per-instance end-to-end
  RunningStats price;                   ///< finite prices only
  std::array<RunningStats, kStageCount> stage_seconds;

  Histogram price_histogram;
  Histogram value_histogram;            ///< per-instance bounded value

  /// Folds one solved instance into the accumulators.
  void record(const JobSet& jobs, const ScheduleResult& result,
              const PipelineTimings& timings, double seconds, bool valid);

  void merge(const EngineMetrics& other);

  /// Instances per wall-clock second of batch time (0 when unknown).
  double instances_per_second() const;

  std::string to_table() const;
  std::string to_json() const;
};

}  // namespace pobp
