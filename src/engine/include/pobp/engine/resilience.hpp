// Resilience primitives for the serving stack (docs/ROBUSTNESS.md):
// deterministic retry backoff, per-tenant token-bucket rate limiting
// (POBP-RUN-006), per-tenant circuit breakers (POBP-RUN-007), watchdog
// health states, and the allocation-free latency histogram behind
// TenantStats.
//
// Everything here is mechanism, not policy: the types take explicit
// timestamps (seconds on the caller's monotonic clock) instead of reading
// a clock themselves, so unit tests drive them deterministically and the
// StreamEngine passes steady_clock time.  None of the classes allocate
// after construction; TokenBucket and CircuitBreaker serialize their tiny
// state transitions behind an internal mutex (they sit on the admission
// path, *above* the lock-free SubmitQueue — see POBP-SRC-007), while
// LatencyHistogram is a fixed array of relaxed atomic counters so workers
// record latencies contention-free.
//
// Determinism contract: with faults disarmed none of these mechanisms
// fires on the golden replay path — retry backoff only runs after a
// contained pipeline fault, a generously configured bucket never sheds,
// and a breaker only trips on consecutive POBP-RUN-001 failures — so
// replayed streams stay byte-identical across worker counts
// (docs/SERVING.md).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "pobp/util/thread_annotations.hpp"

namespace pobp {

// --- retry / backoff --------------------------------------------------------

/// Retry discipline for transient contained pipeline faults
/// (POBP-RUN-001).  Deadline / budget exhaustion is never retried — it
/// would fail identically — and every retry draws from the *same*
/// SolveBudget as the first attempt, so a budgeted request can never
/// spend beyond its limits no matter how many attempts the policy allows.
struct RetryPolicy {
  /// Total full-pipeline attempts (1 = no retry).
  std::size_t max_attempts = 1;

  /// Backoff before retry r (1-based) is
  /// min(base * 2^(r-1), max) * jitter, jitter uniform in
  /// [1 - jitter_frac, 1 + jitter_frac] from a PRNG seeded by the request
  /// id — deterministic per request, decorrelated across requests.
  double base_backoff_s = 0.0005;
  double max_backoff_s = 0.020;
  double jitter_frac = 0.5;

  /// Let the final attempt downgrade to the approximate path
  /// (DegradePolicy::kApproximate) when every full-pipeline attempt
  /// faulted: a persistent fault still gets an answer, tagged degraded.
  bool degrade_final_attempt = false;

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }
};

/// The backoff delay (seconds) before retry `attempt` (1-based: the first
/// retry is attempt 1) of request `seed`.  Pure function — replaying a
/// request reproduces its exact backoff schedule.
[[nodiscard]] double retry_backoff_s(const RetryPolicy& policy,
                                     std::size_t attempt, std::uint64_t seed);

// --- token-bucket rate limiting ---------------------------------------------

/// Per-tenant admission rate (POBP-RUN-006).  Disabled by default: rate
/// decisions depend on wall-clock arrival times, so `pobp serve` only
/// enables them on request (replay determinism, docs/SERVING.md).
struct RateLimit {
  double tokens_per_s = 0;  ///< sustained admissions/second (0 = disabled)
  double burst = 1;         ///< bucket depth (peak admissions in an instant)

  [[nodiscard]] bool enabled() const { return tokens_per_s > 0; }
};

/// A token bucket over an explicit clock: `try_acquire(now_s)` refills
/// `tokens_per_s * elapsed` (capped at `burst`) and spends one token.
/// Thread-safe; one instance per tenant.
class TokenBucket {
 public:
  /// (Re)configures the bucket and fills it to `burst` as of `now_s`.
  void configure(const RateLimit& limit, double now_s);

  /// Spends one token if available.  Always admits when unconfigured or
  /// the limit is disabled.
  [[nodiscard]] bool try_acquire(double now_s);

  /// Racy estimate of the current token count (refilled to `now_s`).
  [[nodiscard]] double available(double now_s) const;

  [[nodiscard]] bool enabled() const;

 private:
  mutable util::Mutex mutex_;
  RateLimit limit_ POBP_GUARDED_BY(mutex_);
  double tokens_ POBP_GUARDED_BY(mutex_) = 0;
  double refilled_at_s_ POBP_GUARDED_BY(mutex_) = 0;

  void refill(double now_s) POBP_REQUIRES(mutex_);
};

// --- circuit breaker --------------------------------------------------------

/// Per-tenant breaker over contained pipeline faults (POBP-RUN-007).
/// Closed → (failure_threshold consecutive POBP-RUN-001 outcomes) → open
/// (sheds for cooldown_s) → half-open (admits half_open_probes probes) →
/// success_to_close consecutive probe successes close it again; one probe
/// failure re-opens it.  Only POBP-RUN-001 counts as failure: budget /
/// deadline / admission rejections are the request's own verdicts, not
/// evidence the tenant's pipeline is unhealthy.
struct BreakerPolicy {
  std::size_t failure_threshold = 0;  ///< consecutive faults to trip (0 = off)
  double cooldown_s = 1.0;            ///< open → half-open delay
  std::size_t half_open_probes = 1;   ///< admissions allowed while half-open
  std::size_t success_to_close = 1;   ///< probe successes that close it

  [[nodiscard]] bool enabled() const { return failure_threshold > 0; }
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] std::string_view to_string(BreakerState state);

class CircuitBreaker {
 public:
  void configure(const BreakerPolicy& policy);

  /// Admission check at `now_s`.  In the open state this flips to
  /// half-open once the cooldown has elapsed; in half-open it admits up
  /// to `half_open_probes` probes and sheds the rest.  Always admits when
  /// disabled.
  [[nodiscard]] bool try_admit(double now_s);

  /// Returns an admitted-but-never-completed slot (the request was shed
  /// later in admission, e.g. queue-full), so half-open probe accounting
  /// cannot leak.
  void on_abandoned();

  /// Outcome feedback from completed requests.
  void on_success();
  void on_failure(double now_s);  ///< a contained POBP-RUN-001 outcome

  [[nodiscard]] BreakerState state(double now_s) const;
  [[nodiscard]] std::uint64_t trips() const;
  [[nodiscard]] bool enabled() const;

 private:
  mutable util::Mutex mutex_;
  BreakerPolicy policy_ POBP_GUARDED_BY(mutex_);
  BreakerState state_ POBP_GUARDED_BY(mutex_) = BreakerState::kClosed;
  std::size_t consecutive_failures_ POBP_GUARDED_BY(mutex_) = 0;
  std::size_t probes_issued_ POBP_GUARDED_BY(mutex_) = 0;
  std::size_t probe_successes_ POBP_GUARDED_BY(mutex_) = 0;
  double opened_at_s_ POBP_GUARDED_BY(mutex_) = 0;
  std::uint64_t trips_ POBP_GUARDED_BY(mutex_) = 0;

  void trip(double now_s) POBP_REQUIRES(mutex_);
  void maybe_half_open(double now_s) POBP_REQUIRES(mutex_);
};

// --- watchdog health --------------------------------------------------------

/// Pump-progress watchdog configuration.  Disabled by default
/// (poll_interval_s = 0): the watchdog thread only exists when asked for.
struct WatchdogPolicy {
  double poll_interval_s = 0;  ///< health poll cadence (0 = disabled)

  /// No completion progress while work is pending for this long marks the
  /// engine stalled: new admissions are solved on the degraded path until
  /// progress resumes (graceful degradation, docs/SERVING.md).
  double stall_s = 0.5;

  [[nodiscard]] bool enabled() const { return poll_interval_s > 0; }
};

enum class HealthState {
  kHealthy,   ///< completions keep pace with admissions
  kDegraded,  ///< recovering: progress resumed, backlog still draining
  kStalled,   ///< pending work without progress for >= stall_s
};

[[nodiscard]] std::string_view to_string(HealthState state);

// --- latency histogram ------------------------------------------------------

/// Fixed-shape snapshot of a LatencyHistogram: bucket `i` counts request
/// latencies in [2^i, 2^(i+1)) microseconds, plus the quantiles
/// interpolated from the bucket upper edges.
struct LatencySnapshot {
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

/// Allocation-free log-bucket latency recorder: 32 power-of-two
/// microsecond buckets of relaxed atomic counters.  Concurrent record()
/// calls never contend on anything but the counter itself.
class LatencyHistogram {
 public:
  void record(double seconds);

  [[nodiscard]] LatencySnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, LatencySnapshot::kBuckets> counts_{};
};

}  // namespace pobp
