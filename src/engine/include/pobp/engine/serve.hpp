// pobp::StreamEngine — the long-lived streaming front end over the batch
// Engine (docs/SERVING.md).
//
// Requests enter through a bounded lock-free MPSC SubmitQueue
// (engine/submit.hpp); a single pump thread drains them in admission order
// and feeds the Engine's work-stealing batch scheduler, fulfilling one
// std::future<SolveOutcome> per request.  Admission control happens at
// submit time, before anything touches the queue:
//
//   * full queue     → submit() blocks (backpressure); try_submit() sheds
//                      the request with a POBP-RUN-004 outcome instead.
//   * tenant quota   → StreamOptions::tenant_max_in_flight caps one
//                      tenant's queued+running requests; beyond it the
//                      request is rejected with POBP-RUN-005.
//   * overload tier  → with StreamOptions::overload_degrade ==
//                      DegradePolicy::kApproximate, requests admitted while
//                      the queue is ≥ ¾ full are solved on the degraded
//                      (greedy + LSA_CS) path instead of being shed.
//
// Determinism: every request's outcome is a pure function of (jobs,
// options) — worker count, queue depth and pump batching never change an
// answer, only its latency.  The request id (the admission index) doubles
// as the fault-injection instance, so fault placement is reproducible
// across runs and worker counts.  Admission *decisions* (shed / quota /
// degrade-tier) depend on queue occupancy and are therefore timing-
// dependent by nature; `pobp serve` keeps them disabled unless explicitly
// requested so replayed streams stay byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pobp/engine/engine.hpp"
#include "pobp/engine/resilience.hpp"
#include "pobp/engine/submit.hpp"

namespace pobp {

struct StreamOptions {
  /// Options for the embedded Engine (workers, schedule, budget, degrade,
  /// validation, fault injection).
  EngineOptions engine = {};

  /// Submission queue capacity (rounded up to a power of two).  A full
  /// queue blocks submit() and sheds try_submit().
  std::size_t queue_capacity = 1024;

  /// Maximum requests the pump hands to one Engine batch.  Larger batches
  /// amortize scheduling; smaller ones bound per-request latency.
  std::size_t max_batch = 64;

  /// Per-tenant in-flight cap (queued + solving); 0 = unlimited.
  /// Exceeding it rejects the submission with POBP-RUN-005.
  std::size_t tenant_max_in_flight = 0;

  /// Overload tier: kApproximate solves requests admitted while the queue
  /// is ≥ ¾ full on the degraded path (value guarantee forfeited, request
  /// still answered).  kNone disables the tier.
  DegradePolicy overload_degrade = DegradePolicy::kNone;

  /// Default per-tenant admission rate (POBP-RUN-006); disabled by
  /// default so replayed streams stay byte-identical.  A tenant's first
  /// submission carrying SubmitOptions::rate_limit overrides this for
  /// that tenant.
  RateLimit tenant_rate = {};

  /// Per-tenant circuit breaker over contained pipeline faults
  /// (POBP-RUN-007); disabled by default.  (Retry/backoff for those same
  /// faults is configured on `engine.retry`.)
  BreakerPolicy breaker = {};

  /// Pump-progress watchdog: detects stalls (pending work without
  /// completion progress for >= stall_s) and degrades new admissions
  /// until progress resumes; disabled by default.
  WatchdogPolicy watchdog = {};
};

/// Per-tenant serving counters (monotonic since construction).
struct TenantStats {
  std::uint64_t submitted = 0;       ///< admission attempts
  std::uint64_t completed = 0;       ///< outcomes delivered (ok or report)
  std::uint64_t failed = 0;          ///< outcomes that carried a report
  std::uint64_t rejected_quota = 0;  ///< POBP-RUN-005 at admission
  std::uint64_t shed = 0;            ///< POBP-RUN-004 at admission
  std::uint64_t degraded = 0;        ///< solved on the degraded tier
  std::uint64_t cache_hits = 0;      ///< answered from the solve cache
  std::uint64_t rejected_rate = 0;   ///< POBP-RUN-006 at admission
  std::uint64_t rejected_breaker = 0;  ///< POBP-RUN-007 at admission
  std::uint64_t breaker_trips = 0;     ///< closed → open transitions
  BreakerState breaker_state = BreakerState::kClosed;
  LatencySnapshot latency = {};  ///< admission → completion, completed only
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamOptions options = {});

  /// Drains every admitted request, then stops the pump.  Submitting
  /// concurrently with destruction is undefined; submissions racing a
  /// destructor would be shed anyway.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Submits one instance; blocks while the queue is full (backpressure).
  /// The future resolves to the request's SolveOutcome.
  std::future<SolveOutcome> submit(JobSet jobs, SubmitOptions options = {});
  std::future<SolveOutcome> submit(JobSet jobs,
                                   const ScheduleOptions& schedule,
                                   SubmitOptions options = {});

  /// Non-blocking admission: a full queue sheds the request and the future
  /// resolves immediately to a POBP-RUN-004 report.
  std::future<SolveOutcome> try_submit(JobSet jobs,
                                       SubmitOptions options = {});
  std::future<SolveOutcome> try_submit(JobSet jobs,
                                       const ScheduleOptions& schedule,
                                       SubmitOptions options = {});

  /// Stops the pump from dispatching (admission continues until the queue
  /// fills) — deterministic overload for tests and drain-free maintenance.
  void pause();
  void resume();

  /// Blocks until every admitted request has completed.
  void drain();

  /// Merged engine metrics snapshot; safe between pump batches (drain()
  /// first for an exact read).
  [[nodiscard]] EngineMetrics metrics() const;

  /// Per-tenant counters, sorted by tenant name (deterministic order).
  [[nodiscard]] std::vector<std::pair<std::string, TenantStats>>
  tenant_stats() const;

  /// Watchdog health snapshot (kHealthy whenever the watchdog is
  /// disabled).
  [[nodiscard]] HealthState health() const;

  /// Stall episodes the watchdog has detected since construction.
  [[nodiscard]] std::uint64_t watchdog_stalls() const;

  /// Deterministic JSON rendering of health + tenant_stats() including
  /// the latency histograms — the `pobp serve --stats` dump.
  [[nodiscard]] std::string stats_json() const;

  /// Racy occupancy estimate of the submission queue.
  [[nodiscard]] std::size_t queue_depth() const;

  const StreamOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pobp
