// Submission primitives for the streaming engine: the per-request
// SubmitOptions shared by every solve entry point, and the bounded MPSC
// SubmitQueue that carries admitted requests to the pump thread.
//
// This header is the *lock-free* layer of the serving stack.  The queue is
// a bounded Vyukov-style MPSC ring: producers claim a slot with one CAS and
// publish it with one release store; the single consumer acquires slots in
// FIFO order and recycles them with one release store.  Nothing in this
// file may block — no sleeps, no waits, no IO, no mutexes; the source rule
// POBP-SRC-007 (docs/LINT.md) enforces that mechanically.  Blocking
// backpressure (producers parking on a full queue) lives one layer up in
// StreamEngine (engine/serve.hpp), outside the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/engine/resilience.hpp"
#include "pobp/util/budget.hpp"

namespace pobp {

/// What a solve does when an instance exhausts its SolveBudget.
enum class DegradePolicy {
  kNone,         ///< report POBP-RUN-002 / POBP-RUN-003, no result
  kApproximate,  ///< retry on the greedy + LSA_CS path, tag as degraded
};

/// Per-request interaction with the engine's content-addressed SolveCache
/// (engine/cache.hpp, docs/CACHE.md).  Only meaningful when the engine was
/// constructed with a cache; results are bit-identical for every mode.
enum class CacheMode {
  kOff,        ///< neither read nor publish — always solve from scratch
  kRead,       ///< serve hits / delta-patch, but never publish new entries
  kReadWrite,  ///< serve hits and publish successful solves
};

/// Per-request solve options, shared by Engine::solve_batch /
/// solve_batch_into / try_solve_batch and the StreamEngine submission path
/// (docs/SERVING.md).  Every field defaults to "inherit the engine's
/// EngineOptions", so `SubmitOptions{}` reproduces the engine defaults.
struct SubmitOptions {
  /// Per-request budget override (nullopt = EngineOptions::budget).
  std::optional<SolveBudget> budget = {};

  /// Per-request degrade policy override (nullopt = EngineOptions::degrade).
  std::optional<DegradePolicy> degrade = {};

  /// End-to-end request deadline in seconds (0 = none).  On the batch
  /// paths it tightens the effective SolveBudget deadline; on the
  /// streaming path it is measured from admission, so time spent queued
  /// counts against it and an expired request is reported as
  /// POBP-RUN-002 without being solved.
  double deadline_s = 0;

  /// Tenant id for quota accounting and per-tenant stats ("" = "default").
  std::string tenant = {};

  /// Per-tenant admission rate override (POBP-RUN-006, streaming path
  /// only): the tenant's first submission carrying one configures that
  /// tenant's token bucket in place of StreamOptions::tenant_rate.
  std::optional<RateLimit> rate_limit = {};

  /// Per-request solve-cache mode override (nullopt =
  /// EngineOptions::cache_mode).  Ignored when the engine has no cache.
  std::optional<CacheMode> cache = {};

  /// Invoked (serialized, in instance order at the end of the batch) for
  /// every instance that produced a diag::Report instead of a result.
  /// Streaming submissions report failures through the returned future
  /// instead; this callback is batch-only.
  std::function<void(std::size_t, const diag::Report&)> on_error;
};

/// Bounded lock-free multi-producer / single-consumer FIFO (Vyukov ring).
///
/// Each slot carries a sequence number: `seq == pos` means "free for the
/// producer claiming position pos", `seq == pos + 1` means "filled, ready
/// for the consumer at position pos", and the consumer recycles a drained
/// slot to `pos + capacity`.  Producers race on `head_` with a single CAS;
/// the one consumer owns `tail_` outright.  Slots are cache-line padded so
/// two producers publishing neighbouring slots never false-share.
///
/// try_push/try_pop never block and never allocate — POBP-SRC-007 keeps
/// this file free of blocking calls by construction.
template <typename T>
class SubmitQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SubmitQueue(std::size_t capacity)
      : mask_(round_up_pow2(capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::uint64_t i = 0; i <= mask_; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  SubmitQueue(const SubmitQueue&) = delete;
  SubmitQueue& operator=(const SubmitQueue&) = delete;

  /// Enqueues `item` unless the ring is full.  Safe to call from any
  /// number of producer threads concurrently.
  bool try_push(T item) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
          slot.item = std::move(item);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed pos; retry with the new claim point.
      } else if (diff < 0) {
        return false;  // the slot still holds an unconsumed item: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeues the oldest item.  Single consumer only.
  bool try_pop(T& out) {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) <
        0) {
      return false;  // not yet published
    }
    out = std::move(slot.item);
    slot.item = T{};  // drop payload resources while the slot idles
    slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Racy size estimate (producers may be mid-publish); exact when quiesced.
  std::size_t size_approx() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> sequence{0};
    T item{};
  };

  static constexpr std::uint64_t round_up_pow2(std::size_t n) {
    std::uint64_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  /// Producer claim cursor; padded away from the consumer cursor so the
  /// producers' CAS traffic never invalidates the consumer's line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace pobp
