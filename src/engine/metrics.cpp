#include "pobp/engine/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "pobp/util/assert.hpp"
#include "pobp/util/table.hpp"

namespace pobp {
namespace {

// Price buckets: a price of exactly 1 (no loss) lands in the first bucket,
// the paper's bounds live in the low single digits, and +inf (total loss)
// lands in the last.
std::vector<double> price_edges() {
  return {1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0};
}

// Per-instance bounded value, geometric (values are unnormalized, so the
// buckets only need to separate orders of magnitude).
std::vector<double> value_edges() {
  return {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
}

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";  // JSON-less infinity
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void json_stats(std::ostringstream& os, const char* key,
                const RunningStats& s) {
  os << '"' << key << "\":{\"count\":" << s.count()
     << ",\"mean\":" << fmt_double(s.count() ? s.mean() : 0.0)
     << ",\"min\":" << fmt_double(s.count() ? s.min() : 0.0)
     << ",\"max\":" << fmt_double(s.count() ? s.max() : 0.0)
     << ",\"stddev\":" << fmt_double(s.count() ? s.stddev() : 0.0) << '}';
}

void json_histogram(std::ostringstream& os, const char* key,
                    const Histogram& h) {
  os << '"' << key << "\":{\"edges\":[";
  for (std::size_t i = 0; i < h.edges().size(); ++i) {
    if (i) os << ',';
    os << fmt_double(h.edges()[i]);
  }
  os << "],\"counts\":[";
  for (std::size_t i = 0; i < h.counts().size(); ++i) {
    if (i) os << ',';
    os << h.counts()[i];
  }
  os << "]}";
}

}  // namespace

std::string_view to_string(Stage stage) {
  switch (stage) {
    case Stage::kSeed: return "seed";
    case Stage::kLaminarize: return "laminarize";
    case Stage::kForest: return "forest";
    case Stage::kPrune: return "prune";
    case Stage::kLsa: return "lsa";
    case Stage::kMerge: return "merge";
    case Stage::kValidate: return "validate";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  POBP_ASSERT_MSG(!edges_.empty(), "histogram needs at least one edge");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    POBP_ASSERT_MSG(edges_[i - 1] < edges_[i], "histogram edges must ascend");
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::add(double x) {
  std::size_t i = 0;
  while (i < edges_.size() && x >= edges_[i]) ++i;
  ++counts_[i];
}

void Histogram::merge(const Histogram& other) {
  POBP_ASSERT_MSG(edges_ == other.edges_, "histogram edge mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

std::size_t Histogram::total() const {
  std::size_t sum = 0;
  for (const std::size_t c : counts_) sum += c;
  return sum;
}

std::string Histogram::bucket_label(std::size_t i) const {
  POBP_ASSERT(i < counts_.size());
  if (i == 0) return "< " + Table::fmt(edges_.front(), 3);
  if (i == edges_.size()) return ">= " + Table::fmt(edges_.back(), 3);
  return "[" + Table::fmt(edges_[i - 1], 3) + ", " + Table::fmt(edges_[i], 3) +
         ")";
}

EngineMetrics::EngineMetrics()
    : price_histogram(price_edges()), value_histogram(value_edges()) {}

void EngineMetrics::record(const JobSet& jobs, const ScheduleResult& result,
                           const PipelineTimings& timings, double seconds,
                           bool valid) {
  ++instances;
  if (!valid) ++validation_failures;
  jobs_seen += jobs.size();
  jobs_scheduled += result.schedule.job_count();
  value_bounded += result.value;
  value_unbounded += result.unbounded_value;
  for (const MachineSchedule& ms : result.schedule.machines()) {
    for (const Assignment& a : ms.assignments()) {
      preemptions += a.preemptions();
    }
  }
  if (result.degraded) ++degraded_solves;
  const double p = result.price();
  if (std::isinf(p)) {
    ++infinite_prices;
  } else {
    price.add(p);
  }
  price_histogram.add(p);
  value_histogram.add(result.value);
  solve_seconds.add(seconds);
  stage_seconds[static_cast<std::size_t>(Stage::kSeed)].add(timings.seed_s);
  stage_seconds[static_cast<std::size_t>(Stage::kLaminarize)].add(
      timings.laminarize_s);
  stage_seconds[static_cast<std::size_t>(Stage::kForest)].add(
      timings.forest_s);
  stage_seconds[static_cast<std::size_t>(Stage::kPrune)].add(timings.prune_s);
  stage_seconds[static_cast<std::size_t>(Stage::kLsa)].add(timings.lsa_s);
  stage_seconds[static_cast<std::size_t>(Stage::kMerge)].add(timings.merge_s);
  stage_seconds[static_cast<std::size_t>(Stage::kValidate)].add(
      timings.validate_s);
}

void EngineMetrics::merge(const EngineMetrics& other) {
  instances += other.instances;
  validation_failures += other.validation_failures;
  jobs_seen += other.jobs_seen;
  jobs_scheduled += other.jobs_scheduled;
  preemptions += other.preemptions;
  infinite_prices += other.infinite_prices;
  degraded_solves += other.degraded_solves;
  pipeline_faults += other.pipeline_faults;
  deadline_exceeded += other.deadline_exceeded;
  budget_exhausted += other.budget_exhausted;
  retries += other.retries;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_insertions += other.cache_insertions;
  cache_evictions += other.cache_evictions;
  cache_delta_patches += other.cache_delta_patches;
  value_bounded += other.value_bounded;
  value_unbounded += other.value_unbounded;
  batch_seconds += other.batch_seconds;
  solve_seconds.merge(other.solve_seconds);
  price.merge(other.price);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_seconds[i].merge(other.stage_seconds[i]);
  }
  price_histogram.merge(other.price_histogram);
  value_histogram.merge(other.value_histogram);
}

double EngineMetrics::instances_per_second() const {
  if (batch_seconds <= 0) return 0;
  return static_cast<double>(instances) / batch_seconds;
}

std::string EngineMetrics::to_table() const {
  std::ostringstream os;

  Table summary("engine summary", {"metric", "value"});
  summary.add_row({"instances", Table::fmt(instances)});
  summary.add_row({"validation failures", Table::fmt(validation_failures)});
  summary.add_row({"jobs scheduled / seen", Table::fmt(jobs_scheduled) +
                                                " / " + Table::fmt(jobs_seen)});
  summary.add_row({"value (bounded)", Table::fmt(value_bounded, 6)});
  summary.add_row({"value (unbounded seed)", Table::fmt(value_unbounded, 6)});
  summary.add_row({"preemptions (total)", Table::fmt(preemptions)});
  summary.add_row(
      {"price (mean finite)",
       price.count() ? Table::fmt(price.mean(), 4) : std::string("-")});
  summary.add_row({"price = +inf instances", Table::fmt(infinite_prices)});
  summary.add_row({"degraded solves", Table::fmt(degraded_solves)});
  summary.add_row(
      {"contained faults (pipeline/deadline/budget)",
       Table::fmt(pipeline_faults) + " / " + Table::fmt(deadline_exceeded) +
           " / " + Table::fmt(budget_exhausted)});
  summary.add_row({"retries", Table::fmt(retries)});
  summary.add_row({"cache hits / misses",
                   Table::fmt(cache_hits) + " / " + Table::fmt(cache_misses)});
  summary.add_row({"cache delta patches", Table::fmt(cache_delta_patches)});
  summary.add_row({"cache insertions / evictions",
                   Table::fmt(cache_insertions) + " / " +
                       Table::fmt(cache_evictions)});
  summary.add_row({"batch wall time [s]", Table::fmt(batch_seconds, 4)});
  summary.add_row({"instances / second",
                   batch_seconds > 0 ? Table::fmt(instances_per_second(), 2)
                                     : std::string("-")});
  summary.print(os);

  Table stages("per-stage wall time",
               {"stage", "total [s]", "mean [ms]", "max [ms]"});
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const RunningStats& s = stage_seconds[i];
    const double total =
        s.count() ? s.mean() * static_cast<double>(s.count()) : 0.0;
    stages.add_row({std::string(to_string(static_cast<Stage>(i))),
                    Table::fmt(total, 4),
                    Table::fmt(s.count() ? s.mean() * 1e3 : 0.0, 3),
                    Table::fmt(s.count() ? s.max() * 1e3 : 0.0, 3)});
  }
  stages.print(os);

  Table prices("price histogram", {"bucket", "instances"});
  for (std::size_t i = 0; i < price_histogram.counts().size(); ++i) {
    prices.add_row({price_histogram.bucket_label(i),
                    Table::fmt(price_histogram.counts()[i])});
  }
  prices.print(os);

  Table values("value histogram", {"bucket", "instances"});
  for (std::size_t i = 0; i < value_histogram.counts().size(); ++i) {
    values.add_row({value_histogram.bucket_label(i),
                    Table::fmt(value_histogram.counts()[i])});
  }
  values.print(os);

  return os.str();
}

std::string EngineMetrics::to_json() const {
  std::ostringstream os;
  os << "{\"instances\":" << instances
     << ",\"validation_failures\":" << validation_failures
     << ",\"jobs\":{\"seen\":" << jobs_seen
     << ",\"scheduled\":" << jobs_scheduled << '}'
     << ",\"value\":{\"bounded\":" << fmt_double(value_bounded)
     << ",\"unbounded\":" << fmt_double(value_unbounded) << '}'
     << ",\"preemptions\":" << preemptions
     << ",\"infinite_prices\":" << infinite_prices
     << ",\"degraded\":" << degraded_solves
     << ",\"faults\":{\"pipeline\":" << pipeline_faults
     << ",\"deadline\":" << deadline_exceeded
     << ",\"budget\":" << budget_exhausted << ",\"retries\":" << retries
     << '}'
     << ",\"cache\":{\"hits\":" << cache_hits << ",\"misses\":" << cache_misses
     << ",\"insertions\":" << cache_insertions
     << ",\"evictions\":" << cache_evictions
     << ",\"delta_patches\":" << cache_delta_patches << '}'
     << ",\"batch_seconds\":" << fmt_double(batch_seconds)
     << ",\"instances_per_second\":" << fmt_double(instances_per_second())
     << ',';
  json_stats(os, "price", price);
  os << ',';
  json_stats(os, "solve_seconds", solve_seconds);
  os << ",\"stages\":{";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (i) os << ',';
    json_stats(os, std::string(to_string(static_cast<Stage>(i))).c_str(),
               stage_seconds[i]);
  }
  os << "},\"histograms\":{";
  json_histogram(os, "price", price_histogram);
  os << ',';
  json_histogram(os, "value", value_histogram);
  os << "}}";
  return os.str();
}

}  // namespace pobp
