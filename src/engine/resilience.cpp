#include "pobp/engine/resilience.hpp"

#include <algorithm>
#include <cmath>

namespace pobp {
namespace {

/// SplitMix64 finalizer: one well-mixed 64-bit word from (seed, attempt)
/// without constructing a full generator per retry.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double unit_interval(std::uint64_t word) {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace

// --- retry / backoff --------------------------------------------------------

double retry_backoff_s(const RetryPolicy& policy, std::size_t attempt,
                       std::uint64_t seed) {
  if (attempt == 0 || policy.base_backoff_s <= 0) return 0;
  // Exponential growth capped before the jitter so the cap is the *mean*
  // ceiling; the exponent is clamped to keep ldexp out of inf territory
  // on absurd attempt counts.
  const int exponent = static_cast<int>(std::min<std::size_t>(attempt - 1, 62));
  const double uncapped = std::ldexp(policy.base_backoff_s, exponent);
  const double capped = std::min(
      uncapped, std::max(policy.max_backoff_s, policy.base_backoff_s));
  const double jitter = std::clamp(policy.jitter_frac, 0.0, 1.0);
  const std::uint64_t word =
      mix64(seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(attempt));
  const double factor = 1.0 + jitter * (2.0 * unit_interval(word) - 1.0);
  return std::max(0.0, capped * factor);
}

// --- token bucket -----------------------------------------------------------

void TokenBucket::configure(const RateLimit& limit, double now_s) {
  const util::MutexLock lock(mutex_);
  limit_ = limit;
  limit_.burst = std::max(limit.burst, 1.0);
  tokens_ = limit_.burst;
  refilled_at_s_ = now_s;
}

void TokenBucket::refill(double now_s) {
  if (now_s > refilled_at_s_) {
    tokens_ = std::min(limit_.burst,
                       tokens_ + (now_s - refilled_at_s_) * limit_.tokens_per_s);
  }
  refilled_at_s_ = now_s;
}

bool TokenBucket::try_acquire(double now_s) {
  const util::MutexLock lock(mutex_);
  if (!limit_.enabled()) return true;
  refill(now_s);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(double now_s) const {
  const util::MutexLock lock(mutex_);
  if (!limit_.enabled()) return 0;
  if (now_s <= refilled_at_s_) return tokens_;
  return std::min(limit_.burst,
                  tokens_ + (now_s - refilled_at_s_) * limit_.tokens_per_s);
}

bool TokenBucket::enabled() const {
  const util::MutexLock lock(mutex_);
  return limit_.enabled();
}

// --- circuit breaker --------------------------------------------------------

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

void CircuitBreaker::configure(const BreakerPolicy& policy) {
  const util::MutexLock lock(mutex_);
  policy_ = policy;
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probes_issued_ = 0;
  probe_successes_ = 0;
}

void CircuitBreaker::trip(double now_s) {
  state_ = BreakerState::kOpen;
  opened_at_s_ = now_s;
  consecutive_failures_ = 0;
  probes_issued_ = 0;
  probe_successes_ = 0;
  ++trips_;
}

void CircuitBreaker::maybe_half_open(double now_s) {
  if (state_ == BreakerState::kOpen &&
      now_s - opened_at_s_ >= policy_.cooldown_s) {
    state_ = BreakerState::kHalfOpen;
    probes_issued_ = 0;
    probe_successes_ = 0;
  }
}

bool CircuitBreaker::try_admit(double now_s) {
  const util::MutexLock lock(mutex_);
  if (!policy_.enabled()) return true;
  maybe_half_open(now_s);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      if (probes_issued_ >= std::max<std::size_t>(1, policy_.half_open_probes))
        return false;
      ++probes_issued_;
      return true;
  }
  return true;
}

void CircuitBreaker::on_abandoned() {
  const util::MutexLock lock(mutex_);
  if (state_ == BreakerState::kHalfOpen && probes_issued_ > 0) {
    --probes_issued_;
  }
}

void CircuitBreaker::on_success() {
  const util::MutexLock lock(mutex_);
  if (!policy_.enabled()) return;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    ++probe_successes_;
    if (probe_successes_ >= std::max<std::size_t>(1, policy_.success_to_close)) {
      state_ = BreakerState::kClosed;
      probes_issued_ = 0;
      probe_successes_ = 0;
    }
  }
}

void CircuitBreaker::on_failure(double now_s) {
  const util::MutexLock lock(mutex_);
  if (!policy_.enabled()) return;
  if (state_ == BreakerState::kHalfOpen) {
    trip(now_s);  // a failed probe re-opens immediately
    return;
  }
  if (state_ == BreakerState::kClosed) {
    ++consecutive_failures_;
    if (consecutive_failures_ >= policy_.failure_threshold) trip(now_s);
  }
}

BreakerState CircuitBreaker::state(double now_s) const {
  const util::MutexLock lock(mutex_);
  if (state_ == BreakerState::kOpen &&
      now_s - opened_at_s_ >= policy_.cooldown_s) {
    return BreakerState::kHalfOpen;  // what the next try_admit will see
  }
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  const util::MutexLock lock(mutex_);
  return trips_;
}

bool CircuitBreaker::enabled() const {
  const util::MutexLock lock(mutex_);
  return policy_.enabled();
}

// --- watchdog health --------------------------------------------------------

std::string_view to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kStalled:
      return "stalled";
  }
  return "unknown";
}

// --- latency histogram ------------------------------------------------------

void LatencyHistogram::record(double seconds) {
  const double micros = std::max(0.0, seconds * 1e6);
  std::size_t bucket = 0;
  // Bucket i covers [2^i, 2^(i+1)) µs; everything below 1 µs lands in
  // bucket 0 and everything at or beyond 2^31 µs (~36 min) in the last.
  while (bucket + 1 < LatencySnapshot::kBuckets &&
         micros >= static_cast<double>(std::uint64_t{2} << bucket)) {
    ++bucket;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

LatencySnapshot LatencyHistogram::snapshot() const {
  LatencySnapshot snap;
  for (std::size_t i = 0; i < LatencySnapshot::kBuckets; ++i) {
    snap.buckets[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  if (snap.count == 0) return snap;
  const auto quantile = [&](double q) {
    const double target = q * static_cast<double>(snap.count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < LatencySnapshot::kBuckets; ++i) {
      seen += snap.buckets[i];
      if (static_cast<double>(seen) >= target) {
        // Report the bucket's upper edge: a conservative (never
        // understated) quantile.
        return static_cast<double>(std::uint64_t{2} << i) / 1e3;  // ms
      }
    }
    return static_cast<double>(std::uint64_t{2}
                               << (LatencySnapshot::kBuckets - 1)) /
           1e3;
  };
  snap.p50_ms = quantile(0.50);
  snap.p95_ms = quantile(0.95);
  snap.p99_ms = quantile(0.99);
  return snap;
}

}  // namespace pobp
