#include "pobp/engine/serve.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "pobp/diag/registry.hpp"

namespace pobp {
namespace {

constexpr const char* kDefaultTenant = "default";

/// An already-resolved rejection future: shed / quota outcomes use the
/// same future-of-outcome shape as real solves, so callers handle one
/// uniform frame type.
std::future<SolveOutcome> resolved(diag::Report report) {
  std::promise<SolveOutcome> promise;
  promise.set_value(Unexpected{std::move(report)});
  return promise.get_future();
}

/// Shortest deterministic rendering for the stats JSON (not a replay-
/// gated format, but kept stable anyway).
std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Tenant ids come off the wire, so a hostile frame can carry quotes,
/// backslashes or control bytes — escape them or stats_json() stops
/// being valid JSON.
std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

struct StreamEngine::Impl {
  /// Per-tenant counters, cache-line aligned so two tenants hammering
  /// their own shards never false-share; merged into TenantStats at read
  /// time.
  struct alignas(64) Tenant {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> rejected_quota{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> in_flight{0};
    std::atomic<std::uint64_t> rejected_rate{0};     ///< POBP-RUN-006
    std::atomic<std::uint64_t> rejected_breaker{0};  ///< POBP-RUN-007
    /// First SubmitOptions::rate_limit override wins (sticky).
    std::atomic<bool> rate_overridden{false};
    TokenBucket bucket;
    CircuitBreaker breaker;
    LatencyHistogram latency;  ///< admission → completion
  };

  /// One admitted request, owned by the queue between push and pop.
  struct Request {
    JobSet jobs;
    ScheduleOptions schedule;
    SubmitOptions submit;
    std::promise<SolveOutcome> promise;
    Tenant* tenant = nullptr;
    std::uint64_t id = 0;          ///< admission index = fault instance
    bool degraded_tier = false;    ///< admitted into the overload tier
    std::chrono::steady_clock::time_point admitted{};
  };

  StreamOptions options;
  Engine engine;
  SubmitQueue<Request*> queue;

  /// Guards the condition variables only; all shared counters are atomic.
  /// Notifiers take it (empty critical section) between the state change
  /// and the notify so a waiter can never sleep through a wakeup.
  std::mutex wait_mutex;
  std::condition_variable pump_cv;   ///< pump sleeps when idle or paused
  std::condition_variable space_cv;  ///< producers sleep on a full queue
  std::condition_variable idle_cv;   ///< drain() sleeps here

  std::atomic<bool> stopping{false};
  std::atomic<bool> paused{false};
  std::atomic<std::uint64_t> next_id{0};   ///< admission ids (unique)
  std::atomic<std::uint64_t> enqueued{0};  ///< requests that entered the queue
  std::atomic<std::uint64_t> completed{0};

  mutable std::mutex tenants_mutex;
  std::map<std::string, std::unique_ptr<Tenant>> tenants;

  /// Watchdog health (stored as int for the atomic; kHealthy when the
  /// watchdog is disabled) and total stall detections.
  std::atomic<int> health_state{static_cast<int>(HealthState::kHealthy)};
  std::atomic<std::uint64_t> stall_count{0};
  std::condition_variable watchdog_cv;  ///< watchdog sleeps between polls

  /// Monotonic time origin for the resilience clocks (token buckets,
  /// breaker cooldowns): seconds since Impl construction.
  const std::chrono::steady_clock::time_point epoch{
      std::chrono::steady_clock::now()};

  std::thread pump;
  std::thread watchdog;

  explicit Impl(StreamOptions opts)
      : options(std::move(opts)),
        engine(options.engine),
        queue(options.queue_capacity) {
    pump = std::thread([this] { pump_loop(); });
    if (options.watchdog.enabled()) {
      watchdog = std::thread([this] { watchdog_loop(); });
    }
  }

  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }

  Tenant& tenant_for(const std::string& name) {
    const std::string& key = name.empty() ? kDefaultTenant : name;
    std::lock_guard<std::mutex> lock(tenants_mutex);
    std::unique_ptr<Tenant>& slot = tenants[key];
    if (!slot) {
      slot = std::make_unique<Tenant>();
      slot->bucket.configure(options.tenant_rate, now_s());
      slot->breaker.configure(options.breaker);
    }
    return *slot;
  }

  static std::string_view tenant_name(const SubmitOptions& submit) {
    return submit.tenant.empty() ? std::string_view(kDefaultTenant)
                                 : std::string_view(submit.tenant);
  }

  std::future<SolveOutcome> admit(JobSet jobs, const ScheduleOptions& schedule,
                                  SubmitOptions submit, bool blocking) {
    Tenant& tenant = tenant_for(submit.tenant);
    tenant.submitted.fetch_add(1, std::memory_order_relaxed);

    // Per-tenant rate limit (POBP-RUN-006), layered before the in-flight
    // quota: a tenant's first submission carrying a rate_limit override
    // reconfigures its bucket (sticky — later overrides are ignored, so
    // racing producers see one consistent limit).
    if (submit.rate_limit.has_value() &&
        !tenant.rate_overridden.exchange(true, std::memory_order_acq_rel)) {
      tenant.bucket.configure(*submit.rate_limit, now_s());
    }
    if (!tenant.bucket.try_acquire(now_s())) {
      tenant.rejected_rate.fetch_add(1, std::memory_order_relaxed);
      diag::Report report;
      report
          .add(std::string(diag::rules::kRunRateLimited),
               "tenant rate limit exceeded; resubmit after the bucket "
               "refills")
          .with("tenant", std::string(tenant_name(submit)));
      return resolved(std::move(report));
    }

    // Tenant quota: reserve an in-flight slot with a CAS so two racing
    // submissions can never both slip under the cap.
    const std::uint64_t quota = options.tenant_max_in_flight;
    if (quota > 0) {
      std::uint64_t cur = tenant.in_flight.load(std::memory_order_acquire);
      for (;;) {
        if (cur >= quota) {
          tenant.rejected_quota.fetch_add(1, std::memory_order_relaxed);
          diag::Report report;
          report
              .add(std::string(diag::rules::kRunTenantQuota),
                   "tenant in-flight quota exceeded; resubmit after "
                   "completions")
              .with("tenant", std::string(tenant_name(submit)))
              .with("in_flight", static_cast<std::size_t>(cur))
              .with("quota", static_cast<std::size_t>(quota));
          return resolved(std::move(report));
        }
        if (tenant.in_flight.compare_exchange_weak(
                cur, cur + 1, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          break;
        }
      }
    }

    // Circuit breaker (POBP-RUN-007), last before the queue so an
    // admitted-then-shed request can return its half-open probe slot.
    if (!tenant.breaker.try_admit(now_s())) {
      tenant.rejected_breaker.fetch_add(1, std::memory_order_relaxed);
      if (quota > 0) tenant.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      diag::Report report;
      report
          .add(std::string(diag::rules::kRunBreakerOpen),
               "tenant circuit breaker open after consecutive pipeline "
               "faults; resubmit after the cooldown")
          .with("tenant", std::string(tenant_name(submit)))
          .with("state", std::string(to_string(tenant.breaker.state(now_s()))));
      return resolved(std::move(report));
    }

    auto request = std::make_unique<Request>();
    request->jobs = std::move(jobs);
    request->schedule = schedule;
    request->submit = std::move(submit);
    request->tenant = &tenant;
    request->id = next_id.fetch_add(1, std::memory_order_relaxed);
    request->degraded_tier =
        (options.overload_degrade == DegradePolicy::kApproximate &&
         queue.size_approx() * 4 >= queue.capacity() * 3) ||
        // Watchdog graceful degradation: while the pump is stalled, new
        // admissions answer on the cheap path instead of deepening the
        // backlog at full fidelity.
        health_state.load(std::memory_order_relaxed) ==
            static_cast<int>(HealthState::kStalled);
    request->admitted = std::chrono::steady_clock::now();
    std::future<SolveOutcome> future = request->promise.get_future();

    bool pushed = queue.try_push(request.get());
    if (!pushed && blocking) {
      // Backpressure: park on space_cv until the pump drains a batch.
      // The retry happens under wait_mutex and the pump notifies under
      // the same mutex, so a freed slot is never missed.
      std::unique_lock<std::mutex> lock(wait_mutex);
      for (;;) {
        pushed = queue.try_push(request.get());
        if (pushed || stopping.load(std::memory_order_acquire)) break;
        space_cv.wait(lock);
      }
    }
    if (!pushed) {
      tenant.shed.fetch_add(1, std::memory_order_relaxed);
      tenant.breaker.on_abandoned();  // return a half-open probe slot
      if (quota > 0) tenant.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      diag::Report report;
      report
          .add(std::string(diag::rules::kRunAdmission),
               stopping.load(std::memory_order_acquire)
                   ? "submission shed: engine is stopping"
                   : "submission shed: queue full; resubmit or use the "
                     "blocking submit path")
          .with("tenant", std::string(tenant_name(request->submit)))
          .with("queue_capacity", queue.capacity());
      return resolved(std::move(report));
    }
    request.release();  // the queue owns it until the pump pops
    enqueued.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(wait_mutex);
    }
    pump_cv.notify_one();
    return future;
  }

  /// Solves one popped request on a worker session and fulfills its
  /// promise.  Runs on pool workers via Engine::run_batch; everything it
  /// touches is request-local or atomic.
  void complete(Session& session, Request& request) {
    bool expired = false;
    SubmitOptions submit = request.submit;
    if (submit.deadline_s > 0) {
      // The end-to-end deadline is measured from admission: time spent
      // queued counts, and the solve gets only the remainder.
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        request.admitted)
              .count();
      const double remaining = submit.deadline_s - waited;
      if (remaining <= 0) {
        expired = true;
      } else {
        submit.deadline_s = remaining;
      }
    }

    std::optional<SolveOutcome> outcome;
    if (expired) {
      diag::Report report;
      report
          .add(std::string(diag::rules::kRunDeadline),
               "request deadline expired while queued")
          .with("instance", static_cast<std::size_t>(request.id));
      outcome.emplace(Unexpected{std::move(report)});
    } else if (request.degraded_tier) {
      // Queue-pressure tier, cache first: an exact solve-cache hit answers
      // at full fidelity for free, so only instances that would actually
      // cost a pipeline run get degraded (docs/CACHE.md).
      ScheduleResult cached;
      if (session.try_solve_cached(request.jobs, request.schedule, cached)) {
        outcome.emplace(std::move(cached));
      } else {
        outcome.emplace(session.try_solve_degraded(
            request.jobs, request.schedule, request.id));
      }
    } else {
      outcome.emplace(session.try_solve(request.jobs, request.schedule,
                                        submit, request.id));
    }
    if (!expired && outcome->has_value() &&
        session.last_solve_was_cache_hit()) {
      request.tenant->cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome->has_value()) {
      // Counts every degraded answer: the overload tier, the watchdog
      // tier, budget fallbacks and retry final-attempt downgrades alike.
      if (outcome->value().degraded) {
        request.tenant->degraded.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      request.tenant->failed.fetch_add(1, std::memory_order_relaxed);
    }
    // Breaker feedback: only contained pipeline faults (POBP-RUN-001)
    // are evidence of an unhealthy pipeline; budget / deadline verdicts
    // are the request's own outcome and count as successes here.
    const bool pipeline_fault =
        !outcome->has_value() &&
        outcome->error().count(diag::rules::kRunPipelineFault) > 0;
    if (pipeline_fault) {
      request.tenant->breaker.on_failure(now_s());
    } else {
      request.tenant->breaker.on_success();
    }
    request.tenant->latency.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      request.admitted)
            .count());
    request.promise.set_value(std::move(*outcome));
  }

  /// Watchdog: polls completion progress; pending work without progress
  /// for >= stall_s marks the engine stalled (new admissions degrade),
  /// resumed progress recovers through kDegraded back to kHealthy.
  void watchdog_loop() {
    const WatchdogPolicy& policy = options.watchdog;
    std::uint64_t last_done = completed.load(std::memory_order_acquire);
    double stalled_for = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(wait_mutex);
        watchdog_cv.wait_for(
            lock, std::chrono::duration<double>(policy.poll_interval_s),
            [&] { return stopping.load(std::memory_order_acquire); });
      }
      if (stopping.load(std::memory_order_acquire)) return;
      const std::uint64_t done = completed.load(std::memory_order_acquire);
      const bool pending = enqueued.load(std::memory_order_acquire) > done ||
                           !queue.empty_approx();
      if (done != last_done || !pending) {
        last_done = done;
        stalled_for = 0;
        if (!pending) {
          health_state.store(static_cast<int>(HealthState::kHealthy),
                             std::memory_order_relaxed);
        } else if (health_state.load(std::memory_order_relaxed) ==
                   static_cast<int>(HealthState::kStalled)) {
          health_state.store(static_cast<int>(HealthState::kDegraded),
                             std::memory_order_relaxed);
        }
      } else {
        stalled_for += policy.poll_interval_s;
        if (stalled_for >= policy.stall_s &&
            health_state.load(std::memory_order_relaxed) !=
                static_cast<int>(HealthState::kStalled)) {
          health_state.store(static_cast<int>(HealthState::kStalled),
                             std::memory_order_relaxed);
          stall_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  void pump_loop() {
    std::vector<std::unique_ptr<Request>> batch;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(wait_mutex);
        pump_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_acquire) ||
                 (!paused.load(std::memory_order_acquire) &&
                  !queue.empty_approx());
        });
      }
      const bool stop = stopping.load(std::memory_order_acquire);
      // pause() freezes dispatch (admission keeps filling the queue);
      // shutdown overrides it so the destructor always drains.
      const bool frozen = paused.load(std::memory_order_acquire) && !stop;

      batch.clear();
      if (!frozen) {
        Request* raw = nullptr;
        while (batch.size() < std::max<std::size_t>(1, options.max_batch) &&
               queue.try_pop(raw)) {
          batch.emplace_back(raw);
        }
      }
      if (!batch.empty()) {
        {
          std::lock_guard<std::mutex> lock(wait_mutex);
        }
        space_cv.notify_all();

        engine.run_batch(batch.size(), [&](Session& session, std::size_t i) {
          complete(session, *batch[i]);
        });

        for (const std::unique_ptr<Request>& request : batch) {
          Impl::Tenant& tenant = *request->tenant;
          tenant.completed.fetch_add(1, std::memory_order_relaxed);
          if (options.tenant_max_in_flight > 0) {
            tenant.in_flight.fetch_sub(1, std::memory_order_acq_rel);
          }
        }
        completed.fetch_add(batch.size(), std::memory_order_release);
        batch.clear();
        {
          std::lock_guard<std::mutex> lock(wait_mutex);
        }
        idle_cv.notify_all();
        continue;
      }
      if (stop && queue.empty_approx()) return;
    }
  }
};

StreamEngine::StreamEngine(StreamOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

StreamEngine::~StreamEngine() {
  impl_->stopping.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->wait_mutex);
  }
  impl_->pump_cv.notify_all();
  impl_->space_cv.notify_all();
  impl_->watchdog_cv.notify_all();
  impl_->pump.join();
  if (impl_->watchdog.joinable()) impl_->watchdog.join();
}

std::future<SolveOutcome> StreamEngine::submit(JobSet jobs,
                                               SubmitOptions options) {
  const ScheduleOptions schedule = impl_->options.engine.schedule;
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/true);
}

std::future<SolveOutcome> StreamEngine::submit(JobSet jobs,
                                               const ScheduleOptions& schedule,
                                               SubmitOptions options) {
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/true);
}

std::future<SolveOutcome> StreamEngine::try_submit(JobSet jobs,
                                                   SubmitOptions options) {
  const ScheduleOptions schedule = impl_->options.engine.schedule;
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/false);
}

std::future<SolveOutcome> StreamEngine::try_submit(
    JobSet jobs, const ScheduleOptions& schedule, SubmitOptions options) {
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/false);
}

void StreamEngine::pause() {
  impl_->paused.store(true, std::memory_order_release);
}

void StreamEngine::resume() {
  impl_->paused.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->wait_mutex);
  }
  impl_->pump_cv.notify_all();
}

void StreamEngine::drain() {
  std::unique_lock<std::mutex> lock(impl_->wait_mutex);
  impl_->idle_cv.wait(lock, [&] {
    return impl_->enqueued.load(std::memory_order_acquire) ==
               impl_->completed.load(std::memory_order_acquire) &&
           impl_->queue.empty_approx();
  });
}

EngineMetrics StreamEngine::metrics() const { return impl_->engine.metrics(); }

std::vector<std::pair<std::string, TenantStats>> StreamEngine::tenant_stats()
    const {
  std::vector<std::pair<std::string, TenantStats>> stats;
  std::lock_guard<std::mutex> lock(impl_->tenants_mutex);
  stats.reserve(impl_->tenants.size());
  for (const auto& [name, tenant] : impl_->tenants) {
    TenantStats s;
    s.submitted = tenant->submitted.load(std::memory_order_relaxed);
    s.completed = tenant->completed.load(std::memory_order_relaxed);
    s.failed = tenant->failed.load(std::memory_order_relaxed);
    s.rejected_quota = tenant->rejected_quota.load(std::memory_order_relaxed);
    s.shed = tenant->shed.load(std::memory_order_relaxed);
    s.degraded = tenant->degraded.load(std::memory_order_relaxed);
    s.cache_hits = tenant->cache_hits.load(std::memory_order_relaxed);
    s.rejected_rate = tenant->rejected_rate.load(std::memory_order_relaxed);
    s.rejected_breaker =
        tenant->rejected_breaker.load(std::memory_order_relaxed);
    s.breaker_trips = tenant->breaker.trips();
    s.breaker_state = tenant->breaker.state(impl_->now_s());
    s.latency = tenant->latency.snapshot();
    stats.emplace_back(name, s);
  }
  return stats;
}

HealthState StreamEngine::health() const {
  return static_cast<HealthState>(
      impl_->health_state.load(std::memory_order_relaxed));
}

std::uint64_t StreamEngine::watchdog_stalls() const {
  return impl_->stall_count.load(std::memory_order_relaxed);
}

std::string StreamEngine::stats_json() const {
  std::string out = "{\"health\":\"";
  out += to_string(health());
  out += "\",\"watchdog_stalls\":";
  out += std::to_string(watchdog_stalls());
  {
    const EngineMetrics m = metrics();
    out += ",\"cache\":{\"hits\":" + std::to_string(m.cache_hits);
    out += ",\"misses\":" + std::to_string(m.cache_misses);
    out += ",\"insertions\":" + std::to_string(m.cache_insertions);
    out += ",\"evictions\":" + std::to_string(m.cache_evictions);
    out += ",\"delta_patches\":" + std::to_string(m.cache_delta_patches);
    out += '}';
  }
  out += ",\"tenants\":{";
  bool first_tenant = true;
  for (const auto& [name, s] : tenant_stats()) {
    if (!first_tenant) out += ',';
    first_tenant = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"submitted\":" + std::to_string(s.submitted);
    out += ",\"completed\":" + std::to_string(s.completed);
    out += ",\"failed\":" + std::to_string(s.failed);
    out += ",\"rejected_quota\":" + std::to_string(s.rejected_quota);
    out += ",\"shed\":" + std::to_string(s.shed);
    out += ",\"degraded\":" + std::to_string(s.degraded);
    out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
    out += ",\"rejected_rate\":" + std::to_string(s.rejected_rate);
    out += ",\"rejected_breaker\":" + std::to_string(s.rejected_breaker);
    out += ",\"breaker_trips\":" + std::to_string(s.breaker_trips);
    out += ",\"breaker_state\":\"";
    out += to_string(s.breaker_state);
    out += "\",\"latency\":{\"count\":" + std::to_string(s.latency.count);
    out += ",\"p50_ms\":" + json_double(s.latency.p50_ms);
    out += ",\"p95_ms\":" + json_double(s.latency.p95_ms);
    out += ",\"p99_ms\":" + json_double(s.latency.p99_ms);
    out += ",\"buckets\":[";
    // Trailing zero buckets trimmed; bucket i covers [2^i, 2^(i+1)) µs.
    std::size_t last = 0;
    for (std::size_t i = 0; i < s.latency.buckets.size(); ++i) {
      if (s.latency.buckets[i] != 0) last = i + 1;
    }
    for (std::size_t i = 0; i < last; ++i) {
      if (i != 0) out += ',';
      out += std::to_string(s.latency.buckets[i]);
    }
    out += "]}}";
  }
  out += "}}";
  return out;
}

std::size_t StreamEngine::queue_depth() const {
  return impl_->queue.size_approx();
}

const StreamOptions& StreamEngine::options() const { return impl_->options; }

}  // namespace pobp
