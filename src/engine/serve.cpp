#include "pobp/engine/serve.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "pobp/diag/registry.hpp"

namespace pobp {
namespace {

constexpr const char* kDefaultTenant = "default";

/// An already-resolved rejection future: shed / quota outcomes use the
/// same future-of-outcome shape as real solves, so callers handle one
/// uniform frame type.
std::future<SolveOutcome> resolved(diag::Report report) {
  std::promise<SolveOutcome> promise;
  promise.set_value(Unexpected{std::move(report)});
  return promise.get_future();
}

}  // namespace

struct StreamEngine::Impl {
  /// Per-tenant counters, cache-line aligned so two tenants hammering
  /// their own shards never false-share; merged into TenantStats at read
  /// time.
  struct alignas(64) Tenant {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> rejected_quota{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> in_flight{0};
  };

  /// One admitted request, owned by the queue between push and pop.
  struct Request {
    JobSet jobs;
    ScheduleOptions schedule;
    SubmitOptions submit;
    std::promise<SolveOutcome> promise;
    Tenant* tenant = nullptr;
    std::uint64_t id = 0;          ///< admission index = fault instance
    bool degraded_tier = false;    ///< admitted into the overload tier
    std::chrono::steady_clock::time_point admitted{};
  };

  StreamOptions options;
  Engine engine;
  SubmitQueue<Request*> queue;

  /// Guards the condition variables only; all shared counters are atomic.
  /// Notifiers take it (empty critical section) between the state change
  /// and the notify so a waiter can never sleep through a wakeup.
  std::mutex wait_mutex;
  std::condition_variable pump_cv;   ///< pump sleeps when idle or paused
  std::condition_variable space_cv;  ///< producers sleep on a full queue
  std::condition_variable idle_cv;   ///< drain() sleeps here

  std::atomic<bool> stopping{false};
  std::atomic<bool> paused{false};
  std::atomic<std::uint64_t> next_id{0};   ///< admission ids (unique)
  std::atomic<std::uint64_t> enqueued{0};  ///< requests that entered the queue
  std::atomic<std::uint64_t> completed{0};

  mutable std::mutex tenants_mutex;
  std::map<std::string, std::unique_ptr<Tenant>> tenants;

  std::thread pump;

  explicit Impl(StreamOptions opts)
      : options(std::move(opts)),
        engine(options.engine),
        queue(options.queue_capacity) {
    pump = std::thread([this] { pump_loop(); });
  }

  Tenant& tenant_for(const std::string& name) {
    const std::string& key = name.empty() ? kDefaultTenant : name;
    std::lock_guard<std::mutex> lock(tenants_mutex);
    std::unique_ptr<Tenant>& slot = tenants[key];
    if (!slot) slot = std::make_unique<Tenant>();
    return *slot;
  }

  static std::string_view tenant_name(const SubmitOptions& submit) {
    return submit.tenant.empty() ? std::string_view(kDefaultTenant)
                                 : std::string_view(submit.tenant);
  }

  std::future<SolveOutcome> admit(JobSet jobs, const ScheduleOptions& schedule,
                                  SubmitOptions submit, bool blocking) {
    Tenant& tenant = tenant_for(submit.tenant);
    tenant.submitted.fetch_add(1, std::memory_order_relaxed);

    // Tenant quota: reserve an in-flight slot with a CAS so two racing
    // submissions can never both slip under the cap.
    const std::uint64_t quota = options.tenant_max_in_flight;
    if (quota > 0) {
      std::uint64_t cur = tenant.in_flight.load(std::memory_order_acquire);
      for (;;) {
        if (cur >= quota) {
          tenant.rejected_quota.fetch_add(1, std::memory_order_relaxed);
          diag::Report report;
          report
              .add(std::string(diag::rules::kRunTenantQuota),
                   "tenant in-flight quota exceeded; resubmit after "
                   "completions")
              .with("tenant", std::string(tenant_name(submit)))
              .with("in_flight", static_cast<std::size_t>(cur))
              .with("quota", static_cast<std::size_t>(quota));
          return resolved(std::move(report));
        }
        if (tenant.in_flight.compare_exchange_weak(
                cur, cur + 1, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          break;
        }
      }
    }

    auto request = std::make_unique<Request>();
    request->jobs = std::move(jobs);
    request->schedule = schedule;
    request->submit = std::move(submit);
    request->tenant = &tenant;
    request->id = next_id.fetch_add(1, std::memory_order_relaxed);
    request->degraded_tier =
        options.overload_degrade == DegradePolicy::kApproximate &&
        queue.size_approx() * 4 >= queue.capacity() * 3;
    request->admitted = std::chrono::steady_clock::now();
    std::future<SolveOutcome> future = request->promise.get_future();

    bool pushed = queue.try_push(request.get());
    if (!pushed && blocking) {
      // Backpressure: park on space_cv until the pump drains a batch.
      // The retry happens under wait_mutex and the pump notifies under
      // the same mutex, so a freed slot is never missed.
      std::unique_lock<std::mutex> lock(wait_mutex);
      for (;;) {
        pushed = queue.try_push(request.get());
        if (pushed || stopping.load(std::memory_order_acquire)) break;
        space_cv.wait(lock);
      }
    }
    if (!pushed) {
      tenant.shed.fetch_add(1, std::memory_order_relaxed);
      if (quota > 0) tenant.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      diag::Report report;
      report
          .add(std::string(diag::rules::kRunAdmission),
               stopping.load(std::memory_order_acquire)
                   ? "submission shed: engine is stopping"
                   : "submission shed: queue full; resubmit or use the "
                     "blocking submit path")
          .with("tenant", std::string(tenant_name(request->submit)))
          .with("queue_capacity", queue.capacity());
      return resolved(std::move(report));
    }
    request.release();  // the queue owns it until the pump pops
    enqueued.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(wait_mutex);
    }
    pump_cv.notify_one();
    return future;
  }

  /// Solves one popped request on a worker session and fulfills its
  /// promise.  Runs on pool workers via Engine::run_batch; everything it
  /// touches is request-local or atomic.
  void complete(Session& session, Request& request) {
    bool expired = false;
    SubmitOptions submit = request.submit;
    if (submit.deadline_s > 0) {
      // The end-to-end deadline is measured from admission: time spent
      // queued counts, and the solve gets only the remainder.
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        request.admitted)
              .count();
      const double remaining = submit.deadline_s - waited;
      if (remaining <= 0) {
        expired = true;
      } else {
        submit.deadline_s = remaining;
      }
    }

    std::optional<SolveOutcome> outcome;
    if (expired) {
      diag::Report report;
      report
          .add(std::string(diag::rules::kRunDeadline),
               "request deadline expired while queued")
          .with("instance", static_cast<std::size_t>(request.id));
      outcome.emplace(Unexpected{std::move(report)});
    } else if (request.degraded_tier) {
      outcome.emplace(session.try_solve_degraded(
          request.jobs, request.schedule, request.id));
      if (outcome->has_value()) {
        request.tenant->degraded.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      outcome.emplace(session.try_solve(request.jobs, request.schedule,
                                        submit, request.id));
    }
    if (!outcome->has_value()) {
      request.tenant->failed.fetch_add(1, std::memory_order_relaxed);
    }
    request.promise.set_value(std::move(*outcome));
  }

  void pump_loop() {
    std::vector<std::unique_ptr<Request>> batch;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(wait_mutex);
        pump_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_acquire) ||
                 (!paused.load(std::memory_order_acquire) &&
                  !queue.empty_approx());
        });
      }
      const bool stop = stopping.load(std::memory_order_acquire);
      // pause() freezes dispatch (admission keeps filling the queue);
      // shutdown overrides it so the destructor always drains.
      const bool frozen = paused.load(std::memory_order_acquire) && !stop;

      batch.clear();
      if (!frozen) {
        Request* raw = nullptr;
        while (batch.size() < std::max<std::size_t>(1, options.max_batch) &&
               queue.try_pop(raw)) {
          batch.emplace_back(raw);
        }
      }
      if (!batch.empty()) {
        {
          std::lock_guard<std::mutex> lock(wait_mutex);
        }
        space_cv.notify_all();

        engine.run_batch(batch.size(), [&](Session& session, std::size_t i) {
          complete(session, *batch[i]);
        });

        for (const std::unique_ptr<Request>& request : batch) {
          Impl::Tenant& tenant = *request->tenant;
          tenant.completed.fetch_add(1, std::memory_order_relaxed);
          if (options.tenant_max_in_flight > 0) {
            tenant.in_flight.fetch_sub(1, std::memory_order_acq_rel);
          }
        }
        completed.fetch_add(batch.size(), std::memory_order_release);
        batch.clear();
        {
          std::lock_guard<std::mutex> lock(wait_mutex);
        }
        idle_cv.notify_all();
        continue;
      }
      if (stop && queue.empty_approx()) return;
    }
  }
};

StreamEngine::StreamEngine(StreamOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

StreamEngine::~StreamEngine() {
  impl_->stopping.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->wait_mutex);
  }
  impl_->pump_cv.notify_all();
  impl_->space_cv.notify_all();
  impl_->pump.join();
}

std::future<SolveOutcome> StreamEngine::submit(JobSet jobs,
                                               SubmitOptions options) {
  const ScheduleOptions schedule = impl_->options.engine.schedule;
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/true);
}

std::future<SolveOutcome> StreamEngine::submit(JobSet jobs,
                                               const ScheduleOptions& schedule,
                                               SubmitOptions options) {
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/true);
}

std::future<SolveOutcome> StreamEngine::try_submit(JobSet jobs,
                                                   SubmitOptions options) {
  const ScheduleOptions schedule = impl_->options.engine.schedule;
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/false);
}

std::future<SolveOutcome> StreamEngine::try_submit(
    JobSet jobs, const ScheduleOptions& schedule, SubmitOptions options) {
  return impl_->admit(std::move(jobs), schedule, std::move(options),
                      /*blocking=*/false);
}

void StreamEngine::pause() {
  impl_->paused.store(true, std::memory_order_release);
}

void StreamEngine::resume() {
  impl_->paused.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->wait_mutex);
  }
  impl_->pump_cv.notify_all();
}

void StreamEngine::drain() {
  std::unique_lock<std::mutex> lock(impl_->wait_mutex);
  impl_->idle_cv.wait(lock, [&] {
    return impl_->enqueued.load(std::memory_order_acquire) ==
               impl_->completed.load(std::memory_order_acquire) &&
           impl_->queue.empty_approx();
  });
}

EngineMetrics StreamEngine::metrics() const { return impl_->engine.metrics(); }

std::vector<std::pair<std::string, TenantStats>> StreamEngine::tenant_stats()
    const {
  std::vector<std::pair<std::string, TenantStats>> stats;
  std::lock_guard<std::mutex> lock(impl_->tenants_mutex);
  stats.reserve(impl_->tenants.size());
  for (const auto& [name, tenant] : impl_->tenants) {
    TenantStats s;
    s.submitted = tenant->submitted.load(std::memory_order_relaxed);
    s.completed = tenant->completed.load(std::memory_order_relaxed);
    s.failed = tenant->failed.load(std::memory_order_relaxed);
    s.rejected_quota = tenant->rejected_quota.load(std::memory_order_relaxed);
    s.shed = tenant->shed.load(std::memory_order_relaxed);
    s.degraded = tenant->degraded.load(std::memory_order_relaxed);
    stats.emplace_back(name, s);
  }
  return stats;
}

std::size_t StreamEngine::queue_depth() const {
  return impl_->queue.size_approx();
}

const StreamOptions& StreamEngine::options() const { return impl_->options; }

}  // namespace pobp
