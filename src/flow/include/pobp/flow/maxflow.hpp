// Dinic's maximum-flow algorithm.
//
// Substrate for the migrative-machines feasibility test (migrative.hpp).
// Integer capacities (int64), adjacency-list residual graph, BFS level
// graph + DFS blocking flows: O(V²E) in general and far faster on the
// shallow bipartite networks we build.
#pragma once

#include <cstdint>
#include <vector>

namespace pobp {

class MaxFlow {
 public:
  using Capacity = std::int64_t;

  /// Creates a network with `nodes` vertices and no edges.
  explicit MaxFlow(std::size_t nodes);

  /// Adds a directed edge u → v with the given capacity; returns an edge
  /// id usable with flow_on().
  std::size_t add_edge(std::size_t u, std::size_t v, Capacity capacity);

  /// Computes the maximum s → t flow.  Call at most once per instance.
  Capacity solve(std::size_t s, std::size_t t);

  /// Flow routed over edge `id` after solve().
  Capacity flow_on(std::size_t id) const;

  std::size_t node_count() const { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;  // index of the reverse edge in graph_[to]
    Capacity capacity;
  };

  bool bfs(std::size_t s, std::size_t t);
  Capacity dfs(std::size_t v, std::size_t t, Capacity limit);

  std::vector<std::vector<Edge>> graph_;
  std::vector<Capacity> initial_capacity_;   // by edge id
  std::vector<std::pair<std::size_t, std::size_t>> edge_ref_;  // id -> (u, i)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace pobp
