// Feasibility of preemptive scheduling WITH migration on m identical
// machines (Horn's classic flow formulation).
//
// The paper's migrative results (§4.1 remark, §4.3.4) treat the migrative
// optimum as a black box bounded through Kalyanasundaram–Pruhs migration
// elimination.  This module makes the migrative side executable: a job
// subset S is feasible on m machines with migration (a job may move
// between machines but never runs on two at once) iff the following
// network saturates Σ_{j∈S} p_j:
//
//   source ──p_j──► job j ──min(p_j, |I|)──► elementary interval I
//   interval I ──m·|I|──► sink
//
// where the elementary intervals are the slices between consecutive
// distinct release/deadline events of S, and job j connects to I iff
// [r_j, d_j] ⊇ I.  The job→interval capacity |I| encodes "no job runs on
// two machines simultaneously"; the interval→sink capacity m·|I| encodes
// the m machines.  For m = 1 this degenerates to single-machine
// preemptive feasibility (and agrees with the interval condition — a
// property the tests sweep).
#pragma once

#include <span>

#include "pobp/schedule/job.hpp"
#include "pobp/solvers/solvers.hpp"

namespace pobp {

/// True iff `subset` can be feasibly scheduled on `machines` identical
/// machines with unbounded preemption and migration.
bool migrative_feasible(const JobSet& jobs, std::span<const JobId> subset,
                        std::size_t machines);

/// Exact max-value migratively schedulable subset (B&B over the flow
/// oracle).  Exponential; intended for n ≲ 20.
SubsetSolution opt_infinity_migrative(const JobSet& jobs,
                                      std::span<const JobId> candidates,
                                      std::size_t machines);

}  // namespace pobp
