#include "pobp/flow/maxflow.hpp"

#include <limits>
#include <queue>

#include "pobp/util/assert.hpp"

namespace pobp {

MaxFlow::MaxFlow(std::size_t nodes) : graph_(nodes) {}

std::size_t MaxFlow::add_edge(std::size_t u, std::size_t v,
                              Capacity capacity) {
  POBP_ASSERT(u < graph_.size() && v < graph_.size());
  POBP_ASSERT(capacity >= 0);
  const std::size_t id = edge_ref_.size();
  graph_[u].push_back({v, graph_[v].size(), capacity});
  graph_[v].push_back({u, graph_[u].size() - 1, 0});
  edge_ref_.emplace_back(u, graph_[u].size() - 1);
  initial_capacity_.push_back(capacity);
  return id;
}

bool MaxFlow::bfs(std::size_t s, std::size_t t) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> queue;
  level_[s] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[v]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

MaxFlow::Capacity MaxFlow::dfs(std::size_t v, std::size_t t, Capacity limit) {
  if (v == t) return limit;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.capacity <= 0 || level_[v] + 1 != level_[e.to]) continue;
    const Capacity pushed = dfs(e.to, t, std::min(limit, e.capacity));
    if (pushed > 0) {
      e.capacity -= pushed;
      graph_[e.to][e.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

MaxFlow::Capacity MaxFlow::solve(std::size_t s, std::size_t t) {
  POBP_ASSERT(s != t);
  Capacity total = 0;
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    while (const Capacity pushed =
               dfs(s, t, std::numeric_limits<Capacity>::max())) {
      total += pushed;
    }
  }
  return total;
}

MaxFlow::Capacity MaxFlow::flow_on(std::size_t id) const {
  const auto [u, i] = edge_ref_.at(id);
  return initial_capacity_[id] - graph_[u][i].capacity;
}

}  // namespace pobp
