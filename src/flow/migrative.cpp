#include "pobp/flow/migrative.hpp"

#include <algorithm>
#include <vector>

#include "pobp/flow/maxflow.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

bool migrative_feasible(const JobSet& jobs, std::span<const JobId> subset,
                        std::size_t machines) {
  POBP_ASSERT(machines >= 1);
  if (subset.empty()) return true;

  // Elementary intervals between consecutive event times.
  std::vector<Time> events;
  events.reserve(subset.size() * 2);
  Duration demand = 0;
  for (const JobId id : subset) {
    events.push_back(jobs[id].release);
    events.push_back(jobs[id].deadline);
    demand += jobs[id].length;
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  const std::size_t intervals = events.size() - 1;

  // Nodes: 0 = source, 1..n = jobs, n+1..n+intervals = intervals, last = sink.
  const std::size_t n = subset.size();
  const std::size_t sink = 1 + n + intervals;
  MaxFlow network(sink + 1);
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = jobs[subset[j]];
    network.add_edge(0, 1 + j, job.length);
    for (std::size_t i = 0; i < intervals; ++i) {
      const Time begin = events[i];
      const Time end = events[i + 1];
      if (job.release <= begin && end <= job.deadline) {
        network.add_edge(1 + j, 1 + n + i,
                         std::min<Duration>(job.length, end - begin));
      }
    }
  }
  for (std::size_t i = 0; i < intervals; ++i) {
    const Duration len = events[i + 1] - events[i];
    network.add_edge(1 + n + i, sink,
                     static_cast<MaxFlow::Capacity>(machines) * len);
  }
  return network.solve(0, sink) == demand;
}

namespace {

struct Searcher {
  const JobSet* jobs;
  std::span<const JobId> order;
  const std::vector<Value>* suffix;
  std::size_t machines;
  std::vector<JobId> current;
  Value current_value = 0;
  std::vector<JobId> best;
  Value best_value = 0;

  void dfs(std::size_t i) {
    if (current_value + (*suffix)[i] <= best_value) return;
    if (i == order.size()) {
      best = current;
      best_value = current_value;
      return;
    }
    const JobId id = order[i];
    current.push_back(id);
    // Monotone feasibility: an infeasible include prunes all supersets.
    if (migrative_feasible(*jobs, current, machines)) {
      current_value += (*jobs)[id].value;
      dfs(i + 1);
      current_value -= (*jobs)[id].value;
    }
    current.pop_back();
    dfs(i + 1);
  }
};

}  // namespace

SubsetSolution opt_infinity_migrative(const JobSet& jobs,
                                      std::span<const JobId> candidates,
                                      std::size_t machines) {
  SubsetSolution solution;
  if (candidates.empty()) return solution;

  std::vector<JobId> order(candidates.begin(), candidates.end());
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (jobs[a].value != jobs[b].value) return jobs[a].value > jobs[b].value;
    return a < b;
  });
  std::vector<Value> suffix(order.size() + 1, 0);
  for (std::size_t i = order.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1] + jobs[order[i]].value;
  }

  Searcher searcher{&jobs, order, &suffix, machines, {}, 0, {}, 0};
  searcher.dfs(0);
  solution.members = std::move(searcher.best);
  solution.value = searcher.best_value;
  return solution;
}

}  // namespace pobp
