#include "pobp/forest/bas.hpp"

#include <span>
#include <sstream>
#include <vector>

namespace pobp {

std::size_t SubForest::kept_count() const {
  std::size_t count = 0;
  for (const char c : keep) count += c != 0;
  return count;
}

Value SubForest::value(const Forest& forest) const {
  POBP_ASSERT(keep.size() == forest.size());
  Value sum = 0;
  for (NodeId v = 0; v < forest.size(); ++v) {
    if (keep[v]) sum += forest.value(v);
  }
  return sum;
}

namespace {

template <typename BoundFn>
BasCheck validate_bas_impl(const Forest& forest, const SubForest& sel,
                           BoundFn&& bound) {
  if (sel.keep.size() != forest.size()) {
    return {false, "selection mask size mismatch"};
  }

  // has_kept_ancestor[v] computed top-down; ids are parents-first, so a
  // simple forward scan is a valid topological order.
  std::vector<char> has_kept_ancestor(forest.size(), 0);
  for (NodeId v = 0; v < forest.size(); ++v) {
    const NodeId p = forest.parent(v);
    if (p == kNoNode) continue;
    has_kept_ancestor[v] = has_kept_ancestor[p] || sel.kept(p);
  }

  for (NodeId v = 0; v < forest.size(); ++v) {
    if (!sel.kept(v)) continue;
    const NodeId p = forest.parent(v);
    const bool component_root = p == kNoNode || !sel.kept(p);
    if (component_root && has_kept_ancestor[v]) {
      std::ostringstream os;
      os << "node " << v
         << " roots a component but has a kept proper ancestor "
            "(ancestor independence violated)";
      return {false, os.str()};
    }
    std::size_t kept_children = 0;
    for (const NodeId c : forest.children(v)) kept_children += sel.kept(c);
    if (kept_children > bound(v)) {
      std::ostringstream os;
      os << "node " << v << " has " << kept_children
         << " kept children, exceeding the degree bound k=" << bound(v);
      return {false, os.str()};
    }
  }
  return {};
}

}  // namespace

BasCheck validate_bas(const Forest& forest, const SubForest& sel,
                      std::size_t k) {
  return validate_bas_impl(forest, sel, [k](NodeId) { return k; });
}

BasCheck validate_bas(const Forest& forest, const SubForest& sel,
                      std::span<const std::size_t> degree_bounds) {
  POBP_ASSERT(degree_bounds.size() == forest.size());
  return validate_bas_impl(forest, sel,
                           [&](NodeId v) { return degree_bounds[v]; });
}

SubForest brute_force_bas(const Forest& forest, std::size_t k) {
  const std::vector<std::size_t> uniform(forest.size(), k);
  return brute_force_bas(forest, uniform);
}

SubForest brute_force_bas(const Forest& forest,
                          std::span<const std::size_t> degree_bounds) {
  POBP_ASSERT_MSG(forest.size() <= 20, "brute_force_bas is exponential");
  const std::size_t n = forest.size();
  SubForest best{std::vector<char>(n, 0)};
  Value best_value = 0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    SubForest candidate{std::vector<char>(n, 0)};
    Value value = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (1ull << v)) {
        candidate.keep[v] = 1;
        value += forest.value(static_cast<NodeId>(v));
      }
    }
    if (value > best_value && validate_bas(forest, candidate, degree_bounds)) {
      best = std::move(candidate);
      best_value = value;
    }
  }
  return best;
}

}  // namespace pobp
