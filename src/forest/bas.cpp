#include "pobp/forest/bas.hpp"

#include <span>
#include <sstream>
#include <vector>

#include "pobp/diag/registry.hpp"

namespace pobp {

std::size_t SubForest::kept_count() const {
  std::size_t count = 0;
  for (const char c : keep) count += c != 0;
  return count;
}

Value SubForest::value(const Forest& forest) const {
  POBP_ASSERT(keep.size() == forest.size());
  Value sum = 0;
  for (NodeId v = 0; v < forest.size(); ++v) {
    if (keep[v]) sum += forest.value(v);
  }
  return sum;
}

namespace {

namespace rules = diag::rules;

template <typename BoundFn>
void diagnose_bas_impl(const Forest& forest, const SubForest& sel,
                       BoundFn&& bound, diag::Report& report) {
  if (sel.keep.size() != forest.size()) {
    report
        .add(std::string(rules::kBasMaskSize),
             "selection mask size mismatch")
        .with("mask_size", sel.keep.size())
        .with("forest_size", forest.size());
    return;  // per-node rules are meaningless on a mismatched mask
  }

  // has_kept_ancestor[v] computed top-down; ids are parents-first, so a
  // simple forward scan is a valid topological order.
  std::vector<char> has_kept_ancestor(forest.size(), 0);
  for (NodeId v = 0; v < forest.size(); ++v) {
    const NodeId p = forest.parent(v);
    if (p == kNoNode) continue;
    has_kept_ancestor[v] = has_kept_ancestor[p] || sel.kept(p);
  }

  for (NodeId v = 0; v < forest.size(); ++v) {
    if (!sel.kept(v)) continue;
    const NodeId p = forest.parent(v);
    const bool component_root = p == kNoNode || !sel.kept(p);
    if (component_root && has_kept_ancestor[v]) {
      std::ostringstream os;
      os << "node " << v
         << " roots a component but has a kept proper ancestor "
            "(ancestor independence violated)";
      diag::Location loc;
      loc.node = v;
      report.add(std::string(rules::kBasAncestorDependence), os.str(), loc);
    }
    std::size_t kept_children = 0;
    for (const NodeId c : forest.children(v)) kept_children += sel.kept(c);
    if (kept_children > bound(v)) {
      std::ostringstream os;
      os << "node " << v << " has " << kept_children
         << " kept children, exceeding the degree bound k=" << bound(v);
      diag::Location loc;
      loc.node = v;
      report.add(std::string(rules::kBasDegreeOverflow), os.str(), loc)
          .with("kept_children", kept_children)
          .with("bound", bound(v));
    }
  }
}

BasCheck first_failure(const diag::Report& report) {
  if (report.ok()) return {};
  return {false, report.first_error()};
}

}  // namespace

void diagnose_bas(const Forest& forest, const SubForest& sel, std::size_t k,
                  diag::Report& report) {
  diagnose_bas_impl(forest, sel, [k](NodeId) { return k; }, report);
}

void diagnose_bas(const Forest& forest, const SubForest& sel,
                  std::span<const std::size_t> degree_bounds,
                  diag::Report& report) {
  POBP_ASSERT(degree_bounds.size() == forest.size());
  diagnose_bas_impl(
      forest, sel, [&](NodeId v) { return degree_bounds[v]; }, report);
}

BasCheck validate_bas(const Forest& forest, const SubForest& sel,
                      std::size_t k) {
  diag::Report report;
  diagnose_bas(forest, sel, k, report);
  return first_failure(report);
}

BasCheck validate_bas(const Forest& forest, const SubForest& sel,
                      std::span<const std::size_t> degree_bounds) {
  diag::Report report;
  diagnose_bas(forest, sel, degree_bounds, report);
  return first_failure(report);
}

SubForest brute_force_bas(const Forest& forest, std::size_t k) {
  const std::vector<std::size_t> uniform(forest.size(), k);
  return brute_force_bas(forest, uniform);
}

SubForest brute_force_bas(const Forest& forest,
                          std::span<const std::size_t> degree_bounds) {
  POBP_ASSERT_MSG(forest.size() <= 20, "brute_force_bas is exponential");
  const std::size_t n = forest.size();
  SubForest best{std::vector<char>(n, 0)};
  Value best_value = 0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    SubForest candidate{std::vector<char>(n, 0)};
    Value value = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (1ull << v)) {
        candidate.keep[v] = 1;
        value += forest.value(static_cast<NodeId>(v));
      }
    }
    if (value > best_value && validate_bas(forest, candidate, degree_bounds)) {
      best = std::move(candidate);
      best_value = value;
    }
  }
  return best;
}

}  // namespace pobp
