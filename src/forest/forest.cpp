#include "pobp/forest/forest.hpp"

namespace pobp {

void Forest::rebuild_csr() const {
  const std::size_t n = values_.size();
  child_offsets_.assign(n + 1, 0);
  // Counting pass: child_offsets_[p + 1] accumulates deg(p)...
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = parents_[v];
    if (p != kNoNode) ++child_offsets_[p + 1];
  }
  // ...prefix-summed into the CSR row starts.
  for (std::size_t v = 1; v <= n; ++v) {
    child_offsets_[v] += child_offsets_[v - 1];
  }
  child_ids_.resize(child_offsets_[n]);
  slot_of_.resize(n);
  // Fill pass in ascending v: children land in ascending-id order, which
  // equals insertion order because ids are assigned monotonically.  The
  // offsets array is used as the write cursor and then restored by one
  // backward shift.  slot_of_ records each node's position in the flat
  // child arena — the index the SoA DP tables (TmScratch) are keyed by.
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = parents_[v];
    if (p == kNoNode) {
      slot_of_[v] = kNoNode;
      continue;
    }
    const NodeId pos = child_offsets_[p]++;
    child_ids_[pos] = v;
    slot_of_[v] = pos;
  }
  for (std::size_t v = n; v-- > 0;) {
    child_offsets_[v + 1] = child_offsets_[v];
  }
  child_offsets_[0] = 0;
  csr_valid_ = true;
}

void Forest::subtree(NodeId v, std::vector<NodeId>& out) const {
  finalize();
  out.clear();
  out.push_back(v);
  // `out` doubles as the work-list: out[i] is expanded in place, so every
  // node is appended exactly once and parents precede their descendants.
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (const NodeId c : children(out[i])) out.push_back(c);
  }
}

Value Forest::subtree_value(NodeId v) const {
  finalize();
  Value sum = values_[v];
  // One accumulating DFS pass; the stack holds un-visited nodes only.
  std::vector<NodeId> stack(children(v).begin(), children(v).end());
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    sum += values_[u];
    for (const NodeId c : children(u)) stack.push_back(c);
  }
  return sum;
}

}  // namespace pobp
