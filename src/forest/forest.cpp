#include "pobp/forest/forest.hpp"

namespace pobp {

std::vector<NodeId> Forest::subtree(NodeId v) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack{v};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    out.push_back(u);
    for (const NodeId c : children_[u]) stack.push_back(c);
  }
  return out;
}

Value Forest::subtree_value(NodeId v) const {
  Value sum = 0;
  for (const NodeId u : subtree(v)) sum += values_[u];
  return sum;
}

}  // namespace pobp
