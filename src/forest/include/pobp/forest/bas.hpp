// k-BAS: k-Bounded-Degree Ancestor-Independent Sub-Forests (Defs. 3.1–3.4).
//
// A sub-forest is described by a keep mask over the nodes of the host
// forest; its edges are the host edges between kept nodes.  This header
// provides the selection type, the validator (the ground truth every k-BAS
// algorithm is tested against) and the brute-force optimal oracle.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/forest/forest.hpp"

namespace pobp {

/// A selected sub-forest: keep[v] != 0 iff v is retained.
struct SubForest {
  std::vector<char> keep;

  bool kept(NodeId v) const { return keep[v] != 0; }
  std::size_t kept_count() const;
  Value value(const Forest& forest) const;
};

struct BasCheck {
  bool ok = true;
  std::string error;
  explicit operator bool() const { return ok; }
};

/// Reports every violation of Defs. 3.1–3.2 through the diagnostics engine:
///  * POBP-BAS-001 — the keep mask does not match the forest size;
///  * POBP-BAS-002 — ancestor independence: a kept node whose parent is
///    deleted (i.e. the root of a component of the sub-forest) has a kept
///    proper ancestor;
///  * POBP-BAS-003 — bounded degree: a kept node has more than k kept
///    children.
void diagnose_bas(const Forest& forest, const SubForest& sel, std::size_t k,
                  diag::Report& report);

/// Per-node degree budget variant (k(v) instead of one global k).
void diagnose_bas(const Forest& forest, const SubForest& sel,
                  std::span<const std::size_t> degree_bounds,
                  diag::Report& report);

/// First-failure shim over diagnose_bas — checks Defs. 3.1–3.2:
///  * ancestor independence — a kept node whose parent is deleted (i.e. the
///    root of a component of the sub-forest) has no kept proper ancestor;
///  * bounded degree — every kept node has at most k kept children.
BasCheck validate_bas(const Forest& forest, const SubForest& sel,
                      std::size_t k);

/// Generalization used by the hierarchy-selection applications: a per-node
/// degree budget k(v) instead of one global k.  (The paper's scheduling
/// reduction only needs the uniform case; the DP is identical.)
BasCheck validate_bas(const Forest& forest, const SubForest& sel,
                      std::span<const std::size_t> degree_bounds);

/// Exponential-time exact optimum (max-value k-BAS) for tiny forests —
/// the oracle the DP is cross-validated against.  Aborts if n > 20.
SubForest brute_force_bas(const Forest& forest, std::size_t k);

/// Per-node-bound variant of the brute-force oracle.
SubForest brute_force_bas(const Forest& forest,
                          std::span<const std::size_t> degree_bounds);

}  // namespace pobp
