// Arena-based rooted forest with node values (Section 3 of the paper).
//
// Nodes are identified by dense indices into a single arena and children
// are stored in a compressed-sparse-row (CSR) layout: one offsets array and
// one flat child-id array, rebuilt lazily from the parent links.  Because
// ids are assigned parents-first and monotonically, a node's children in
// ascending id order ARE its children in insertion order, so the CSR can be
// derived from `parents_` alone with a counting pass — no per-node child
// vectors, no pointer chasing, and clear() keeps every buffer's capacity so
// a Forest can be rebuilt in place with zero steady-state allocations.
//
// Traversals are iterative — the Appendix-A lower-bound trees instantiated
// by the benchmarks reach millions of nodes — and fill caller-provided
// buffers so hot paths never allocate.
//
// Thread-safety: the CSR is rebuilt lazily on the first child query after a
// mutation.  Call finalize() after construction before sharing a const
// Forest across threads; all further const access is then read-only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pobp/schedule/time.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = UINT32_MAX;

class Forest {
 public:
  Forest() = default;

  /// Adds a node with the given value under `parent` (kNoNode = new root).
  /// The parent must already exist; ids are assigned in insertion order, so
  /// parents always have smaller ids than their children.
  NodeId add(Value value, NodeId parent = kNoNode) {
    const NodeId id = static_cast<NodeId>(values_.size());
    values_.push_back(value);
    parents_.push_back(parent);
    if (parent == kNoNode) {
      roots_.push_back(id);
    } else {
      POBP_ASSERT_MSG(parent < id, "parent must be added before child");
    }
    csr_valid_ = false;
    return id;
  }

  /// Drops all nodes but keeps every buffer's capacity, so the next build
  /// of a same-or-smaller forest performs no allocations.
  void clear() {
    values_.clear();
    parents_.clear();
    roots_.clear();
    child_offsets_.clear();
    child_ids_.clear();
    slot_of_.clear();
    csr_valid_ = false;
  }

  /// Pre-grows every buffer for `nodes` nodes (one-time warmup).
  void reserve(std::size_t nodes) {
    values_.reserve(nodes);
    parents_.reserve(nodes);
    child_offsets_.reserve(nodes + 1);
    child_ids_.reserve(nodes);
    slot_of_.reserve(nodes);
  }

  /// Rebuilds the CSR child index if any add() happened since the last
  /// build.  Idempotent; called implicitly by the child accessors, but call
  /// it explicitly after construction before sharing the forest across
  /// threads (lazy rebuilds from concurrent const access would race).
  void finalize() const {
    if (!csr_valid_) rebuild_csr();
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  Value value(NodeId v) const { return values_[v]; }
  void set_value(NodeId v, Value val) { values_[v] = val; }
  NodeId parent(NodeId v) const { return parents_[v]; }
  std::span<const NodeId> roots() const { return roots_; }

  /// Children of v in insertion (= ascending id) order, as a view into the
  /// CSR arena.  Stable until the next add() or clear().
  std::span<const NodeId> children(NodeId v) const {
    finalize();
    return {child_ids_.data() + child_offsets_[v],
            child_offsets_[v + 1] - child_offsets_[v]};
  }

  /// The CSR child arena as [begin, end) offsets: children of v are the
  /// slots child_range(v).first .. child_range(v).second of the flat arena.
  /// This is the SoA access path — slot-indexed DP tables (TmScratch) read
  /// one contiguous stream per node instead of gathering per child id.
  std::pair<NodeId, NodeId> child_range(NodeId v) const {
    finalize();
    return {child_offsets_[v], child_offsets_[v + 1]};
  }

  /// Node id stored at arena slot `slot` (inverse of child_slot).
  NodeId child_at(NodeId slot) const { return child_ids_[slot]; }

  /// v's position in the flat child arena, kNoNode for roots.  Within one
  /// parent's range, ascending slot order equals ascending id order.
  NodeId child_slot(NodeId v) const {
    finalize();
    return slot_of_[v];
  }

  /// Total number of arena slots (= number of non-root nodes).
  std::size_t child_slot_count() const {
    finalize();
    return child_ids_.size();
  }

  /// Degree of v = number of children (Def. in §3.1).
  std::size_t degree(NodeId v) const {
    finalize();
    return child_offsets_[v + 1] - child_offsets_[v];
  }
  bool is_leaf(NodeId v) const { return degree(v) == 0; }
  bool is_root(NodeId v) const { return parents_[v] == kNoNode; }

  /// True iff `ancestor` is a proper ancestor of `v`.
  bool is_ancestor(NodeId ancestor, NodeId v) const {
    for (NodeId u = parents_[v]; u != kNoNode; u = parents_[u]) {
      if (u == ancestor) return true;
    }
    return false;
  }

  /// Depth of v (roots have depth 0).
  std::size_t depth(NodeId v) const {
    std::size_t d = 0;
    for (NodeId u = parents_[v]; u != kNoNode; u = parents_[u]) ++d;
    return d;
  }

  /// Σ val over all nodes.
  Value total_value() const {
    Value sum = 0;
    for (const Value v : values_) sum += v;
    return sum;
  }

  /// Fills `out` with the nodes in an order where every child precedes its
  /// parent.  Because ids are assigned parents-first, this is simply
  /// descending id order.  `out` is overwritten, not appended to.
  void post_order(std::vector<NodeId>& out) const {
    out.resize(size());
    for (std::size_t i = 0; i < size(); ++i) {
      out[i] = static_cast<NodeId>(size() - 1 - i);
    }
  }

  /// Convenience allocating form (tests / cold paths).
  std::vector<NodeId> post_order() const {
    std::vector<NodeId> out;
    post_order(out);
    return out;
  }

  /// Fills `out` with the nodes of the subtree rooted at v (iterative,
  /// subtree root first, every parent before its descendants).  `out` is
  /// overwritten and doubles as the work-list, so no other scratch is
  /// needed.
  void subtree(NodeId v, std::vector<NodeId>& out) const;

  /// Convenience allocating form (tests / cold paths).
  std::vector<NodeId> subtree(NodeId v) const {
    std::vector<NodeId> out;
    subtree(v, out);
    return out;
  }

  /// Σ val over the subtree rooted at v — single accumulating pass, no
  /// materialized node list.
  Value subtree_value(NodeId v) const;

  /// Number of leaves.
  std::size_t leaf_count() const {
    finalize();
    std::size_t count = 0;
    for (NodeId v = 0; v < size(); ++v) {
      if (is_leaf(v)) ++count;
    }
    return count;
  }

 private:
  void rebuild_csr() const;

  std::vector<Value> values_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> roots_;

  // CSR child index derived from parents_: children of v are
  // child_ids_[child_offsets_[v] .. child_offsets_[v+1]).  Mutable because
  // it is a lazily-maintained cache over the authoritative parents_ array.
  mutable std::vector<NodeId> child_offsets_;
  mutable std::vector<NodeId> child_ids_;
  mutable std::vector<NodeId> slot_of_;  ///< node id -> arena slot (roots: kNoNode)
  mutable bool csr_valid_ = false;
};

}  // namespace pobp
