// Arena-based rooted forest with node values (Section 3 of the paper).
//
// Nodes are identified by dense indices into a single arena, children are
// stored as index vectors, and traversals are iterative — the Appendix-A
// lower-bound trees instantiated by the benchmarks reach millions of nodes,
// so no recursion and no per-node allocation beyond the child vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pobp/schedule/time.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = UINT32_MAX;

class Forest {
 public:
  Forest() = default;

  /// Adds a node with the given value under `parent` (kNoNode = new root).
  /// The parent must already exist; ids are assigned in insertion order, so
  /// parents always have smaller ids than their children.
  NodeId add(Value value, NodeId parent = kNoNode) {
    const NodeId id = static_cast<NodeId>(values_.size());
    values_.push_back(value);
    parents_.push_back(parent);
    children_.emplace_back();
    if (parent == kNoNode) {
      roots_.push_back(id);
    } else {
      POBP_ASSERT_MSG(parent < id, "parent must be added before child");
      children_[parent].push_back(id);
    }
    return id;
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  Value value(NodeId v) const { return values_[v]; }
  void set_value(NodeId v, Value val) { values_[v] = val; }
  NodeId parent(NodeId v) const { return parents_[v]; }
  std::span<const NodeId> children(NodeId v) const { return children_[v]; }
  std::span<const NodeId> roots() const { return roots_; }

  /// Degree of v = number of children (Def. in §3.1).
  std::size_t degree(NodeId v) const { return children_[v].size(); }
  bool is_leaf(NodeId v) const { return children_[v].empty(); }
  bool is_root(NodeId v) const { return parents_[v] == kNoNode; }

  /// True iff `ancestor` is a proper ancestor of `v`.
  bool is_ancestor(NodeId ancestor, NodeId v) const {
    for (NodeId u = parents_[v]; u != kNoNode; u = parents_[u]) {
      if (u == ancestor) return true;
    }
    return false;
  }

  /// Depth of v (roots have depth 0).
  std::size_t depth(NodeId v) const {
    std::size_t d = 0;
    for (NodeId u = parents_[v]; u != kNoNode; u = parents_[u]) ++d;
    return d;
  }

  /// Σ val over all nodes.
  Value total_value() const {
    Value sum = 0;
    for (const Value v : values_) sum += v;
    return sum;
  }

  /// Nodes in an order where every child precedes its parent.  Because ids
  /// are assigned parents-first, this is simply descending id order.
  std::vector<NodeId> post_order() const {
    std::vector<NodeId> order(size());
    for (std::size_t i = 0; i < size(); ++i) {
      order[i] = static_cast<NodeId>(size() - 1 - i);
    }
    return order;
  }

  /// Nodes of the subtree rooted at v (iterative DFS).
  std::vector<NodeId> subtree(NodeId v) const;

  /// Σ val over the subtree rooted at v.
  Value subtree_value(NodeId v) const;

  /// Number of leaves.
  std::size_t leaf_count() const {
    std::size_t count = 0;
    for (NodeId v = 0; v < size(); ++v) {
      if (is_leaf(v)) ++count;
    }
    return count;
  }

 private:
  std::vector<Value> values_;
  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> roots_;
};

}  // namespace pobp
