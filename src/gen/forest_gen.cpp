#include "pobp/gen/forest_gen.hpp"

#include <algorithm>
#include <cmath>

#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

Value draw_value(ForestGenConfig::ValueDist dist, std::size_t depth,
                 Rng& rng) {
  switch (dist) {
    case ForestGenConfig::ValueDist::kUniform:
      return static_cast<Value>(rng.uniform_int(1, 100));
    case ForestGenConfig::ValueDist::kHeavyTail: {
      const double u = std::max(rng.uniform01(), 1e-6);
      return std::min(std::floor(1.0 / u), 1e6);
    }
    case ForestGenConfig::ValueDist::kDepthDecay: {
      const double base = static_cast<double>(rng.uniform_int(1, 100));
      return std::max(1.0, base * std::pow(2.0, -static_cast<double>(depth)));
    }
  }
  POBP_ASSERT(false);
  return 1;
}

}  // namespace

Forest random_forest(const ForestGenConfig& config, Rng& rng) {
  POBP_ASSERT(config.nodes >= 1);
  POBP_ASSERT(config.max_degree >= 1);
  Forest forest;
  std::vector<NodeId> open;  // nodes with spare child capacity
  std::vector<std::size_t> depth;
  // Track degrees locally: querying forest.degree() mid-construction would
  // rebuild the CSR child index per add.
  std::vector<std::size_t> child_count;

  for (std::size_t i = 0; i < config.nodes; ++i) {
    NodeId parent = kNoNode;
    std::size_t node_depth = 0;
    if (i > 0 && !open.empty() && !rng.bernoulli(config.root_probability)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(open.size()) - 1));
      parent = open[pick];
      node_depth = depth[parent] + 1;
      if (++child_count[parent] >= config.max_degree) {
        // Parent is now full: swap-remove from the open list.
        open[pick] = open.back();
        open.pop_back();
      }
    }
    const NodeId id =
        forest.add(draw_value(config.value_dist, node_depth, rng), parent);
    depth.push_back(node_depth);
    child_count.push_back(0);
    open.push_back(id);
  }
  forest.finalize();
  return forest;
}

}  // namespace pobp
