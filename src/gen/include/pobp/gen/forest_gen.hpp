// Random forests for the k-BAS experiments (E2/E3 in DESIGN.md).
#pragma once

#include <cstddef>

#include "pobp/forest/forest.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {

struct ForestGenConfig {
  std::size_t nodes = 1000;

  /// Maximum children per node; attachment is uniform over nodes that still
  /// have capacity, which yields bushy random recursive trees.
  std::size_t max_degree = 8;

  /// Probability that a new node starts a fresh root instead of attaching.
  double root_probability = 0.01;

  enum class ValueDist {
    kUniform,     ///< val ~ U{1..100}
    kHeavyTail,   ///< val ~ ⌊1/U(0,1)⌋ capped at 10^6 (a few huge nodes)
    kDepthDecay,  ///< val ~ U{1..100} · 2^{-depth} (top-heavy, adversarial
                  ///< for contraction which harvests bottom levels first)
  };
  ValueDist value_dist = ValueDist::kUniform;
};

/// Generates a random forest; deterministic given (config, rng state).
Forest random_forest(const ForestGenConfig& config, Rng& rng);

}  // namespace pobp
