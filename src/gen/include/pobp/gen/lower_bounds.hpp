// The paper's lower-bound constructions, integer-exact.
//
//  * Fig. 2  — the k = 0 geometric chain: n unit-value jobs with lengths
//              2^i whose windows all force any non-preemptive placement to
//              cover a common unit slot, while one preemption per job packs
//              all of them.  Price: min{n, log P} (§5).
//  * Fig. 3 / Appendix A — the k-BAS loss-factor lower bound: a complete
//              K-ary tree with L+1 levels where level i holds K^i nodes of
//              value K^{L−i} (the paper's K^{−i} scaled by K^L so every
//              value is an integer).  With K = 2k the optimal k-BAS loses
//              Ω(log_{k+1} n) (Theorem 3.20); Lemma A.2 gives the exact
//              t/m values, which the tests assert verbatim.
//  * Fig. 4 / Appendix B — the scheduling lower bound: L+1 levels of jobs,
//              level l holding K^l jobs of length P·(3K²)^{−l} and laxity
//              1 + 1/(3K−1), nested so that a single preemption of a parent
//              accommodates at most one child (Lemma B.1).  All quantities
//              are scaled by the base unit u = 3K−1 so that every release,
//              deadline and p(l)/K offset is an integer.  OPT∞ takes
//              everything (EDF witnesses this in the tests); OPT_k is
//              < K/(K−k) per unit level value (Lemma B.2), giving
//              PoBP = Ω(log_{k+1} P) = Ω(log_{k+1} n) with K = 2k.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pobp/forest/forest.hpp"
#include "pobp/schedule/schedule.hpp"

namespace pobp {

// ---------------------------------------------------------------- Fig. 2 --

struct K0GeometricInstance {
  JobSet jobs;                ///< job i has p = 2^i, val = 1
  MachineSchedule witness;    ///< feasible schedule of ALL jobs, ≤1 preemption each
  double log2_P = 0;          ///< = n − 1
};

/// Builds the Fig. 2 chain with `n` jobs (n ≤ 62 to stay in int64).
K0GeometricInstance k0_geometric_instance(std::size_t n);

// --------------------------------------------------- Fig. 3 / Appendix A --

struct BasLowerBoundTree {
  Forest forest;        ///< complete K-ary tree, L+1 levels, values K^{L−i}
  std::size_t k = 1;    ///< intended degree bound
  std::int64_t K = 2;   ///< branching factor (paper: any K > k; Thm 3.20 uses 2k)
  std::size_t L = 1;    ///< lowest level index (levels 0..L)

  std::int64_t total_value = 0;        ///< (L+1)·K^L  (Obs. A.1, scaled)
  std::vector<std::int64_t> expected_t;  ///< Lemma A.2 t per level, scaled
  std::vector<std::int64_t> expected_m;  ///< Lemma A.2 m per level, scaled
  std::int64_t opt_bas_value = 0;      ///< t(root) = expected_t[0]
};

/// Builds the Appendix-A tree.  Node ids are level by level, so level(i)
/// spans ids [(K^i−1)/(K−1), (K^{i+1}−1)/(K−1)).
BasLowerBoundTree bas_lower_bound_tree(std::size_t k, std::int64_t K,
                                       std::size_t L);

// --------------------------------------------------- Fig. 4 / Appendix B --

struct PobpLowerBoundInstance {
  JobSet jobs;          ///< level l: K^l jobs, value K^{L−l} (scaled)
  std::size_t k = 1;
  std::int64_t K = 2;
  std::size_t L = 1;
  std::int64_t unit = 1;        ///< base time unit u = 3K−1

  Value total_value = 0;        ///< = OPT∞ (all jobs feasible together)
  double opt_k_upper = 0;       ///< Lemma B.2: OPT_k < K/(K−k) · K^L (scaled)
  double P = 0;                 ///< length ratio = (3K²)^L
};

/// Builds the Appendix-B instance.  Aborts (checked arithmetic) if the
/// chosen (K, L) would overflow int64 ticks; use pobp_lower_bound_max_L to
/// pick L.
PobpLowerBoundInstance pobp_lower_bound_instance(std::size_t k, std::int64_t K,
                                                 std::size_t L);

/// Largest L such that the Appendix-B instance for (K, L) fits in int64
/// ticks and its job count stays below `max_jobs`.
std::size_t pobp_lower_bound_max_L(std::int64_t K, std::size_t max_jobs);

}  // namespace pobp
