// Random job-set generators (the workloads behind E6/E7 in DESIGN.md).
#pragma once

#include <cstddef>

#include "pobp/schedule/job.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {

struct JobGenConfig {
  std::size_t n = 20;

  /// Lengths are log-uniform in [min_length, max_length] — the natural way
  /// to sweep the paper's P = p_max / p_min axis.
  Duration min_length = 1;
  Duration max_length = 1 << 10;

  /// Relative laxity λ ~ U[min_laxity, max_laxity]; the window is
  /// ⌈λ·p⌉.  Set min_laxity ≥ k+1 to generate the "lax" population of
  /// §4.3.2, or max_laxity < k+1 for the "strict" one.
  double min_laxity = 1.0;
  double max_laxity = 8.0;

  /// Releases are uniform in [0, horizon − window].
  Time horizon = 1 << 16;

  enum class ValueMode {
    kUniform,       ///< val ~ U{1..100} — value uncorrelated with length
    kProportional,  ///< val = p · U{1..4} — near-uniform density
    kRandomDensity, ///< val = p · 2^{U(-4,4)} — wide density spread
  };
  ValueMode value_mode = ValueMode::kUniform;
};

JobSet random_jobs(const JobGenConfig& config, Rng& rng);

/// `copies` disjoint copies of an instance (the paper's "multiplying the
/// setting along a third axis" for multi-machine lower bounds).
JobSet replicate(const JobSet& jobs, std::size_t copies);

}  // namespace pobp
