// Random feasible ∞-preemptive schedules (the workload for E5).
//
// The generator builds a random *laminar* schedule directly — recursively
// nesting child jobs between segments of their parent — and derives each
// job's ⟨r, d, p, val⟩ from its layout.  Every generated job is scheduled,
// so OPT∞ equals the total value *by construction*, which is exactly the
// reference the §4.2 reduction experiments need at sizes where exact
// solvers are hopeless.
#pragma once

#include <cstddef>

#include "pobp/schedule/schedule.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {

struct LaminarGenConfig {
  /// Approximate number of jobs (the recursion stops adding children once
  /// the budget is spent; the result can be slightly smaller).
  std::size_t target_jobs = 200;

  /// Maximum forest degree (children of one job).
  std::size_t max_children = 4;

  /// Maximum nesting depth.
  std::size_t max_depth = 12;

  /// Probability that an eligible job receives children at all.
  double branch_probability = 0.9;

  /// Window slack: each job's window is its span extended by
  /// U[0, slack_factor]·span on both sides (0 = tight windows, λ = span/p).
  double slack_factor = 0.0;

  enum class ValueDist {
    kUniform,     ///< val ~ U{1..100}
    kDepthDecay,  ///< top-heavy: outer jobs worth more
    kDepthGrow,   ///< bottom-heavy: inner jobs worth more
  };
  ValueDist value_dist = ValueDist::kUniform;
};

struct LaminarInstance {
  JobSet jobs;
  MachineSchedule schedule;  ///< feasible, laminar, all jobs scheduled
};

LaminarInstance random_laminar_instance(const LaminarGenConfig& config,
                                        Rng& rng);

}  // namespace pobp
