#include "pobp/gen/lower_bounds.hpp"

#include <algorithm>

#include "pobp/util/assert.hpp"
#include "pobp/util/checked.hpp"

namespace pobp {

// ---------------------------------------------------------------- Fig. 2 --

K0GeometricInstance k0_geometric_instance(std::size_t n) {
  POBP_ASSERT(n >= 1 && n <= 62);
  K0GeometricInstance out;
  out.log2_P = static_cast<double>(n - 1);

  // Unshifted layout: job i has p = 2^i, window [−(2^i−1), 2^i]; any
  // non-preemptive placement must cover [0, 1), so at most one job fits,
  // while the two-segment witness below packs all of them.  Shift by
  // 2^{n−1}−1 to keep times non-negative.
  const Time shift = (Time{1} << (n - 1)) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const Duration p = Duration{1} << i;
    Job job;
    job.release = shift - (p - 1);
    job.deadline = shift + p;
    job.length = p;
    job.value = 1.0;
    const JobId id = out.jobs.add(job);

    Assignment a;
    a.job = id;
    if (i == 0) {
      a.segments = {{shift, shift + 1}};
    } else {
      const Duration half = p / 2;
      // Left of all shorter jobs, and right of them: one preemption.
      a.segments = {{shift - (p - 1), shift - (half - 1)},
                    {shift + half, shift + p}};
    }
    out.witness.add(std::move(a));
  }
  return out;
}

// --------------------------------------------------- Fig. 3 / Appendix A --

BasLowerBoundTree bas_lower_bound_tree(std::size_t k, std::int64_t K,
                                       std::size_t L) {
  POBP_ASSERT(k >= 1);
  POBP_ASSERT_MSG(K > static_cast<std::int64_t>(k), "the construction needs K > k");
  BasLowerBoundTree out;
  out.k = k;
  out.K = K;
  out.L = L;

  // Level i holds K^i nodes of value K^{L−i} (paper's K^{−i} × K^L).
  std::vector<std::int64_t> level_value(L + 1);
  for (std::size_t i = 0; i <= L; ++i) {
    level_value[i] = checked_pow(K, static_cast<int>(L - i));
  }
  out.total_value = checked_mul(static_cast<std::int64_t>(L + 1),
                                checked_pow(K, static_cast<int>(L)));

  // Build level by level; node ids end up level-contiguous.
  std::vector<NodeId> frontier;
  frontier.push_back(
      out.forest.add(static_cast<Value>(level_value[0]), kNoNode));
  for (std::size_t i = 1; i <= L; ++i) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(K));
    for (const NodeId parent : frontier) {
      for (std::int64_t c = 0; c < K; ++c) {
        next.push_back(
            out.forest.add(static_cast<Value>(level_value[i]), parent));
      }
    }
    frontier = std::move(next);
  }
  out.forest.finalize();

  // Lemma A.2 (scaled by K^L):
  //   t(level i) = Σ_{j=0}^{L−i}   k^j · K^{L−i−j}
  //   m(level i) = Σ_{j=0}^{L−i−1} k^j · K^{L−i−j}
  out.expected_t.resize(L + 1);
  out.expected_m.resize(L + 1);
  for (std::size_t i = 0; i <= L; ++i) {
    std::int64_t t = 0;
    std::int64_t m = 0;
    for (std::size_t j = 0; j + i <= L; ++j) {
      const std::int64_t term =
          checked_mul(checked_pow(static_cast<std::int64_t>(k),
                                  static_cast<int>(j)),
                      checked_pow(K, static_cast<int>(L - i - j)));
      t = checked_add(t, term);
      if (j + i < L) m = checked_add(m, term);
    }
    out.expected_t[i] = t;
    out.expected_m[i] = m;
  }
  out.opt_bas_value = out.expected_t[0];  // t(root) > m(root), Lemma A.2
  return out;
}

// --------------------------------------------------- Fig. 4 / Appendix B --

PobpLowerBoundInstance pobp_lower_bound_instance(std::size_t k, std::int64_t K,
                                                 std::size_t L) {
  POBP_ASSERT(k >= 1);
  POBP_ASSERT_MSG(K > static_cast<std::int64_t>(k), "the construction needs K > k");
  PobpLowerBoundInstance out;
  out.k = k;
  out.K = K;
  out.L = L;

  const std::int64_t geo = checked_mul(3, checked_mul(K, K));  // 3K²
  const std::int64_t unit = checked_sub(checked_mul(3, K), 1);  // u = 3K−1
  out.unit = unit;
  out.P = static_cast<double>(checked_pow(geo, static_cast<int>(L)));

  // p(l) = (3K²)^{L−l} · u;   window w(l) = p(l) + p(l)/(3K−1)
  //                                       = p(l) + (3K²)^{L−l}.
  std::vector<std::int64_t> p(L + 1), w(L + 1), value(L + 1);
  for (std::size_t l = 0; l <= L; ++l) {
    const std::int64_t pure = checked_pow(geo, static_cast<int>(L - l));
    p[l] = checked_mul(pure, unit);
    w[l] = checked_add(p[l], pure);
    value[l] = checked_pow(K, static_cast<int>(L - l));
  }

  // Releases via the Appendix-B recursion, level by level.
  // r(l+1, m') = r(l, m) + (m' − mK + 1)·p(l)/K − p(l+1),  m' ∈ [mK, (m+1)K).
  std::vector<std::vector<std::int64_t>> releases(L + 1);
  releases[0] = {0};
  for (std::size_t l = 0; l < L; ++l) {
    const std::int64_t step = exact_div(p[l], K);
    const std::size_t count = releases[l].size();
    releases[l + 1].resize(count * static_cast<std::size_t>(K));
    for (std::size_t m = 0; m < count; ++m) {
      for (std::int64_t j = 0; j < K; ++j) {
        releases[l + 1][m * static_cast<std::size_t>(K) +
                        static_cast<std::size_t>(j)] =
            checked_sub(checked_add(releases[l][m],
                                    checked_mul(j + 1, step)),
                        p[l + 1]);
      }
    }
  }

  for (std::size_t l = 0; l <= L; ++l) {
    for (const std::int64_t r : releases[l]) {
      POBP_ASSERT_MSG(r >= 0, "Appendix-B releases must be non-negative");
      out.jobs.add(Job{r, checked_add(r, w[l]), p[l],
                       static_cast<Value>(value[l])});
    }
  }
  out.total_value = out.jobs.total_value();
  out.opt_k_upper = static_cast<double>(checked_pow(K, static_cast<int>(L))) *
                    static_cast<double>(K) /
                    static_cast<double>(K - static_cast<std::int64_t>(k));
  return out;
}

std::size_t pobp_lower_bound_max_L(std::int64_t K, std::size_t max_jobs) {
  const std::int64_t geo = 3 * K * K;
  const std::int64_t unit = 3 * K - 1;
  std::size_t L = 0;
  std::size_t jobs = 1;  // level 0
  for (;;) {
    const std::size_t next_L = L + 1;
    // Time guard: p(0) = geo^L · u with ×8 headroom for release arithmetic.
    if (!pow_fits_int64(geo, static_cast<int>(next_L) + 1)) break;
    std::int64_t p0 = 1;
    for (std::size_t i = 0; i < next_L; ++i) p0 *= geo;
    if (p0 > INT64_MAX / (unit * 8)) break;
    // Size guard: n = Σ K^l.
    std::size_t next_jobs = jobs;
    std::int64_t level_count = 1;
    for (std::size_t i = 0; i < next_L; ++i) level_count *= K;
    next_jobs += static_cast<std::size_t>(level_count);
    if (next_jobs > max_jobs) break;
    L = next_L;
    jobs = next_jobs;
  }
  return L;
}

}  // namespace pobp
