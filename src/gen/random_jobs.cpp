#include "pobp/gen/random_jobs.hpp"

#include <algorithm>
#include <cmath>

#include "pobp/util/assert.hpp"

namespace pobp {

JobSet random_jobs(const JobGenConfig& config, Rng& rng) {
  POBP_ASSERT(config.min_length >= 1);
  POBP_ASSERT(config.max_length >= config.min_length);
  POBP_ASSERT(config.min_laxity >= 1.0);
  POBP_ASSERT(config.max_laxity >= config.min_laxity);

  JobSet jobs;
  const double log_min = std::log(static_cast<double>(config.min_length));
  const double log_max = std::log(static_cast<double>(config.max_length));

  for (std::size_t i = 0; i < config.n; ++i) {
    Job job;
    job.length = std::clamp<Duration>(
        static_cast<Duration>(
            std::llround(std::exp(rng.uniform_real(log_min, log_max)))),
        config.min_length, config.max_length);

    const double laxity = rng.uniform_real(config.min_laxity, config.max_laxity);
    const Duration window = std::max<Duration>(
        job.length,
        static_cast<Duration>(std::ceil(laxity * static_cast<double>(job.length))));
    POBP_ASSERT_MSG(window <= config.horizon,
                    "horizon too small for the laxity/length ranges");
    job.release = rng.uniform_int(0, config.horizon - window);
    job.deadline = job.release + window;

    switch (config.value_mode) {
      case JobGenConfig::ValueMode::kUniform:
        job.value = static_cast<Value>(rng.uniform_int(1, 100));
        break;
      case JobGenConfig::ValueMode::kProportional:
        job.value = static_cast<Value>(job.length) *
                    static_cast<Value>(rng.uniform_int(1, 4));
        break;
      case JobGenConfig::ValueMode::kRandomDensity:
        job.value = static_cast<Value>(job.length) *
                    std::exp2(rng.uniform_real(-4.0, 4.0));
        break;
    }
    jobs.add(job);
  }
  return jobs;
}

JobSet replicate(const JobSet& jobs, std::size_t copies) {
  JobSet out;
  for (std::size_t c = 0; c < copies; ++c) {
    for (const Job& j : jobs) out.add(j);
  }
  return out;
}

}  // namespace pobp
