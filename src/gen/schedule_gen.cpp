#include "pobp/gen/schedule_gen.hpp"

#include <algorithm>
#include <cmath>

#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

struct RawJob {
  Time release;
  Time deadline;
  Duration length;
  Value value;
  std::vector<Segment> segments;
};

class Generator {
 public:
  Generator(const LaminarGenConfig& config, Rng& rng)
      : config_(config),
        rng_(rng),
        budget_(static_cast<std::int64_t>(config.target_jobs)) {}

  LaminarInstance run() {
    POBP_ASSERT(config_.target_jobs >= 1);
    POBP_ASSERT(config_.max_children >= 1);
    Time cursor = 0;
    while (budget_ > 0) {
      cursor += rng_.uniform_int(0, 8);  // idle gap between root spans
      const Duration span =
          rng_.uniform_int(1, static_cast<Duration>(3 * budget_));
      make_job(cursor, cursor + span, 0);
      cursor += span;
    }
    return finalize();
  }

 private:
  /// Creates one job whose subtree fully occupies [b, e); returns nothing —
  /// the job and its descendants are appended to raw_.
  void make_job(Time b, Time e, std::size_t depth) {
    POBP_ASSERT(b < e);
    // The budget may go (slightly) negative: once a subtree overdraws it,
    // sibling regions still have to be filled — they just become leaves.
    --budget_;
    const Duration span = e - b;

    // How many children?  Each child needs its own ≥1-tick region plus a
    // surrounding ≥1-tick piece of our own work, so span must cover 2c+1.
    std::size_t c = 0;
    if (depth + 1 < config_.max_depth && budget_ > 0 && span >= 3 &&
        rng_.bernoulli(config_.branch_probability)) {
      const std::size_t cap =
          std::min({config_.max_children,
                    static_cast<std::size_t>((span - 1) / 2),
                    static_cast<std::size_t>(budget_)});
      if (cap >= 1) {
        c = static_cast<std::size_t>(
            rng_.uniform_int(1, static_cast<std::int64_t>(cap)));
      }
    }

    // Partition [b, e) into 2c+1 non-empty pieces: own, child, own, child,
    // ..., own.  Draw 2c distinct interior cut points.
    std::vector<Time> cuts;
    cuts.reserve(2 * c + 2);
    cuts.push_back(b);
    if (c > 0) {
      // Sample 2c distinct offsets in (b, e) via a partial Fisher–Yates on
      // the fly (span can be large, so sample-and-retry on collisions).
      std::vector<Time> interior;
      while (interior.size() < 2 * c) {
        const Time cut = rng_.uniform_int(b + 1, e - 1);
        if (std::find(interior.begin(), interior.end(), cut) ==
            interior.end()) {
          interior.push_back(cut);
        }
      }
      std::sort(interior.begin(), interior.end());
      cuts.insert(cuts.end(), interior.begin(), interior.end());
    }
    cuts.push_back(e);

    RawJob job;
    job.value = draw_value(depth);
    for (std::size_t piece = 0; piece + 1 < cuts.size(); ++piece) {
      if (piece % 2 == 0) {
        job.segments.push_back({cuts[piece], cuts[piece + 1]});
      }
    }
    job.length = total_length(job.segments);

    // Window: the span, optionally extended by slack on both sides.
    Time r = b;
    Time d = e;
    if (config_.slack_factor > 0) {
      const double span_d = static_cast<double>(span);
      r -= static_cast<Time>(std::floor(
          rng_.uniform_real(0, config_.slack_factor) * span_d));
      d += static_cast<Time>(std::floor(
          rng_.uniform_real(0, config_.slack_factor) * span_d));
    }
    job.release = r;
    job.deadline = d;
    raw_.push_back(std::move(job));

    // Children fill the odd pieces; each child's subtree fully occupies its
    // region, preserving span-compactness.
    for (std::size_t piece = 1; piece + 1 < cuts.size(); piece += 2) {
      make_job(cuts[piece], cuts[piece + 1], depth + 1);
    }
  }

  Value draw_value(std::size_t depth) {
    const double base = static_cast<double>(rng_.uniform_int(1, 100));
    switch (config_.value_dist) {
      case LaminarGenConfig::ValueDist::kUniform:
        return base;
      case LaminarGenConfig::ValueDist::kDepthDecay:
        return std::max(1.0, base * std::pow(2.0, -static_cast<double>(depth)));
      case LaminarGenConfig::ValueDist::kDepthGrow:
        return base * std::pow(2.0, static_cast<double>(depth));
    }
    POBP_ASSERT(false);
    return 1;
  }

  LaminarInstance finalize() {
    // Slack may have pushed releases negative; shift the whole instance.
    Time min_release = 0;
    for (const RawJob& j : raw_) min_release = std::min(min_release, j.release);
    const Time shift = -min_release;

    LaminarInstance out;
    for (RawJob& j : raw_) {
      Assignment a;
      a.job = out.jobs.add(Job{j.release + shift, j.deadline + shift,
                               j.length, j.value});
      for (Segment& s : j.segments) {
        a.segments.push_back({s.begin + shift, s.end + shift});
      }
      out.schedule.add(std::move(a));
    }
    return out;
  }

  const LaminarGenConfig& config_;
  Rng& rng_;
  std::int64_t budget_;
  std::vector<RawJob> raw_;
};

}  // namespace

LaminarInstance random_laminar_instance(const LaminarGenConfig& config,
                                        Rng& rng) {
  return Generator(config, rng).run();
}

}  // namespace pobp
