// pobp — curated public surface.
//
// This umbrella re-exports what a typical application needs:
//
//   * the job / schedule model and the Def. 2.1 validator,
//   * the one-call solve API (try_schedule_bounded),
//   * the batch engine (pobp::Engine, sessions, per-stage metrics),
//   * the streaming engine (pobp::StreamEngine, SubmitOptions, the MPSC
//     submission queue, admission control — docs/SERVING.md),
//   * CSV / manifest IO and the ASCII renderers.
//
// The per-module headers under pobp/<module>/ (forest, bas, lsa, reduction,
// flow, solvers, gen, sim) are the internal pipeline surface: stable for
// in-repo tools, tests and benches, but not part of this curated set —
// include them directly when you need a specific algorithm.
#pragma once

#include "pobp/core/pobp.hpp"
#include "pobp/engine/engine.hpp"
#include "pobp/engine/metrics.hpp"
#include "pobp/engine/serve.hpp"
#include "pobp/engine/submit.hpp"
#include "pobp/io/csv.hpp"
#include "pobp/io/manifest.hpp"
#include "pobp/schedule/gantt.hpp"
#include "pobp/schedule/job.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/schedule/report.hpp"
#include "pobp/schedule/schedule.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/expected.hpp"
