#include "pobp/io/csv.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <fstream>
#include <sstream>
#include <vector>

#include "pobp/diag/registry.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/checked.hpp"

namespace pobp::io {
namespace {

/// Splits one CSV line on commas (no quoting — the formats are numeric).
std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

/// Why a numeric cell was rejected — shared by the throwing parsers and the
/// fault-contained loaders (which map kSyntax → POBP-IO-001 and the numeric
/// kinds → POBP-IO-002).
enum class NumStatus { kOk, kSyntax, kOutOfRange, kNonFinite };

NumStatus parse_int_cell(const std::string& cell, std::int64_t& out) {
  const char* first = cell.data();
  const char* last = cell.data() + cell.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) return NumStatus::kOutOfRange;
  if (ec != std::errc{} || ptr != last) return NumStatus::kSyntax;
  return NumStatus::kOk;
}

NumStatus parse_double_cell(const std::string& cell, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(cell, &used);
    if (used != cell.size()) return NumStatus::kSyntax;
  } catch (const std::out_of_range&) {
    return NumStatus::kOutOfRange;
  } catch (const std::exception&) {
    return NumStatus::kSyntax;
  }
  // stod happily parses "inf" and "nan"; ticks and values must be finite.
  return std::isfinite(out) ? NumStatus::kOk : NumStatus::kNonFinite;
}

std::int64_t parse_int(const std::string& cell, std::size_t line) {
  std::int64_t value = 0;
  switch (parse_int_cell(cell, value)) {
    case NumStatus::kOk: return value;
    case NumStatus::kOutOfRange:
      throw ParseError(line, "integer out of range: '" + cell + "'");
    default:
      throw ParseError(line, "expected integer, got '" + cell + "'");
  }
}

double parse_double(const std::string& cell, std::size_t line) {
  double value = 0;
  switch (parse_double_cell(cell, value)) {
    case NumStatus::kOk: return value;
    case NumStatus::kOutOfRange:
      throw ParseError(line, "number out of range: '" + cell + "'");
    case NumStatus::kNonFinite:
      throw ParseError(line, "non-finite number: '" + cell + "'");
    default:
      throw ParseError(line, "expected number, got '" + cell + "'");
  }
}

/// Iterates data lines (skipping comments/blank), checking the header.
template <typename RowFn>
void for_each_row(const std::string& text, const std::string& header,
                  std::size_t expected_cells, RowFn&& fn) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      if (line != header) {
        throw ParseError(line_no, "expected header '" + header + "'");
      }
      header_seen = true;
      continue;
    }
    const auto cells = split(line);
    if (cells.size() != expected_cells) {
      throw ParseError(line_no, "expected " + std::to_string(expected_cells) +
                                    " cells, got " +
                                    std::to_string(cells.size()));
    }
    fn(cells, line_no);
  }
  if (!header_seen) throw ParseError(line_no, "missing header row");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

std::string jobs_to_csv(const JobSet& jobs) {
  std::ostringstream os;
  os << "# pobp jobs v1\n";
  os << "release,deadline,length,value\n";
  os.precision(17);
  for (const Job& j : jobs) {
    os << j.release << ',' << j.deadline << ',' << j.length << ',' << j.value
       << '\n';
  }
  return os.str();
}

JobSet jobs_from_csv(const std::string& text) {
  JobSet jobs;
  for_each_row(text, "release,deadline,length,value", 4,
               [&](const std::vector<std::string>& cells, std::size_t line) {
                 Job job;
                 job.release = parse_int(cells[0], line);
                 job.deadline = parse_int(cells[1], line);
                 job.length = parse_int(cells[2], line);
                 job.value = parse_double(cells[3], line);
                 if (!job.well_formed()) {
                   throw ParseError(line, "malformed job (need p ≥ 1, "
                                          "val > 0, window ≥ p)");
                 }
                 jobs.add(job);
               });
  return jobs;
}

Expected<JobSet, diag::Report> try_jobs_from_csv(const std::string& text) {
  diag::Report report;
  std::vector<Job> good;
  const auto numeric_finding = [&](NumStatus status, const char* field,
                                   const std::string& cell,
                                   std::size_t line) {
    const bool syntax = status == NumStatus::kSyntax;
    report
        .add(std::string(syntax ? diag::rules::kIoParse
                                : diag::rules::kIoNumeric),
             std::string(field) +
                 (syntax           ? ": expected a number, got '"
                  : status == NumStatus::kNonFinite ? ": non-finite value '"
                                                    : ": out of range '") +
                 cell + "'")
        .with("line", line)
        .with("cell", cell);
  };
  try {
    for_each_row(
        text, "release,deadline,length,value", 4,
        [&](const std::vector<std::string>& cells, std::size_t line) {
          Job job;
          bool ok = true;
          const char* const fields[3] = {"release", "deadline", "length"};
          std::int64_t ticks[3] = {};
          for (std::size_t i = 0; i < 3; ++i) {
            const NumStatus status = parse_int_cell(cells[i], ticks[i]);
            if (status != NumStatus::kOk) {
              numeric_finding(status, fields[i], cells[i], line);
              ok = false;
            }
          }
          const NumStatus vstatus = parse_double_cell(cells[3], job.value);
          if (vstatus != NumStatus::kOk) {
            numeric_finding(vstatus, "value", cells[3], line);
            ok = false;
          }
          if (!ok) return;
          job.release = ticks[0];
          job.deadline = ticks[1];
          job.length = ticks[2];
          if (sub_overflows(job.deadline, job.release)) {
            report
                .add(std::string(diag::rules::kIoJobDomain),
                     "window d - r overflows int64")
                .with("line", line);
            return;
          }
          if (!job.well_formed()) {
            report
                .add(std::string(diag::rules::kIoJobDomain),
                     "malformed job (need p >= 1, val > 0, window >= p)")
                .with("line", line);
            return;
          }
          good.push_back(job);
        });
  } catch (const ParseError& e) {
    // Structural defects (bad header, wrong cell count) end the scan; the
    // per-cell findings gathered so far are still reported alongside.
    report.add(std::string(diag::rules::kIoParse), e.what())
        .with("line", e.line());
  }
  if (!report.ok()) return Unexpected{std::move(report)};
  return JobSet(std::move(good));
}

Expected<JobSet, diag::Report> try_load_jobs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    diag::Report report;
    report.add(std::string(diag::rules::kIoParse), "cannot open " + path)
        .with("path", path);
    return Unexpected{std::move(report)};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return try_jobs_from_csv(buffer.str());
}

std::vector<Job> job_rows_from_csv(const std::string& text) {
  std::vector<Job> rows;
  for_each_row(text, "release,deadline,length,value", 4,
               [&](const std::vector<std::string>& cells, std::size_t line) {
                 Job job;
                 job.release = parse_int(cells[0], line);
                 job.deadline = parse_int(cells[1], line);
                 job.length = parse_int(cells[2], line);
                 job.value = parse_double(cells[3], line);
                 rows.push_back(job);
               });
  return rows;
}

std::vector<ScheduleRow> schedule_rows_from_csv(const std::string& text) {
  std::vector<ScheduleRow> rows;
  for_each_row(text, "machine,job,begin,end", 4,
               [&](const std::vector<std::string>& cells, std::size_t line) {
                 ScheduleRow row;
                 const std::int64_t m = parse_int(cells[0], line);
                 const std::int64_t j = parse_int(cells[1], line);
                 if (m < 0 || j < 0) {
                   throw ParseError(line, "negative machine or job id");
                 }
                 row.machine = static_cast<std::size_t>(m);
                 row.job = static_cast<JobId>(j);
                 row.segment.begin = parse_int(cells[2], line);
                 row.segment.end = parse_int(cells[3], line);
                 row.line = line;
                 rows.push_back(row);
               });
  return rows;
}

std::vector<std::vector<Assignment>> group_schedule_rows(
    std::span<const ScheduleRow> rows) {
  std::size_t machines = 1;
  for (const ScheduleRow& row : rows) {
    machines = std::max(machines, row.machine + 1);
  }
  // Group per (machine, job) preserving first-appearance order of jobs.
  std::vector<std::vector<Assignment>> out(machines);
  std::map<std::pair<std::size_t, JobId>, std::size_t> index;
  for (const ScheduleRow& row : rows) {
    const auto key = std::make_pair(row.machine, row.job);
    const auto it = index.find(key);
    if (it == index.end()) {
      index.emplace(key, out[row.machine].size());
      out[row.machine].push_back(Assignment{row.job, {row.segment}});
    } else {
      out[row.machine][it->second].segments.push_back(row.segment);
    }
  }
  // Stable sort by begin so intra-job order defects are judged on time
  // order, not file order; empties and overlaps are preserved verbatim.
  for (std::vector<Assignment>& machine : out) {
    for (Assignment& a : machine) {
      std::stable_sort(a.segments.begin(), a.segments.end(),
                       [](const Segment& x, const Segment& y) {
                         return x.begin < y.begin;
                       });
    }
  }
  return out;
}

std::string schedule_to_csv(const Schedule& schedule) {
  std::ostringstream os;
  os << "# pobp schedule v1\n";
  os << "machine,job,begin,end\n";
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    for (const Assignment& a : schedule.machine(m).assignments()) {
      for (const Segment& s : a.segments) {
        os << m << ',' << a.job << ',' << s.begin << ',' << s.end << '\n';
      }
    }
  }
  return os.str();
}

Schedule schedule_from_csv(const std::string& text) {
  struct Row {
    std::size_t machine;
    JobId job;
    Segment segment;
  };
  std::vector<Row> rows;
  std::size_t machines = 1;
  for_each_row(text, "machine,job,begin,end", 4,
               [&](const std::vector<std::string>& cells, std::size_t line) {
                 Row row;
                 const std::int64_t m = parse_int(cells[0], line);
                 const std::int64_t j = parse_int(cells[1], line);
                 if (m < 0 || j < 0) {
                   throw ParseError(line, "negative machine or job id");
                 }
                 row.machine = static_cast<std::size_t>(m);
                 row.job = static_cast<JobId>(j);
                 row.segment.begin = parse_int(cells[2], line);
                 row.segment.end = parse_int(cells[3], line);
                 if (row.segment.empty()) {
                   throw ParseError(line, "empty segment");
                 }
                 machines = std::max(machines, row.machine + 1);
                 rows.push_back(row);
               });

  // Group rows per (machine, job); MachineSchedule::add normalizes order.
  Schedule schedule(machines);
  std::map<std::pair<std::size_t, JobId>, std::vector<Segment>> grouped;
  for (const Row& row : rows) {
    grouped[{row.machine, row.job}].push_back(row.segment);
  }
  for (auto& [key, segments] : grouped) {
    schedule.machine(key.first).add(Assignment{key.second,
                                               std::move(segments)});
  }
  return schedule;
}

void save_jobs(const std::string& path, const JobSet& jobs) {
  write_file(path, jobs_to_csv(jobs));
}

JobSet load_jobs(const std::string& path) {
  return jobs_from_csv(read_file(path));
}

void save_schedule(const std::string& path, const Schedule& schedule) {
  write_file(path, schedule_to_csv(schedule));
}

Schedule load_schedule(const std::string& path) {
  return schedule_from_csv(read_file(path));
}

std::vector<Job> load_job_rows(const std::string& path) {
  return job_rows_from_csv(read_file(path));
}

std::vector<ScheduleRow> load_schedule_rows(const std::string& path) {
  return schedule_rows_from_csv(read_file(path));
}

}  // namespace pobp::io
