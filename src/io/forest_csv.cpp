#include "pobp/io/forest_csv.hpp"

#include <fstream>
#include <sstream>

namespace pobp::io {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

std::string forest_to_csv(const Forest& forest) {
  std::ostringstream os;
  os << "# pobp forest v1\n";
  os << "parent,value\n";
  os.precision(17);
  for (NodeId v = 0; v < forest.size(); ++v) {
    const NodeId p = forest.parent(v);
    os << (p == kNoNode ? -1 : static_cast<std::int64_t>(p)) << ','
       << forest.value(v) << '\n';
  }
  return os.str();
}

Forest forest_from_csv(const std::string& text) {
  Forest forest;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      if (line != "parent,value") {
        throw ParseError(line_no, "expected header 'parent,value'");
      }
      header_seen = true;
      continue;
    }
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) {
      throw ParseError(line_no, "expected 'parent,value'");
    }
    std::int64_t parent = 0;
    double value = 0;
    try {
      parent = std::stoll(line.substr(0, comma));
      value = std::stod(line.substr(comma + 1));
    } catch (const std::exception&) {
      throw ParseError(line_no, "bad number in '" + line + "'");
    }
    if (value <= 0) throw ParseError(line_no, "node value must be positive");
    if (parent < -1 ||
        (parent >= 0 &&
         static_cast<std::size_t>(parent) >= forest.size())) {
      throw ParseError(line_no, "parent must precede child (or be -1)");
    }
    forest.add(value,
               parent < 0 ? kNoNode : static_cast<NodeId>(parent));
  }
  if (!header_seen) throw ParseError(line_no, "missing header row");
  forest.finalize();
  return forest;
}

void save_forest(const std::string& path, const Forest& forest) {
  write_file(path, forest_to_csv(forest));
}

Forest load_forest(const std::string& path) {
  return forest_from_csv(read_file(path));
}

std::string selection_to_csv(const SubForest& sel) {
  std::ostringstream os;
  os << "# pobp selection v1\n";
  os << "keep\n";
  for (const char kept : sel.keep) os << (kept ? 1 : 0) << '\n';
  return os.str();
}

SubForest selection_from_csv(const std::string& text) {
  SubForest sel;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      if (line != "keep") throw ParseError(line_no, "expected header 'keep'");
      header_seen = true;
      continue;
    }
    if (line != "0" && line != "1") {
      throw ParseError(line_no, "keep flag must be 0 or 1, got '" + line + "'");
    }
    sel.keep.push_back(line == "1" ? 1 : 0);
  }
  if (!header_seen) throw ParseError(line_no, "missing header row");
  return sel;
}

void save_selection(const std::string& path, const SubForest& sel) {
  write_file(path, selection_to_csv(sel));
}

SubForest load_selection(const std::string& path) {
  return selection_from_csv(read_file(path));
}

}  // namespace pobp::io
