#include "pobp/io/fuzz.hpp"

#include <iterator>

namespace pobp::io {

std::string fuzz_mutate_line(std::string text, Rng& rng) {
  static const char* const kTokens[] = {
      "nan",  "inf",  "-inf", "1e999", "-1e999", "9223372036854775807",
      "-9223372036854775808", "99999999999999999999", ",", ",,", "\n",
      "-",    ".",    "#",    "e",     "\"",      "{",  "[",  "1.5",
  };
  const int edits = 1 + static_cast<int>(rng.uniform_int(0, 7));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip one byte to a random printable character
        text[pos] = static_cast<char>(' ' + rng.uniform_int(0, 94));
        break;
      case 1:  // delete one byte
        text.erase(pos, 1);
        break;
      case 2:  // insert a random byte
        text.insert(pos, 1, static_cast<char>(' ' + rng.uniform_int(0, 94)));
        break;
      default:  // splice in a hostile numeric/structural token
        text.insert(
            pos,
            kTokens[rng.uniform_int(
                0, static_cast<std::int64_t>(std::size(kTokens)) - 1)]);
        break;
    }
  }
  return text;
}

}  // namespace pobp::io
