// CSV (de)serialization of instances and schedules.
//
// Plain, dependency-free formats so workloads and results can round-trip
// through files, the CLI, spreadsheets and other tools:
//
//   jobs.csv                     schedule.csv
//   release,deadline,length,value    machine,job,begin,end
//   0,10,4,5.0                       0,2,0,5
//   ...                              ...
//
// Lines starting with '#' are comments; the header row is required.
// Parsing failures throw ParseError with a 1-based line number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "pobp/schedule/schedule.hpp"

namespace pobp::io {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// --- string forms ---------------------------------------------------------

std::string jobs_to_csv(const JobSet& jobs);
JobSet jobs_from_csv(const std::string& text);

std::string schedule_to_csv(const Schedule& schedule);
/// `machine_count` of the result is 1 + the largest machine index present
/// (at least 1).
Schedule schedule_from_csv(const std::string& text);

// --- file forms ------------------------------------------------------------

void save_jobs(const std::string& path, const JobSet& jobs);
JobSet load_jobs(const std::string& path);  // throws on IO/parse failure

void save_schedule(const std::string& path, const Schedule& schedule);
Schedule load_schedule(const std::string& path);

}  // namespace pobp::io
