// CSV (de)serialization of instances and schedules.
//
// Plain, dependency-free formats so workloads and results can round-trip
// through files, the CLI, spreadsheets and other tools:
//
//   jobs.csv                     schedule.csv
//   release,deadline,length,value    machine,job,begin,end
//   0,10,4,5.0                       0,2,0,5
//   ...                              ...
//
// Lines starting with '#' are comments; the header row is required.
// Parsing failures throw ParseError with a 1-based line number.
#pragma once

#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/schedule/schedule.hpp"
#include "pobp/util/expected.hpp"

namespace pobp::io {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// --- string forms ---------------------------------------------------------

std::string jobs_to_csv(const JobSet& jobs);
JobSet jobs_from_csv(const std::string& text);

std::string schedule_to_csv(const Schedule& schedule);
/// `machine_count` of the result is 1 + the largest machine index present
/// (at least 1).
Schedule schedule_from_csv(const std::string& text);

// --- fault-contained forms --------------------------------------------------
//
// The strict loaders stop at the first defect and throw; these accumulate
// *every* finding into a rule-tagged diag::Report instead (and never throw
// on malformed input):
//
//   POBP-IO-001  syntax: bad header, wrong cell count, non-numeric cell
//   POBP-IO-002  numeric: int64 overflow, NaN/inf, double out of range
//   POBP-IO-003  job domain: p < 1, val <= 0, window < p, d - r overflow
//
// Success requires a defect-free file: any error-severity finding rejects
// the whole file, the report tags each finding with its 1-based "line".

Expected<JobSet, diag::Report> try_jobs_from_csv(const std::string& text);

/// File form; an unreadable file is a POBP-IO-001 finding, not an exception.
Expected<JobSet, diag::Report> try_load_jobs(const std::string& path);

// --- lenient row forms (the lint path) -------------------------------------
//
// The strict loaders above reject semantically bad data outright (malformed
// jobs, empty segments) and MachineSchedule::add normalizes segment lists,
// which is exactly wrong for a linter: it must *see* the defects to report
// them.  The row-level forms below check syntax only and preserve the file's
// contents verbatim so the diagnostics engine can judge them.

/// Jobs without the well-formedness filter (syntax errors still throw).
std::vector<Job> job_rows_from_csv(const std::string& text);

/// One parsed schedule row, order and duplicates preserved; zero-length and
/// inverted segments are kept.
struct ScheduleRow {
  std::size_t machine = 0;
  JobId job = 0;
  Segment segment;
  std::size_t line = 0;  ///< 1-based source line (for diagnostics)
};
std::vector<ScheduleRow> schedule_rows_from_csv(const std::string& text);

/// Groups rows into per-machine raw assignments: segments sorted by begin
/// (stable) but *not* merged, empties kept.  `machine_count` of the result
/// is 1 + the largest machine index present (at least 1).
std::vector<std::vector<Assignment>> group_schedule_rows(
    std::span<const ScheduleRow> rows);

// --- file forms ------------------------------------------------------------

void save_jobs(const std::string& path, const JobSet& jobs);
JobSet load_jobs(const std::string& path);  // throws on IO/parse failure

void save_schedule(const std::string& path, const Schedule& schedule);
Schedule load_schedule(const std::string& path);

std::vector<Job> load_job_rows(const std::string& path);
std::vector<ScheduleRow> load_schedule_rows(const std::string& path);

}  // namespace pobp::io
