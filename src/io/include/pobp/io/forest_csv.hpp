// CSV (de)serialization of value forests (the k-BAS input type).
//
//   forest.csv
//   parent,value
//   -1,10        <- node 0: a root
//   0,4          <- node 1: child of node 0
//   0,7          <- node 2
//
// Node ids are implicit row indices; every parent must appear before its
// children (the arena's natural order).  '#' comments allowed.
#pragma once

#include <string>

#include "pobp/forest/forest.hpp"
#include "pobp/io/csv.hpp"

namespace pobp::io {

std::string forest_to_csv(const Forest& forest);
Forest forest_from_csv(const std::string& text);

void save_forest(const std::string& path, const Forest& forest);
Forest load_forest(const std::string& path);

}  // namespace pobp::io
