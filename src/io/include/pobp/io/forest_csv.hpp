// CSV (de)serialization of value forests (the k-BAS input type).
//
//   forest.csv
//   parent,value
//   -1,10        <- node 0: a root
//   0,4          <- node 1: child of node 0
//   0,7          <- node 2
//
// Node ids are implicit row indices; every parent must appear before its
// children (the arena's natural order).  '#' comments allowed.
#pragma once

#include <string>

#include "pobp/forest/bas.hpp"
#include "pobp/forest/forest.hpp"
#include "pobp/io/csv.hpp"

namespace pobp::io {

std::string forest_to_csv(const Forest& forest);
Forest forest_from_csv(const std::string& text);

void save_forest(const std::string& path, const Forest& forest);
Forest load_forest(const std::string& path);

// Sub-forest selections (k-BAS candidates) as a single `keep` column of
// 0/1 flags; row index = node id, mirroring forest.csv:
//
//   selection.csv
//   keep
//   1            <- node 0 kept
//   0            <- node 1 deleted
//
// The mask length is *not* forced to match any forest here — pobp_lint
// reports a mismatch as diagnostic POBP-BAS-001 instead.
std::string selection_to_csv(const SubForest& sel);
SubForest selection_from_csv(const std::string& text);

void save_selection(const std::string& path, const SubForest& sel);
SubForest load_selection(const std::string& path);

}  // namespace pobp::io
