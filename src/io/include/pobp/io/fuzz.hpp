// Shared input mutator for the IO robustness fuzz suites and the
// `pobp chaos` harness: random byte edits plus hostile numeric /
// structural token splices, driven by the deterministic pobp::Rng so
// every fuzz failure replays from its seed.
//
// The mutations are format-agnostic on purpose — the same operator set
// exercises the CSV loaders, the JSONL instance loader and the serve wire
// protocol, and a mutated line that happens to stay well-formed is just
// as valuable (the parser must *accept* it and the downstream checks must
// still hold).
#pragma once

#include <string>

#include "pobp/util/rng.hpp"

namespace pobp::io {

/// Returns `text` with 1–8 random edits: byte flips, deletions,
/// insertions, and splices of hostile tokens (nan/inf/overflowing
/// integers/structural punctuation).  Deterministic in (text, rng state).
[[nodiscard]] std::string fuzz_mutate_line(std::string text, Rng& rng);

}  // namespace pobp::io
