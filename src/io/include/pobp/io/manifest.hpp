// Batch-instance loading for the engine and the `pobp batch` CLI.
//
// Two on-disk forms (documented in docs/ENGINE.md):
//
//   * manifest — a text file with one jobs-CSV path per line; '#' starts a
//     comment, blank lines are skipped, and relative paths are resolved
//     against the manifest file's directory.  Instance names are the file
//     stems ("workloads/web.csv" → "web").
//
//   * JSONL — one JSON object per line:
//       {"name": "web", "jobs": [[release,deadline,length,value], ...]}
//     `name` is optional (defaults to "line<N>"); each job may also be an
//     object {"release":r,"deadline":d,"length":p,"value":v}.
//
// Malformed input throws ParseError with the offending 1-based line number
// (for JSONL, the line within the stream).
#pragma once

#include <string>
#include <vector>

#include "pobp/io/csv.hpp"
#include "pobp/schedule/job.hpp"

namespace pobp::io {

/// One named instance of a batch.
struct BatchInstance {
  std::string name;
  JobSet jobs;
};

/// Parses manifest text; `base_dir` is prepended to relative paths ("" =
/// current directory).
std::vector<std::string> manifest_paths(const std::string& text,
                                        const std::string& base_dir);

/// Loads a manifest file and every jobs CSV it references.
std::vector<BatchInstance> load_manifest(const std::string& path);

/// Parses a JSONL instance stream (string form).
std::vector<BatchInstance> instances_from_jsonl(const std::string& text);

/// Loads a JSONL instance file.
std::vector<BatchInstance> load_jsonl(const std::string& path);

// --- fault-contained forms --------------------------------------------------
//
// The strict loaders above throw on the first defect anywhere in the batch,
// so one corrupt instance poisons its siblings.  The try_ forms contain
// defects per instance: each referenced CSV / JSONL line becomes either its
// parsed jobs or the rule-tagged diag::Report (POBP-IO-001/002/003)
// explaining why that one instance was rejected.  Only the batch container
// itself being unreadable is a whole-batch error.

/// One fault-contained instance: jobs, or the report rejecting them.
struct InstanceOutcome {
  std::string name;
  Expected<JobSet, diag::Report> jobs;
};

Expected<std::vector<InstanceOutcome>, diag::Report> try_load_manifest(
    const std::string& path);

std::vector<InstanceOutcome> try_instances_from_jsonl(const std::string& text);

Expected<std::vector<InstanceOutcome>, diag::Report> try_load_jsonl(
    const std::string& path);

}  // namespace pobp::io
