// The `pobp serve` JSONL wire protocol (docs/SERVING.md).
//
// Requests are one JSON object per line:
//
//   {"id": "req-1", "jobs": [[0,10,4,5.0], ...],
//    "k": 1, "machines": 2,                 // optional pipeline overrides
//    "deadline_ms": 50, "max_ops": 1000000, // optional per-request budget
//    "tenant": "acme", "degrade": true,     // optional admission fields
//    "cache": "read_write",                 // optional solve-cache mode
//    "schedule": true}                      // echo the solved schedule
//
// Responses are one frame per request, in request order:
//
//   {"id":"req-1","ok":true,"value":7.5,"unbounded_value":8,"price":1.0666,
//    "degraded":false,"jobs_scheduled":2,"schedule_csv":"..."}
//   {"id":"req-2","ok":false,"error":{"findings":[{"rule":"POBP-RUN-003",
//    ...}]}}
//
// Frames are deterministic functions of the request (no timestamps, no
// worker identity), which is what makes replayed streams byte-identical
// across worker counts.  Error frames embed the compact diag::to_json
// rendering, so rule ids arrive machine-matchable.
//
// This layer is io-only (no engine dependency): the CLI composes it with
// pobp::StreamEngine, and ResponseStats carries the few ScheduleResult
// fields a frame needs so the layering (io below core/engine) holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/schedule/job.hpp"
#include "pobp/schedule/schedule.hpp"
#include "pobp/util/expected.hpp"

namespace pobp::io {

/// One parsed request line.
struct ServeRequest {
  std::string id;        ///< echo token; defaults to "line<N>"
  std::string tenant;    ///< "" = the default tenant
  JobSet jobs;
  std::optional<std::size_t> k;         ///< per-request k override
  std::optional<std::size_t> machines;  ///< per-request machine count
  double deadline_ms = 0;               ///< end-to-end deadline (0 = none)
  std::uint64_t max_ops = 0;            ///< op budget (0 = engine default)
  std::optional<bool> degrade;          ///< per-request degrade override
  /// Per-request solve-cache mode: "" (engine default), "off", "read" or
  /// "read_write" (kept a string so io stays below engine in the layer
  /// map; the CLI maps it onto SubmitOptions::cache).
  std::string cache;
  bool want_schedule = false;           ///< echo the schedule CSV
};

/// Default ceiling on one request line (1 MiB).  Oversized lines are
/// rejected with POBP-IO-001 *before* parsing, so a hostile stream cannot
/// make the server buffer or scan unbounded frames.
inline constexpr std::size_t kDefaultMaxLineBytes = std::size_t{1} << 20;

/// Sanity ceilings on the per-request overrides.  A corrupted frame
/// asking for 2^60 machines would otherwise make the solver allocate a
/// machine array of that size; past these caps the request is rejected
/// in-band with POBP-IO-002.  Both are far beyond any meaningful value
/// (the paper's regime is k, m = O(log n)).
inline constexpr std::size_t kMaxWireK = std::size_t{1} << 20;
inline constexpr std::size_t kMaxWireMachines = 4096;

/// Parses one JSONL request line (1-based `line_no` for error reports and
/// the fallback id).  Malformed, truncated, too-deeply-nested or (beyond
/// `max_line_bytes`; 0 = unlimited) oversized lines come back as
/// POBP-IO-001/-002/-003 reports — one bad request never kills the
/// stream, and nothing on this path throws past the boundary.
[[nodiscard]] Expected<ServeRequest, diag::Report> try_parse_serve_request(
    const std::string& line, std::size_t line_no,
    std::size_t max_line_bytes = kDefaultMaxLineBytes);

/// The ScheduleResult fields a success frame carries (kept primitive so io
/// stays below core in the layer map).
struct ResponseStats {
  double value = 0;
  double unbounded_value = 0;
  double price = 1;
  bool degraded = false;
  std::size_t jobs_scheduled = 0;
};

/// One success frame (no trailing newline).  `schedule` non-null embeds
/// its CSV rendering as the "schedule_csv" field.
[[nodiscard]] std::string response_frame(const std::string& id,
                                         const ResponseStats& stats,
                                         const Schedule* schedule = nullptr);

/// One error frame (no trailing newline), embedding diag::to_json(report).
[[nodiscard]] std::string error_frame(const std::string& id,
                                      const diag::Report& report);

}  // namespace pobp::io
