// Internal micro JSON reader shared by the JSONL instance loader
// (manifest.cpp) and the serve wire protocol (wire.cpp).  Not installed —
// the public surface stays pobp/io/manifest.hpp and pobp/io/wire.hpp.
//
// Just enough JSON for one-value-per-line formats: objects, arrays,
// numbers, strings (with the standard escapes), true/false/null.
// Anything else is a ParseError carrying the 1-based source line.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pobp/io/csv.hpp"
#include "pobp/schedule/job.hpp"
#include "pobp/util/checked.hpp"

namespace pobp::io::detail {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  JsonReader(const std::string& text, std::size_t line)
      : text_(text), line_(line) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(line_, what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON value");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    // Containers recurse; a hostile line of 100k '[' would otherwise
    // overflow the stack.  64 levels is far beyond any legitimate frame.
    if (depth_ >= kMaxDepth) fail("JSON nested deeper than 64 levels");
    ++depth_;
    JsonValue v = value_inner();
    --depth_;
    return v;
  }

  JsonValue value_inner() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      default:
        if (consume_word("true")) {
          v.kind = JsonValue::Kind::kBool;
          v.boolean = true;
          return v;
        }
        if (consume_word("false")) {
          v.kind = JsonValue::Kind::kBool;
          return v;
        }
        if (consume_word("null")) return v;
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: fail("unsupported string escape");  // \uXXXX included
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return v;
  }

  static constexpr std::size_t kMaxDepth = 64;

  const std::string& text_;
  std::size_t line_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

// ParseError refinements so the fault-contained loaders can classify a
// failure without sniffing message text; the throwing API is unchanged
// (both are ParseError).
struct NumericError : ParseError {
  using ParseError::ParseError;
};
struct JobDomainError : ParseError {
  using ParseError::ParseError;
};

inline std::int64_t to_tick(const JsonValue& v, const char* what,
                            std::size_t line) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw ParseError(line, std::string(what) + " must be a number");
  }
  // static_cast<int64> of a NaN/inf/out-of-range double is UB; screen first.
  const std::optional<std::int64_t> tick = double_to_tick(v.number);
  if (!tick) {
    throw NumericError(line,
                       std::string(what) + " must be a finite integer tick");
  }
  return *tick;
}

inline Job job_from_json(const JsonValue& v, std::size_t line) {
  Job job;
  if (v.kind == JsonValue::Kind::kArray) {
    if (v.items.size() != 4) {
      throw ParseError(line,
                       "job array must be [release,deadline,length,value]");
    }
    job.release = to_tick(v.items[0], "release", line);
    job.deadline = to_tick(v.items[1], "deadline", line);
    job.length = to_tick(v.items[2], "length", line);
    if (v.items[3].kind != JsonValue::Kind::kNumber) {
      throw ParseError(line, "value must be a number");
    }
    job.value = v.items[3].number;
  } else if (v.kind == JsonValue::Kind::kObject) {
    const JsonValue* r = v.find("release");
    const JsonValue* d = v.find("deadline");
    const JsonValue* p = v.find("length");
    const JsonValue* val = v.find("value");
    if (!r || !d || !p) {
      throw ParseError(line, "job object needs release, deadline, length");
    }
    job.release = to_tick(*r, "release", line);
    job.deadline = to_tick(*d, "deadline", line);
    job.length = to_tick(*p, "length", line);
    if (val) {
      if (val->kind != JsonValue::Kind::kNumber) {
        throw ParseError(line, "value must be a number");
      }
      job.value = val->number;
    }
  } else {
    throw ParseError(line, "job must be a JSON array or object");
  }
  if (!job.well_formed()) {
    throw JobDomainError(line,
                         "malformed job (need p >= 1, val > 0, window >= p)");
  }
  return job;
}

}  // namespace pobp::io::detail
