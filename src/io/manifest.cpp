#include "pobp/io/manifest.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "pobp/diag/registry.hpp"
#include "pobp/util/checked.hpp"

namespace pobp::io {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string trim(std::string s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// "dir/web.csv" → "web".
std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || dot < start) dot = path.size();
  return path.substr(start, dot - start);
}

// --- micro JSON reader ------------------------------------------------------
//
// Just enough JSON for the JSONL instance format: objects, arrays, numbers,
// strings (with the standard escapes), true/false/null.  One value per
// line; anything else is a ParseError.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  JsonReader(const std::string& text, std::size_t line)
      : text_(text), line_(line) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(line_, what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON value");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      default:
        if (consume_word("true")) {
          v.kind = JsonValue::Kind::kBool;
          v.boolean = true;
          return v;
        }
        if (consume_word("false")) {
          v.kind = JsonValue::Kind::kBool;
          return v;
        }
        if (consume_word("null")) return v;
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: fail("unsupported string escape");  // \uXXXX included
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return v;
  }

  const std::string& text_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

// ParseError refinements so the fault-contained loaders can classify a
// failure without sniffing message text; the throwing API is unchanged
// (both are ParseError).
struct NumericError : ParseError {
  using ParseError::ParseError;
};
struct JobDomainError : ParseError {
  using ParseError::ParseError;
};

std::int64_t to_tick(const JsonValue& v, const char* what, std::size_t line) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw ParseError(line, std::string(what) + " must be a number");
  }
  // static_cast<int64> of a NaN/inf/out-of-range double is UB; screen first.
  const std::optional<std::int64_t> tick = double_to_tick(v.number);
  if (!tick) {
    throw NumericError(line,
                       std::string(what) + " must be a finite integer tick");
  }
  return *tick;
}

Job job_from_json(const JsonValue& v, std::size_t line) {
  Job job;
  if (v.kind == JsonValue::Kind::kArray) {
    if (v.items.size() != 4) {
      throw ParseError(line,
                       "job array must be [release,deadline,length,value]");
    }
    job.release = to_tick(v.items[0], "release", line);
    job.deadline = to_tick(v.items[1], "deadline", line);
    job.length = to_tick(v.items[2], "length", line);
    if (v.items[3].kind != JsonValue::Kind::kNumber) {
      throw ParseError(line, "value must be a number");
    }
    job.value = v.items[3].number;
  } else if (v.kind == JsonValue::Kind::kObject) {
    const JsonValue* r = v.find("release");
    const JsonValue* d = v.find("deadline");
    const JsonValue* p = v.find("length");
    const JsonValue* val = v.find("value");
    if (!r || !d || !p) {
      throw ParseError(line, "job object needs release, deadline, length");
    }
    job.release = to_tick(*r, "release", line);
    job.deadline = to_tick(*d, "deadline", line);
    job.length = to_tick(*p, "length", line);
    if (val) {
      if (val->kind != JsonValue::Kind::kNumber) {
        throw ParseError(line, "value must be a number");
      }
      job.value = val->number;
    }
  } else {
    throw ParseError(line, "job must be a JSON array or object");
  }
  if (!job.well_formed()) {
    throw JobDomainError(line,
                         "malformed job (need p >= 1, val > 0, window >= p)");
  }
  return job;
}

/// Parses one (already trimmed, non-empty) JSONL line into an instance.
BatchInstance parse_jsonl_line(const std::string& line, std::size_t line_no) {
  const JsonValue v = JsonReader(line, line_no).parse();
  if (v.kind != JsonValue::Kind::kObject) {
    throw ParseError(line_no, "each JSONL line must be a JSON object");
  }
  BatchInstance instance;
  if (const JsonValue* name = v.find("name")) {
    if (name->kind != JsonValue::Kind::kString) {
      throw ParseError(line_no, "name must be a string");
    }
    instance.name = name->string;
  } else {
    instance.name = "line" + std::to_string(line_no);
  }
  const JsonValue* jobs = v.find("jobs");
  if (!jobs || jobs->kind != JsonValue::Kind::kArray) {
    throw ParseError(line_no, "instance needs a \"jobs\" array");
  }
  for (const JsonValue& j : jobs->items) {
    instance.jobs.add(job_from_json(j, line_no));
  }
  return instance;
}

diag::Report report_one(std::string_view rule, const ParseError& e) {
  diag::Report report;
  report.add(std::string(rule), e.what()).with("line", e.line());
  return report;
}

diag::Report cannot_open(const std::string& path) {
  diag::Report report;
  report.add(std::string(diag::rules::kIoParse), "cannot open " + path)
      .with("path", path);
  return report;
}

}  // namespace

std::vector<std::string> manifest_paths(const std::string& text,
                                        const std::string& base_dir) {
  std::vector<std::string> paths;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::string line = trim(std::move(raw));
    if (line.empty()) continue;
    if (!base_dir.empty() && line.front() != '/') {
      line = base_dir + "/" + line;
    }
    paths.push_back(std::move(line));
  }
  return paths;
}

std::vector<BatchInstance> load_manifest(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  std::vector<BatchInstance> instances;
  for (const std::string& csv : manifest_paths(read_file(path), base_dir)) {
    instances.push_back({path_stem(csv), load_jobs(csv)});
  }
  return instances;
}

std::vector<BatchInstance> instances_from_jsonl(const std::string& text) {
  std::vector<BatchInstance> instances;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(std::move(raw));
    if (line.empty() || line.front() == '#') continue;
    instances.push_back(parse_jsonl_line(line, line_no));
  }
  return instances;
}

std::vector<BatchInstance> load_jsonl(const std::string& path) {
  return instances_from_jsonl(read_file(path));
}

Expected<std::vector<InstanceOutcome>, diag::Report> try_load_manifest(
    const std::string& path) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception&) {
    return Unexpected{cannot_open(path)};
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  std::vector<InstanceOutcome> outcomes;
  for (const std::string& csv : manifest_paths(text, base_dir)) {
    outcomes.push_back({path_stem(csv), try_load_jobs(csv)});
  }
  return outcomes;
}

std::vector<InstanceOutcome> try_instances_from_jsonl(const std::string& text) {
  std::vector<InstanceOutcome> outcomes;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(std::move(raw));
    if (line.empty() || line.front() == '#') continue;
    const std::string fallback_name = "line" + std::to_string(line_no);
    try {
      BatchInstance instance = parse_jsonl_line(line, line_no);
      outcomes.push_back(
          {std::move(instance.name), std::move(instance.jobs)});
    } catch (const NumericError& e) {
      outcomes.push_back(
          {fallback_name, Unexpected{report_one(diag::rules::kIoNumeric, e)}});
    } catch (const JobDomainError& e) {
      outcomes.push_back(
          {fallback_name,
           Unexpected{report_one(diag::rules::kIoJobDomain, e)}});
    } catch (const ParseError& e) {
      outcomes.push_back(
          {fallback_name, Unexpected{report_one(diag::rules::kIoParse, e)}});
    }
  }
  return outcomes;
}

Expected<std::vector<InstanceOutcome>, diag::Report> try_load_jsonl(
    const std::string& path) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception&) {
    return Unexpected{cannot_open(path)};
  }
  return try_instances_from_jsonl(text);
}

}  // namespace pobp::io
