#include "pobp/io/manifest.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "json_micro.hpp"
#include "pobp/diag/registry.hpp"

namespace pobp::io {
namespace {

using detail::JobDomainError;
using detail::JsonReader;
using detail::JsonValue;
using detail::NumericError;
using detail::job_from_json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string trim(std::string s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// "dir/web.csv" → "web".
std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || dot < start) dot = path.size();
  return path.substr(start, dot - start);
}

// The micro JSON reader, the JsonValue tree, and job_from_json live in
// json_micro.hpp (shared with the serve wire protocol, wire.cpp).

/// Parses one (already trimmed, non-empty) JSONL line into an instance.
BatchInstance parse_jsonl_line(const std::string& line, std::size_t line_no) {
  const JsonValue v = JsonReader(line, line_no).parse();
  if (v.kind != JsonValue::Kind::kObject) {
    throw ParseError(line_no, "each JSONL line must be a JSON object");
  }
  BatchInstance instance;
  if (const JsonValue* name = v.find("name")) {
    if (name->kind != JsonValue::Kind::kString) {
      throw ParseError(line_no, "name must be a string");
    }
    instance.name = name->string;
  } else {
    instance.name = "line" + std::to_string(line_no);
  }
  const JsonValue* jobs = v.find("jobs");
  if (!jobs || jobs->kind != JsonValue::Kind::kArray) {
    throw ParseError(line_no, "instance needs a \"jobs\" array");
  }
  for (const JsonValue& j : jobs->items) {
    instance.jobs.add(job_from_json(j, line_no));
  }
  return instance;
}

diag::Report report_one(std::string_view rule, const ParseError& e) {
  diag::Report report;
  report.add(std::string(rule), e.what()).with("line", e.line());
  return report;
}

diag::Report cannot_open(const std::string& path) {
  diag::Report report;
  report.add(std::string(diag::rules::kIoParse), "cannot open " + path)
      .with("path", path);
  return report;
}

}  // namespace

std::vector<std::string> manifest_paths(const std::string& text,
                                        const std::string& base_dir) {
  std::vector<std::string> paths;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::string line = trim(std::move(raw));
    if (line.empty()) continue;
    if (!base_dir.empty() && line.front() != '/') {
      line = base_dir + "/" + line;
    }
    paths.push_back(std::move(line));
  }
  return paths;
}

std::vector<BatchInstance> load_manifest(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  std::vector<BatchInstance> instances;
  for (const std::string& csv : manifest_paths(read_file(path), base_dir)) {
    instances.push_back({path_stem(csv), load_jobs(csv)});
  }
  return instances;
}

std::vector<BatchInstance> instances_from_jsonl(const std::string& text) {
  std::vector<BatchInstance> instances;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(std::move(raw));
    if (line.empty() || line.front() == '#') continue;
    instances.push_back(parse_jsonl_line(line, line_no));
  }
  return instances;
}

std::vector<BatchInstance> load_jsonl(const std::string& path) {
  return instances_from_jsonl(read_file(path));
}

Expected<std::vector<InstanceOutcome>, diag::Report> try_load_manifest(
    const std::string& path) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception&) {
    return Unexpected{cannot_open(path)};
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  std::vector<InstanceOutcome> outcomes;
  for (const std::string& csv : manifest_paths(text, base_dir)) {
    outcomes.push_back({path_stem(csv), try_load_jobs(csv)});
  }
  return outcomes;
}

std::vector<InstanceOutcome> try_instances_from_jsonl(const std::string& text) {
  std::vector<InstanceOutcome> outcomes;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(std::move(raw));
    if (line.empty() || line.front() == '#') continue;
    const std::string fallback_name = "line" + std::to_string(line_no);
    try {
      BatchInstance instance = parse_jsonl_line(line, line_no);
      outcomes.push_back(
          {std::move(instance.name), std::move(instance.jobs)});
    } catch (const NumericError& e) {
      outcomes.push_back(
          {fallback_name, Unexpected{report_one(diag::rules::kIoNumeric, e)}});
    } catch (const JobDomainError& e) {
      outcomes.push_back(
          {fallback_name,
           Unexpected{report_one(diag::rules::kIoJobDomain, e)}});
    } catch (const ParseError& e) {
      outcomes.push_back(
          {fallback_name, Unexpected{report_one(diag::rules::kIoParse, e)}});
    }
  }
  return outcomes;
}

Expected<std::vector<InstanceOutcome>, diag::Report> try_load_jsonl(
    const std::string& path) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception&) {
    return Unexpected{cannot_open(path)};
  }
  return try_instances_from_jsonl(text);
}

}  // namespace pobp::io
