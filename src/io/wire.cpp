#include "pobp/io/wire.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "json_micro.hpp"
#include "pobp/diag/registry.hpp"
#include "pobp/diag/render.hpp"
#include "pobp/io/csv.hpp"

namespace pobp::io {
namespace {

using detail::JobDomainError;
using detail::JsonReader;
using detail::JsonValue;
using detail::NumericError;
using detail::job_from_json;
using detail::to_tick;

/// Deterministic JSON number rendering: %.17g round-trips every double
/// bit-exactly, and infinities render as 1e999 (standard parsers read
/// that back as +inf), matching the metrics JSON export.
std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Non-negative integer field (k, machines, max_ops).
std::uint64_t to_count(const JsonValue& v, const char* what,
                       std::size_t line) {
  const std::int64_t t = to_tick(v, what, line);
  if (t < 0) {
    throw NumericError(line, std::string(what) + " must be >= 0");
  }
  return static_cast<std::uint64_t>(t);
}

ServeRequest parse_serve_request(const std::string& line,
                                 std::size_t line_no) {
  const JsonValue v = JsonReader(line, line_no).parse();
  if (v.kind != JsonValue::Kind::kObject) {
    throw ParseError(line_no, "each request must be a JSON object");
  }
  ServeRequest request;
  request.id = "line" + std::to_string(line_no);
  if (const JsonValue* id = v.find("id")) {
    if (id->kind == JsonValue::Kind::kString) {
      request.id = id->string;
    } else if (id->kind == JsonValue::Kind::kNumber) {
      request.id = format_number(id->number);
    } else {
      throw ParseError(line_no, "id must be a string or a number");
    }
  }
  if (const JsonValue* tenant = v.find("tenant")) {
    if (tenant->kind != JsonValue::Kind::kString) {
      throw ParseError(line_no, "tenant must be a string");
    }
    request.tenant = tenant->string;
  }
  const JsonValue* jobs = v.find("jobs");
  if (!jobs || jobs->kind != JsonValue::Kind::kArray) {
    throw ParseError(line_no, "request needs a \"jobs\" array");
  }
  for (const JsonValue& j : jobs->items) {
    request.jobs.add(job_from_json(j, line_no));
  }
  if (const JsonValue* k = v.find("k")) {
    const std::uint64_t count = to_count(*k, "k", line_no);
    if (count > kMaxWireK) {
      throw NumericError(line_no, "k exceeds the wire cap of " +
                                      std::to_string(kMaxWireK));
    }
    request.k = static_cast<std::size_t>(count);
  }
  if (const JsonValue* machines = v.find("machines")) {
    const std::uint64_t count = to_count(*machines, "machines", line_no);
    if (count > kMaxWireMachines) {
      throw NumericError(line_no, "machines exceeds the wire cap of " +
                                      std::to_string(kMaxWireMachines));
    }
    request.machines = static_cast<std::size_t>(count);
  }
  if (const JsonValue* deadline = v.find("deadline_ms")) {
    if (deadline->kind != JsonValue::Kind::kNumber ||
        !(deadline->number >= 0) || std::isinf(deadline->number)) {
      throw NumericError(line_no, "deadline_ms must be a number >= 0");
    }
    request.deadline_ms = deadline->number;
  }
  if (const JsonValue* ops = v.find("max_ops")) {
    request.max_ops = to_count(*ops, "max_ops", line_no);
  }
  if (const JsonValue* degrade = v.find("degrade")) {
    if (degrade->kind != JsonValue::Kind::kBool) {
      throw ParseError(line_no, "degrade must be a boolean");
    }
    request.degrade = degrade->boolean;
  }
  if (const JsonValue* cache = v.find("cache")) {
    if (cache->kind != JsonValue::Kind::kString ||
        (cache->string != "off" && cache->string != "read" &&
         cache->string != "read_write")) {
      throw ParseError(line_no,
                       "cache must be \"off\", \"read\" or \"read_write\"");
    }
    request.cache = cache->string;
  }
  if (const JsonValue* schedule = v.find("schedule")) {
    if (schedule->kind != JsonValue::Kind::kBool) {
      throw ParseError(line_no, "schedule must be a boolean");
    }
    request.want_schedule = schedule->boolean;
  }
  return request;
}

diag::Report report_one(std::string_view rule, const ParseError& e) {
  diag::Report report;
  report.add(std::string(rule), e.what()).with("line", e.line());
  return report;
}

}  // namespace

Expected<ServeRequest, diag::Report> try_parse_serve_request(
    const std::string& line, std::size_t line_no,
    std::size_t max_line_bytes) {
  if (max_line_bytes > 0 && line.size() > max_line_bytes) {
    diag::Report report;
    report
        .add(std::string(diag::rules::kIoParse),
             "request line exceeds " + std::to_string(max_line_bytes) +
                 " bytes")
        .with("line", line_no)
        .with("bytes", line.size());
    return Unexpected{std::move(report)};
  }
  try {
    return parse_serve_request(line, line_no);
  } catch (const NumericError& e) {
    return Unexpected{report_one(diag::rules::kIoNumeric, e)};
  } catch (const JobDomainError& e) {
    return Unexpected{report_one(diag::rules::kIoJobDomain, e)};
  } catch (const ParseError& e) {
    return Unexpected{report_one(diag::rules::kIoParse, e)};
  }
}

std::string response_frame(const std::string& id, const ResponseStats& stats,
                           const Schedule* schedule) {
  std::ostringstream os;
  os << "{\"id\":";
  append_json_string(os, id);
  os << ",\"ok\":true,\"value\":" << format_number(stats.value)
     << ",\"unbounded_value\":" << format_number(stats.unbounded_value)
     << ",\"price\":" << format_number(stats.price)
     << ",\"degraded\":" << (stats.degraded ? "true" : "false")
     << ",\"jobs_scheduled\":" << stats.jobs_scheduled;
  if (schedule != nullptr) {
    os << ",\"schedule_csv\":";
    append_json_string(os, schedule_to_csv(*schedule));
  }
  os << '}';
  return os.str();
}

std::string error_frame(const std::string& id, const diag::Report& report) {
  std::ostringstream os;
  os << "{\"id\":";
  append_json_string(os, id);
  os << ",\"ok\":false,\"error\":" << diag::to_json(report) << '}';
  return os.str();
}

}  // namespace pobp::io
