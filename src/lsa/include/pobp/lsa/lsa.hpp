// The Leftmost Schedule Algorithm and its classify-and-select wrapper
// (Algorithm 2, §4.3.2), plus the k = 0 variant (§5) and the iterative
// multi-machine extension (§4.3.4).
//
// LSA processes jobs in descending density order.  For each job it keeps a
// working set S of at most k+1 idle segments inside [r_j, d_j): starting
// from the k+1 leftmost, while the job does not fit it swaps the shortest
// member of S for the next idle segment to the right; the job is scheduled
// leftmost into S when it fits and discarded when the window's idle
// segments are exhausted.  A job scheduled into ≤ k+1 segments is preempted
// ≤ k times.
//
// LSA alone guarantees a constant fraction only when the instance's length
// ratio is bounded; LSA_CS therefore classifies jobs into length classes
// with ratio ≤ k+1 (≤ 2 when k = 0), runs LSA per class on an empty
// machine, and returns the best class — losing the log_{k+1} P
// (resp. log₂ P) classification factor.  On lax jobs (λ_j ≥ k+1) this
// yields val ≥ OPT∞ / (6·log_{k+1} P)   (Lemma 4.10); for k = 0 it yields
// val ≥ OPT∞ / (3·log₂ P)               (§5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pobp/schedule/columns.hpp"
#include "pobp/schedule/schedule.hpp"
#include "pobp/schedule/timeline.hpp"

namespace pobp {

struct LsaResult {
  MachineSchedule schedule;
  std::vector<JobId> scheduled;  ///< J_in, in the order LSA accepted them
  std::vector<JobId> rejected;   ///< J_out
};

/// Greedy consideration order inside LSA.  The paper runs LSA "with the
/// difference that the jobs are sorted by their density rather than by
/// value" (§4.3.2) — kValue is the original Albagli-Kim et al. [1] order,
/// kept for the ablation benches.
enum class LsaOrder {
  kDensity,  ///< descending val(j)/p_j — the paper's choice
  kValue,    ///< descending val(j) — Albagli-Kim's original
};

/// Reusable buffers for LSA and its classify-and-select wrapper.  The
/// timeline and the two staging results are pooled: their run/slot storage
/// survives clear(), so a warmed scratch makes every lsa_*_into form
/// allocation-free.
struct LsaScratch {
  std::vector<JobId> order;          ///< consideration-order staging
  std::vector<Segment> working;      ///< Alg. 2's working set S
  std::vector<Segment> placed;       ///< leftmost-fill staging
  std::vector<std::pair<std::size_t, JobId>> classes;  ///< (class, id) pairs
  std::vector<JobId> class_members;  ///< one class's members, contiguous
  std::vector<JobId> residual;       ///< multi-machine leftover staging
  IdleTimeline timeline;             ///< pooled busy-run timeline
  LsaResult attempt;                 ///< per-class staging (lsa_cs_into)
  LsaResult cs_best;                 ///< winning-class staging (multi form)
  std::vector<std::uint32_t> class_of;      ///< per candidate, classify stage
  std::vector<std::uint32_t> class_counts;  ///< counting-sort histogram
  std::vector<std::int64_t> class_bounds;   ///< base^c length boundaries
  std::vector<std::int64_t> class_vals;     ///< gathered per-candidate keys
  JobColumns columns;  ///< SoA mirror for the JobSet-taking entry points
};

/// Plain LSA over `candidates` on one (initially empty) machine.
/// k is the preemption bound (k = 0 means en-bloc / non-preemptive).
LsaResult lsa(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order = LsaOrder::kDensity);

/// Scratch-reusing form (identical result).
LsaResult lsa(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch);

/// What classify-and-select groups by.  The paper's Alg. 2 classifies by
/// length (ratio ≤ k+1 per class ⇒ price O(log_{k+1} P)); §1.4 notes that
/// classifying the same machinery by value or density extends
/// Albagli-Kim's O(1) results to O(log ρ) and O(log σ) respectively
/// (ratio-2 classes: near-unit value / density within each class).
enum class ClassifyBy {
  kLength,   ///< base max(k+1, 2) length classes — Alg. 2 / §5
  kValue,    ///< factor-2 value classes — price O(log ρ)
  kDensity,  ///< factor-2 density classes — price O(log σ)
};

/// Classify-and-select wrapper: partition `candidates` into ratio-bounded
/// classes, run LSA per class on an empty machine, return the best class.
LsaResult lsa_cs(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by = ClassifyBy::kLength,
                 LsaOrder order = LsaOrder::kDensity);

/// Scratch-reusing form (identical result).
LsaResult lsa_cs(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch);

/// Iterative multi-machine extension: machine i runs LSA_CS on the jobs the
/// first i−1 machines rejected (the residual technique of [2], which costs
/// at most +1 in the price).
Schedule lsa_cs_multi(const JobSet& jobs, std::span<const JobId> candidates,
                      std::size_t k, std::size_t machine_count);

/// Scratch-reusing form (identical result).
Schedule lsa_cs_multi(const JobSet& jobs, std::span<const JobId> candidates,
                      std::size_t k, std::size_t machine_count,
                      LsaScratch& scratch);

/// Pooled forms: write into `out` (cleared/reset first, slot storage
/// recycled — zero heap allocations once scratch and `out` are warmed).
/// `out` must not alias the scratch staging results.
void lsa_into(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch,
              LsaResult& out);
void lsa_cs_into(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch, LsaResult& out);
void lsa_cs_multi_into(const JobSet& jobs, std::span<const JobId> candidates,
                       std::size_t k, std::size_t machine_count,
                       LsaScratch& scratch, Schedule& out);

/// Columnar forms (identical results): the solve pipeline builds the
/// JobColumns once per solve (SolveScratch) and passes the view, skipping
/// the per-call SoA rebuild the JobSet overloads perform.
void lsa_into(const JobSetView& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch,
              LsaResult& out);
void lsa_cs_into(const JobSetView& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch, LsaResult& out);
void lsa_cs_multi_into(const JobSetView& jobs,
                       std::span<const JobId> candidates, std::size_t k,
                       std::size_t machine_count, LsaScratch& scratch,
                       Schedule& out);

/// The LSA_CS classification kernel, exposed for the kernel bench and the
/// SoA/AoS equivalence tests: computes every candidate's class (length /
/// value / density per `by`) and groups `scratch.classes` by ascending
/// class with members in candidates order — exactly the (class, id) pairs
/// a stable sort by class would produce, but via a 4-lane classify pass
/// (exponent-bit classes, power-of-base boundary table) and a counting
/// sort over the bounded class range.  Returns the number of distinct
/// classes.
std::size_t lsa_classify(const JobSetView& jobs,
                         std::span<const JobId> candidates, std::size_t k,
                         ClassifyBy by, LsaScratch& scratch);

/// The length-class index of a job for class base `base` (≥ 2): the unique
/// c ≥ 0 with base^c ≤ p_j < base^(c+1).
std::size_t length_class(Duration length, std::size_t base);

}  // namespace pobp
