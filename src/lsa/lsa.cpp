#include "pobp/lsa/lsa.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "pobp/schedule/timeline.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/checked.hpp"
#include "pobp/util/simd.hpp"

namespace pobp {
namespace {

/// Fills `out` with the candidates in the configured greedy order (ties by
/// id, deterministic).
void consideration_order(const JobSetView& jobs,
                         std::span<const JobId> candidates, LsaOrder order,
                         std::vector<JobId>& out) {
  out.assign(candidates.begin(), candidates.end());
  if (order == LsaOrder::kDensity) {
    std::sort(out.begin(), out.end(), [&](JobId a, JobId b) {
      // Compare val_a/p_a vs val_b/p_b exactly via cross-multiplication.
      const double lhs = jobs.value[a] * static_cast<double>(jobs.length[b]);
      const double rhs = jobs.value[b] * static_cast<double>(jobs.length[a]);
      if (lhs != rhs) return lhs > rhs;
      return a < b;
    });
  } else {
    std::sort(out.begin(), out.end(), [&](JobId a, JobId b) {
      if (jobs.value[a] != jobs.value[b]) return jobs.value[a] > jobs.value[b];
      return a < b;
    });
  }
}

/// Factor-2 class of a positive finite double, straight from the IEEE-754
/// exponent bits: max(0, ilogb(x) − ilogb(1e-30)) with ilogb(1e-30) = −100.
/// For normal x the biased exponent (bits >> 52, sign bit is 0) is
/// ilogb(x) + 1023, so the class is max(0, (bits >> 52) − 923); subnormals
/// have biased exponent 0 and true ilogb < −1022 < −100, so both
/// formulations clamp to class 0 — identical for every positive finite x.
std::uint32_t ratio2_class(double x) {
  POBP_ASSERT(x > 0);
  std::int64_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  const std::int64_t cls = (bits >> 52) - 923;
  return static_cast<std::uint32_t>(cls < 0 ? 0 : cls);
}

/// Tries to place job `id` with at most k+1 segments; returns true and
/// occupies the timeline on success.  `working` and `placed` are reusable
/// staging buffers.
bool try_place(const JobSetView& jobs, JobId id, std::size_t k,
               IdleTimeline& timeline, MachineSchedule& schedule,
               std::vector<Segment>& working, std::vector<Segment>& placed) {
  const Duration job_length = jobs.length[id];
  const Segment window{jobs.release[id], jobs.deadline[id]};
  const std::size_t cap = k + 1;

  // Working set S: the current candidate idle segments, kept in time order.
  working.clear();
  Duration sum = 0;
  Time cursor = window.begin;
  bool exhausted = false;

  auto fetch_next = [&]() -> bool {
    const auto gap = timeline.next_idle(cursor, window);
    if (!gap) {
      exhausted = true;
      return false;
    }
    working.push_back(*gap);
    sum += gap->length();
    cursor = gap->end;
    return true;
  };

  // Start with the leftmost ≤ k+1 idle segments (line 12 of Alg. 2).
  while (working.size() < cap && fetch_next()) {
  }

  for (;;) {
    BudgetGuard::poll();  // one operation per working-set exchange
    if (sum >= job_length) {
      // Schedule leftmost: fill the members of S in time order.
      Duration todo = job_length;
      placed.clear();
      for (const Segment& slot : working) {
        if (todo == 0) break;
        const Duration take = std::min(todo, slot.length());
        placed.push_back({slot.begin, slot.begin + take});
        todo -= take;
      }
      POBP_DASSERT(todo == 0);
      for (const Segment& s : placed) timeline.occupy(s);
      schedule.append_sorted(id, {placed.data(), placed.size()});
      return true;
    }
    if (exhausted || working.empty()) return false;
    // Remove the shortest member of S and replace it with the next idle
    // segment to the right (line 18).
    const auto shortest = std::min_element(
        working.begin(), working.end(), [](const Segment& a, const Segment& b) {
          if (a.length() != b.length()) return a.length() < b.length();
          return a.begin < b.begin;
        });
    sum -= shortest->length();
    working.erase(shortest);
    fetch_next();
    if (exhausted && sum < job_length) return false;
  }
}

}  // namespace

std::size_t length_class(Duration length, std::size_t base) {
  POBP_ASSERT(base >= 2 && length >= 1);
  return static_cast<std::size_t>(
      floor_log(static_cast<std::int64_t>(base), length));
}

std::size_t lsa_classify(const JobSetView& jobs,
                         std::span<const JobId> candidates, std::size_t k,
                         ClassifyBy by, LsaScratch& scratch) {
  const std::size_t base = std::max<std::size_t>(k + 1, 2);
  const std::size_t m = candidates.size();
  auto& cls_of = scratch.class_of;
  cls_of.resize(m);
  std::uint32_t max_cls = 0;

  if (by == ClassifyBy::kLength) {
    // Gather the lengths into one contiguous run (the classify loop below
    // then uses plain vector loads), tracking the maximum: it bounds the
    // boundary table, so the compare-accumulate never touches powers no
    // candidate can reach.
    auto& vals = scratch.class_vals;
    vals.resize(m);
    std::int64_t max_len = 1;
    for (std::size_t i = 0; i < m; ++i) {
      const Duration len = jobs.length[candidates[i]];
      POBP_ASSERT(len >= 1);
      vals[i] = len;
      max_len = std::max<std::int64_t>(max_len, len);
    }
    // Boundary table: the powers base^c (c ≥ 1) up to max_len.
    // length_class(p) = #{c ≥ 1 : base^c ≤ p} — exact integer compares
    // replacing floor_log's division loop, and the count over the table is
    // one 4-lane compare-accumulate per boundary.
    auto& bounds = scratch.class_bounds;
    bounds.clear();
    const auto b64 = static_cast<std::int64_t>(base);
    for (std::int64_t p = b64; p <= max_len; p *= b64) {
      bounds.push_back(p);
      if (p > max_len / b64) break;  // next power exceeds max_len
    }
    const std::size_t nb = bounds.size();
    std::size_t i = 0;
    for (; i + simd::kLanes <= m; i += simd::kLanes) {
      const simd::i64x4 len = simd::load_i64(vals.data() + i);
      simd::i64x4 acc = simd::broadcast_i64(0);
      for (std::size_t c = 0; c < nb; ++c) {
        // Lanes are -1 where bounds[c] <= len; subtracting counts them.
        acc = simd::sub_i64(acc,
                            simd::cmp_le(simd::broadcast_i64(bounds[c]), len));
      }
      for (std::size_t j = 0; j < simd::kLanes; ++j) {
        cls_of[i + j] = static_cast<std::uint32_t>(simd::lane(acc, j));
      }
    }
    for (; i < m; ++i) {
      const std::int64_t len = vals[i];
      std::uint32_t c = 0;
      while (c < nb && bounds[c] <= len) ++c;
      cls_of[i] = c;
    }
    // The candidate holding max_len counts every boundary, so the largest
    // class is exactly nb (0 when there are no candidates).
    max_cls = m == 0 ? 0 : static_cast<std::uint32_t>(nb);
  } else {
    std::size_t i = 0;
    double buf[simd::kLanes];
    for (; i + simd::kLanes <= m; i += simd::kLanes) {
      for (std::size_t j = 0; j < simd::kLanes; ++j) {
        const JobId id = candidates[i + j];
        const double x =
            by == ClassifyBy::kValue ? jobs.value[id] : jobs.density(id);
        POBP_ASSERT(x > 0);
        buf[j] = x;
      }
      const simd::i64x4 bits = simd::bitcast_i64(simd::load_f64(buf));
      const simd::i64x4 cls = simd::max_i64(
          simd::sub_i64(simd::shr_i64(bits, 52), simd::broadcast_i64(923)),
          simd::broadcast_i64(0));
      for (std::size_t j = 0; j < simd::kLanes; ++j) {
        const auto c = static_cast<std::uint32_t>(simd::lane(cls, j));
        cls_of[i + j] = c;
        max_cls = std::max(max_cls, c);
      }
    }
    for (; i < m; ++i) {
      const JobId id = candidates[i];
      const double x =
          by == ClassifyBy::kValue ? jobs.value[id] : jobs.density(id);
      const std::uint32_t c = ratio2_class(x);
      cls_of[i] = c;
      max_cls = std::max(max_cls, c);
    }
  }

  // Counting sort over the bounded class range: stable by construction, so
  // the grouped (class, id) pairs are exactly what a stable sort by class
  // over candidates order produces.
  auto& counts = scratch.class_counts;
  counts.assign(static_cast<std::size_t>(max_cls) + 2, 0);
  for (std::size_t i = 0; i < m; ++i) ++counts[cls_of[i] + 1];
  std::size_t distinct = 0;
  for (std::size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] != 0) ++distinct;
    counts[c] += counts[c - 1];
  }
  auto& classes = scratch.classes;
  classes.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    classes[counts[cls_of[i]]++] = {cls_of[i], candidates[i]};
  }
  return distinct;
}

void lsa_into(const JobSetView& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch,
              LsaResult& out) {
  out.schedule.clear();
  out.scheduled.clear();
  out.rejected.clear();
  scratch.timeline.clear();
  consideration_order(jobs, candidates, order, scratch.order);
  for (const JobId id : scratch.order) {
    BudgetGuard::poll();  // one operation per placement attempt
    if (try_place(jobs, id, k, scratch.timeline, out.schedule, scratch.working,
                  scratch.placed)) {
      out.scheduled.push_back(id);
    } else {
      out.rejected.push_back(id);
    }
  }
}

void lsa_into(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch,
              LsaResult& out) {
  scratch.columns.build(jobs);
  lsa_into(scratch.columns.view(), candidates, k, order, scratch, out);
}

LsaResult lsa(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch) {
  LsaResult result;
  lsa_into(jobs, candidates, k, order, scratch, result);
  return result;
}

LsaResult lsa(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order) {
  LsaScratch scratch;
  return lsa(jobs, candidates, k, order, scratch);
}

void lsa_cs_into(const JobSetView& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch, LsaResult& out) {
  POBP_ASSERT(&out != &scratch.attempt);
  out.schedule.clear();
  out.scheduled.clear();
  out.rejected.clear();
  if (candidates.empty()) return;

  // Bucket by class: grouped in ascending class order with members in
  // candidates order, exactly the iteration order of the std::map the
  // original implementation used.
  lsa_classify(jobs, candidates, k, by, scratch);

  Value best_value = -1;
  auto& classes = scratch.classes;
  auto& members = scratch.class_members;
  for (std::size_t i = 0; i < classes.size();) {
    const std::size_t cls = classes[i].first;
    members.clear();
    for (; i < classes.size() && classes[i].first == cls; ++i) {
      members.push_back(classes[i].second);
    }
    BudgetGuard::poll();  // one operation per class attempt
    lsa_into(jobs, members, k, order, scratch, scratch.attempt);
    // Same assignment-order summation as MachineSchedule::total_value.
    Value v = 0;
    for (const Assignment& a : scratch.attempt.schedule.assignments()) {
      v += jobs.value[a.job];
    }
    if (v > best_value) {
      best_value = v;
      // The losing result's storage swaps back into the staging slot and
      // gets recycled by the next class attempt.
      std::swap(out, scratch.attempt);
    }
  }
  // J_out of the winner = everything not scheduled by the winning class.
  out.rejected.clear();
  for (const JobId id : candidates) {
    if (!out.schedule.contains(id)) out.rejected.push_back(id);
  }
}

void lsa_cs_into(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch, LsaResult& out) {
  scratch.columns.build(jobs);
  lsa_cs_into(scratch.columns.view(), candidates, k, by, order, scratch, out);
}

LsaResult lsa_cs(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch) {
  LsaResult best;
  lsa_cs_into(jobs, candidates, k, by, order, scratch, best);
  return best;
}

LsaResult lsa_cs(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order) {
  LsaScratch scratch;
  return lsa_cs(jobs, candidates, k, by, order, scratch);
}

void lsa_cs_multi_into(const JobSetView& jobs,
                       std::span<const JobId> candidates, std::size_t k,
                       std::size_t machine_count, LsaScratch& scratch,
                       Schedule& out) {
  POBP_CHECK(machine_count >= 1);
  out.reset(machine_count);
  auto& remaining = scratch.residual;
  remaining.assign(candidates.begin(), candidates.end());
  for (std::size_t m = 0; m < machine_count && !remaining.empty(); ++m) {
    lsa_cs_into(jobs, remaining, k, ClassifyBy::kLength, LsaOrder::kDensity,
                scratch, scratch.cs_best);
    out.machine(m).assign_from(scratch.cs_best.schedule);
    remaining.assign(scratch.cs_best.rejected.begin(),
                     scratch.cs_best.rejected.end());
  }
}

void lsa_cs_multi_into(const JobSet& jobs, std::span<const JobId> candidates,
                       std::size_t k, std::size_t machine_count,
                       LsaScratch& scratch, Schedule& out) {
  scratch.columns.build(jobs);
  lsa_cs_multi_into(scratch.columns.view(), candidates, k, machine_count,
                    scratch, out);
}

Schedule lsa_cs_multi(const JobSet& jobs, std::span<const JobId> candidates,
                      std::size_t k, std::size_t machine_count,
                      LsaScratch& scratch) {
  Schedule out(machine_count);
  lsa_cs_multi_into(jobs, candidates, k, machine_count, scratch, out);
  return out;
}

Schedule lsa_cs_multi(const JobSet& jobs, std::span<const JobId> candidates,
                      std::size_t k, std::size_t machine_count) {
  LsaScratch scratch;
  return lsa_cs_multi(jobs, candidates, k, machine_count, scratch);
}

}  // namespace pobp
