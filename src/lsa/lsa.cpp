#include "pobp/lsa/lsa.hpp"

#include <algorithm>
#include <cmath>

#include "pobp/schedule/timeline.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/checked.hpp"

namespace pobp {
namespace {

/// Fills `out` with the candidates in the configured greedy order (ties by
/// id, deterministic).
void consideration_order(const JobSet& jobs, std::span<const JobId> candidates,
                         LsaOrder order, std::vector<JobId>& out) {
  out.assign(candidates.begin(), candidates.end());
  if (order == LsaOrder::kDensity) {
    std::sort(out.begin(), out.end(), [&](JobId a, JobId b) {
      // Compare val_a/p_a vs val_b/p_b exactly via cross-multiplication.
      const double lhs = jobs[a].value * static_cast<double>(jobs[b].length);
      const double rhs = jobs[b].value * static_cast<double>(jobs[a].length);
      if (lhs != rhs) return lhs > rhs;
      return a < b;
    });
  } else {
    std::sort(out.begin(), out.end(), [&](JobId a, JobId b) {
      if (jobs[a].value != jobs[b].value) return jobs[a].value > jobs[b].value;
      return a < b;
    });
  }
}

/// Factor-2 class index of a positive double (value / density classes).
std::size_t ratio2_class(double x) {
  POBP_ASSERT(x > 0);
  return static_cast<std::size_t>(
      std::max(0, std::ilogb(x) - std::ilogb(1e-30)));
}

/// Tries to place job `id` with at most k+1 segments; returns true and
/// occupies the timeline on success.  `working` and `placed` are reusable
/// staging buffers.
bool try_place(const JobSet& jobs, JobId id, std::size_t k,
               IdleTimeline& timeline, MachineSchedule& schedule,
               std::vector<Segment>& working, std::vector<Segment>& placed) {
  const Job& job = jobs[id];
  const Segment window{job.release, job.deadline};
  const std::size_t cap = k + 1;

  // Working set S: the current candidate idle segments, kept in time order.
  working.clear();
  Duration sum = 0;
  Time cursor = window.begin;
  bool exhausted = false;

  auto fetch_next = [&]() -> bool {
    const auto gap = timeline.next_idle(cursor, window);
    if (!gap) {
      exhausted = true;
      return false;
    }
    working.push_back(*gap);
    sum += gap->length();
    cursor = gap->end;
    return true;
  };

  // Start with the leftmost ≤ k+1 idle segments (line 12 of Alg. 2).
  while (working.size() < cap && fetch_next()) {
  }

  for (;;) {
    BudgetGuard::poll();  // one operation per working-set exchange
    if (sum >= job.length) {
      // Schedule leftmost: fill the members of S in time order.
      Duration todo = job.length;
      placed.clear();
      for (const Segment& slot : working) {
        if (todo == 0) break;
        const Duration take = std::min(todo, slot.length());
        placed.push_back({slot.begin, slot.begin + take});
        todo -= take;
      }
      POBP_DASSERT(todo == 0);
      for (const Segment& s : placed) timeline.occupy(s);
      schedule.append_sorted(id, {placed.data(), placed.size()});
      return true;
    }
    if (exhausted || working.empty()) return false;
    // Remove the shortest member of S and replace it with the next idle
    // segment to the right (line 18).
    const auto shortest = std::min_element(
        working.begin(), working.end(), [](const Segment& a, const Segment& b) {
          if (a.length() != b.length()) return a.length() < b.length();
          return a.begin < b.begin;
        });
    sum -= shortest->length();
    working.erase(shortest);
    fetch_next();
    if (exhausted && sum < job.length) return false;
  }
}

}  // namespace

std::size_t length_class(Duration length, std::size_t base) {
  POBP_ASSERT(base >= 2 && length >= 1);
  return static_cast<std::size_t>(
      floor_log(static_cast<std::int64_t>(base), length));
}

void lsa_into(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch,
              LsaResult& out) {
  out.schedule.clear();
  out.scheduled.clear();
  out.rejected.clear();
  scratch.timeline.clear();
  consideration_order(jobs, candidates, order, scratch.order);
  for (const JobId id : scratch.order) {
    BudgetGuard::poll();  // one operation per placement attempt
    if (try_place(jobs, id, k, scratch.timeline, out.schedule, scratch.working,
                  scratch.placed)) {
      out.scheduled.push_back(id);
    } else {
      out.rejected.push_back(id);
    }
  }
}

LsaResult lsa(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order, LsaScratch& scratch) {
  LsaResult result;
  lsa_into(jobs, candidates, k, order, scratch, result);
  return result;
}

LsaResult lsa(const JobSet& jobs, std::span<const JobId> candidates,
              std::size_t k, LsaOrder order) {
  LsaScratch scratch;
  return lsa(jobs, candidates, k, order, scratch);
}

void lsa_cs_into(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch, LsaResult& out) {
  POBP_ASSERT(&out != &scratch.attempt);
  out.schedule.clear();
  out.scheduled.clear();
  out.rejected.clear();
  if (candidates.empty()) return;
  const std::size_t base = std::max<std::size_t>(k + 1, 2);

  // Bucket by class: (class, id) pairs, stably sorted by class — groups
  // come out in ascending class order with members in candidates order,
  // exactly the iteration order of the std::map this replaces.
  auto& classes = scratch.classes;
  classes.clear();
  classes.reserve(candidates.size());
  for (const JobId id : candidates) {
    std::size_t cls = 0;
    switch (by) {
      case ClassifyBy::kLength:
        cls = length_class(jobs[id].length, base);
        break;
      case ClassifyBy::kValue:
        cls = ratio2_class(jobs[id].value);
        break;
      case ClassifyBy::kDensity:
        cls = ratio2_class(jobs[id].density());
        break;
    }
    classes.emplace_back(cls, id);
  }
  std::stable_sort(classes.begin(), classes.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  Value best_value = -1;
  auto& members = scratch.class_members;
  for (std::size_t i = 0; i < classes.size();) {
    const std::size_t cls = classes[i].first;
    members.clear();
    for (; i < classes.size() && classes[i].first == cls; ++i) {
      members.push_back(classes[i].second);
    }
    BudgetGuard::poll();  // one operation per class attempt
    lsa_into(jobs, members, k, order, scratch, scratch.attempt);
    const Value v = scratch.attempt.schedule.total_value(jobs);
    if (v > best_value) {
      best_value = v;
      // The losing result's storage swaps back into the staging slot and
      // gets recycled by the next class attempt.
      std::swap(out, scratch.attempt);
    }
  }
  // J_out of the winner = everything not scheduled by the winning class.
  out.rejected.clear();
  for (const JobId id : candidates) {
    if (!out.schedule.contains(id)) out.rejected.push_back(id);
  }
}

LsaResult lsa_cs(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order,
                 LsaScratch& scratch) {
  LsaResult best;
  lsa_cs_into(jobs, candidates, k, by, order, scratch, best);
  return best;
}

LsaResult lsa_cs(const JobSet& jobs, std::span<const JobId> candidates,
                 std::size_t k, ClassifyBy by, LsaOrder order) {
  LsaScratch scratch;
  return lsa_cs(jobs, candidates, k, by, order, scratch);
}

void lsa_cs_multi_into(const JobSet& jobs, std::span<const JobId> candidates,
                       std::size_t k, std::size_t machine_count,
                       LsaScratch& scratch, Schedule& out) {
  POBP_CHECK(machine_count >= 1);
  out.reset(machine_count);
  auto& remaining = scratch.residual;
  remaining.assign(candidates.begin(), candidates.end());
  for (std::size_t m = 0; m < machine_count && !remaining.empty(); ++m) {
    lsa_cs_into(jobs, remaining, k, ClassifyBy::kLength, LsaOrder::kDensity,
                scratch, scratch.cs_best);
    out.machine(m).assign_from(scratch.cs_best.schedule);
    remaining.assign(scratch.cs_best.rejected.begin(),
                     scratch.cs_best.rejected.end());
  }
}

Schedule lsa_cs_multi(const JobSet& jobs, std::span<const JobId> candidates,
                      std::size_t k, std::size_t machine_count,
                      LsaScratch& scratch) {
  Schedule out(machine_count);
  lsa_cs_multi_into(jobs, candidates, k, machine_count, scratch, out);
  return out;
}

Schedule lsa_cs_multi(const JobSet& jobs, std::span<const JobId> candidates,
                      std::size_t k, std::size_t machine_count) {
  LsaScratch scratch;
  return lsa_cs_multi(jobs, candidates, k, machine_count, scratch);
}

}  // namespace pobp
