// Rebuilding a k-bounded schedule from a k-BAS of the schedule forest
// (§4.1, Lemma 4.1).
//
// For every retained job j: the segments of j that sit between two
// consecutive *retained* sub-jobs remain; where a sub-job (child subtree) is
// pruned-down, the slots it occupied are vacated and j's later work is
// merged to the left into them.  Equivalently — and this is how we
// implement it — j's p_j units of work are re-laid left-aligned into the
// union of (a) j's own original segments and (b) the spans of its
// pruned-down child subtrees.  Breaks in that union occur only at retained
// children, of which a k-BAS allows at most k, so j ends up with at most
// k+1 segments; all slots used were occupied by j or by now-discarded jobs,
// so feasibility is preserved (Lemma 4.1).
#pragma once

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/forest/bas.hpp"
#include "pobp/reduction/schedule_forest.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/util/timing.hpp"

namespace pobp {

/// Reusable buffers for the left-merge.
struct RebuildScratch {
  std::vector<Segment> available;  ///< candidate slots for one job
  std::vector<Segment> placed;     ///< left-aligned layout staging
};

/// Lays out the retained jobs of `sel` (a valid k-BAS of `sf.forest`) as a
/// k-bounded-preemptive schedule.  The result's value equals the k-BAS
/// value and it validates with preemption bound k.
MachineSchedule rebuild_schedule(const JobSet& jobs, const ScheduleForest& sf,
                                 const SubForest& sel);

/// Scratch-reusing form (identical result).
MachineSchedule rebuild_schedule(const JobSet& jobs, const ScheduleForest& sf,
                                 const SubForest& sel,
                                 RebuildScratch& scratch);

/// Pooled form: writes into `out` (cleared first, slot storage recycled —
/// zero heap allocations once scratch and `out` are warmed).
void rebuild_schedule_into(const JobSet& jobs, const ScheduleForest& sf,
                           const SubForest& sel, RebuildScratch& scratch,
                           MachineSchedule& out);

/// All the state one §4.1/§4.2 reduction needs, pooled: laminarize (EDF),
/// forest build, TM / LevelledContraction pruning and left-merge each draw
/// from here, and the intermediate ScheduleForest + TmResult products are
/// rebuilt in place.  One per engine Session, reused across the batch.
struct ReductionScratch {
  LaminarScratch laminar;
  ForestBuildScratch forest_build;
  ScheduleForest sf;
  TmScratch tm;
  TmResult tm_result;
  ContractionScratch contraction;
  SubForest contraction_sel;
  RebuildScratch rebuild;
};

/// One-call §4.2 pipeline for a single machine: laminarize the given
/// ∞-preemptive schedule, build its schedule forest, prune it to an optimal
/// k-BAS with the TM dynamic program, and rebuild.  Guarantees
///   val(result) ≥ val(input) / log_{k+1} n        (Theorem 4.2).
struct ReductionResult {
  MachineSchedule bounded;    ///< the k-bounded schedule
  Value value = 0;            ///< val(bounded)
  std::size_t forest_size = 0;
};
ReductionResult reduce_to_k_preemptive(const JobSet& jobs,
                                       const MachineSchedule& unbounded,
                                       std::size_t k,
                                       PipelineTimings* timings = nullptr,
                                       ReductionScratch* scratch = nullptr);

}  // namespace pobp
