// Schedule Forest construction (§4.1).
//
// Given a *laminar* single-machine schedule, the "preempts" relation — v is
// a child of u iff v's segments lie between two segments of u, with u
// innermost — forms a forest.  We build it with one sweep over the segment
// timeline, maintaining the stack of currently-open jobs: a job's parent is
// whatever is on top of the stack when its first segment starts.
//
// The reduction additionally assumes the schedule is *non-idling inside
// every job's span* (the machine is busy from a job's first segment to its
// last): that is what makes "the slots vacated by a pruned-down subtree"
// contiguous, which the left-merge of rebuild.hpp relies on.  EDF output —
// which is what laminarize() produces — always satisfies this, because EDF
// never idles while a job is pending.  build_schedule_forest aborts if
// either precondition is violated.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pobp/forest/forest.hpp"
#include "pobp/schedule/schedule.hpp"
#include "pobp/util/arena.hpp"

namespace pobp {

/// The forest plus the node ↔ job correspondence and per-node layout data
/// the rebuild step needs.  Per-node segment lists live in one flat CSR
/// arena (offsets + data) rather than a vector-of-vectors, so the whole
/// structure can be rebuilt in place with zero steady-state allocations.
struct ScheduleForest {
  Forest forest;                      ///< node values = job values
  std::vector<JobId> node_job;        ///< forest node -> job id
  std::vector<std::uint32_t> seg_offsets;  ///< CSR offsets into seg_data
  std::vector<Segment> seg_data;      ///< all nodes' G_j, concatenated
  std::vector<Segment> node_span;     ///< [first begin, last end] of subtree

  /// Original segment list G_j of the job at node v.
  std::span<const Segment> segments(NodeId v) const {
    return {seg_data.data() + seg_offsets[v],
            seg_offsets[v + 1] - seg_offsets[v]};
  }

  std::size_t size() const { return forest.size(); }

  /// Drops all nodes but keeps every buffer's capacity.
  void clear() {
    forest.clear();
    node_job.clear();
    seg_offsets.clear();
    seg_data.clear();
    node_span.clear();
  }
};

/// Reusable buffers for the in-place builder.
struct ForestBuildScratch {
  MonotonicArena arena;               ///< backs the timeline staging
  std::vector<std::uint32_t> remaining;  ///< per job id, segments left
  std::vector<NodeId> node_of;        ///< per job id, kNoNode = unseen
  std::vector<NodeId> stack;          ///< open nodes, outermost first
};

/// Builds the schedule forest of a laminar, span-compact machine schedule.
ScheduleForest build_schedule_forest(const JobSet& jobs,
                                     const MachineSchedule& ms);

/// In-place form (identical result): `out` is cleared and refilled, so a
/// warmed-up out + scratch pair makes the build allocation-free.
void build_schedule_forest(const JobSet& jobs, const MachineSchedule& ms,
                           ScheduleForest& out, ForestBuildScratch& scratch);

}  // namespace pobp
