// Schedule Forest construction (§4.1).
//
// Given a *laminar* single-machine schedule, the "preempts" relation — v is
// a child of u iff v's segments lie between two segments of u, with u
// innermost — forms a forest.  We build it with one sweep over the segment
// timeline, maintaining the stack of currently-open jobs: a job's parent is
// whatever is on top of the stack when its first segment starts.
//
// The reduction additionally assumes the schedule is *non-idling inside
// every job's span* (the machine is busy from a job's first segment to its
// last): that is what makes "the slots vacated by a pruned-down subtree"
// contiguous, which the left-merge of rebuild.hpp relies on.  EDF output —
// which is what laminarize() produces — always satisfies this, because EDF
// never idles while a job is pending.  build_schedule_forest aborts if
// either precondition is violated.
#pragma once

#include <vector>

#include "pobp/forest/forest.hpp"
#include "pobp/schedule/schedule.hpp"

namespace pobp {

/// The forest plus the node ↔ job correspondence and per-node layout data
/// the rebuild step needs.
struct ScheduleForest {
  Forest forest;                      ///< node values = job values
  std::vector<JobId> node_job;        ///< forest node -> job id
  std::vector<std::vector<Segment>> node_segments;  ///< original G_j per node
  std::vector<Segment> node_span;     ///< [first begin, last end] of subtree

  std::size_t size() const { return forest.size(); }
};

/// Builds the schedule forest of a laminar, span-compact machine schedule.
ScheduleForest build_schedule_forest(const JobSet& jobs,
                                     const MachineSchedule& ms);

}  // namespace pobp
