#include "pobp/reduction/rebuild.hpp"

#include <algorithm>

#include "pobp/bas/tm.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"

namespace pobp {

MachineSchedule rebuild_schedule(const JobSet& jobs, const ScheduleForest& sf,
                                 const SubForest& sel) {
  POBP_FAULT_POINT(kLeftMerge);
  POBP_CHECK(sel.keep.size() == sf.size());
  MachineSchedule out;

  for (NodeId u = 0; u < sf.size(); ++u) {
    BudgetGuard::poll();  // one operation per forest node
    if (!sel.kept(u)) continue;
    const JobId job = sf.node_job[u];

    // Slots available to j: its own segments plus the spans vacated by
    // pruned-down child subtrees.  (In a valid k-BAS a non-kept child of a
    // kept node is pruned-down with its whole subtree — Obs. 3.8a — and the
    // non-idling precondition makes its span fully vacated.)
    std::vector<Segment> available = sf.node_segments[u];
    for (const NodeId c : sf.forest.children(u)) {
      if (!sel.kept(c)) available.push_back(sf.node_span[c]);
    }
    available = normalized(std::move(available));

    // Left-merge: fill p_j units left-aligned.
    Duration todo = jobs[job].length;
    std::vector<Segment> placed;
    for (const Segment& slot : available) {
      if (todo == 0) break;
      const Duration take = std::min(todo, slot.length());
      placed.push_back({slot.begin, slot.begin + take});
      todo -= take;
    }
    POBP_CHECK_MSG(todo == 0,
                   "available slots shorter than p_j — input schedule was "
                   "not feasible/span-compact");
    out.add(Assignment{job, std::move(placed)});
  }
  return out;
}

ReductionResult reduce_to_k_preemptive(const JobSet& jobs,
                                       const MachineSchedule& unbounded,
                                       std::size_t k,
                                       PipelineTimings* timings) {
  ReductionResult result;
  if (unbounded.empty()) return result;
  Stopwatch sw;
  const MachineSchedule laminar = laminarize(jobs, unbounded);
  if (timings) timings->laminarize_s += sw.lap();
  const ScheduleForest sf = build_schedule_forest(jobs, laminar);
  if (timings) timings->forest_s += sw.lap();
  const TmResult bas = tm_optimal_bas(sf.forest, k);
  if (timings) timings->prune_s += sw.lap();
  result.bounded = rebuild_schedule(jobs, sf, bas.selection);
  if (timings) timings->merge_s += sw.lap();
  result.value = result.bounded.total_value(jobs);
  result.forest_size = sf.size();
  return result;
}

}  // namespace pobp
