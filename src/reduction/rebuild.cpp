#include "pobp/reduction/rebuild.hpp"

#include <algorithm>

#include "pobp/bas/tm.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"

namespace pobp {

void rebuild_schedule_into(const JobSet& jobs, const ScheduleForest& sf,
                           const SubForest& sel, RebuildScratch& scratch,
                           MachineSchedule& out) {
  POBP_FAULT_POINT(kLeftMerge);
  POBP_CHECK(sel.keep.size() == sf.size());
  out.clear();

  auto& available = scratch.available;
  auto& placed = scratch.placed;
  for (NodeId u = 0; u < sf.size(); ++u) {
    BudgetGuard::poll();  // one operation per forest node
    if (!sel.kept(u)) continue;
    const JobId job = sf.node_job[u];

    // Slots available to j: its own segments plus the spans vacated by
    // pruned-down child subtrees.  (In a valid k-BAS a non-kept child of a
    // kept node is pruned-down with its whole subtree — Obs. 3.8a — and the
    // non-idling precondition makes its span fully vacated.)
    const std::span<const Segment> own = sf.segments(u);
    available.assign(own.begin(), own.end());
    for (const NodeId c : sf.forest.children(u)) {
      if (!sel.kept(c)) available.push_back(sf.node_span[c]);
    }
    normalize_in_place(available);

    // Left-merge: fill p_j units left-aligned.
    Duration todo = jobs[job].length;
    placed.clear();
    for (const Segment& slot : available) {
      if (todo == 0) break;
      const Duration take = std::min(todo, slot.length());
      placed.push_back({slot.begin, slot.begin + take});
      todo -= take;
    }
    POBP_CHECK_MSG(todo == 0,
                   "available slots shorter than p_j — input schedule was "
                   "not feasible/span-compact");
    out.append_sorted(job, {placed.data(), placed.size()});
  }
}

MachineSchedule rebuild_schedule(const JobSet& jobs, const ScheduleForest& sf,
                                 const SubForest& sel,
                                 RebuildScratch& scratch) {
  MachineSchedule out;
  rebuild_schedule_into(jobs, sf, sel, scratch, out);
  return out;
}

MachineSchedule rebuild_schedule(const JobSet& jobs, const ScheduleForest& sf,
                                 const SubForest& sel) {
  RebuildScratch scratch;
  return rebuild_schedule(jobs, sf, sel, scratch);
}

ReductionResult reduce_to_k_preemptive(const JobSet& jobs,
                                       const MachineSchedule& unbounded,
                                       std::size_t k,
                                       PipelineTimings* timings,
                                       ReductionScratch* scratch) {
  ReductionResult result;
  if (unbounded.empty()) return result;
  ReductionScratch local;
  ReductionScratch& s = scratch != nullptr ? *scratch : local;

  Stopwatch sw;
  const MachineSchedule laminar = laminarize(jobs, unbounded, s.laminar);
  if (timings) timings->laminarize_s += sw.lap();
  build_schedule_forest(jobs, laminar, s.sf, s.forest_build);
  if (timings) timings->forest_s += sw.lap();
  tm_optimal_bas(s.sf.forest, k, s.tm, s.tm_result);
  if (timings) timings->prune_s += sw.lap();
  result.bounded = rebuild_schedule(jobs, s.sf, s.tm_result.selection,
                                    s.rebuild);
  if (timings) timings->merge_s += sw.lap();
  result.value = result.bounded.total_value(jobs);
  result.forest_size = s.sf.size();
  return result;
}

}  // namespace pobp
