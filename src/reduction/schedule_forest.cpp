#include "pobp/reduction/schedule_forest.hpp"

#include <algorithm>

#include "pobp/util/assert.hpp"

namespace pobp {

void build_schedule_forest(const JobSet& jobs, const MachineSchedule& ms,
                           ScheduleForest& out, ForestBuildScratch& scratch) {
  out.clear();

  // Stage the sorted segment timeline in the per-solve arena: its size
  // varies per instance and its lifetime ends with this build, the exact
  // pattern a monotonic allocator serves without churn.
  scratch.arena.reset();
  const std::size_t seg_total = ms.segment_count();
  const std::span<MachineSchedule::TaggedSegment> timeline(
      scratch.arena.allocate_array<MachineSchedule::TaggedSegment>(seg_total),
      seg_total);
  std::size_t fill = 0;
  for (const Assignment& a : ms.assignments()) {
    for (const Segment& s : a.segments) timeline[fill++] = {s, a.job};
  }
  std::sort(timeline.begin(), timeline.end(),
            [](const MachineSchedule::TaggedSegment& a,
               const MachineSchedule::TaggedSegment& b) {
              return a.segment.begin < b.segment.begin;
            });

  scratch.remaining.assign(jobs.size(), 0);
  scratch.node_of.assign(jobs.size(), kNoNode);
  for (const auto& ts : timeline) ++scratch.remaining[ts.job];

  auto& stack = scratch.stack;  // open nodes, outermost first
  stack.clear();

  Time prev_end = kNoTime;
  for (const auto& ts : timeline) {
    // Close finished jobs.
    while (!stack.empty() &&
           scratch.remaining[out.node_job[stack.back()]] == 0) {
      stack.pop_back();
    }
    // Non-idling-inside-spans precondition: if some job is still open, the
    // machine must not have been idle since the previous segment.
    if (!stack.empty() && prev_end != kNoTime) {
      POBP_ASSERT_MSG(ts.segment.begin == prev_end,
                      "schedule idles inside an open job's span; laminarize() "
                      "(EDF) input required");
    }

    const NodeId seen = scratch.node_of[ts.job];
    if (seen == kNoNode) {
      // First segment of this job: its parent is the innermost open job.
      const NodeId parent = stack.empty() ? kNoNode : stack.back();
      const NodeId node = out.forest.add(jobs[ts.job].value, parent);
      POBP_ASSERT(node == out.node_job.size());
      out.node_job.push_back(ts.job);
      scratch.node_of[ts.job] = node;
      stack.push_back(node);
    } else {
      // A resumed job must be the innermost open one — laminarity.
      POBP_ASSERT_MSG(!stack.empty() && stack.back() == seen,
                      "schedule is not laminar; run laminarize() first");
    }
    --scratch.remaining[ts.job];
    prev_end = ts.segment.end;
  }
  out.forest.finalize();

  // Per-node segment lists (flat CSR) and subtree spans.
  const std::size_t n = out.size();
  out.seg_offsets.assign(n + 1, 0);
  out.seg_data.resize(seg_total);
  out.node_span.assign(n, Segment{0, 0});
  std::uint32_t offset = 0;
  for (NodeId v = 0; v < n; ++v) {
    const Assignment* a = ms.find(out.node_job[v]);
    out.seg_offsets[v] = offset;
    for (const Segment& s : a->segments) out.seg_data[offset++] = s;
    out.node_span[v] = {a->segments.front().begin, a->segments.back().end};
  }
  out.seg_offsets[n] = offset;
  POBP_DASSERT(offset == seg_total);
  // Children precede nothing: ids are parents-first, so a reverse scan
  // accumulates subtree spans bottom-up.
  for (std::size_t i = n; i-- > 0;) {
    const NodeId v = static_cast<NodeId>(i);
    const NodeId p = out.forest.parent(v);
    if (p != kNoNode) {
      out.node_span[p].begin =
          std::min(out.node_span[p].begin, out.node_span[v].begin);
      out.node_span[p].end =
          std::max(out.node_span[p].end, out.node_span[v].end);
    }
  }
}

ScheduleForest build_schedule_forest(const JobSet& jobs,
                                     const MachineSchedule& ms) {
  ScheduleForest out;
  ForestBuildScratch scratch;
  build_schedule_forest(jobs, ms, out, scratch);
  return out;
}

}  // namespace pobp
