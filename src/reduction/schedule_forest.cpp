#include "pobp/reduction/schedule_forest.hpp"

#include <algorithm>
#include <unordered_map>

#include "pobp/util/assert.hpp"

namespace pobp {

ScheduleForest build_schedule_forest(const JobSet& jobs,
                                     const MachineSchedule& ms) {
  ScheduleForest out;
  const auto timeline = ms.timeline();

  std::unordered_map<JobId, std::size_t> remaining;
  for (const auto& ts : timeline) ++remaining[ts.job];

  std::unordered_map<JobId, NodeId> node_of;
  std::vector<NodeId> stack;  // open nodes, outermost first

  Time prev_end = kNoTime;
  for (const auto& ts : timeline) {
    // Close finished jobs.
    while (!stack.empty() && remaining[out.node_job[stack.back()]] == 0) {
      stack.pop_back();
    }
    // Non-idling-inside-spans precondition: if some job is still open, the
    // machine must not have been idle since the previous segment.
    if (!stack.empty() && prev_end != kNoTime) {
      POBP_ASSERT_MSG(ts.segment.begin == prev_end,
                      "schedule idles inside an open job's span; laminarize() "
                      "(EDF) input required");
    }

    auto it = node_of.find(ts.job);
    if (it == node_of.end()) {
      // First segment of this job: its parent is the innermost open job.
      const NodeId parent = stack.empty() ? kNoNode : stack.back();
      const NodeId node = out.forest.add(jobs[ts.job].value, parent);
      POBP_ASSERT(node == out.node_job.size());
      out.node_job.push_back(ts.job);
      node_of.emplace(ts.job, node);
      stack.push_back(node);
    } else {
      // A resumed job must be the innermost open one — laminarity.
      POBP_ASSERT_MSG(!stack.empty() && stack.back() == it->second,
                      "schedule is not laminar; run laminarize() first");
    }
    --remaining[ts.job];
    prev_end = ts.segment.end;
  }

  // Per-node segment lists and subtree spans.
  const std::size_t n = out.size();
  out.node_segments.resize(n);
  out.node_span.assign(n, Segment{0, 0});
  for (NodeId v = 0; v < n; ++v) {
    out.node_segments[v] = ms.find(out.node_job[v])->segments;
    out.node_span[v] = {out.node_segments[v].front().begin,
                        out.node_segments[v].back().end};
  }
  // Children precede nothing: ids are parents-first, so a reverse scan
  // accumulates subtree spans bottom-up.
  for (std::size_t i = n; i-- > 0;) {
    const NodeId v = static_cast<NodeId>(i);
    const NodeId p = out.forest.parent(v);
    if (p != kNoNode) {
      out.node_span[p].begin =
          std::min(out.node_span[p].begin, out.node_span[v].begin);
      out.node_span[p].end =
          std::max(out.node_span[p].end, out.node_span[v].end);
    }
  }
  return out;
}

}  // namespace pobp
