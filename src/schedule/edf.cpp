#include "pobp/schedule/edf.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

/// Core EDF loop.  Record=false skips all segment bookkeeping (the greedy
/// feasibility probe); Record=true leaves the merged run log in
/// scratch.runs.  Every scratch.remaining entry touched is zeroed again
/// before returning, so the job-indexed arrays stay sparsely clean even on
/// early (infeasible) exits.
template <bool Record>
bool edf_simulate(const JobSet& jobs, std::span<const JobId> subset,
                  EdfScratch& s) {
  auto& by_release = s.by_release;
  by_release.assign(subset.begin(), subset.end());
  std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
    if (jobs[a].release != jobs[b].release) {
      return jobs[a].release < jobs[b].release;
    }
    return a < b;
  });

  if (s.remaining.size() < jobs.size()) s.remaining.resize(jobs.size(), 0);
  for (const JobId id : by_release) {
    POBP_ASSERT_MSG(s.remaining[id] == 0, "duplicate job id in EDF subset");
    s.remaining[id] = jobs[id].length;
  }

  auto& ready = s.ready;  // min-heap on (deadline, id): strict total order
  ready.clear();
  if (Record) s.runs.clear();

  const bool feasible = [&] {
    std::size_t next_release = 0;
    Time now = 0;
    if (!by_release.empty()) now = jobs[by_release.front()].release;

    while (next_release < by_release.size() || !ready.empty()) {
      // Admit everything released by `now`.
      while (next_release < by_release.size() &&
             jobs[by_release[next_release]].release <= now) {
        const JobId id = by_release[next_release++];
        ready.emplace_back(jobs[id].deadline, id);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
      if (ready.empty()) {
        now = jobs[by_release[next_release]].release;
        continue;
      }
      const JobId top = ready.front().second;
      // Run the earliest-deadline job until it completes or the next
      // release.
      Time until = now + s.remaining[top];
      if (next_release < by_release.size()) {
        until = std::min(until, jobs[by_release[next_release]].release);
      }
      POBP_DASSERT(now < until);
      if (Record) {
        if (!s.runs.empty() && s.runs.back().job == top &&
            s.runs.back().segment.end == now) {
          s.runs.back().segment.end = until;  // no real preemption happened
        } else {
          s.runs.push_back({{now, until}, top});
        }
      }
      s.remaining[top] -= until - now;
      now = until;
      if (s.remaining[top] == 0) {
        if (now > jobs[top].deadline) return false;
        std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
        ready.pop_back();
      } else if (now > jobs[top].deadline) {
        return false;  // already late; bail out early
      }
    }
    return true;
  }();

  for (const JobId id : by_release) s.remaining[id] = 0;
  return feasible;
}

}  // namespace

bool edf_feasible(const JobSet& jobs, std::span<const JobId> subset,
                  EdfScratch& scratch) {
  return edf_simulate</*Record=*/false>(jobs, subset, scratch);
}

bool edf_schedule_into(const JobSet& jobs, std::span<const JobId> subset,
                       EdfScratch& s, MachineSchedule& out) {
  out.clear();
  if (!edf_simulate</*Record=*/true>(jobs, subset, s)) return false;

  // Bucket the run log into per-job segment lists with one counting pass,
  // then materialize assignments in release order (the order the original
  // simulator emitted them in).
  const std::size_t n_jobs = s.by_release.size();
  if (s.slot.size() < jobs.size()) s.slot.resize(jobs.size(), 0);
  if (s.seg_count.size() < jobs.size()) s.seg_count.resize(jobs.size(), 0);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    s.slot[s.by_release[i]] = static_cast<std::uint32_t>(i);
  }
  for (const EdfScratch::Run& run : s.runs) ++s.seg_count[run.job];

  s.seg_cursor.assign(n_jobs + 1, 0);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    s.seg_cursor[i + 1] = s.seg_cursor[i] + s.seg_count[s.by_release[i]];
  }
  s.seg_buf.resize(s.runs.size());
  for (const EdfScratch::Run& run : s.runs) {
    s.seg_buf[s.seg_cursor[s.slot[run.job]]++] = run.segment;
  }
  // The cursors now sit at each slot's end = the next slot's begin.

  out.reserve(n_jobs);
  std::uint32_t begin = 0;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const JobId id = s.by_release[i];
    const std::uint32_t end = s.seg_cursor[i];
    out.append_sorted(id, {s.seg_buf.data() + begin,
                           static_cast<std::size_t>(end - begin)});
    begin = end;
    s.seg_count[id] = 0;  // restore sparse cleanliness
  }
  return true;
}

std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset,
                                            EdfScratch& s) {
  MachineSchedule out;
  if (!edf_schedule_into(jobs, subset, s, out)) return std::nullopt;
  return out;
}

std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset) {
  EdfScratch scratch;
  return edf_schedule(jobs, subset, scratch);
}

}  // namespace pobp
