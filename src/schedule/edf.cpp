#include "pobp/schedule/edf.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "pobp/util/assert.hpp"
#include "pobp/util/radix.hpp"
#include "pobp/util/simd.hpp"

namespace pobp {
namespace {

/// Core EDF loop over the columnar view.  Record=false skips all segment
/// bookkeeping (the greedy feasibility probe); Record=true leaves the
/// merged run log in scratch.runs.  Every scratch.remaining entry touched
/// is zeroed again before returning, so the job-indexed arrays stay
/// sparsely clean even on early (infeasible) exits.
///
/// The release-order sort runs on packed 64-bit keys (release in the high
/// word, id in the low word) whenever every release fits in [0, 2^32):
/// unsigned key order is then exactly the (release asc, id asc) comparator
/// order, and the sort touches one contiguous u64 array instead of
/// gathering two Job fields per comparison.  Out-of-range releases fall
/// back to the comparator sort — same order, by definition.  Either way
/// the sweep reads releases from the contiguous rel_sorted column.
template <bool Record>
bool edf_simulate(const JobSetView& jobs, std::span<const JobId> subset,
                  EdfScratch& s) {
  auto& by_release = s.by_release;
  auto& rel = s.rel_sorted;
  const std::size_t count = subset.size();
  rel.resize(count);
  bool packable = true;
  std::uint64_t max_rel = 0;
  std::uint64_t max_id = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Time r = jobs.release[subset[i]];
    rel[i] = r;
    packable &= static_cast<std::uint64_t>(r) < (std::uint64_t{1} << 32);
    max_rel = std::max(max_rel, static_cast<std::uint64_t>(r));
    max_id = std::max(max_id, static_cast<std::uint64_t>(subset[i]));
  }
  if (packable) {
    auto& keys = s.keys;
    keys.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = (static_cast<std::uint64_t>(rel[i]) << 32) | subset[i];
    }
    // Stable byte passes low-to-high — id half first, release half second
    // — give the full lexicographic (release, id) order; each half only
    // pays for the bytes its maximum value reaches.  Wide value ranges
    // make the pass count exceed what O(n log n) on a flat u64 array
    // costs, so the radix path is gated on the measured crossover.
    const auto bytes_of = [](std::uint64_t v) {
      unsigned b = 0;
      for (; v != 0; v >>= 8) ++b;
      return b;
    };
    if (bytes_of(max_id) + bytes_of(max_rel) <= 4) {
      radix_sort_u64_bytes(keys, s.keys_tmp, 0, max_id);
      radix_sort_u64_bytes(keys, s.keys_tmp, 32, max_rel);
    } else {
      std::sort(keys.begin(), keys.end());
    }
    by_release.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      by_release[i] = static_cast<JobId>(keys[i]);
      rel[i] = static_cast<Time>(keys[i] >> 32);
    }
  } else {
    by_release.assign(subset.begin(), subset.end());
    std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
      if (jobs.release[a] != jobs.release[b]) {
        return jobs.release[a] < jobs.release[b];
      }
      return a < b;
    });
    for (std::size_t i = 0; i < count; ++i) {
      rel[i] = jobs.release[by_release[i]];
    }
  }

  if (s.remaining.size() < jobs.size()) s.remaining.resize(jobs.size(), 0);
  for (const JobId id : by_release) {
    POBP_ASSERT_MSG(s.remaining[id] == 0, "duplicate job id in EDF subset");
    s.remaining[id] = jobs.length[id];
  }

  auto& ready = s.ready;  // min-heap on (deadline, id): strict total order
  ready.clear();
  if (Record) s.runs.clear();

  // First index in rel[from..) with a release strictly after `now` — the
  // admission frontier.  rel is contiguous, so the scan is a 4-lane
  // compare against broadcast `now` with a scalar tail.
  const auto released_until = [&](std::size_t from, Time now) {
    std::size_t i = from;
    const simd::i64x4 vnow = simd::broadcast_i64(now);
    while (i + simd::kLanes <= count) {
      if (simd::any_true(simd::cmp_gt(simd::load_i64(rel.data() + i), vnow))) {
        break;
      }
      i += simd::kLanes;
    }
    while (i < count && rel[i] <= now) ++i;
    return i;
  };

  const bool feasible = [&] {
    std::size_t next_release = 0;
    Time now = 0;
    if (count > 0) now = rel.front();

    while (next_release < count || !ready.empty()) {
      // Admit everything released by `now`.
      const std::size_t admit_end = released_until(next_release, now);
      while (next_release < admit_end) {
        const JobId id = by_release[next_release++];
        ready.emplace_back(jobs.deadline[id], id);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
      if (ready.empty()) {
        now = rel[next_release];
        continue;
      }
      const JobId top = ready.front().second;
      // Run the earliest-deadline job until it completes or the next
      // release.
      Time until = now + s.remaining[top];
      if (next_release < count) {
        until = std::min(until, rel[next_release]);
      }
      POBP_DASSERT(now < until);
      if (Record) {
        if (!s.runs.empty() && s.runs.back().job == top &&
            s.runs.back().segment.end == now) {
          s.runs.back().segment.end = until;  // no real preemption happened
        } else {
          s.runs.push_back({{now, until}, top});
        }
      }
      s.remaining[top] -= until - now;
      now = until;
      if (s.remaining[top] == 0) {
        if (now > jobs.deadline[top]) return false;
        std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
        ready.pop_back();
      } else if (now > jobs.deadline[top]) {
        return false;  // already late; bail out early
      }
    }
    return true;
  }();

  for (const JobId id : by_release) s.remaining[id] = 0;
  return feasible;
}

}  // namespace

bool edf_feasible(const JobSetView& jobs, std::span<const JobId> subset,
                  EdfScratch& scratch) {
  return edf_simulate</*Record=*/false>(jobs, subset, scratch);
}

bool edf_feasible(const JobSet& jobs, std::span<const JobId> subset,
                  EdfScratch& scratch) {
  scratch.columns.build(jobs);
  return edf_feasible(scratch.columns.view(), subset, scratch);
}

bool edf_schedule_into(const JobSetView& jobs, std::span<const JobId> subset,
                       EdfScratch& s, MachineSchedule& out) {
  out.clear();
  if (!edf_simulate</*Record=*/true>(jobs, subset, s)) return false;

  // Bucket the run log into per-job segment lists with one counting pass,
  // then materialize assignments in release order (the order the original
  // simulator emitted them in).
  const std::size_t n_jobs = s.by_release.size();
  if (s.slot.size() < jobs.size()) s.slot.resize(jobs.size(), 0);
  if (s.seg_count.size() < jobs.size()) s.seg_count.resize(jobs.size(), 0);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    s.slot[s.by_release[i]] = static_cast<std::uint32_t>(i);
  }
  for (const EdfScratch::Run& run : s.runs) ++s.seg_count[run.job];

  s.seg_cursor.assign(n_jobs + 1, 0);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    s.seg_cursor[i + 1] = s.seg_cursor[i] + s.seg_count[s.by_release[i]];
  }
  s.seg_buf.resize(s.runs.size());
  for (const EdfScratch::Run& run : s.runs) {
    s.seg_buf[s.seg_cursor[s.slot[run.job]]++] = run.segment;
  }
  // The cursors now sit at each slot's end = the next slot's begin.

  out.reserve(n_jobs);
  std::uint32_t begin = 0;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const JobId id = s.by_release[i];
    const std::uint32_t end = s.seg_cursor[i];
    out.append_sorted(id, {s.seg_buf.data() + begin,
                           static_cast<std::size_t>(end - begin)});
    begin = end;
    s.seg_count[id] = 0;  // restore sparse cleanliness
  }
  return true;
}

bool edf_schedule_into(const JobSet& jobs, std::span<const JobId> subset,
                       EdfScratch& scratch, MachineSchedule& out) {
  scratch.columns.build(jobs);
  return edf_schedule_into(scratch.columns.view(), subset, scratch, out);
}

std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset,
                                            EdfScratch& s) {
  MachineSchedule out;
  if (!edf_schedule_into(jobs, subset, s, out)) return std::nullopt;
  return out;
}

std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset) {
  EdfScratch scratch;
  return edf_schedule(jobs, subset, scratch);
}

}  // namespace pobp
