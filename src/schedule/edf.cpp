#include "pobp/schedule/edf.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

struct Pending {
  Time deadline;
  JobId id;

  // Earliest deadline wins; job id breaks ties (a strict total order, which
  // is what makes the output laminar).
  friend bool operator>(const Pending& a, const Pending& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.id > b.id;
  }
};

}  // namespace

std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset) {
  std::vector<JobId> by_release(subset.begin(), subset.end());
  std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
    if (jobs[a].release != jobs[b].release) {
      return jobs[a].release < jobs[b].release;
    }
    return a < b;
  });

  std::vector<Duration> remaining(jobs.size(), 0);
  std::vector<std::vector<Segment>> segments(jobs.size());
  for (const JobId id : by_release) {
    POBP_ASSERT_MSG(remaining[id] == 0, "duplicate job id in EDF subset");
    remaining[id] = jobs[id].length;
  }

  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> ready;
  std::size_t next_release = 0;
  Time now = 0;
  if (!by_release.empty()) now = jobs[by_release.front()].release;

  auto run_job = [&](JobId id, Time from, Time to) {
    POBP_DASSERT(from < to);
    auto& segs = segments[id];
    if (!segs.empty() && segs.back().end == from) {
      segs.back().end = to;  // extend: no real preemption happened
    } else {
      segs.push_back({from, to});
    }
    remaining[id] -= to - from;
  };

  while (next_release < by_release.size() || !ready.empty()) {
    // Admit everything released by `now`.
    while (next_release < by_release.size() &&
           jobs[by_release[next_release]].release <= now) {
      const JobId id = by_release[next_release++];
      ready.push({jobs[id].deadline, id});
    }
    if (ready.empty()) {
      now = jobs[by_release[next_release]].release;
      continue;
    }
    const Pending top = ready.top();
    // Run the earliest-deadline job until it completes or the next release.
    Time until = now + remaining[top.id];
    if (next_release < by_release.size()) {
      until = std::min(until, jobs[by_release[next_release]].release);
    }
    run_job(top.id, now, until);
    now = until;
    if (remaining[top.id] == 0) {
      if (now > jobs[top.id].deadline) return std::nullopt;
      ready.pop();
    } else if (now > jobs[top.id].deadline) {
      return std::nullopt;  // already late; bail out early
    }
  }

  MachineSchedule out;
  for (const JobId id : by_release) {
    out.add(Assignment{id, std::move(segments[id])});
  }
  return out;
}

}  // namespace pobp
