#include "pobp/schedule/gantt.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

char label_for(std::size_t index) {
  static constexpr char kLabels[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  constexpr std::size_t kCount = sizeof(kLabels) - 1;
  return index < kCount ? kLabels[index] : '#';
}

struct Frame {
  Time begin = 0;
  Time end = 0;
  Duration scale = 1;  // ticks per column
  std::size_t columns = 0;
};

Frame compute_frame(const Schedule& schedule, std::size_t max_width) {
  Frame frame;
  frame.begin = kNoTime;
  for (const MachineSchedule& ms : schedule.machines()) {
    for (const auto& ts : ms.timeline()) {
      if (frame.begin == kNoTime) frame.begin = ts.segment.begin;
      frame.begin = std::min(frame.begin, ts.segment.begin);
      frame.end = std::max(frame.end, ts.segment.end);
    }
  }
  if (frame.begin == kNoTime) {  // empty schedule
    frame.begin = 0;
    frame.end = 0;
    return frame;
  }
  const Duration span = frame.end - frame.begin;
  // Smallest 1-2-5 scale that fits max_width columns.
  Duration scale = 1;
  for (;;) {
    for (const Duration s : {scale, 2 * scale, 5 * scale}) {
      if ((span + s - 1) / s <= static_cast<Duration>(max_width)) {
        frame.scale = s;
        frame.columns = static_cast<std::size_t>((span + s - 1) / s);
        return frame;
      }
    }
    scale *= 10;
  }
}

/// Majority owner of a column (or '.' if mostly idle).
char column_char(const MachineSchedule& ms, const Frame& frame,
                 const std::map<JobId, char>& labels, std::size_t col) {
  const Time lo = frame.begin + static_cast<Duration>(col) * frame.scale;
  const Time hi = std::min(frame.end, lo + frame.scale);
  Duration best_overlap = 0;
  char best = '.';
  for (const Assignment& a : ms.assignments()) {
    Duration overlap = 0;
    for (const Segment& s : a.segments) {
      overlap += std::max<Duration>(
          0, std::min(s.end, hi) - std::max(s.begin, lo));
    }
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = labels.at(a.job);
    }
  }
  // Require strictly more busy-than-idle to print a label at coarse scales.
  return best_overlap * 2 > (hi - lo) ? best
         : best_overlap > 0           ? best
                                      : '.';
}

std::string axis_line(const Frame& frame) {
  // time    0----+----1----+----2  (major mark every 10 columns)
  std::ostringstream os;
  os << "time  ";
  for (std::size_t c = 0; c < frame.columns; ++c) {
    if (c % 10 == 0) {
      os << (c / 10) % 10;
    } else if (c % 5 == 0) {
      os << '+';
    } else {
      os << '-';
    }
  }
  os << "  (1 col = " << frame.scale << " tick" << (frame.scale > 1 ? "s" : "")
     << ", origin " << frame.begin << ")";
  return os.str();
}

std::map<JobId, char> assign_labels(const Schedule& schedule) {
  std::map<JobId, char> labels;
  std::vector<JobId> ids = schedule.scheduled_jobs();
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    labels.emplace(ids[i], label_for(i));
  }
  return labels;
}

void append_legend(std::ostringstream& os, const JobSet& jobs,
                   const std::map<JobId, char>& labels) {
  os << "legend:\n";
  for (const auto& [id, label] : labels) {
    const Job& j = jobs[id];
    os << "  " << label << " = job#" << id << " ⟨r=" << j.release
       << " d=" << j.deadline << " p=" << j.length << " val=" << j.value
       << "⟩\n";
  }
}

}  // namespace

std::string render_gantt(const JobSet& jobs, const Schedule& schedule,
                         const GanttOptions& options) {
  const Frame frame = compute_frame(schedule, options.max_width);
  const auto labels = assign_labels(schedule);

  std::ostringstream os;
  os << axis_line(frame) << '\n';
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    os << 'M' << m % 10 << "    ";
    for (std::size_t c = 0; c < frame.columns; ++c) {
      os << column_char(schedule.machine(m), frame, labels, c);
    }
    os << '\n';
  }
  if (options.legend && !labels.empty()) append_legend(os, jobs, labels);
  return os.str();
}

std::string render_gantt(const JobSet& jobs, const MachineSchedule& ms,
                         const GanttOptions& options) {
  return render_gantt(jobs, Schedule(ms), options);
}

}  // namespace pobp
