// Columnar (struct-of-arrays) mirror of a JobSet (docs/PERF.md).
//
// The public data model stays AoS — `Job` is the IO/API type — but the
// solve kernels stream job attributes, and a 32-byte record per attribute
// read wastes 3/4 of every cache line.  JobColumns scatters one JobSet into
// four contiguous columns (release, deadline, length, value) exactly once
// per solve; JobSetView is the borrowed, pointer-sized view the kernels
// take.  The columns live in scratch (SolveScratch / per-stage scratches),
// so a warmed build() performs zero heap allocations.
//
// The values are bit-for-bit copies of the Job fields: any kernel reading
// `view.release[id]` instead of `jobs[id].release` computes byte-identical
// results by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "pobp/schedule/job.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

/// Borrowed columnar view of a JobSet.  Valid as long as the owning
/// JobColumns (or other column storage) outlives it and is not rebuilt.
struct JobSetView {
  const Time* release = nullptr;
  const Time* deadline = nullptr;
  const Duration* length = nullptr;
  const Value* value = nullptr;
  std::size_t n = 0;

  std::size_t size() const { return n; }

  /// Density σ_j = val(j) / p_j — same expression as Job::density().
  double density(JobId id) const {
    POBP_DASSERT(id < n);
    return value[id] / static_cast<double>(length[id]);
  }
};

/// Owning column storage, rebuilt from a JobSet in one pass.  All four
/// vectors keep their capacity across build() calls (scratch semantics).
struct JobColumns {
  std::vector<Time> release;
  std::vector<Time> deadline;
  std::vector<Duration> length;
  std::vector<Value> value;

  std::size_t size() const { return release.size(); }

  /// Scatters `jobs` into the columns.  O(n) sequential copies; performs no
  /// allocation once the columns have grown to the largest instance seen.
  void build(const JobSet& jobs) {
    const std::size_t n = jobs.size();
    release.resize(n);
    deadline.resize(n);
    length.resize(n);
    value.resize(n);
    const Job* src = jobs.jobs().data();
    for (std::size_t i = 0; i < n; ++i) {
      release[i] = src[i].release;
      deadline[i] = src[i].deadline;
      length[i] = src[i].length;
      value[i] = src[i].value;
    }
  }

  JobSetView view() const {
    return {release.data(), deadline.data(), length.data(), value.data(),
            release.size()};
  }
};

}  // namespace pobp
