// Preemptive Earliest-Deadline-First simulation on a single machine.
//
// EDF is the witness algorithm for the interval feasibility condition: a
// subset is ∞-preemptive-feasible iff EDF completes every job by its
// deadline.  With a strict total tie order (deadline, then job id) the
// schedule EDF produces is *laminar* — no two jobs interleave as
// a₁ ≺ b₁ ≺ a₂ ≺ b₂ — which is exactly the normal form the paper's
// reduction (§4.1, Fig. 1) requires.  See laminar.hpp.
#pragma once

#include <optional>
#include <span>

#include "pobp/schedule/schedule.hpp"

namespace pobp {

/// Simulates preemptive EDF of `subset` on one machine.
///
/// Returns the resulting schedule if every job completes by its deadline,
/// std::nullopt otherwise.  O(n log n): events are releases and completions.
std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset);

}  // namespace pobp
