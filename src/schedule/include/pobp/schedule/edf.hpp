// Preemptive Earliest-Deadline-First simulation on a single machine.
//
// EDF is the witness algorithm for the interval feasibility condition: a
// subset is ∞-preemptive-feasible iff EDF completes every job by its
// deadline.  With a strict total tie order (deadline, then job id) the
// schedule EDF produces is *laminar* — no two jobs interleave as
// a₁ ≺ b₁ ≺ a₂ ≺ b₂ — which is exactly the normal form the paper's
// reduction (§4.1, Fig. 1) requires.  See laminar.hpp.
//
// The simulator comes in two strengths sharing one core loop:
//   * edf_feasible  — yes/no, records nothing.  This is what greedy trial
//     acceptance wants: the density-greedy seed probes O(n) candidate sets
//     and only the final accepted set needs a materialized schedule.
//   * edf_schedule  — the full laminar schedule.
// Both have scratch-taking forms (EdfScratch) that perform zero heap
// allocations once the scratch has warmed up to the largest instance seen;
// the engine's per-worker sessions keep one EdfScratch alive across a whole
// batch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "pobp/schedule/columns.hpp"
#include "pobp/schedule/schedule.hpp"

namespace pobp {

/// Reusable buffers for the EDF simulator.  All job-indexed arrays are
/// maintained sparsely: every entry a simulation touches is restored before
/// it returns, so the same scratch serves instances of any size without a
/// full reset.
struct EdfScratch {
  /// One maximal run of one job on the machine, in machine-time order.
  /// Adjacent runs of the same job are merged, so the run log is exactly
  /// the sorted segment timeline of the resulting schedule.
  struct Run {
    Segment segment;
    JobId job;
  };

  std::vector<JobId> by_release;              ///< subset, release-sorted
  std::vector<Duration> remaining;            ///< per job id, sparse
  std::vector<std::pair<Time, JobId>> ready;  ///< (deadline, id) min-heap
  std::vector<Run> runs;                      ///< recorded timeline
  std::vector<std::uint32_t> seg_count;       ///< per job id, sparse
  std::vector<Segment> seg_buf;               ///< run-bucketing staging
  std::vector<std::uint32_t> seg_cursor;      ///< per subset slot
  std::vector<std::uint32_t> slot;            ///< per job id, sparse
  std::vector<std::uint64_t> keys;            ///< packed (release, id) keys
  std::vector<std::uint64_t> keys_tmp;        ///< radix-sort scatter buffer
  std::vector<Time> rel_sorted;   ///< releases aligned with by_release
  JobColumns columns;  ///< SoA mirror for the JobSet-taking entry points
};

/// True iff EDF completes every job of `subset` by its deadline, i.e. the
/// subset is ∞-preemptive-feasible.  Records no schedule — this is the
/// cheap form for greedy trial acceptance.
bool edf_feasible(const JobSet& jobs, std::span<const JobId> subset,
                  EdfScratch& scratch);

/// Columnar form (identical result): callers that probe many subsets of
/// one JobSet (greedy trial acceptance) build the columns once and pass
/// the view, instead of paying the per-call SoA rebuild of the JobSet
/// overload above.
bool edf_feasible(const JobSetView& jobs, std::span<const JobId> subset,
                  EdfScratch& scratch);

/// Simulates preemptive EDF of `subset` on one machine.
///
/// Returns the resulting schedule if every job completes by its deadline,
/// std::nullopt otherwise.  O(n log n): events are releases and completions.
std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset);

/// Scratch-reusing form: identical result, but every simulation buffer
/// comes from `scratch` (only the returned schedule itself allocates).
/// On success `scratch.runs` additionally holds the schedule's segment
/// timeline in machine-time order (valid until the next simulation).
std::optional<MachineSchedule> edf_schedule(const JobSet& jobs,
                                            std::span<const JobId> subset,
                                            EdfScratch& scratch);

/// Pooled form: writes the schedule into `out` (cleared first, slot storage
/// recycled — zero heap allocations once both scratch and `out` are warmed).
/// Returns false, leaving `out` empty, when the subset is infeasible.
bool edf_schedule_into(const JobSet& jobs, std::span<const JobId> subset,
                       EdfScratch& scratch, MachineSchedule& out);

/// Columnar form of edf_schedule_into (identical result).
bool edf_schedule_into(const JobSetView& jobs, std::span<const JobId> subset,
                       EdfScratch& scratch, MachineSchedule& out);

}  // namespace pobp
