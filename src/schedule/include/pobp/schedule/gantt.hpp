// ASCII Gantt rendering of schedules — used by the examples and the CLI to
// make results inspectable at a glance.
//
//   time    0----+----1----+----2----+
//   M0      AAABBBAAA..CC.DDDD
//
// One lane per machine; each column is `ticks_per_column` ticks of machine
// time, labelled with the job occupying (the majority of) that column, '.'
// when idle.  Labels cycle A–Z, a–z, 0–9, then '#'.
#pragma once

#include <string>

#include "pobp/schedule/schedule.hpp"

namespace pobp {

struct GanttOptions {
  /// Target rendering width in columns; the tick-per-column scale is
  /// chosen as the smallest power of ten (1, 2, 5 progression) that fits.
  std::size_t max_width = 100;

  /// Include the per-job legend (label → job id, window, value).
  bool legend = true;
};

/// Renders a single machine lane.
std::string render_gantt(const JobSet& jobs, const MachineSchedule& ms,
                         const GanttOptions& options = {});

/// Renders all machines of a schedule, one lane each, sharing the time axis.
std::string render_gantt(const JobSet& jobs, const Schedule& schedule,
                         const GanttOptions& options = {});

}  // namespace pobp
