// The classic interval feasibility condition for preemptive single-machine
// scheduling with release times and deadlines:
//
//   a job set S is schedulable with unbounded preemption  ⟺
//   for every interval [r, d] with r a release time and d a deadline,
//       Σ_{j ∈ S : r ≤ r_j, d_j ≤ d} p_j  ≤  d − r.
//
// (⇒ is conservation of machine time; ⇐ is witnessed by EDF.)  The solvers
// use this as an O(n²) feasibility oracle, and the EDF simulator is tested
// to agree with it on random subsets.
#pragma once

#include <optional>
#include <span>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/schedule/job.hpp"

namespace pobp {

/// True iff `subset` of `jobs` is feasible on one machine with unbounded
/// preemption.  O(n log n + n²) worst case, n = |subset|.
bool preemptive_feasible(const JobSet& jobs, std::span<const JobId> subset);

/// Reports every overloaded interval as rule POBP-INT-001: for each release
/// point r whose demand overflows, one finding at the *first* deadline d
/// (in deadline order) where Σ p_j over jobs with windows inside [r, d]
/// exceeds d − r.  `severity` defaults to the registry's (error); pass
/// kWarning when linting whole instances, where "not all jobs fit" is
/// expected rather than a defect.
void diagnose_interval_condition(
    const JobSet& jobs, std::span<const JobId> subset, diag::Report& report,
    std::optional<diag::Severity> severity = std::nullopt);

/// Incremental oracle for branch-and-bound: jobs are added one at a time and
/// the condition is re-checked only against intervals the new job affects.
class FeasibilityOracle {
 public:
  explicit FeasibilityOracle(const JobSet& jobs) : jobs_(&jobs) {}

  /// True iff the current set plus `id` is feasible; if so, commits `id`.
  bool try_add(JobId id);

  /// Removes the most recently added job (stack discipline).
  void pop();

  std::size_t size() const { return members_.size(); }
  std::span<const JobId> members() const { return members_; }

 private:
  const JobSet* jobs_;
  std::vector<JobId> members_;
};

}  // namespace pobp
