// The interval-covering construction of Lemmas 4.7–4.8.
//
// Given a set of intervals S, the paper builds a subset S' ⊆ S such that
// every point of ∪S is covered by at least one and at most two members of
// S' (Lemma 4.7: start from the leftmost-starting interval, repeatedly add
// the interval reaching furthest right among those intersecting the
// current cover), and then splits S' by parity of the left-endpoint order
// into two families that are each pairwise disjoint (Corollary 4.8).
//
// The construction is what lets the LSA analysis charge each rejected
// job's window to disjoint busy mass; we expose it both for the analysis
// instrumentation in the tests/benches and as a reusable primitive.
#pragma once

#include <span>
#include <vector>

#include "pobp/schedule/segment.hpp"

namespace pobp {

struct IntervalCover {
  /// Indices into the input, in left-endpoint order (the paper's S').
  std::vector<std::size_t> chosen;
  /// The parity split of `chosen` (Cor. 4.8): each is pairwise disjoint.
  std::vector<std::size_t> even;
  std::vector<std::size_t> odd;
};

/// Computes the Lemma 4.7 cover of a non-empty interval set.  Intervals
/// are half-open; empty intervals are ignored.  O(n log n).
IntervalCover greedy_interval_cover(std::span<const Segment> intervals);

/// Total length of the union of a set of intervals.  O(n log n).
Duration union_length(std::span<const Segment> intervals);

}  // namespace pobp
