// Job model (Section 2.1 of the paper).
//
// Each job j carries ⟨release r_j, deadline d_j, length p_j⟩ and a value
// val(j) > 0.  A JobSet is an immutable-by-convention vector of jobs with
// instance-level metric helpers (n, P, ρ, σ, λ_max) used throughout §4.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "pobp/schedule/time.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/rational.hpp"

namespace pobp {

using JobId = std::uint32_t;

struct Job {
  Time release = 0;
  Time deadline = 0;
  Duration length = 0;
  Value value = 1.0;

  /// Window w(j) = d_j − r_j (§4.3.1).
  constexpr Duration window() const { return deadline - release; }

  /// Relative laxity λ_j = (d_j − r_j) / p_j (Def. 4.4), exact.
  Rational laxity() const { return Rational(window(), length); }

  /// Density σ_j = val(j) / p_j (§4.3.2).
  double density() const {
    return value / static_cast<double>(length);
  }

  /// A job is well-formed iff it can be feasibly scheduled alone.
  /// Overflow-safe (a window d − r that overflows int64 is malformed, not
  /// UB) and NaN/inf values are rejected, so untrusted inputs can be
  /// screened with this predicate before window()/laxity() are ever called.
  constexpr bool well_formed() const {
    Duration w = 0;
    if (__builtin_sub_overflow(deadline, release, &w)) return false;
    return length >= 1 && value > 0 &&
           value <= std::numeric_limits<double>::max() && w >= length;
  }
};

/// A problem instance: the set J.
class JobSet {
 public:
  JobSet() = default;
  explicit JobSet(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
    for (const Job& j : jobs_) {
      POBP_CHECK_MSG(j.well_formed(), "malformed job in JobSet");
    }
  }

  /// Append a job; returns its id.  Malformed jobs (untrusted input can
  /// reach this) throw pobp::InternalError rather than aborting.
  JobId add(const Job& job) {
    POBP_CHECK_MSG(job.well_formed(), "malformed job");
    jobs_.push_back(job);
    return static_cast<JobId>(jobs_.size() - 1);
  }

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const Job& operator[](JobId id) const {
    POBP_DASSERT(id < jobs_.size());
    return jobs_[id];
  }
  std::span<const Job> jobs() const { return jobs_; }

  auto begin() const { return jobs_.begin(); }
  auto end() const { return jobs_.end(); }

  /// Σ val(j) over the whole set.
  Value total_value() const;

  /// Σ val(j) over a subset given by ids.
  Value value_of(std::span<const JobId> ids) const;

  /// Σ p_j over the whole set.
  Duration total_length() const;

  Duration min_length() const;
  Duration max_length() const;

  /// P = max_j p_j / min_j p_j, as an exact rational (Def. in §1.3).
  Rational length_ratio_P() const {
    return Rational(max_length(), min_length());
  }

  /// λ_max = max_j λ_j (Def. 4.4).
  Rational max_laxity() const;

  /// Latest deadline — the scheduling horizon.
  Time horizon() const;

  /// Earliest release.
  Time earliest_release() const;

 private:
  std::vector<Job> jobs_;
};

/// All job ids [0, n).
std::vector<JobId> all_ids(const JobSet& jobs);

}  // namespace pobp
