// Laminar normal form of a single-machine schedule (§4.1, Fig. 1).
//
// Two jobs A, B *interleave* when segments appear as a₁ ≺ b₁ ≺ a₂ ≺ b₂.
// The paper observes any feasible schedule can be rearranged, with no loss
// of value, so that the "preempts" relation is laminar: a segment of B lies
// between two segments of A iff no segment of A lies between two segments
// of B.  Laminar schedules are exactly the ones whose preemption structure
// forms a forest (the Schedule Forest of §4.1).
//
// Implementation note: instead of performing Fig. 1's pairwise segment
// rearrangements, we re-run preemptive EDF on the scheduled job set.  The
// set is feasible (the input schedule witnesses it), EDF completes it, and
// EDF with a strict tie order never produces an interleaving: if A runs at
// a₁ and B at b₁ while A is pending, then B precedes A in EDF order; if A
// then runs at a₂ while B is pending (b₂ later), A precedes B — a
// contradiction.  Same jobs, same value, laminar output.
#pragma once

#include <optional>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/schedule.hpp"

namespace pobp {

/// True iff no two jobs of `ms` interleave (a₁ ≺ b₁ ≺ a₂ ≺ b₂).
/// O(S) over the segment timeline using a nesting stack.
bool is_laminar(const MachineSchedule& ms);

/// Reports every interleaving as rule POBP-LAM-001: one finding per
/// segment that resumes its job underneath a still-open other job, naming
/// the witness pair.  `machine` only decorates locations.
void diagnose_laminar(const MachineSchedule& ms, diag::Report& report,
                      std::optional<std::size_t> machine = std::nullopt);

/// Reusable buffers for the scratch-taking laminarize forms: the EDF
/// simulator state plus the laminarity-check sweep state.
struct LaminarScratch {
  EdfScratch edf;
  std::vector<std::uint32_t> remaining;  ///< per job id, sweep counter
  std::vector<char> on_stack;            ///< per job id, sweep membership
  std::vector<JobId> stack;              ///< open jobs, outermost first
  std::vector<JobId> ids;                ///< scheduled_jobs staging
};

/// Rearranges `ms` into an equivalent laminar schedule of the same job set
/// (same value, still feasible).  Precondition: `ms` validates against
/// `jobs` with unbounded k.
MachineSchedule laminarize(const JobSet& jobs, const MachineSchedule& ms);

/// Scratch-reusing form (identical result).
MachineSchedule laminarize(const JobSet& jobs, const MachineSchedule& ms,
                           LaminarScratch& scratch);

/// Laminar schedule of a bare (feasible) job subset: exactly what
/// laminarize(jobs, restrict_schedule(ms, ids)) produces — the laminar
/// rearrangement never looks at the input schedule's segments, only at its
/// job set — without materializing the restricted schedule first.
MachineSchedule laminarize_subset(const JobSet& jobs,
                                  std::span<const JobId> ids,
                                  LaminarScratch& scratch);

/// Pooled form: writes the laminar schedule into `out` (cleared first, slot
/// storage recycled — zero allocations once warmed).  `out` must not alias
/// a schedule the job set is read from.
void laminarize_subset_into(const JobSet& jobs, std::span<const JobId> ids,
                            LaminarScratch& scratch, MachineSchedule& out);

/// Pooled form of laminarize(); `out` must not alias `ms`.
void laminarize_into(const JobSet& jobs, const MachineSchedule& ms,
                     LaminarScratch& scratch, MachineSchedule& out);

}  // namespace pobp
