// Instance metrics and the logarithms the paper's bounds are stated in.
#pragma once

#include <cstddef>
#include <string>

#include "pobp/schedule/job.hpp"

namespace pobp {

/// log_{k+1}(x) for k >= 1, x >= 1 — the unit every bound in the paper is
/// measured in.  Returns at least 1 so it can be used as a divisor in
/// ratio-vs-bound columns (the paper's bounds are Θ(·), constants absorbed).
double log_base(double base, double x);

/// log_{k+1}(x), the paper's canonical bound shape (requires k >= 1).
double log_k1(std::size_t k, double x);

/// Summary of an instance: the quantities the paper's bounds range over.
struct InstanceMetrics {
  std::size_t n = 0;        ///< number of jobs
  double P = 1.0;           ///< max length / min length
  double rho = 1.0;         ///< max value / min value
  double sigma = 1.0;       ///< max density / min density
  double lambda_max = 1.0;  ///< maximal relative laxity
  double total_value = 0.0;

  std::string to_string() const;
};

InstanceMetrics compute_metrics(const JobSet& jobs);

}  // namespace pobp
