// Schedule quality report: the numbers an operator looks at after solving.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pobp/schedule/schedule.hpp"

namespace pobp {

struct ScheduleReport {
  std::size_t machines = 0;
  std::size_t scheduled_jobs = 0;
  std::size_t total_jobs = 0;
  Value value = 0;
  Value total_value = 0;

  Duration busy_time = 0;         ///< summed over machines
  Duration makespan_window = 0;   ///< last end − first begin, over machines
  double utilization = 0;         ///< busy / (machines · makespan window)

  std::size_t max_preemptions = 0;
  std::size_t total_preemptions = 0;
  /// histogram[s] = number of jobs scheduled in exactly s+1 segments.
  std::vector<std::size_t> segment_histogram;

  std::string to_string() const;
};

ScheduleReport make_report(const JobSet& jobs, const Schedule& schedule);

}  // namespace pobp
