// Schedule representation (Def. 2.1).
//
// A MachineSchedule is a set of per-job segment lists on one machine; a
// Schedule is one MachineSchedule per machine (the multi-machine,
// non-migrative setting — a job appears on at most one machine).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pobp/schedule/job.hpp"
#include "pobp/schedule/segment.hpp"

namespace pobp {

/// One job's placement on a machine: G_j, sorted by time.
struct Assignment {
  JobId job = 0;
  std::vector<Segment> segments;

  /// Number of preemptions = |G_j| − 1.
  std::size_t preemptions() const {
    return segments.empty() ? 0 : segments.size() - 1;
  }
};

/// A feasible (or candidate) schedule of a job subset on a single machine.
class MachineSchedule {
 public:
  MachineSchedule() = default;

  /// Adds a job's full segment list.  The job must not already be present.
  void add(Assignment assignment);

  /// Fast path for producers whose segment lists are already sorted,
  /// non-empty and pairwise non-touching (EDF, left-merge, LSA): skips the
  /// normalization sort.  Debug builds assert the precondition.
  void add_sorted(Assignment assignment);

  /// Pre-sizes the assignment table for `jobs` entries.
  void reserve(std::size_t jobs) {
    assignments_.reserve(jobs);
    index_.reserve(jobs);
  }

  /// Convenience: single contiguous (non-preemptive) placement.
  void add_block(JobId job, Time begin, Duration length) {
    add(Assignment{job, {Segment{begin, begin + length}}});
  }

  std::size_t job_count() const { return assignments_.size(); }
  bool empty() const { return assignments_.empty(); }
  const std::vector<Assignment>& assignments() const { return assignments_; }

  /// Looks up a job's assignment (nullptr if the job is not scheduled).
  /// O(1) via the id index.
  const Assignment* find(JobId job) const;
  bool contains(JobId job) const { return index_.count(job) != 0; }

  /// Ids of all scheduled jobs.
  std::vector<JobId> scheduled_jobs() const;

  /// Σ val(j) over scheduled jobs.
  Value total_value(const JobSet& jobs) const;

  /// Max preemption count over scheduled jobs (0 when empty).
  std::size_t max_preemptions() const;

  /// Total scheduled machine time.
  Duration busy_time() const;

  /// All segments of all jobs, each tagged by owner, sorted by begin time.
  struct TaggedSegment {
    Segment segment;
    JobId job;
  };
  std::vector<TaggedSegment> timeline() const;

  /// Buffer-reusing form of timeline(): `out` is overwritten.
  void timeline_into(std::vector<TaggedSegment>& out) const;

  /// Total number of segments across all assignments.
  std::size_t segment_count() const;

  /// Human-readable dump (for examples and failure diagnostics).
  std::string to_string(const JobSet& jobs) const;

 private:
  std::vector<Assignment> assignments_;
  std::unordered_map<JobId, std::size_t> index_;  // job id -> position
};

/// Multi-machine non-migrative schedule.
class Schedule {
 public:
  Schedule() : machines_(1) {}
  explicit Schedule(std::size_t machine_count) : machines_(machine_count) {
    POBP_ASSERT(machine_count >= 1);
  }
  explicit Schedule(MachineSchedule single) : machines_{std::move(single)} {}

  std::size_t machine_count() const { return machines_.size(); }
  MachineSchedule& machine(std::size_t m) { return machines_.at(m); }
  const MachineSchedule& machine(std::size_t m) const {
    return machines_.at(m);
  }
  const std::vector<MachineSchedule>& machines() const { return machines_; }

  /// Machine hosting `job`, if any.
  std::optional<std::size_t> machine_of(JobId job) const;

  Value total_value(const JobSet& jobs) const;
  std::size_t job_count() const;
  std::size_t max_preemptions() const;
  std::vector<JobId> scheduled_jobs() const;

 private:
  std::vector<MachineSchedule> machines_;
};

}  // namespace pobp
