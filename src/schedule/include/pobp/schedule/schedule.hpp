// Schedule representation (Def. 2.1).
//
// A MachineSchedule is a set of per-job segment lists on one machine; a
// Schedule is one MachineSchedule per machine (the multi-machine,
// non-migrative setting — a job appears on at most one machine).
//
// Storage is pooled: clear() retains every per-job segment vector (and the
// flat job index) at full capacity, and the append*() producer forms write
// into those recycled slots.  A warmed MachineSchedule that is cleared and
// refilled with instances of no-larger size performs zero heap allocations —
// this is what lets the engine's per-session result arena (SolveScratch)
// keep the whole solve pipeline allocation-free in steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pobp/schedule/job.hpp"
#include "pobp/schedule/segment.hpp"

namespace pobp {

/// One job's placement on a machine: G_j, sorted by time.
struct Assignment {
  JobId job = 0;
  std::vector<Segment> segments;

  /// Number of preemptions = |G_j| − 1.
  std::size_t preemptions() const {
    return segments.empty() ? 0 : segments.size() - 1;
  }
};

/// A feasible (or candidate) schedule of a job subset on a single machine.
///
/// Assignments live in recycled slots: only the first job_count() entries of
/// the slot vector are live, and clear() resets the count without releasing
/// any segment storage.  The job-id lookup is an open-addressing hash table
/// over a flat array (no per-node allocation, capacity-preserving clear).
class MachineSchedule {
 public:
  MachineSchedule() = default;
  MachineSchedule(const MachineSchedule& other) { assign_from(other); }
  MachineSchedule& operator=(const MachineSchedule& other) {
    assign_from(other);
    return *this;
  }
  MachineSchedule(MachineSchedule&& other) noexcept
      : slots_(std::move(other.slots_)),
        live_(other.live_),
        buckets_(std::move(other.buckets_)) {
    other.live_ = 0;
  }
  MachineSchedule& operator=(MachineSchedule&& other) noexcept {
    if (this != &other) {
      slots_ = std::move(other.slots_);
      live_ = other.live_;
      buckets_ = std::move(other.buckets_);
      other.live_ = 0;
      other.buckets_.clear();
    }
    return *this;
  }

  /// Adds a job's full segment list.  The job must not already be present.
  void add(Assignment assignment);

  /// Fast path for producers whose segment lists are already sorted,
  /// non-empty and pairwise non-touching (EDF, left-merge, LSA): skips the
  /// normalization sort.  Debug builds assert the precondition.
  void add_sorted(Assignment assignment);

  /// Allocation-free producer form of add_sorted(): copies `segments` into
  /// a recycled slot instead of adopting a caller-built vector.  This is
  /// the hot-path API — producers stage segments in scratch and append.
  void append_sorted(JobId job, std::span<const Segment> segments);

  /// Drops every assignment but keeps all slot/segment/index capacity.
  void clear();

  /// Pooled deep copy: refills this schedule's recycled slots from `other`
  /// without releasing this schedule's storage (no-op on self-assign).
  void assign_from(const MachineSchedule& other);

  /// Pre-sizes the assignment table for `jobs` entries.
  void reserve(std::size_t jobs);

  /// Convenience: single contiguous (non-preemptive) placement.
  void add_block(JobId job, Time begin, Duration length) {
    add(Assignment{job, {Segment{begin, begin + length}}});
  }

  std::size_t job_count() const { return live_; }
  bool empty() const { return live_ == 0; }
  std::span<const Assignment> assignments() const {
    return {slots_.data(), live_};
  }

  /// Looks up a job's assignment (nullptr if the job is not scheduled).
  /// O(1) via the flat id index.
  const Assignment* find(JobId job) const;
  bool contains(JobId job) const { return index_lookup(job) != nullptr; }

  /// Ids of all scheduled jobs.
  std::vector<JobId> scheduled_jobs() const;

  /// Σ val(j) over scheduled jobs.
  Value total_value(const JobSet& jobs) const;

  /// Max preemption count over scheduled jobs (0 when empty).
  std::size_t max_preemptions() const;

  /// Total scheduled machine time.
  Duration busy_time() const;

  /// All segments of all jobs, each tagged by owner, sorted by begin time.
  struct TaggedSegment {
    Segment segment;
    JobId job;
  };
  std::vector<TaggedSegment> timeline() const;

  /// Buffer-reusing form of timeline(): `out` is overwritten.
  void timeline_into(std::vector<TaggedSegment>& out) const;

  /// Total number of segments across all assignments.
  std::size_t segment_count() const;

  /// Human-readable dump (for examples and failure diagnostics).
  std::string to_string(const JobSet& jobs) const;

 private:
  /// Claims the next recycled slot for `job` (segments cleared, capacity
  /// kept) and records it in the index.  Preconditions checked by callers.
  Assignment& new_slot(JobId job);

  /// Index entry: (job id + 1) in the high 32 bits, slot position in the
  /// low 32; 0 marks an empty bucket.
  const std::uint64_t* index_lookup(JobId job) const;
  void index_insert(JobId job, std::uint32_t pos);
  void index_grow(std::size_t min_entries);

  std::vector<Assignment> slots_;  ///< entries [0, live_) are live
  std::size_t live_ = 0;
  std::vector<std::uint64_t> buckets_;  ///< open-addressing job index
};

/// Multi-machine non-migrative schedule.
class Schedule {
 public:
  Schedule() : machines_(1) {}
  explicit Schedule(std::size_t machine_count) : machines_(machine_count) {
    POBP_ASSERT(machine_count >= 1);
  }
  explicit Schedule(MachineSchedule single) : machines_{std::move(single)} {}

  /// Clears every machine (retaining pooled storage) and resizes to
  /// `machine_count` machines.  Growing allocates; steady-state reuse with
  /// a stable machine count does not.
  void reset(std::size_t machine_count);

  /// Pooled deep copy of `other` (no-op on self-assign): machine storage is
  /// recycled, not reallocated.
  void assign_from(const Schedule& other);

  std::size_t machine_count() const { return machines_.size(); }
  MachineSchedule& machine(std::size_t m) { return machines_.at(m); }
  const MachineSchedule& machine(std::size_t m) const {
    return machines_.at(m);
  }
  const std::vector<MachineSchedule>& machines() const { return machines_; }

  /// Machine hosting `job`, if any.
  std::optional<std::size_t> machine_of(JobId job) const;

  Value total_value(const JobSet& jobs) const;
  std::size_t job_count() const;
  std::size_t max_preemptions() const;
  std::vector<JobId> scheduled_jobs() const;

 private:
  std::vector<MachineSchedule> machines_;
};

}  // namespace pobp
