// Execution segments.
//
// A segment is a half-open interval [begin, end) of machine time.  The paper
// (Def. 2.1) states segments as closed intervals with pairwise-disjoint
// interiors; half-open intervals model the same schedules while making
// adjacency ("merged to the left", Lemma 4.1) exact: [a,b) ∪ [b,c) = [a,c).
#pragma once

#include <vector>

#include "pobp/schedule/time.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

struct Segment {
  Time begin = 0;
  Time end = 0;

  constexpr Duration length() const { return end - begin; }
  constexpr bool empty() const { return begin >= end; }

  /// True iff the half-open intervals share at least one point.
  constexpr bool overlaps(const Segment& o) const {
    return begin < o.end && o.begin < end;
  }

  /// True iff `o` is entirely inside this segment.
  constexpr bool contains(const Segment& o) const {
    return begin <= o.begin && o.end <= end;
  }

  constexpr bool contains(Time t) const { return begin <= t && t < end; }

  friend constexpr bool operator==(const Segment&, const Segment&) = default;

  /// The paper's precedence relation g1 ≺ g2 (g1 ends before g2 starts).
  /// Disjoint segments are totally ordered by it.
  friend constexpr bool precedes(const Segment& a, const Segment& b) {
    return a.end <= b.begin;
  }
};

/// Total length of a segment list.
inline Duration total_length(const std::vector<Segment>& segs) {
  Duration sum = 0;
  for (const Segment& s : segs) sum += s.length();
  return sum;
}

/// True iff the segments are sorted by begin, non-empty and pairwise
/// disjoint (adjacency allowed).
inline bool is_sorted_disjoint(const std::vector<Segment>& segs) {
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].empty()) return false;
    if (i > 0 && segs[i - 1].end > segs[i].begin) return false;
  }
  return true;
}

/// Sorts by begin time and merges touching/overlapping segments.
/// Precondition for exact semantics downstream: inputs pairwise disjoint.
std::vector<Segment> normalized(std::vector<Segment> segs);

/// In-place form of normalized(): same result, but reuses `segs`' storage
/// (no allocation once the vector has grown to its working size).
void normalize_in_place(std::vector<Segment>& segs);

}  // namespace pobp
