// Time model.
//
// All times are integer ticks (int64).  The paper's constructions are stated
// with rational lengths/laxities; the generators in src/gen scale the base
// unit so that every release, deadline and segment endpoint is integer-exact.
// Feasibility decisions therefore never touch floating point.
#pragma once

#include <cstdint>

namespace pobp {

using Time = std::int64_t;
using Duration = std::int64_t;

/// Sentinel for "no time" / "unset".
inline constexpr Time kNoTime = INT64_MIN;

/// Job values.  Values participate only in sums and comparisons (never in
/// feasibility), and all paper constructions use integer values, which are
/// exact in a double well past anything we instantiate.
using Value = double;

}  // namespace pobp
