// Busy/idle timeline of one machine.
//
// The Leftmost Schedule Algorithm (Alg. 2) repeatedly asks for the leftmost
// idle segments inside a job's window [r_j, d_j) and then occupies parts of
// them.  IdleTimeline maintains the set of *maximal* busy runs in a sorted
// flat vector: queries binary-search (logarithmic), updates memmove the
// tail (linear in the run count, but runs are few and contiguous, so this
// beats a node-based map well past the sizes LSA produces — and, unlike a
// map, clear() keeps the storage, so a pooled timeline in LsaScratch does
// zero steady-state allocations).  Maximal runs are also what Lemma 4.11
// ("every busy segment is at least as long as the shortest job") is stated
// about.
#pragma once

#include <optional>
#include <vector>

#include "pobp/schedule/segment.hpp"

namespace pobp {

class IdleTimeline {
 public:
  /// The whole line starts idle.
  IdleTimeline() = default;

  /// Marks `s` busy.  Aborts if any part of `s` is already busy.
  /// Touching runs are coalesced, so busy runs stay maximal.
  void occupy(Segment s);

  /// True iff every point of `s` is idle.
  bool is_idle(Segment s) const;

  /// First idle segment starting at or after `from`, clipped to `window`;
  /// std::nullopt once `window` is exhausted.
  std::optional<Segment> next_idle(Time from, Segment window) const;

  /// All idle segments inside `window`, left to right.
  std::vector<Segment> idle_in(Segment window) const;

  /// All maximal busy runs intersecting `window`, clipped to it.
  std::vector<Segment> busy_in(Segment window) const;

  /// Total idle / busy time inside `window`.
  Duration idle_time(Segment window) const;
  Duration busy_time(Segment window) const;

  /// Number of maximal busy runs overall.
  std::size_t run_count() const { return busy_.size(); }

  /// Back to the all-idle state, retaining run storage.
  void clear() { busy_.clear(); }

 private:
  /// Index of the first run with begin > t (upper bound by run begin).
  std::size_t upper_bound(Time t) const;

  // Maximal busy runs, disjoint and non-touching, sorted by begin.
  std::vector<Segment> busy_;
};

}  // namespace pobp
