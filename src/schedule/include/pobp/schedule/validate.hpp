// Feasibility validation (Def. 2.1 a–c, plus the multi-machine extension).
//
// The validator is the single source of truth for "is this a feasible
// k-preemptive schedule"; every algorithm's output in tests and benches is
// pushed through it.  Checks emit structured diagnostics (stable rule ids,
// see pobp/diag/registry.hpp) through a diag::Report, reporting *every*
// violation; the historical first-failure ValidationResult interface is
// kept as a thin shim over the same engine.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <string>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/schedule/schedule.hpp"

namespace pobp {

/// Preemption bound meaning "unbounded" (k = ∞).
inline constexpr std::size_t kUnboundedPreemptions =
    std::numeric_limits<std::size_t>::max();

struct ValidationResult {
  bool ok = true;
  std::string error;  // empty when ok

  explicit operator bool() const { return ok; }

  static ValidationResult failure(std::string why) {
    return {false, std::move(why)};
  }
};

// --- diagnostics engine -----------------------------------------------------

/// Checks one job's raw assignment (rules POBP-SCHED-001..007): known job
/// id, non-empty segment list, per-segment positive length, sortedness and
/// intra-job disjointness, window containment, exact processed length, and
/// the preemption budget.  Appends every violation to `report`; `machine`
/// only decorates locations.  Works on *raw* assignments — segments need
/// not be normalized — so lint can run it on untrusted CSV rows.
void diagnose_assignment(const JobSet& jobs, const Assignment& assignment,
                         std::size_t k, diag::Report& report,
                         std::optional<std::size_t> machine = std::nullopt);

/// Per-assignment checks for a whole machine plus machine exclusivity
/// (POBP-SCHED-008: no two jobs overlap).  Appends all violations.
void diagnose_machine(const JobSet& jobs, const MachineSchedule& ms,
                      std::size_t k, diag::Report& report,
                      std::optional<std::size_t> machine = std::nullopt);

/// Raw-span variant of diagnose_machine for unnormalized input (the lint
/// path): same rules, including cross-job overlap over all segments.
void diagnose_assignments(const JobSet& jobs,
                          std::span<const Assignment> assignments,
                          std::size_t k, diag::Report& report,
                          std::optional<std::size_t> machine = std::nullopt);

/// Multi-machine: every machine's checks plus non-migration
/// (POBP-SCHED-009).  Appends all violations across all machines.
void diagnose_schedule(const JobSet& jobs, const Schedule& schedule,
                       std::size_t k, diag::Report& report);

/// Raw multi-machine variant: one unnormalized assignment vector per
/// machine (io::group_schedule_rows output).  Same rules as
/// diagnose_schedule, including non-migration.
void diagnose_raw_schedule(const JobSet& jobs,
                           std::span<const std::vector<Assignment>> machines,
                           std::size_t k, diag::Report& report);

// --- first-failure shims ----------------------------------------------------

/// Checks that `ms` is a feasible k-preemptive schedule of a subset of
/// `jobs` on one machine:
///   * every segment lies in [r_j, d_j) and has positive length,
///   * each job's segments are pairwise disjoint and sum to exactly p_j,
///   * segments of different jobs do not overlap,
///   * no job has more than k preemptions (k+1 segments).
/// Reports the first violation found by the diagnostics engine.
ValidationResult validate_machine(const JobSet& jobs,
                                  const MachineSchedule& ms,
                                  std::size_t k = kUnboundedPreemptions);

/// Multi-machine version: each machine feasible, and no job appears on two
/// machines (non-migrative setting).
ValidationResult validate(const JobSet& jobs, const Schedule& schedule,
                          std::size_t k = kUnboundedPreemptions);

// --- allocation-free fast path ----------------------------------------------

/// Reusable buffers for validate_fast().  The per-job `seen` array is
/// maintained sparsely (entries touched are restored before returning), so
/// one scratch serves instances of any size without a full reset.
struct ValidateScratch {
  std::vector<MachineSchedule::TaggedSegment> timeline;  ///< exclusivity sweep
  std::vector<std::uint8_t> seen;  ///< per job id: already placed on a machine
  std::vector<JobId> touched;      ///< seen[] entries to restore
  std::vector<std::uint64_t> sweep_keys;  ///< packed (begin, index) keys
  std::vector<std::uint64_t> sweep_tmp;   ///< radix-sort scatter buffer
  std::vector<Time> sweep_end;            ///< segment ends by index
};

/// Verdict-only validator: true iff validate(jobs, schedule, k) would find
/// no violation.  Checks exactly the same predicates but builds no
/// diag::Report and performs zero heap allocations once `scratch` is
/// warmed — the engine's hot path runs this and defers Report (string)
/// construction to the error path.
bool validate_fast(const JobSet& jobs, const Schedule& schedule, std::size_t k,
                   ValidateScratch& scratch);

}  // namespace pobp
