// Feasibility validation (Def. 2.1 a–c, plus the multi-machine extension).
//
// The validator is the single source of truth for "is this a feasible
// k-preemptive schedule"; every algorithm's output in tests and benches is
// pushed through it.  On failure it reports a human-readable reason.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

#include "pobp/schedule/schedule.hpp"

namespace pobp {

/// Preemption bound meaning "unbounded" (k = ∞).
inline constexpr std::size_t kUnboundedPreemptions =
    std::numeric_limits<std::size_t>::max();

struct ValidationResult {
  bool ok = true;
  std::string error;  // empty when ok

  explicit operator bool() const { return ok; }

  static ValidationResult failure(std::string why) {
    return {false, std::move(why)};
  }
};

/// Checks that `ms` is a feasible k-preemptive schedule of a subset of
/// `jobs` on one machine:
///   * every segment lies in [r_j, d_j) and has positive length,
///   * each job's segments are pairwise disjoint and sum to exactly p_j,
///   * segments of different jobs do not overlap,
///   * no job has more than k preemptions (k+1 segments).
ValidationResult validate_machine(const JobSet& jobs,
                                  const MachineSchedule& ms,
                                  std::size_t k = kUnboundedPreemptions);

/// Multi-machine version: each machine feasible, and no job appears on two
/// machines (non-migrative setting).
ValidationResult validate(const JobSet& jobs, const Schedule& schedule,
                          std::size_t k = kUnboundedPreemptions);

}  // namespace pobp
