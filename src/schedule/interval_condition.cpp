#include "pobp/schedule/interval_condition.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "pobp/diag/registry.hpp"

namespace pobp {
namespace {

struct Item {
  Time release;
  Time deadline;
  Duration length;
};

/// Core sweep over explicit items.  For every release value r, scan items
/// with r_j >= r in deadline order and accumulate demand; the first time
/// the running demand overflows the interval [r, d_j], call
/// `on_overload(r, d_j, demand, witnesses)` and move to the next release.
/// Returning false stops the whole sweep.
template <typename OverloadFn>
void interval_sweep(std::vector<Item> items, OverloadFn&& on_overload) {
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.deadline < b.deadline;
  });
  std::vector<Time> releases;
  releases.reserve(items.size());
  for (const Item& it : items) releases.push_back(it.release);
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()),
                 releases.end());

  for (const Time r : releases) {
    Duration demand = 0;
    std::size_t witnesses = 0;
    for (const Item& it : items) {  // deadline order
      if (it.release < r) continue;
      demand += it.length;
      ++witnesses;
      if (demand > it.deadline - r) {
        if (!on_overload(r, it.deadline, demand, witnesses)) return;
        break;  // one finding per release point; try the next r
      }
    }
  }
}

std::vector<Item> collect(const JobSet& jobs, std::span<const JobId> subset) {
  std::vector<Item> items;
  items.reserve(subset.size());
  for (const JobId id : subset) {
    const Job& j = jobs[id];
    items.push_back({j.release, j.deadline, j.length});
  }
  return items;
}

}  // namespace

bool preemptive_feasible(const JobSet& jobs, std::span<const JobId> subset) {
  bool feasible = true;
  interval_sweep(collect(jobs, subset),
                 [&](Time, Time, Duration, std::size_t) {
                   feasible = false;
                   return false;  // first overload settles the predicate
                 });
  return feasible;
}

void diagnose_interval_condition(const JobSet& jobs,
                                 std::span<const JobId> subset,
                                 diag::Report& report,
                                 std::optional<diag::Severity> severity) {
  interval_sweep(
      collect(jobs, subset),
      [&](Time r, Time d, Duration demand, std::size_t witnesses) {
        std::ostringstream os;
        os << "interval [" << r << ", " << d << "] demands " << demand
           << " units of work but offers only " << (d - r) << " ("
           << witnesses << " jobs with windows inside it)";
        diag::Location loc;
        loc.begin = r;
        loc.end = d;
        auto& diagnostic =
            severity ? report.add(std::string(diag::rules::kIntervalOverload),
                                  *severity, os.str(), loc)
                     : report.add(std::string(diag::rules::kIntervalOverload),
                                  os.str(), loc);
        diagnostic.with("demand", demand)
            .with("capacity", d - r)
            .with("jobs", witnesses);
        return true;  // report every overloaded release point
      });
}

bool FeasibilityOracle::try_add(JobId id) {
  members_.push_back(id);
  // A full re-check is O(n²); for the B&B depths we use (n ≤ ~26) the
  // simplicity is worth more than an incremental data structure.
  if (preemptive_feasible(*jobs_, members_)) return true;
  members_.pop_back();
  return false;
}

void FeasibilityOracle::pop() {
  POBP_ASSERT(!members_.empty());
  members_.pop_back();
}

}  // namespace pobp
