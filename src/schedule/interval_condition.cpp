#include "pobp/schedule/interval_condition.hpp"

#include <algorithm>
#include <vector>

namespace pobp {
namespace {

struct Item {
  Time release;
  Time deadline;
  Duration length;
};

/// Core check over explicit items.  For every release value r, scan items
/// with r_j >= r in deadline order and verify the running demand fits.
bool feasible(std::vector<Item> items) {
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.deadline < b.deadline;
  });
  std::vector<Time> releases;
  releases.reserve(items.size());
  for (const Item& it : items) releases.push_back(it.release);
  std::sort(releases.begin(), releases.end());
  releases.erase(std::unique(releases.begin(), releases.end()),
                 releases.end());

  for (const Time r : releases) {
    Duration demand = 0;
    for (const Item& it : items) {  // deadline order
      if (it.release < r) continue;
      demand += it.length;
      if (demand > it.deadline - r) return false;
    }
  }
  return true;
}

}  // namespace

bool preemptive_feasible(const JobSet& jobs, std::span<const JobId> subset) {
  std::vector<Item> items;
  items.reserve(subset.size());
  for (const JobId id : subset) {
    const Job& j = jobs[id];
    items.push_back({j.release, j.deadline, j.length});
  }
  return feasible(std::move(items));
}

bool FeasibilityOracle::try_add(JobId id) {
  members_.push_back(id);
  // A full re-check is O(n²); for the B&B depths we use (n ≤ ~26) the
  // simplicity is worth more than an incremental data structure.
  if (preemptive_feasible(*jobs_, members_)) return true;
  members_.pop_back();
  return false;
}

void FeasibilityOracle::pop() {
  POBP_ASSERT(!members_.empty());
  members_.pop_back();
}

}  // namespace pobp
