#include "pobp/schedule/interval_cover.hpp"

#include <algorithm>
#include <numeric>

#include "pobp/util/assert.hpp"

namespace pobp {

IntervalCover greedy_interval_cover(std::span<const Segment> intervals) {
  IntervalCover cover;

  // Indices of non-empty intervals, by (begin asc, end desc) so the first
  // interval of each component is the leftmost-starting, longest one.
  std::vector<std::size_t> order;
  order.reserve(intervals.size());
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (!intervals[i].empty()) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (intervals[a].begin != intervals[b].begin) {
      return intervals[a].begin < intervals[b].begin;
    }
    return intervals[a].end > intervals[b].end;
  });

  std::size_t i = 0;
  while (i < order.size()) {
    // Start a component with I0 (Lemma 4.7).
    cover.chosen.push_back(order[i]);
    Time covered = intervals[order[i]].end;
    std::size_t j = i + 1;
    for (;;) {
      // Among intervals intersecting the current cover, find the one whose
      // right endpoint is rightmost.  Scanned candidates that don't win
      // are dominated forever (their ends ≤ covered), so the sweep is
      // linear.
      Time best_end = covered;
      std::size_t best = SIZE_MAX;
      while (j < order.size() && intervals[order[j]].begin <= covered) {
        if (intervals[order[j]].end > best_end) {
          best_end = intervals[order[j]].end;
          best = order[j];
        }
        ++j;
      }
      if (best == SIZE_MAX) break;  // component fully covered
      cover.chosen.push_back(best);
      covered = best_end;
    }
    i = j;  // first interval strictly beyond the component
  }

  // Corollary 4.8: the parity split (chosen is already in left-endpoint
  // order — a later pick starting no later is a contradiction with the
  // greedy choice).
  for (std::size_t c = 0; c < cover.chosen.size(); ++c) {
    (c % 2 == 0 ? cover.even : cover.odd).push_back(cover.chosen[c]);
  }
  return cover;
}

Duration union_length(std::span<const Segment> intervals) {
  std::vector<Segment> copy(intervals.begin(), intervals.end());
  return total_length(normalized(std::move(copy)));
}

}  // namespace pobp
