#include "pobp/schedule/laminar.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "pobp/diag/registry.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"

namespace pobp {
namespace {

/// Timeline sweep shared by the predicate and the diagnoser.  Keeps a stack
/// of open jobs, outermost first; finished jobs are popped as soon as they
/// reach the top, so every non-top stack entry is open.  A segment whose
/// job already sits below the top therefore proves that some job above it
/// still has a future segment — exactly the pattern a₁ ≺ b₁ ≺ a₂ ≺ b₂.
/// `on_violation(resumed, witness)` is called once per violating segment
/// with the innermost still-open job above the resumed one; returning false
/// stops the sweep.
template <typename ViolationFn>
void laminar_sweep(const MachineSchedule& ms, ViolationFn&& on_violation) {
  const auto timeline = ms.timeline();

  // Remaining-segment counter and stack-membership flag per job.  Flat
  // arrays keyed by job id keep the sweep O(S) even when the nesting stack
  // is deep (a std::find over the stack would be quadratic on chains).
  JobId max_id = 0;
  for (const auto& ts : timeline) max_id = std::max(max_id, ts.job);
  std::vector<std::size_t> remaining(timeline.empty() ? 0 : max_id + 1, 0);
  std::vector<char> on_stack(remaining.size(), 0);
  for (const auto& ts : timeline) ++remaining[ts.job];

  std::vector<JobId> stack;
  for (const auto& ts : timeline) {
    while (!stack.empty() && remaining[stack.back()] == 0) {
      on_stack[stack.back()] = 0;
      stack.pop_back();
    }
    if (stack.empty() || stack.back() != ts.job) {
      if (on_stack[ts.job]) {
        // Resumed under an open job: interleaving.  Leave the stack as-is
        // (the job is already recorded) so the sweep stays consistent.
        if (!on_violation(ts, stack.back())) return;
      } else {
        stack.push_back(ts.job);
        on_stack[ts.job] = 1;
      }
    }
    --remaining[ts.job];
  }
}

/// Laminarity check over an EDF run log using scratch buffers only.  EDF
/// output is laminar by construction; this is the always-on defense against
/// simulator regressions, same as the is_laminar() check on the allocating
/// path.  The sparse per-job arrays are restored to zero before returning.
bool runs_are_laminar(std::span<const EdfScratch::Run> runs,
                      std::size_t job_count, LaminarScratch& s) {
  if (s.remaining.size() < job_count) s.remaining.resize(job_count, 0);
  if (s.on_stack.size() < job_count) s.on_stack.resize(job_count, 0);
  for (const auto& run : runs) ++s.remaining[run.job];

  s.stack.clear();
  bool laminar = true;
  for (const auto& run : runs) {
    while (!s.stack.empty() && s.remaining[s.stack.back()] == 0) {
      s.on_stack[s.stack.back()] = 0;
      s.stack.pop_back();
    }
    if (s.stack.empty() || s.stack.back() != run.job) {
      if (s.on_stack[run.job]) {
        laminar = false;
        break;
      }
      s.stack.push_back(run.job);
      s.on_stack[run.job] = 1;
    }
    --s.remaining[run.job];
  }
  // Restore sparse cleanliness (the early break can leave both counters and
  // membership flags set).
  for (const auto& run : runs) s.remaining[run.job] = 0;
  for (const JobId id : s.stack) s.on_stack[id] = 0;
  s.stack.clear();
  return laminar;
}

}  // namespace

bool is_laminar(const MachineSchedule& ms) {
  bool laminar = true;
  laminar_sweep(ms, [&](const MachineSchedule::TaggedSegment&, JobId) {
    laminar = false;
    return false;  // first violation settles the predicate
  });
  return laminar;
}

void diagnose_laminar(const MachineSchedule& ms, diag::Report& report,
                      std::optional<std::size_t> machine) {
  laminar_sweep(ms, [&](const MachineSchedule::TaggedSegment& ts,
                        JobId witness) {
    std::ostringstream os;
    os << "job#" << ts.job << " resumes at [" << ts.segment.begin << ", "
       << ts.segment.end << ") while job#" << witness
       << " is still open (interleaving a1 < b1 < a2 < b2)";
    diag::Location loc;
    loc.machine = machine;
    loc.job = ts.job;
    loc.begin = ts.segment.begin;
    loc.end = ts.segment.end;
    report.add(std::string(diag::rules::kLaminarInterleaving), os.str(), loc)
        .with("open_job", static_cast<std::int64_t>(witness));
    return true;  // keep sweeping: report every interleaving
  });
}

void laminarize_subset_into(const JobSet& jobs, std::span<const JobId> ids,
                            LaminarScratch& scratch, MachineSchedule& out) {
  POBP_FAULT_POINT(kLaminarize);
  BudgetGuard::poll();
  POBP_CHECK_MSG(edf_schedule_into(jobs, ids, scratch.edf, out),
                 "laminarize: input schedule's job set must be feasible");
  POBP_CHECK(runs_are_laminar(scratch.edf.runs, jobs.size(), scratch));
}

MachineSchedule laminarize_subset(const JobSet& jobs,
                                  std::span<const JobId> ids,
                                  LaminarScratch& scratch) {
  MachineSchedule out;
  laminarize_subset_into(jobs, ids, scratch, out);
  return out;
}

void laminarize_into(const JobSet& jobs, const MachineSchedule& ms,
                     LaminarScratch& scratch, MachineSchedule& out) {
  POBP_ASSERT(&ms != &out);
  scratch.ids.clear();
  scratch.ids.reserve(ms.job_count());
  for (const Assignment& a : ms.assignments()) scratch.ids.push_back(a.job);
  laminarize_subset_into(jobs, scratch.ids, scratch, out);
}

MachineSchedule laminarize(const JobSet& jobs, const MachineSchedule& ms,
                           LaminarScratch& scratch) {
  MachineSchedule out;
  laminarize_into(jobs, ms, scratch, out);
  return out;
}

MachineSchedule laminarize(const JobSet& jobs, const MachineSchedule& ms) {
  LaminarScratch scratch;
  return laminarize(jobs, ms, scratch);
}

}  // namespace pobp
