#include "pobp/schedule/laminar.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "pobp/diag/registry.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/faultinject.hpp"

namespace pobp {
namespace {

/// Timeline sweep shared by the predicate and the diagnoser.  Keeps a stack
/// of open jobs, outermost first; finished jobs are popped as soon as they
/// reach the top, so every non-top stack entry is open.  A segment whose
/// job already sits below the top therefore proves that some job above it
/// still has a future segment — exactly the pattern a₁ ≺ b₁ ≺ a₂ ≺ b₂.
/// `on_violation(resumed, witness)` is called once per violating segment
/// with the innermost still-open job above the resumed one; returning false
/// stops the sweep.
template <typename ViolationFn>
void laminar_sweep(const MachineSchedule& ms, ViolationFn&& on_violation) {
  const auto timeline = ms.timeline();

  // Remaining-segment counter per job: a job is "open" while more of its
  // segments are still ahead of the sweep.
  std::unordered_map<JobId, std::size_t> remaining;
  for (const auto& ts : timeline) ++remaining[ts.job];

  std::vector<JobId> stack;
  for (const auto& ts : timeline) {
    while (!stack.empty() && remaining[stack.back()] == 0) stack.pop_back();
    if (stack.empty() || stack.back() != ts.job) {
      if (std::find(stack.begin(), stack.end(), ts.job) != stack.end()) {
        // Resumed under an open job: interleaving.  Leave the stack as-is
        // (the job is already recorded) so the sweep stays consistent.
        if (!on_violation(ts, stack.back())) return;
      } else {
        stack.push_back(ts.job);
      }
    }
    --remaining[ts.job];
  }
}

}  // namespace

bool is_laminar(const MachineSchedule& ms) {
  bool laminar = true;
  laminar_sweep(ms, [&](const MachineSchedule::TaggedSegment&, JobId) {
    laminar = false;
    return false;  // first violation settles the predicate
  });
  return laminar;
}

void diagnose_laminar(const MachineSchedule& ms, diag::Report& report,
                      std::optional<std::size_t> machine) {
  laminar_sweep(ms, [&](const MachineSchedule::TaggedSegment& ts,
                        JobId witness) {
    std::ostringstream os;
    os << "job#" << ts.job << " resumes at [" << ts.segment.begin << ", "
       << ts.segment.end << ") while job#" << witness
       << " is still open (interleaving a1 < b1 < a2 < b2)";
    diag::Location loc;
    loc.machine = machine;
    loc.job = ts.job;
    loc.begin = ts.segment.begin;
    loc.end = ts.segment.end;
    report.add(std::string(diag::rules::kLaminarInterleaving), os.str(), loc)
        .with("open_job", static_cast<std::int64_t>(witness));
    return true;  // keep sweeping: report every interleaving
  });
}

MachineSchedule laminarize(const JobSet& jobs, const MachineSchedule& ms) {
  POBP_FAULT_POINT(kLaminarize);
  BudgetGuard::poll();
  const std::vector<JobId> ids = ms.scheduled_jobs();
  std::optional<MachineSchedule> out = edf_schedule(jobs, ids);
  POBP_CHECK_MSG(out.has_value(),
                 "laminarize: input schedule's job set must be feasible");
  POBP_CHECK(is_laminar(*out));
  return std::move(*out);
}

}  // namespace pobp
