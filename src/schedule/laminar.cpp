#include "pobp/schedule/laminar.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "pobp/schedule/edf.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

bool is_laminar(const MachineSchedule& ms) {
  const auto timeline = ms.timeline();

  // Remaining-segment counter per job: a job is "open" while more of its
  // segments are still ahead of the sweep.
  std::unordered_map<JobId, std::size_t> remaining;
  for (const auto& ts : timeline) ++remaining[ts.job];

  // Sweep the timeline keeping a stack of open jobs, outermost first.
  // Invariant: finished jobs are popped as soon as they reach the top, so
  // every non-top stack entry is open.  A segment whose job sits below the
  // top therefore proves that some job above it still has a future segment
  // — exactly the pattern a₁ ≺ b₁ ≺ a₂ ≺ b₂.
  std::vector<JobId> stack;
  for (const auto& ts : timeline) {
    while (!stack.empty() && remaining[stack.back()] == 0) stack.pop_back();
    if (stack.empty() || stack.back() != ts.job) {
      if (std::find(stack.begin(), stack.end(), ts.job) != stack.end()) {
        return false;  // resumed under an open job: interleaving
      }
      stack.push_back(ts.job);
    }
    --remaining[ts.job];
  }
  return true;
}

MachineSchedule laminarize(const JobSet& jobs, const MachineSchedule& ms) {
  const std::vector<JobId> ids = ms.scheduled_jobs();
  std::optional<MachineSchedule> out = edf_schedule(jobs, ids);
  POBP_ASSERT_MSG(out.has_value(),
                  "laminarize: input schedule's job set must be feasible");
  POBP_ASSERT(is_laminar(*out));
  return std::move(*out);
}

}  // namespace pobp
