#include "pobp/schedule/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pobp/util/assert.hpp"

namespace pobp {

double log_base(double base, double x) {
  POBP_ASSERT(base > 1.0 && x >= 1.0);
  return std::max(1.0, std::log(x) / std::log(base));
}

double log_k1(std::size_t k, double x) {
  POBP_ASSERT_MSG(k >= 1, "log_{k+1} is defined for k >= 1 (see §5 for k=0)");
  return log_base(static_cast<double>(k + 1), x);
}

InstanceMetrics compute_metrics(const JobSet& jobs) {
  InstanceMetrics m;
  m.n = jobs.size();
  if (jobs.empty()) return m;
  double min_val = jobs[0].value, max_val = jobs[0].value;
  double min_den = jobs[0].density(), max_den = jobs[0].density();
  for (const Job& j : jobs) {
    min_val = std::min(min_val, j.value);
    max_val = std::max(max_val, j.value);
    min_den = std::min(min_den, j.density());
    max_den = std::max(max_den, j.density());
  }
  m.P = jobs.length_ratio_P().to_double();
  m.rho = max_val / min_val;
  m.sigma = max_den / min_den;
  m.lambda_max = jobs.max_laxity().to_double();
  m.total_value = jobs.total_value();
  return m;
}

std::string InstanceMetrics::to_string() const {
  std::ostringstream os;
  os << "n=" << n << " P=" << P << " rho=" << rho << " sigma=" << sigma
     << " lambda_max=" << lambda_max << " total_value=" << total_value;
  return os.str();
}

}  // namespace pobp
