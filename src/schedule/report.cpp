#include "pobp/schedule/report.hpp"

#include <algorithm>
#include <sstream>

namespace pobp {

ScheduleReport make_report(const JobSet& jobs, const Schedule& schedule) {
  ScheduleReport r;
  r.machines = schedule.machine_count();
  r.total_jobs = jobs.size();
  r.total_value = jobs.total_value();
  r.scheduled_jobs = schedule.job_count();
  r.value = schedule.total_value(jobs);

  Time first = kNoTime;
  Time last = kNoTime;
  for (const MachineSchedule& ms : schedule.machines()) {
    r.busy_time += ms.busy_time();
    for (const Assignment& a : ms.assignments()) {
      const std::size_t segments = a.segments.size();
      if (r.segment_histogram.size() < segments) {
        r.segment_histogram.resize(segments, 0);
      }
      ++r.segment_histogram[segments - 1];
      r.total_preemptions += a.preemptions();
      r.max_preemptions = std::max(r.max_preemptions, a.preemptions());
      if (first == kNoTime) first = a.segments.front().begin;
      first = std::min(first, a.segments.front().begin);
      last = std::max(last, a.segments.back().end);
    }
  }
  if (first != kNoTime) {
    r.makespan_window = last - first;
    r.utilization =
        static_cast<double>(r.busy_time) /
        (static_cast<double>(r.machines) *
         static_cast<double>(std::max<Duration>(1, r.makespan_window)));
  }
  return r;
}

std::string ScheduleReport::to_string() const {
  std::ostringstream os;
  os << "machines:        " << machines << '\n'
     << "jobs scheduled:  " << scheduled_jobs << " / " << total_jobs << '\n'
     << "value:           " << value << " / " << total_value << " ("
     << (total_value > 0 ? 100.0 * value / total_value : 0.0) << "%)\n"
     << "busy time:       " << busy_time << " ticks over a "
     << makespan_window << "-tick window (utilization "
     << 100.0 * utilization << "%)\n"
     << "preemptions:     max " << max_preemptions << ", total "
     << total_preemptions << '\n'
     << "segments/job:    ";
  for (std::size_t s = 0; s < segment_histogram.size(); ++s) {
    if (segment_histogram[s] == 0) continue;
    os << segment_histogram[s] << "×" << (s + 1) << "seg ";
  }
  os << '\n';
  return os.str();
}

}  // namespace pobp
