#include "pobp/schedule/schedule.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace pobp {

std::vector<Segment> normalized(std::vector<Segment> segs) {
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::vector<Segment> out;
  out.reserve(segs.size());
  for (const Segment& s : segs) {
    if (s.empty()) continue;
    if (!out.empty() && out.back().end >= s.begin) {
      out.back().end = std::max(out.back().end, s.end);
    } else {
      out.push_back(s);
    }
  }
  return out;
}

void normalize_in_place(std::vector<Segment>& segs) {
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::size_t out = 0;
  for (const Segment& s : segs) {
    if (s.empty()) continue;
    if (out != 0 && segs[out - 1].end >= s.begin) {
      segs[out - 1].end = std::max(segs[out - 1].end, s.end);
    } else {
      segs[out++] = s;
    }
  }
  segs.resize(out);
}

// --- flat job index ---------------------------------------------------------
//
// Open addressing over a power-of-two bucket array; each bucket packs
// (job + 1) << 32 | slot, with 0 marking an empty bucket.  Compared with
// the std::unordered_map it replaces, lookups stay O(1) but insertion does
// no per-node allocation and clear() is a memset, so a recycled
// MachineSchedule never touches the heap for its index.

namespace {

inline std::uint64_t index_hash(JobId job) {
  return (static_cast<std::uint64_t>(job) + 1) * 0x9E3779B97F4A7C15ULL;
}

}  // namespace

const std::uint64_t* MachineSchedule::index_lookup(JobId job) const {
  if (buckets_.empty()) return nullptr;
  const std::uint64_t key = static_cast<std::uint64_t>(job) + 1;
  const std::size_t mask = buckets_.size() - 1;
  for (std::size_t b = index_hash(job) & mask;; b = (b + 1) & mask) {
    const std::uint64_t entry = buckets_[b];
    if (entry == 0) return nullptr;
    if ((entry >> 32) == key) return &buckets_[b];
  }
}

void MachineSchedule::index_insert(JobId job, std::uint32_t pos) {
  // Jobs are JobSet indices, so job + 1 always fits the 32-bit key field.
  POBP_ASSERT(job != std::numeric_limits<JobId>::max());
  if (buckets_.size() < 2 * (live_ + 1)) index_grow(live_ + 1);
  const std::size_t mask = buckets_.size() - 1;
  std::size_t b = index_hash(job) & mask;
  while (buckets_[b] != 0) b = (b + 1) & mask;
  buckets_[b] = ((static_cast<std::uint64_t>(job) + 1) << 32) | pos;
}

void MachineSchedule::index_grow(std::size_t min_entries) {
  std::size_t cap = buckets_.empty() ? 16 : buckets_.size() * 2;
  while (cap < 2 * min_entries) cap *= 2;
  std::vector<std::uint64_t> old;
  old.swap(buckets_);
  buckets_.assign(cap, 0);
  const std::size_t mask = cap - 1;
  for (const std::uint64_t entry : old) {
    if (entry == 0) continue;
    std::size_t b =
        index_hash(static_cast<JobId>((entry >> 32) - 1)) & mask;
    while (buckets_[b] != 0) b = (b + 1) & mask;
    buckets_[b] = entry;
  }
}

// --- assignment slots -------------------------------------------------------

Assignment& MachineSchedule::new_slot(JobId job) {
  if (live_ == slots_.size()) slots_.emplace_back();
  Assignment& slot = slots_[live_];
  slot.job = job;
  slot.segments.clear();  // capacity retained — this is the recycling
  index_insert(job, static_cast<std::uint32_t>(live_));
  ++live_;
  return slot;
}

void MachineSchedule::add(Assignment assignment) {
  POBP_CHECK_MSG(!contains(assignment.job), "job already scheduled");
  POBP_CHECK_MSG(!assignment.segments.empty(), "empty assignment");
  normalize_in_place(assignment.segments);
  new_slot(assignment.job)
      .segments.assign(assignment.segments.begin(), assignment.segments.end());
}

void MachineSchedule::add_sorted(Assignment assignment) {
  append_sorted(assignment.job,
                {assignment.segments.data(), assignment.segments.size()});
}

void MachineSchedule::append_sorted(JobId job,
                                    std::span<const Segment> segments) {
  POBP_CHECK_MSG(!contains(job), "job already scheduled");
  POBP_CHECK_MSG(!segments.empty(), "empty assignment");
#ifndef NDEBUG
  // Equivalence with add(): normalized() must be a no-op, which requires
  // sorted, non-empty, *strictly* separated segments (touching ones would
  // have been merged).
  for (std::size_t i = 0; i < segments.size(); ++i) {
    POBP_DASSERT(!segments[i].empty());
    POBP_DASSERT(i == 0 || segments[i - 1].end < segments[i].begin);
  }
#endif
  new_slot(job).segments.assign(segments.begin(), segments.end());
}

void MachineSchedule::clear() {
  live_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

void MachineSchedule::assign_from(const MachineSchedule& other) {
  if (this == &other) return;
  clear();
  for (const Assignment& a : other.assignments()) {
    append_sorted(a.job, {a.segments.data(), a.segments.size()});
  }
}

void MachineSchedule::reserve(std::size_t jobs) {
  slots_.reserve(jobs);
  if (jobs > 0 && buckets_.size() < 2 * jobs) index_grow(jobs);
}

const Assignment* MachineSchedule::find(JobId job) const {
  const std::uint64_t* entry = index_lookup(job);
  if (entry == nullptr) return nullptr;
  return &slots_[static_cast<std::uint32_t>(*entry)];
}

std::vector<JobId> MachineSchedule::scheduled_jobs() const {
  std::vector<JobId> ids;
  ids.reserve(live_);
  for (const Assignment& a : assignments()) ids.push_back(a.job);
  return ids;
}

Value MachineSchedule::total_value(const JobSet& jobs) const {
  Value sum = 0;
  for (const Assignment& a : assignments()) sum += jobs[a.job].value;
  return sum;
}

std::size_t MachineSchedule::max_preemptions() const {
  std::size_t worst = 0;
  for (const Assignment& a : assignments()) {
    worst = std::max(worst, a.preemptions());
  }
  return worst;
}

Duration MachineSchedule::busy_time() const {
  Duration sum = 0;
  for (const Assignment& a : assignments()) sum += total_length(a.segments);
  return sum;
}

std::vector<MachineSchedule::TaggedSegment> MachineSchedule::timeline() const {
  std::vector<TaggedSegment> out;
  timeline_into(out);
  return out;
}

void MachineSchedule::timeline_into(std::vector<TaggedSegment>& out) const {
  out.clear();
  out.reserve(segment_count());
  for (const Assignment& a : assignments()) {
    for (const Segment& s : a.segments) out.push_back({s, a.job});
  }
  std::sort(out.begin(), out.end(),
            [](const TaggedSegment& a, const TaggedSegment& b) {
              return a.segment.begin < b.segment.begin;
            });
}

std::size_t MachineSchedule::segment_count() const {
  std::size_t count = 0;
  for (const Assignment& a : assignments()) count += a.segments.size();
  return count;
}

std::string MachineSchedule::to_string(const JobSet& jobs) const {
  std::ostringstream os;
  for (const TaggedSegment& ts : timeline()) {
    os << "  [" << ts.segment.begin << ", " << ts.segment.end << ") job#"
       << ts.job << " (val=" << jobs[ts.job].value << ")\n";
  }
  return os.str();
}

void Schedule::reset(std::size_t machine_count) {
  POBP_ASSERT(machine_count >= 1);
  if (machines_.size() > machine_count) machines_.resize(machine_count);
  for (MachineSchedule& m : machines_) m.clear();
  while (machines_.size() < machine_count) machines_.emplace_back();
}

void Schedule::assign_from(const Schedule& other) {
  if (this == &other) return;
  reset(other.machine_count());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    machines_[m].assign_from(other.machine(m));
  }
}

std::optional<std::size_t> Schedule::machine_of(JobId job) const {
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    if (machines_[m].contains(job)) return m;
  }
  return std::nullopt;
}

Value Schedule::total_value(const JobSet& jobs) const {
  Value sum = 0;
  for (const MachineSchedule& m : machines_) sum += m.total_value(jobs);
  return sum;
}

std::size_t Schedule::job_count() const {
  std::size_t count = 0;
  for (const MachineSchedule& m : machines_) count += m.job_count();
  return count;
}

std::size_t Schedule::max_preemptions() const {
  std::size_t worst = 0;
  for (const MachineSchedule& m : machines_) {
    worst = std::max(worst, m.max_preemptions());
  }
  return worst;
}

std::vector<JobId> Schedule::scheduled_jobs() const {
  std::vector<JobId> ids;
  for (const MachineSchedule& m : machines_) {
    auto sub = m.scheduled_jobs();
    ids.insert(ids.end(), sub.begin(), sub.end());
  }
  return ids;
}

Value JobSet::total_value() const {
  Value sum = 0;
  for (const Job& j : jobs_) sum += j.value;
  return sum;
}

Value JobSet::value_of(std::span<const JobId> ids) const {
  Value sum = 0;
  for (const JobId id : ids) sum += (*this)[id].value;
  return sum;
}

Duration JobSet::total_length() const {
  Duration sum = 0;
  for (const Job& j : jobs_) sum += j.length;
  return sum;
}

Duration JobSet::min_length() const {
  POBP_ASSERT(!jobs_.empty());
  Duration best = jobs_.front().length;
  for (const Job& j : jobs_) best = std::min(best, j.length);
  return best;
}

Duration JobSet::max_length() const {
  POBP_ASSERT(!jobs_.empty());
  Duration best = jobs_.front().length;
  for (const Job& j : jobs_) best = std::max(best, j.length);
  return best;
}

Rational JobSet::max_laxity() const {
  POBP_ASSERT(!jobs_.empty());
  Rational best = jobs_.front().laxity();
  for (const Job& j : jobs_) best = std::max(best, j.laxity());
  return best;
}

Time JobSet::horizon() const {
  Time latest = 0;
  for (const Job& j : jobs_) latest = std::max(latest, j.deadline);
  return latest;
}

Time JobSet::earliest_release() const {
  POBP_ASSERT(!jobs_.empty());
  Time earliest = jobs_.front().release;
  for (const Job& j : jobs_) earliest = std::min(earliest, j.release);
  return earliest;
}

std::vector<JobId> all_ids(const JobSet& jobs) {
  std::vector<JobId> ids(jobs.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<JobId>(i);
  }
  return ids;
}

}  // namespace pobp
