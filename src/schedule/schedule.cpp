#include "pobp/schedule/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace pobp {

std::vector<Segment> normalized(std::vector<Segment> segs) {
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::vector<Segment> out;
  out.reserve(segs.size());
  for (const Segment& s : segs) {
    if (s.empty()) continue;
    if (!out.empty() && out.back().end >= s.begin) {
      out.back().end = std::max(out.back().end, s.end);
    } else {
      out.push_back(s);
    }
  }
  return out;
}

void normalize_in_place(std::vector<Segment>& segs) {
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::size_t out = 0;
  for (const Segment& s : segs) {
    if (s.empty()) continue;
    if (out != 0 && segs[out - 1].end >= s.begin) {
      segs[out - 1].end = std::max(segs[out - 1].end, s.end);
    } else {
      segs[out++] = s;
    }
  }
  segs.resize(out);
}

void MachineSchedule::add(Assignment assignment) {
  POBP_CHECK_MSG(!contains(assignment.job), "job already scheduled");
  POBP_CHECK_MSG(!assignment.segments.empty(), "empty assignment");
  assignment.segments = normalized(std::move(assignment.segments));
  index_.emplace(assignment.job, assignments_.size());
  assignments_.push_back(std::move(assignment));
}

void MachineSchedule::add_sorted(Assignment assignment) {
  POBP_CHECK_MSG(!contains(assignment.job), "job already scheduled");
  POBP_CHECK_MSG(!assignment.segments.empty(), "empty assignment");
#ifndef NDEBUG
  // Equivalence with add(): normalized() must be a no-op, which requires
  // sorted, non-empty, *strictly* separated segments (touching ones would
  // have been merged).
  for (std::size_t i = 0; i < assignment.segments.size(); ++i) {
    POBP_DASSERT(!assignment.segments[i].empty());
    POBP_DASSERT(i == 0 || assignment.segments[i - 1].end <
                               assignment.segments[i].begin);
  }
#endif
  index_.emplace(assignment.job, assignments_.size());
  assignments_.push_back(std::move(assignment));
}

const Assignment* MachineSchedule::find(JobId job) const {
  const auto it = index_.find(job);
  return it == index_.end() ? nullptr : &assignments_[it->second];
}

std::vector<JobId> MachineSchedule::scheduled_jobs() const {
  std::vector<JobId> ids;
  ids.reserve(assignments_.size());
  for (const Assignment& a : assignments_) ids.push_back(a.job);
  return ids;
}

Value MachineSchedule::total_value(const JobSet& jobs) const {
  Value sum = 0;
  for (const Assignment& a : assignments_) sum += jobs[a.job].value;
  return sum;
}

std::size_t MachineSchedule::max_preemptions() const {
  std::size_t worst = 0;
  for (const Assignment& a : assignments_) {
    worst = std::max(worst, a.preemptions());
  }
  return worst;
}

Duration MachineSchedule::busy_time() const {
  Duration sum = 0;
  for (const Assignment& a : assignments_) sum += total_length(a.segments);
  return sum;
}

std::vector<MachineSchedule::TaggedSegment> MachineSchedule::timeline() const {
  std::vector<TaggedSegment> out;
  timeline_into(out);
  return out;
}

void MachineSchedule::timeline_into(std::vector<TaggedSegment>& out) const {
  out.clear();
  out.reserve(segment_count());
  for (const Assignment& a : assignments_) {
    for (const Segment& s : a.segments) out.push_back({s, a.job});
  }
  std::sort(out.begin(), out.end(),
            [](const TaggedSegment& a, const TaggedSegment& b) {
              return a.segment.begin < b.segment.begin;
            });
}

std::size_t MachineSchedule::segment_count() const {
  std::size_t count = 0;
  for (const Assignment& a : assignments_) count += a.segments.size();
  return count;
}

std::string MachineSchedule::to_string(const JobSet& jobs) const {
  std::ostringstream os;
  for (const TaggedSegment& ts : timeline()) {
    os << "  [" << ts.segment.begin << ", " << ts.segment.end << ") job#"
       << ts.job << " (val=" << jobs[ts.job].value << ")\n";
  }
  return os.str();
}

std::optional<std::size_t> Schedule::machine_of(JobId job) const {
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    if (machines_[m].contains(job)) return m;
  }
  return std::nullopt;
}

Value Schedule::total_value(const JobSet& jobs) const {
  Value sum = 0;
  for (const MachineSchedule& m : machines_) sum += m.total_value(jobs);
  return sum;
}

std::size_t Schedule::job_count() const {
  std::size_t count = 0;
  for (const MachineSchedule& m : machines_) count += m.job_count();
  return count;
}

std::size_t Schedule::max_preemptions() const {
  std::size_t worst = 0;
  for (const MachineSchedule& m : machines_) {
    worst = std::max(worst, m.max_preemptions());
  }
  return worst;
}

std::vector<JobId> Schedule::scheduled_jobs() const {
  std::vector<JobId> ids;
  for (const MachineSchedule& m : machines_) {
    auto sub = m.scheduled_jobs();
    ids.insert(ids.end(), sub.begin(), sub.end());
  }
  return ids;
}

Value JobSet::total_value() const {
  Value sum = 0;
  for (const Job& j : jobs_) sum += j.value;
  return sum;
}

Value JobSet::value_of(std::span<const JobId> ids) const {
  Value sum = 0;
  for (const JobId id : ids) sum += (*this)[id].value;
  return sum;
}

Duration JobSet::total_length() const {
  Duration sum = 0;
  for (const Job& j : jobs_) sum += j.length;
  return sum;
}

Duration JobSet::min_length() const {
  POBP_ASSERT(!jobs_.empty());
  Duration best = jobs_.front().length;
  for (const Job& j : jobs_) best = std::min(best, j.length);
  return best;
}

Duration JobSet::max_length() const {
  POBP_ASSERT(!jobs_.empty());
  Duration best = jobs_.front().length;
  for (const Job& j : jobs_) best = std::max(best, j.length);
  return best;
}

Rational JobSet::max_laxity() const {
  POBP_ASSERT(!jobs_.empty());
  Rational best = jobs_.front().laxity();
  for (const Job& j : jobs_) best = std::max(best, j.laxity());
  return best;
}

Time JobSet::horizon() const {
  Time latest = 0;
  for (const Job& j : jobs_) latest = std::max(latest, j.deadline);
  return latest;
}

Time JobSet::earliest_release() const {
  POBP_ASSERT(!jobs_.empty());
  Time earliest = jobs_.front().release;
  for (const Job& j : jobs_) earliest = std::min(earliest, j.release);
  return earliest;
}

std::vector<JobId> all_ids(const JobSet& jobs) {
  std::vector<JobId> ids(jobs.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<JobId>(i);
  }
  return ids;
}

}  // namespace pobp
