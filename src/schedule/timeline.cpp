#include "pobp/schedule/timeline.hpp"

#include "pobp/util/assert.hpp"

namespace pobp {

void IdleTimeline::occupy(Segment s) {
  POBP_ASSERT(!s.empty());
  POBP_ASSERT_MSG(is_idle(s), "occupy() of a non-idle segment");
  Time begin = s.begin;
  Time end = s.end;
  // Coalesce with a run ending exactly at s.begin.
  auto it = busy_.lower_bound(begin);
  if (it != busy_.begin()) {
    auto prev = std::prev(it);
    if (prev->second == begin) {
      begin = prev->first;
      busy_.erase(prev);
    }
  }
  // Coalesce with a run starting exactly at s.end.
  it = busy_.find(end);
  if (it != busy_.end()) {
    end = it->second;
    busy_.erase(it);
  }
  busy_.emplace(begin, end);
}

bool IdleTimeline::is_idle(Segment s) const {
  if (s.empty()) return true;
  auto it = busy_.upper_bound(s.begin);  // first run beginning after s.begin
  if (it != busy_.end() && it->first < s.end) return false;
  if (it != busy_.begin()) {
    auto prev = std::prev(it);  // run beginning at or before s.begin
    if (prev->second > s.begin) return false;
  }
  return true;
}

std::optional<Segment> IdleTimeline::next_idle(Time from, Segment window) const {
  Time cursor = std::max(from, window.begin);
  while (cursor < window.end) {
    auto it = busy_.upper_bound(cursor);
    // Run covering `cursor`, if any.
    if (it != busy_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > cursor) {
        cursor = prev->second;  // skip past the covering run
        continue;
      }
    }
    // `cursor` is idle; idle gap extends to the next run begin (or window end).
    const Time gap_end =
        it == busy_.end() ? window.end : std::min(it->first, window.end);
    if (cursor >= gap_end) return std::nullopt;
    return Segment{cursor, gap_end};
  }
  return std::nullopt;
}

std::vector<Segment> IdleTimeline::idle_in(Segment window) const {
  std::vector<Segment> out;
  Time cursor = window.begin;
  while (auto gap = next_idle(cursor, window)) {
    out.push_back(*gap);
    cursor = gap->end;
  }
  return out;
}

std::vector<Segment> IdleTimeline::busy_in(Segment window) const {
  std::vector<Segment> out;
  auto it = busy_.upper_bound(window.begin);
  if (it != busy_.begin()) --it;
  for (; it != busy_.end() && it->first < window.end; ++it) {
    const Segment clipped{std::max(it->first, window.begin),
                          std::min(it->second, window.end)};
    if (!clipped.empty()) out.push_back(clipped);
  }
  return out;
}

Duration IdleTimeline::idle_time(Segment window) const {
  return window.length() - busy_time(window);
}

Duration IdleTimeline::busy_time(Segment window) const {
  Duration sum = 0;
  for (const Segment& s : busy_in(window)) sum += s.length();
  return sum;
}

}  // namespace pobp
