#include "pobp/schedule/timeline.hpp"

#include <algorithm>

#include "pobp/util/assert.hpp"

namespace pobp {

std::size_t IdleTimeline::upper_bound(Time t) const {
  const auto it = std::upper_bound(
      busy_.begin(), busy_.end(), t,
      [](Time value, const Segment& run) { return value < run.begin; });
  return static_cast<std::size_t>(it - busy_.begin());
}

void IdleTimeline::occupy(Segment s) {
  POBP_ASSERT(!s.empty());
  POBP_ASSERT_MSG(is_idle(s), "occupy() of a non-idle segment");
  Time begin = s.begin;
  Time end = s.end;
  // i = first run beginning at or after s.begin (== s.end at most, since s
  // is idle); the run before it can touch s.begin, the run at it can touch
  // s.end — coalesce with both so busy runs stay maximal.
  std::size_t i = upper_bound(begin);
  if (i > 0 && busy_[i - 1].end == begin) {
    begin = busy_[i - 1].begin;
    --i;
    if (i + 1 < busy_.size() && busy_[i + 1].begin == end) {
      end = busy_[i + 1].end;
      busy_[i] = Segment{begin, end};
      busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      busy_[i] = Segment{begin, end};
    }
    return;
  }
  if (i < busy_.size() && busy_[i].begin == end) {
    busy_[i] = Segment{begin, busy_[i].end};
    return;
  }
  busy_.insert(busy_.begin() + static_cast<std::ptrdiff_t>(i),
               Segment{begin, end});
}

bool IdleTimeline::is_idle(Segment s) const {
  if (s.empty()) return true;
  const std::size_t i = upper_bound(s.begin);
  // Run beginning strictly after s.begin must not start inside s ...
  if (i < busy_.size() && busy_[i].begin < s.end) return false;
  // ... and the run beginning at or before s.begin must not cover it.
  if (i > 0 && busy_[i - 1].end > s.begin) return false;
  return true;
}

std::optional<Segment> IdleTimeline::next_idle(Time from, Segment window) const {
  Time cursor = std::max(from, window.begin);
  while (cursor < window.end) {
    const std::size_t i = upper_bound(cursor);
    // Run covering `cursor`, if any.
    if (i > 0 && busy_[i - 1].end > cursor) {
      cursor = busy_[i - 1].end;  // skip past the covering run
      continue;
    }
    // `cursor` is idle; idle gap extends to the next run begin (or window end).
    const Time gap_end = i == busy_.size()
                             ? window.end
                             : std::min(busy_[i].begin, window.end);
    if (cursor >= gap_end) return std::nullopt;
    return Segment{cursor, gap_end};
  }
  return std::nullopt;
}

std::vector<Segment> IdleTimeline::idle_in(Segment window) const {
  std::vector<Segment> out;
  Time cursor = window.begin;
  while (auto gap = next_idle(cursor, window)) {
    out.push_back(*gap);
    cursor = gap->end;
  }
  return out;
}

std::vector<Segment> IdleTimeline::busy_in(Segment window) const {
  std::vector<Segment> out;
  std::size_t i = upper_bound(window.begin);
  if (i > 0) --i;
  for (; i < busy_.size() && busy_[i].begin < window.end; ++i) {
    const Segment clipped{std::max(busy_[i].begin, window.begin),
                          std::min(busy_[i].end, window.end)};
    if (!clipped.empty()) out.push_back(clipped);
  }
  return out;
}

Duration IdleTimeline::idle_time(Segment window) const {
  return window.length() - busy_time(window);
}

Duration IdleTimeline::busy_time(Segment window) const {
  Duration sum = 0;
  for (const Segment& s : busy_in(window)) sum += s.length();
  return sum;
}

}  // namespace pobp
