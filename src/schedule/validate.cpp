#include "pobp/schedule/validate.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace pobp {
namespace {

std::string describe(JobId id, const Job& j) {
  std::ostringstream os;
  os << "job#" << id << " ⟨r=" << j.release << ", d=" << j.deadline
     << ", p=" << j.length << ", val=" << j.value << "⟩";
  return os.str();
}

}  // namespace

ValidationResult validate_machine(const JobSet& jobs,
                                  const MachineSchedule& ms, std::size_t k) {
  for (const Assignment& a : ms.assignments()) {
    if (a.job >= jobs.size()) {
      return ValidationResult::failure("assignment references unknown job id");
    }
    const Job& job = jobs[a.job];
    if (a.segments.empty()) {
      return ValidationResult::failure(describe(a.job, job) +
                                       ": empty segment list");
    }
    if (!is_sorted_disjoint(a.segments)) {
      return ValidationResult::failure(
          describe(a.job, job) + ": segments not sorted/disjoint/non-empty");
    }
    for (const Segment& s : a.segments) {
      if (s.begin < job.release || s.end > job.deadline) {
        std::ostringstream os;
        os << describe(a.job, job) << ": segment [" << s.begin << ", " << s.end
           << ") outside the job window";
        return ValidationResult::failure(os.str());
      }
    }
    if (total_length(a.segments) != job.length) {
      std::ostringstream os;
      os << describe(a.job, job) << ": scheduled "
         << total_length(a.segments) << " units, expected " << job.length;
      return ValidationResult::failure(os.str());
    }
    if (k != kUnboundedPreemptions && a.preemptions() > k) {
      std::ostringstream os;
      os << describe(a.job, job) << ": " << a.preemptions()
         << " preemptions exceed the bound k=" << k;
      return ValidationResult::failure(os.str());
    }
  }

  // Machine exclusivity: at most one job executing at any moment.
  const auto timeline = ms.timeline();
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    if (timeline[i - 1].segment.end > timeline[i].segment.begin) {
      std::ostringstream os;
      os << "machine conflict: job#" << timeline[i - 1].job << " ["
         << timeline[i - 1].segment.begin << ", "
         << timeline[i - 1].segment.end << ") overlaps job#"
         << timeline[i].job << " [" << timeline[i].segment.begin << ", "
         << timeline[i].segment.end << ")";
      return ValidationResult::failure(os.str());
    }
  }
  return {};
}

ValidationResult validate(const JobSet& jobs, const Schedule& schedule,
                          std::size_t k) {
  std::unordered_set<JobId> seen;
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    ValidationResult r = validate_machine(jobs, schedule.machine(m), k);
    if (!r) {
      r.error = "machine " + std::to_string(m) + ": " + r.error;
      return r;
    }
    for (const Assignment& a : schedule.machine(m).assignments()) {
      if (!seen.insert(a.job).second) {
        return ValidationResult::failure(
            "job#" + std::to_string(a.job) +
            " scheduled on more than one machine (migration forbidden)");
      }
    }
  }
  return {};
}

}  // namespace pobp
