#include "pobp/schedule/validate.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "pobp/diag/registry.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/radix.hpp"
#include "pobp/util/simd.hpp"

namespace pobp {
namespace {

namespace rules = diag::rules;

std::string describe(JobId id, const Job& j) {
  std::ostringstream os;
  os << "job#" << id << " ⟨r=" << j.release << ", d=" << j.deadline
     << ", p=" << j.length << ", val=" << j.value << "⟩";
  return os.str();
}

diag::Location job_loc(std::optional<std::size_t> machine, JobId job) {
  diag::Location loc;
  loc.machine = machine;
  loc.job = job;
  return loc;
}

diag::Location segment_loc(std::optional<std::size_t> machine, JobId job,
                           std::size_t index, const Segment& s) {
  diag::Location loc = job_loc(machine, job);
  loc.segment = index;
  loc.begin = s.begin;
  loc.end = s.end;
  return loc;
}

/// Cross-job machine exclusivity over an explicit timeline (POBP-SCHED-008).
/// Reports every adjacent overlapping pair.
void diagnose_exclusivity(
    const std::vector<MachineSchedule::TaggedSegment>& timeline,
    diag::Report& report, std::optional<std::size_t> machine) {
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    const auto& prev = timeline[i - 1];
    const auto& cur = timeline[i];
    if (prev.segment.end <= cur.segment.begin) continue;
    std::ostringstream os;
    os << "machine conflict: job#" << prev.job << " [" << prev.segment.begin
       << ", " << prev.segment.end << ") overlaps job#" << cur.job << " ["
       << cur.segment.begin << ", " << cur.segment.end << ")";
    diag::Location loc;
    loc.machine = machine;
    loc.job = cur.job;
    loc.begin = cur.segment.begin;
    loc.end = std::min(prev.segment.end, cur.segment.end);
    report.add(std::string(rules::kSchedMachineConflict), os.str(), loc)
        .with("other_job", static_cast<std::int64_t>(prev.job));
  }
}

}  // namespace

void diagnose_assignment(const JobSet& jobs, const Assignment& a,
                         std::size_t k, diag::Report& report,
                         std::optional<std::size_t> machine) {
  if (a.job >= jobs.size()) {
    report
        .add(std::string(rules::kSchedUnknownJob),
             "assignment references unknown job id",
             job_loc(machine, a.job))
        .with("job_count", jobs.size());
    return;  // nothing else is checkable without the job's parameters
  }
  const Job& job = jobs[a.job];
  if (a.segments.empty()) {
    report.add(std::string(rules::kSchedEmptyAssignment),
               describe(a.job, job) + ": empty segment list",
               job_loc(machine, a.job));
    return;
  }

  // Per-segment rules: positive length (POBP-SCHED-003) and window
  // containment (POBP-SCHED-005).  Empty segments are excluded from the
  // ordering check below so one defect does not masquerade as another.
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const Segment& s = a.segments[i];
    if (s.empty()) {
      std::ostringstream os;
      os << describe(a.job, job) << ": segment [" << s.begin << ", " << s.end
         << ") is empty (begin >= end)";
      report.add(std::string(rules::kSchedEmptySegment), os.str(),
                 segment_loc(machine, a.job, i, s));
    }
    if (s.begin < job.release || s.end > job.deadline) {
      std::ostringstream os;
      os << describe(a.job, job) << ": segment [" << s.begin << ", " << s.end
         << ") outside the job window";
      report
          .add(std::string(rules::kSchedWindowEscape), os.str(),
               segment_loc(machine, a.job, i, s))
          .with("release", job.release)
          .with("deadline", job.deadline);
    }
  }

  // Sortedness / intra-job disjointness over the non-empty segments
  // (POBP-SCHED-004), one finding per offending adjacent pair.
  std::size_t prev = a.segments.size();
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    if (a.segments[i].empty()) continue;
    if (prev != a.segments.size() &&
        a.segments[prev].end > a.segments[i].begin) {
      std::ostringstream os;
      os << describe(a.job, job) << ": segment [" << a.segments[i].begin
         << ", " << a.segments[i].end << ") not sorted/disjoint with ["
         << a.segments[prev].begin << ", " << a.segments[prev].end << ")";
      report.add(std::string(rules::kSchedUnsortedSegments), os.str(),
                 segment_loc(machine, a.job, i, a.segments[i]));
    }
    prev = i;
  }

  if (total_length(a.segments) != job.length) {
    std::ostringstream os;
    os << describe(a.job, job) << ": scheduled " << total_length(a.segments)
       << " units, expected " << job.length;
    report
        .add(std::string(rules::kSchedLengthMismatch), os.str(),
             job_loc(machine, a.job))
        .with("scheduled", total_length(a.segments))
        .with("expected", job.length);
  }
  // Preemptions are counted over the non-empty segments only: an empty
  // segment is already reported by POBP-SCHED-003 and carries no work, so
  // it should not also read as a preemption.
  const std::size_t real_segments = static_cast<std::size_t>(
      std::count_if(a.segments.begin(), a.segments.end(),
                    [](const Segment& s) { return !s.empty(); }));
  const std::size_t preemptions = real_segments == 0 ? 0 : real_segments - 1;
  if (k != kUnboundedPreemptions && preemptions > k) {
    std::ostringstream os;
    os << describe(a.job, job) << ": " << preemptions
       << " preemptions exceed the bound k=" << k;
    report
        .add(std::string(rules::kSchedPreemptionBudget), os.str(),
             job_loc(machine, a.job))
        .with("preemptions", preemptions)
        .with("k", k);
  }
}

void diagnose_assignments(const JobSet& jobs,
                          std::span<const Assignment> assignments,
                          std::size_t k, diag::Report& report,
                          std::optional<std::size_t> machine) {
  for (const Assignment& a : assignments) {
    diagnose_assignment(jobs, a, k, report, machine);
  }
  // Machine exclusivity over all non-empty segments, sorted by begin.
  std::vector<MachineSchedule::TaggedSegment> timeline;
  for (const Assignment& a : assignments) {
    for (const Segment& s : a.segments) {
      if (!s.empty()) timeline.push_back({s, a.job});
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const MachineSchedule::TaggedSegment& a,
                      const MachineSchedule::TaggedSegment& b) {
                     return a.segment.begin < b.segment.begin;
                   });
  diagnose_exclusivity(timeline, report, machine);
}

void diagnose_machine(const JobSet& jobs, const MachineSchedule& ms,
                      std::size_t k, diag::Report& report,
                      std::optional<std::size_t> machine) {
  diagnose_assignments(jobs, ms.assignments(), k, report, machine);
}

namespace {

/// Non-migration bookkeeping shared by the normalized and raw paths.
class MigrationTracker {
 public:
  explicit MigrationTracker(diag::Report& report) : report_(&report) {}

  void see(JobId job, std::size_t machine) {
    const auto [it, inserted] = first_machine_.emplace(job, machine);
    if (inserted) return;
    diag::Location loc;
    loc.machine = machine;
    loc.job = job;
    report_
        ->add(std::string(rules::kSchedMigration),
              "job#" + std::to_string(job) +
                  " scheduled on more than one machine (migration forbidden)",
              loc)
        .with("first_machine", it->second);
  }

 private:
  diag::Report* report_;
  // Findings anchor on the deterministic scan order of the schedule,
  // never on bucket order.
  // POBP-SRC-010: membership/lookup only; iteration order never observed
  std::unordered_map<JobId, std::size_t> first_machine_;
};

}  // namespace

void diagnose_schedule(const JobSet& jobs, const Schedule& schedule,
                       std::size_t k, diag::Report& report) {
  MigrationTracker migration(report);
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    diagnose_machine(jobs, schedule.machine(m), k, report, m);
    for (const Assignment& a : schedule.machine(m).assignments()) {
      migration.see(a.job, m);
    }
  }
}

void diagnose_raw_schedule(const JobSet& jobs,
                           std::span<const std::vector<Assignment>> machines,
                           std::size_t k, diag::Report& report) {
  MigrationTracker migration(report);
  for (std::size_t m = 0; m < machines.size(); ++m) {
    diagnose_assignments(jobs, machines[m], k, report, m);
    for (const Assignment& a : machines[m]) migration.see(a.job, m);
  }
}

namespace {

/// Segment lists shorter than this stay on the scalar path: the 4-lane
/// loop needs a one-segment scalar prologue and a ≤3-segment tail either
/// way, so tiny lists (the common k+1-segment pipeline output) would pay
/// vector setup for nothing.
constexpr std::size_t kSimdSegmentThreshold = 8;

static_assert(sizeof(Segment) == 2 * sizeof(Time),
              "Segment must be a bare (begin, end) pair for the lane loads");

/// Per-segment checks of one assignment (POBP-SCHED-003/004/005) plus the
/// scheduled-length sum, verdict only.  The vector loop checks four
/// segments per step: begins/ends deinterleave from the contiguous
/// Segment pairs, and the previous-end stream is the same data re-read at
/// a one-int64 offset.  The length sum is int64 and therefore free to
/// reassociate across lanes — verdicts and all outputs are identical to
/// the scalar loop.
bool segments_fast(const std::vector<Segment>& segs, Time release,
                   Time deadline, Duration expected_length) {
  const std::size_t n = segs.size();
  std::size_t i = 0;
  Duration scheduled = 0;
  Time prev_end = 0;
  bool have_prev = false;
  if (n >= kSimdSegmentThreshold) {
    // Scalar prologue: segment 0 has no predecessor to compare against.
    const Segment& first = segs[0];
    if (first.empty()) return false;              // POBP-SCHED-003
    if (first.begin < release || first.end > deadline) {
      return false;                               // POBP-SCHED-005
    }
    scheduled = first.length();
    const auto* flat = reinterpret_cast<const std::int64_t*>(segs.data());
    const simd::i64x4 vrel = simd::broadcast_i64(release);
    const simd::i64x4 vdl = simd::broadcast_i64(deadline);
    simd::i64x4 acc = simd::broadcast_i64(0);
    for (i = 1; i + simd::kLanes <= n; i += simd::kLanes) {
      simd::i64x4 begins, ends, prev_ends, next_begins;
      simd::load_pairs_i64(flat + 2 * i, begins, ends);
      simd::load_pairs_i64(flat + 2 * i - 1, prev_ends, next_begins);
      const simd::i64x4 bad = simd::or_i64(
          simd::or_i64(simd::cmp_le(ends, begins),       // POBP-SCHED-003
                       simd::cmp_lt(begins, vrel)),      // POBP-SCHED-005
          simd::or_i64(simd::cmp_gt(ends, vdl),          // POBP-SCHED-005
                       simd::cmp_gt(prev_ends, begins)));  // POBP-SCHED-004
      if (simd::any_true(bad)) return false;
      acc = simd::add_i64(acc, simd::sub_i64(ends, begins));
    }
    scheduled += simd::reduce_add_i64(acc);
    prev_end = segs[i - 1].end;
    have_prev = true;
  }
  for (; i < n; ++i) {
    const Segment& seg = segs[i];
    if (seg.empty()) return false;                // POBP-SCHED-003
    if (seg.begin < release || seg.end > deadline) {
      return false;                               // POBP-SCHED-005
    }
    if (have_prev && prev_end > seg.begin) return false;  // POBP-SCHED-004
    prev_end = seg.end;
    have_prev = true;
    scheduled += seg.length();
  }
  return scheduled == expected_length;            // POBP-SCHED-006
}

/// One machine's share of validate_fast: the same predicates
/// diagnose_machine checks, first failure wins.  Schedules reaching this
/// path are MachineSchedule-built (normalized), but nothing here assumes
/// it — the verdict matches the diagnostics engine either way.
bool validate_machine_fast(const JobSet& jobs, const MachineSchedule& ms,
                           std::size_t k, ValidateScratch& s) {
  for (const Assignment& a : ms.assignments()) {
    if (a.job >= jobs.size()) return false;       // POBP-SCHED-001
    const Job& job = jobs[a.job];
    if (a.segments.empty()) return false;         // POBP-SCHED-002
    if (!segments_fast(a.segments, job.release, job.deadline, job.length)) {
      return false;                               // POBP-SCHED-003..006
    }
    // All segments are non-empty past segments_fast.
    const std::size_t preemptions = a.segments.size() - 1;
    if (k != kUnboundedPreemptions && preemptions > k) {
      return false;                               // POBP-SCHED-007
    }
  }
  // Machine exclusivity (POBP-SCHED-008): with the timeline sorted by
  // begin, adjacent disjointness implies pairwise disjointness — and the
  // verdict is independent of the tie order among equal begins (two
  // non-empty segments with the same begin always overlap).  Fast path:
  // pack (begin, segment index) into one u64 per segment and sort the flat
  // key array instead of comparator-sorting 24-byte tagged records; begins
  // outside [0, 2^32) fall back to the tagged-timeline sweep.
  auto& keys = s.sweep_keys;
  auto& ends = s.sweep_end;
  keys.clear();
  ends.clear();
  bool packable = true;
  std::uint64_t max_begin = 0;
  for (const Assignment& a : ms.assignments()) {
    for (const Segment& seg : a.segments) {
      const auto begin = static_cast<std::uint64_t>(seg.begin);
      packable &= begin < (std::uint64_t{1} << 32);
      max_begin = std::max(max_begin, begin);
      keys.push_back((begin << 32) |
                     static_cast<std::uint32_t>(ends.size()));
      ends.push_back(seg.end);
    }
  }
  if (packable && ends.size() < (std::uint64_t{1} << 32)) {
    // Sort by the begin half only: the verdict does not depend on the tie
    // order among equal begins, so the index bits never need a pass.
    radix_sort_u64_bytes(keys, s.sweep_tmp, 32, max_begin);
    Time prev_end = std::numeric_limits<Time>::min();
    for (const std::uint64_t key : keys) {
      if (prev_end > static_cast<Time>(key >> 32)) return false;
      prev_end = ends[static_cast<std::uint32_t>(key)];
    }
    return true;
  }
  ms.timeline_into(s.timeline);
  for (std::size_t i = 1; i < s.timeline.size(); ++i) {
    if (s.timeline[i - 1].segment.end > s.timeline[i].segment.begin) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool validate_fast(const JobSet& jobs, const Schedule& schedule, std::size_t k,
                   ValidateScratch& scratch) {
  POBP_FAULT_POINT(kValidate);
  if (scratch.seen.size() < jobs.size()) scratch.seen.resize(jobs.size(), 0);
  scratch.touched.clear();
  bool ok = true;
  for (std::size_t m = 0; ok && m < schedule.machine_count(); ++m) {
    const MachineSchedule& ms = schedule.machine(m);
    if (!validate_machine_fast(jobs, ms, k, scratch)) {
      ok = false;
      break;
    }
    // Non-migration (POBP-SCHED-009); job ids are in range per the machine
    // check above.
    for (const Assignment& a : ms.assignments()) {
      if (scratch.seen[a.job] != 0) {
        ok = false;
        break;
      }
      scratch.seen[a.job] = 1;
      scratch.touched.push_back(a.job);
    }
  }
  for (const JobId id : scratch.touched) scratch.seen[id] = 0;
  return ok;
}

ValidationResult validate_machine(const JobSet& jobs,
                                  const MachineSchedule& ms, std::size_t k) {
  diag::Report report;
  diagnose_machine(jobs, ms, k, report);
  if (report.ok()) return {};
  return ValidationResult::failure(report.first_error());
}

ValidationResult validate(const JobSet& jobs, const Schedule& schedule,
                          std::size_t k) {
  POBP_FAULT_POINT(kValidate);
  diag::Report report;
  diagnose_schedule(jobs, schedule, k, report);
  if (report.ok()) return {};
  for (const diag::Diagnostic& d : report.diagnostics()) {
    if (d.severity != diag::Severity::kError) continue;
    // Historical format: machine-scoped failures carry a "machine N: "
    // prefix; the migration rule's message already names the job.
    if (d.where.machine && d.rule != rules::kSchedMigration) {
      return ValidationResult::failure(
          "machine " + std::to_string(*d.where.machine) + ": " + d.message);
    }
    return ValidationResult::failure(d.message);
  }
  return {};
}

}  // namespace pobp
