// Reference online policies for the simulator.
//
//  * EdfPolicy            — preemptive EDF, unlimited preemptions: the
//                           online analogue of the paper's k = ∞ baseline.
//  * NonPreemptivePolicy  — EDF admission but never preempts: k = 0.
//  * BudgetEdfPolicy(k)   — EDF that respects the paper's budget: a job is
//                           never driven past k preemptions (its completed
//                           jobs always validate with bound k), and a
//                           running job whose budget is exhausted becomes
//                           non-preemptible rather than being sacrificed.
//  * DensityBudgetPolicy(k, ratio) — budgeted, but preempts only when the
//                           newcomer's value density beats the running
//                           job's by `ratio`; an admission-control flavour.
//  * SrptBudgetPolicy(k)  — SRPT with the halving rule from the online
//                           bounded-preemption literature (Dürr, Jeż &
//                           Nguyen Thang): a challenger interrupts only if
//                           its remaining work is at most half the running
//                           job's, so each job suffers O(log P) preemptions
//                           and the k budget is spent geometrically.
//  * LaxityThresholdPolicy(k, alpha) — EDF admission, but a preemption is
//                           spent only on genuinely urgent work: the
//                           challenger's laxity must be below alpha × the
//                           running job's remaining time, i.e. waiting for
//                           the current job to finish would (nearly) kill
//                           the challenger's deadline.
#pragma once

#include <cstddef>

#include "pobp/sim/sim.hpp"

namespace pobp::sim {

class EdfPolicy final : public Policy {
 public:
  JobId select(const SimView& view) override;
  const char* name() const override { return "edf"; }
};

class NonPreemptivePolicy final : public Policy {
 public:
  JobId select(const SimView& view) override;
  const char* name() const override { return "nonpreemptive"; }
};

class BudgetEdfPolicy final : public Policy {
 public:
  explicit BudgetEdfPolicy(std::size_t k) : k_(k) {}
  JobId select(const SimView& view) override;
  const char* name() const override { return "budget-edf"; }
  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
};

class DensityBudgetPolicy final : public Policy {
 public:
  DensityBudgetPolicy(std::size_t k, double ratio) : k_(k), ratio_(ratio) {}
  JobId select(const SimView& view) override;
  const char* name() const override { return "density-budget"; }

 private:
  std::size_t k_;
  double ratio_;
};

class SrptBudgetPolicy final : public Policy {
 public:
  explicit SrptBudgetPolicy(std::size_t k) : k_(k) {}
  JobId select(const SimView& view) override;
  const char* name() const override { return "srpt-budget"; }
  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
};

class LaxityThresholdPolicy final : public Policy {
 public:
  LaxityThresholdPolicy(std::size_t k, double alpha)
      : k_(k), alpha_(alpha) {}
  JobId select(const SimView& view) override;
  const char* name() const override { return "laxity-threshold"; }

 private:
  std::size_t k_;
  double alpha_;
};

}  // namespace pobp::sim
