// Online single-machine scheduling simulator with context-switch costs.
//
// The paper's motivation (§1.2) is that "in a real-world setting,
// preemption comes with a certain price tag (e.g., the sequence of
// operations required for a context switch)".  This simulator makes that
// price executable: jobs arrive at their release times, a pluggable policy
// decides what runs, and every segment *dispatch* burns `dispatch_cost`
// ticks of machine time before useful work proceeds.  Completed-on-time
// jobs score their value; preempted-and-never-finished work is wasted.
//
// The simulator is event-driven and exact on integer ticks.  Its output is
// a standard MachineSchedule over the *completed* jobs (useful-work
// segments only), so the Def. 2.1 validator applies verbatim — including
// the preemption bound for budgeted policies.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "pobp/schedule/schedule.hpp"

namespace pobp::sim {

inline constexpr JobId kNoJob = UINT32_MAX;

/// What a policy is allowed to see when making a decision.
struct ReadyJob {
  JobId id = kNoJob;
  Duration remaining = 0;
  Time deadline = 0;
  Value value = 0;
  std::size_t segments_used = 0;  ///< segments started so far (0 = fresh)

  double density(const JobSet& jobs) const {
    return value / static_cast<double>(jobs[id].length);
  }
};

struct SimView {
  Time now = 0;
  JobId running = kNoJob;            ///< job currently on the machine
  std::vector<ReadyJob> ready;       ///< released, unfinished, still able to
                                     ///< finish by their deadline
  const JobSet* jobs = nullptr;
};

/// Scheduling policy: called at every event (release / completion / after a
/// drop); returns the job to occupy the machine from `view.now` on, or
/// kNoJob to idle until the next event.  Returning `view.running` continues
/// the current segment with no dispatch cost.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual JobId select(const SimView& view) = 0;
  virtual const char* name() const = 0;
};

struct SimConfig {
  /// Machine ticks consumed at the start of every segment (the context
  /// switch).  The dispatch is non-preemptible.
  Duration dispatch_cost = 0;
};

struct SimResult {
  MachineSchedule schedule;        ///< completed jobs, useful work only
  Value value = 0;                 ///< Σ val over completed jobs
  std::size_t completed = 0;
  std::size_t dropped = 0;         ///< released but never finished
  Duration useful_time = 0;        ///< ticks of work on completed jobs
  Duration wasted_time = 0;        ///< work on jobs that were later dropped
  Duration overhead_time = 0;      ///< ticks burned in dispatches
  std::size_t dispatches = 0;      ///< segments started (incl. wasted ones)
  std::size_t max_preemptions = 0; ///< over completed jobs
};

/// Runs the policy over the whole job set.  Deterministic.
SimResult simulate(const JobSet& jobs, Policy& policy,
                   const SimConfig& config = {});

}  // namespace pobp::sim
