#include "pobp/sim/policies.hpp"

#include <algorithm>

namespace pobp::sim {
namespace {

const ReadyJob* find(const SimView& view, JobId id) {
  for (const ReadyJob& r : view.ready) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

/// Earliest deadline (ties by id) over jobs passing `allowed`.
template <typename Predicate>
JobId edf_pick(const SimView& view, Predicate&& allowed) {
  JobId best = kNoJob;
  Time best_deadline = 0;
  for (const ReadyJob& r : view.ready) {
    if (!allowed(r)) continue;
    if (best == kNoJob || r.deadline < best_deadline ||
        (r.deadline == best_deadline && r.id < best)) {
      best = r.id;
      best_deadline = r.deadline;
    }
  }
  return best;
}

}  // namespace

JobId EdfPolicy::select(const SimView& view) {
  return edf_pick(view, [](const ReadyJob&) { return true; });
}

JobId NonPreemptivePolicy::select(const SimView& view) {
  // Never leave a loaded job; among fresh jobs, admit only those that have
  // not run yet (a preempted job would need a second segment).
  if (find(view, view.running) != nullptr) return view.running;
  return edf_pick(view,
                  [](const ReadyJob& r) { return r.segments_used == 0; });
}

JobId BudgetEdfPolicy::select(const SimView& view) {
  // A job with s segments can be resumed iff s < k+1; continuing the
  // running job never opens a segment.
  const auto resumable = [&](const ReadyJob& r) {
    return r.id == view.running || r.segments_used < k_ + 1;
  };
  const JobId pick = edf_pick(view, resumable);
  if (pick == view.running || view.running == kNoJob) return pick;

  // Preempting the running job parks it with s segments; if s = k+1 it
  // could never resume, so the running job finishes non-preemptibly.
  const ReadyJob* running = find(view, view.running);
  if (running != nullptr && running->segments_used >= k_ + 1) {
    return view.running;
  }
  return pick;
}

JobId DensityBudgetPolicy::select(const SimView& view) {
  const auto resumable = [&](const ReadyJob& r) {
    return r.id == view.running || r.segments_used < k_ + 1;
  };
  const ReadyJob* running = find(view, view.running);
  if (running == nullptr) return edf_pick(view, resumable);

  // Stay with the running job unless a resumable challenger has `ratio_`×
  // its density (and the running job could still be resumed afterwards).
  JobId challenger = kNoJob;
  double best_density = 0;
  for (const ReadyJob& r : view.ready) {
    if (r.id == view.running || !resumable(r)) continue;
    const double d = r.density(*view.jobs);
    if (challenger == kNoJob || d > best_density ||
        (d == best_density && r.id < challenger)) {
      challenger = r.id;
      best_density = d;
    }
  }
  if (challenger != kNoJob && running->segments_used < k_ + 1 &&
      best_density >= ratio_ * running->density(*view.jobs)) {
    return challenger;
  }
  return view.running;
}

}  // namespace pobp::sim
