#include "pobp/sim/policies.hpp"

#include <algorithm>

namespace pobp::sim {
namespace {

const ReadyJob* find(const SimView& view, JobId id) {
  for (const ReadyJob& r : view.ready) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

/// Earliest deadline (ties by id) over jobs passing `allowed`.
template <typename Predicate>
JobId edf_pick(const SimView& view, Predicate&& allowed) {
  JobId best = kNoJob;
  Time best_deadline = 0;
  for (const ReadyJob& r : view.ready) {
    if (!allowed(r)) continue;
    if (best == kNoJob || r.deadline < best_deadline ||
        (r.deadline == best_deadline && r.id < best)) {
      best = r.id;
      best_deadline = r.deadline;
    }
  }
  return best;
}

}  // namespace

JobId EdfPolicy::select(const SimView& view) {
  return edf_pick(view, [](const ReadyJob&) { return true; });
}

JobId NonPreemptivePolicy::select(const SimView& view) {
  // Never leave a loaded job; among fresh jobs, admit only those that have
  // not run yet (a preempted job would need a second segment).
  if (find(view, view.running) != nullptr) return view.running;
  return edf_pick(view,
                  [](const ReadyJob& r) { return r.segments_used == 0; });
}

JobId BudgetEdfPolicy::select(const SimView& view) {
  // A job with s segments can be resumed iff s < k+1; continuing the
  // running job never opens a segment.
  const auto resumable = [&](const ReadyJob& r) {
    return r.id == view.running || r.segments_used < k_ + 1;
  };
  const JobId pick = edf_pick(view, resumable);
  if (pick == view.running || view.running == kNoJob) return pick;

  // Preempting the running job parks it with s segments; if s = k+1 it
  // could never resume, so the running job finishes non-preemptibly.
  const ReadyJob* running = find(view, view.running);
  if (running != nullptr && running->segments_used >= k_ + 1) {
    return view.running;
  }
  return pick;
}

JobId SrptBudgetPolicy::select(const SimView& view) {
  const auto resumable = [&](const ReadyJob& r) {
    return r.id == view.running || r.segments_used < k_ + 1;
  };
  // Shortest remaining processing time (ties by id) over resumable jobs.
  JobId pick = kNoJob;
  Duration best_remaining = 0;
  for (const ReadyJob& r : view.ready) {
    if (!resumable(r)) continue;
    if (pick == kNoJob || r.remaining < best_remaining ||
        (r.remaining == best_remaining && r.id < pick)) {
      pick = r.id;
      best_remaining = r.remaining;
    }
  }
  if (pick == view.running || view.running == kNoJob) return pick;

  const ReadyJob* running = find(view, view.running);
  if (running == nullptr) return pick;
  // Budget exhausted: the running job finishes non-preemptibly.
  if (running->segments_used >= k_ + 1) return view.running;
  // Halving rule: interrupt only for a challenger at most half as long as
  // what is left of the running job.  Each job can then be preempted only
  // O(log P) times overall, so a budget of k is burnt on challengers that
  // shrink the frontier geometrically instead of on near-peers.
  if (pick != kNoJob && 2 * best_remaining <= running->remaining) {
    return pick;
  }
  return view.running;
}

JobId LaxityThresholdPolicy::select(const SimView& view) {
  const auto resumable = [&](const ReadyJob& r) {
    return r.id == view.running || r.segments_used < k_ + 1;
  };
  const JobId pick = edf_pick(view, resumable);
  if (pick == view.running || view.running == kNoJob) return pick;

  const ReadyJob* running = find(view, view.running);
  if (running == nullptr) return pick;
  if (running->segments_used >= k_ + 1) return view.running;

  // Spend a preemption only on urgent work: the challenger must be unable
  // to (comfortably) wait for the running job — its laxity has to be below
  // alpha × the running job's remaining time.
  const ReadyJob* challenger = find(view, pick);
  if (challenger != nullptr) {
    const double laxity = static_cast<double>(
        challenger->deadline - view.now - challenger->remaining);
    if (laxity < alpha_ * static_cast<double>(running->remaining)) {
      return pick;
    }
  }
  return view.running;
}

JobId DensityBudgetPolicy::select(const SimView& view) {
  const auto resumable = [&](const ReadyJob& r) {
    return r.id == view.running || r.segments_used < k_ + 1;
  };
  const ReadyJob* running = find(view, view.running);
  if (running == nullptr) return edf_pick(view, resumable);

  // Stay with the running job unless a resumable challenger has `ratio_`×
  // its density (and the running job could still be resumed afterwards).
  JobId challenger = kNoJob;
  double best_density = 0;
  for (const ReadyJob& r : view.ready) {
    if (r.id == view.running || !resumable(r)) continue;
    const double d = r.density(*view.jobs);
    if (challenger == kNoJob || d > best_density ||
        (d == best_density && r.id < challenger)) {
      challenger = r.id;
      best_density = d;
    }
  }
  if (challenger != kNoJob && running->segments_used < k_ + 1 &&
      best_density >= ratio_ * running->density(*view.jobs)) {
    return challenger;
  }
  return view.running;
}

}  // namespace pobp::sim
