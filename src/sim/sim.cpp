#include "pobp/sim/sim.hpp"

#include <algorithm>

#include "pobp/util/assert.hpp"

namespace pobp::sim {
namespace {

struct JobState {
  Duration remaining = 0;
  std::size_t segments_used = 0;
  std::vector<Segment> chunks;  // useful-work intervals, in time order
};

}  // namespace

SimResult simulate(const JobSet& jobs, Policy& policy,
                   const SimConfig& config) {
  SimResult result;
  if (jobs.empty()) return result;
  POBP_ASSERT(config.dispatch_cost >= 0);

  std::vector<JobId> by_release = all_ids(jobs);
  std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
    if (jobs[a].release != jobs[b].release) {
      return jobs[a].release < jobs[b].release;
    }
    return a < b;
  });

  std::vector<JobState> state(jobs.size());
  for (JobId id = 0; id < jobs.size(); ++id) {
    state[id].remaining = jobs[id].length;
  }

  std::size_t next_release = 0;
  Time now = jobs[by_release.front()].release;
  JobId running = kNoJob;

  auto build_view = [&](SimView& view) {
    view.now = now;
    view.running = running;
    view.jobs = &jobs;
    view.ready.clear();
    for (std::size_t i = 0; i < next_release; ++i) {
      const JobId id = by_release[i];
      const JobState& js = state[id];
      if (js.remaining == 0) continue;
      // Only jobs that could still finish if run non-stop from now (paying
      // the dispatch unless they are already loaded).
      const Duration dispatch = id == running ? 0 : config.dispatch_cost;
      if (now + dispatch + js.remaining > jobs[id].deadline) continue;
      view.ready.push_back(
          {id, js.remaining, jobs[id].deadline, jobs[id].value,
           js.segments_used});
    }
  };

  SimView view;
  while (true) {
    // Admit releases up to `now`.
    while (next_release < by_release.size() &&
           jobs[by_release[next_release]].release <= now) {
      ++next_release;
    }
    build_view(view);

    JobId pick = kNoJob;
    if (!view.ready.empty()) {
      pick = policy.select(view);
      if (pick != kNoJob) {
        const bool in_ready =
            std::any_of(view.ready.begin(), view.ready.end(),
                        [&](const ReadyJob& r) { return r.id == pick; });
        POBP_ASSERT_MSG(in_ready, "policy selected a job that is not ready");
      }
    }

    if (pick == kNoJob) {
      running = kNoJob;
      if (next_release >= by_release.size()) break;  // nothing left, ever
      now = jobs[by_release[next_release]].release;
      continue;
    }

    if (pick != running) {
      // Context switch: burn the dispatch, non-preemptibly.
      now += config.dispatch_cost;
      result.overhead_time += config.dispatch_cost;
      ++result.dispatches;
      ++state[pick].segments_used;
      running = pick;
    }

    // Run until completion or the next release, whichever is first.
    JobState& js = state[running];
    Time until = now + js.remaining;
    if (next_release < by_release.size()) {
      until = std::min(until, jobs[by_release[next_release]].release);
    }
    if (until > now) {
      auto& chunks = js.chunks;
      if (!chunks.empty() && chunks.back().end == now) {
        chunks.back().end = until;
      } else {
        chunks.push_back({now, until});
      }
      js.remaining -= until - now;
      now = until;
    }
    if (js.remaining == 0) {
      POBP_ASSERT_MSG(now <= jobs[running].deadline,
                      "ready filter admitted a job that missed its deadline");
      running = kNoJob;
    }
    // Loop: the policy decides again at this event.
  }

  // Account the outcome.
  std::size_t released = jobs.size();
  for (JobId id = 0; id < jobs.size(); ++id) {
    JobState& js = state[id];
    if (js.remaining == 0) {
      ++result.completed;
      result.value += jobs[id].value;
      result.useful_time += jobs[id].length;
      const std::size_t preemptions = js.segments_used - 1;
      result.max_preemptions = std::max(result.max_preemptions, preemptions);
      result.schedule.add(Assignment{id, std::move(js.chunks)});
    } else {
      result.wasted_time += jobs[id].length - js.remaining;
    }
  }
  result.dropped = released - result.completed;
  POBP_ASSERT(result.overhead_time ==
              config.dispatch_cost *
                  static_cast<Duration>(result.dispatches));
  return result;
}

}  // namespace pobp::sim
