// Exact OPT∞ via branch-and-bound over the interval feasibility condition.
#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "pobp/schedule/interval_condition.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"
#include "pobp/util/parallel.hpp"

namespace pobp {
namespace {

struct Shared {
  std::atomic<double> best_value{0.0};
  std::mutex members_mutex;
  std::vector<JobId> best_members;

  void offer(double value, std::span<const JobId> members) {
    double current = best_value.load(std::memory_order_relaxed);
    while (value > current && !best_value.compare_exchange_weak(
                                  current, value, std::memory_order_relaxed)) {
    }
    if (value > current) {
      std::lock_guard lock(members_mutex);
      // Re-check under the lock: another thread may have raced past us.
      if (value >= best_value.load(std::memory_order_relaxed)) {
        best_members.assign(members.begin(), members.end());
      }
    }
  }
};

struct Searcher {
  const JobSet* jobs;
  const std::vector<JobId>* order;
  const std::vector<Value>* suffix;  // suffix[i] = Σ value of order[i..)
  Shared* shared;
  FeasibilityOracle oracle;
  Value current = 0;

  void dfs(std::size_t i) {
    BudgetGuard::poll();  // one operation per explored B&B node
    if (current + (*suffix)[i] <=
        shared->best_value.load(std::memory_order_relaxed)) {
      return;  // even taking everything left cannot beat the incumbent
    }
    if (i == order->size()) {
      shared->offer(current, oracle.members());
      return;
    }
    const JobId id = (*order)[i];
    // Include first (value-ordered jobs make greedy-include a good
    // incumbent quickly).  Feasibility is monotone, so an infeasible
    // include prunes that whole branch.
    if (oracle.try_add(id)) {
      current += (*jobs)[id].value;
      dfs(i + 1);
      current -= (*jobs)[id].value;
      oracle.pop();
    }
    dfs(i + 1);
  }
};

}  // namespace

SubsetSolution opt_infinity(const JobSet& jobs,
                            std::span<const JobId> candidates) {
  SubsetSolution solution;
  if (candidates.empty()) return solution;

  std::vector<JobId> order(candidates.begin(), candidates.end());
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (jobs[a].value != jobs[b].value) return jobs[a].value > jobs[b].value;
    return a < b;
  });
  std::vector<Value> suffix(order.size() + 1, 0);
  for (std::size_t i = order.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1] + jobs[order[i]].value;
  }

  Shared shared;

  // Fan the first `split` include/exclude decisions out over the pool; each
  // task owns a private oracle primed with its prefix decisions.  The
  // caller's BudgetGuard (thread-local) is shared with every task, and no
  // exception may escape a pool task (the pool treats that as fatal): the
  // first failure is captured, the remaining tasks short-circuit, and the
  // failure is rethrown on the calling thread.
  BudgetGuard* const guard = BudgetGuard::active();
  std::atomic<bool> failed{false};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  const std::size_t split = std::min<std::size_t>(4, order.size());
  const std::size_t tasks = std::size_t{1} << split;
  parallel_for(0, tasks, [&](std::size_t mask) {
    if (failed.load(std::memory_order_relaxed)) return;
    const BudgetGuard::Scope budget_scope(guard);
    try {
      Searcher searcher{&jobs, &order, &suffix, &shared,
                        FeasibilityOracle(jobs), 0};
      for (std::size_t i = 0; i < split; ++i) {
        if (mask & (std::size_t{1} << i)) {
          if (!searcher.oracle.try_add(order[i])) return;  // prefix infeasible
          searcher.current += jobs[order[i]].value;
        }
      }
      searcher.dfs(split);
    } catch (...) {
      failed.store(true, std::memory_order_relaxed);
      std::lock_guard lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  });
  if (failure) std::rethrow_exception(failure);

  solution.value = shared.best_value.load(std::memory_order_relaxed);
  solution.members = std::move(shared.best_members);
  return solution;
}

}  // namespace pobp
