// Exact OPT_0 (non-preemptive, single machine) via bitmask DP.
//
// f[S] = the minimal completion time over feasible non-preemptive schedules
// of exactly the subset S; f[S] = min over the last job j ∈ S of
// max(f[S \ j], r_j) + p_j, subject to that completion meeting d_j.
// OPT_0 is the best-value S with f[S] finite.
#include <algorithm>
#include <limits>

#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {

SubsetSolution opt_zero(const JobSet& jobs, std::span<const JobId> candidates) {
  SubsetSolution solution;
  const std::size_t n = candidates.size();
  if (n == 0) return solution;
  POBP_ASSERT_MSG(n <= 22, "opt_zero bitmask DP supports at most 22 jobs");

  constexpr Time kInfeasible = std::numeric_limits<Time>::max();
  const std::size_t subsets = std::size_t{1} << n;
  std::vector<Time> completion(subsets, kInfeasible);
  // "Completed before any release": max(f, r_j) will lift it to r_j.
  completion[0] = std::numeric_limits<Time>::min() / 4;

  for (std::size_t s = 1; s < subsets; ++s) {
    for (std::size_t bit = 0; bit < n; ++bit) {
      if (!(s & (std::size_t{1} << bit))) continue;
      const Time prev = completion[s ^ (std::size_t{1} << bit)];
      if (prev == kInfeasible) continue;
      const Job& j = jobs[candidates[bit]];
      const Time done = std::max(prev, j.release) + j.length;
      if (done <= j.deadline) {
        completion[s] = std::min(completion[s], done);
      }
    }
  }

  std::size_t best_set = 0;
  Value best_value = 0;
  for (std::size_t s = 0; s < subsets; ++s) {
    if (completion[s] == kInfeasible) continue;
    Value value = 0;
    for (std::size_t bit = 0; bit < n; ++bit) {
      if (s & (std::size_t{1} << bit)) value += jobs[candidates[bit]].value;
    }
    if (value > best_value) {
      best_value = value;
      best_set = s;
    }
  }

  solution.value = best_value;
  for (std::size_t bit = 0; bit < n; ++bit) {
    if (best_set & (std::size_t{1} << bit)) {
      solution.members.push_back(candidates[bit]);
    }
  }
  return solution;
}

}  // namespace pobp
