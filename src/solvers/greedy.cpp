// Greedy ∞-preemptive heuristic (density order + EDF feasibility check).
#include <algorithm>

#include "pobp/schedule/edf.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"

namespace pobp {

MachineSchedule greedy_infinity(const JobSet& jobs,
                                std::span<const JobId> candidates) {
  std::vector<JobId> order(candidates.begin(), candidates.end());
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const double lhs = jobs[a].value * static_cast<double>(jobs[b].length);
    const double rhs = jobs[b].value * static_cast<double>(jobs[a].length);
    if (lhs != rhs) return lhs > rhs;
    return a < b;
  });

  std::vector<JobId> accepted;
  MachineSchedule best;
  for (const JobId id : order) {
    BudgetGuard::poll();
    accepted.push_back(id);
    if (auto schedule = edf_schedule(jobs, accepted)) {
      best = std::move(*schedule);
    } else {
      accepted.pop_back();
    }
  }
  return best;
}

Schedule greedy_infinity_multi(const JobSet& jobs,
                               std::span<const JobId> candidates,
                               std::size_t machine_count) {
  POBP_CHECK(machine_count >= 1);
  Schedule out(machine_count);
  std::vector<JobId> remaining(candidates.begin(), candidates.end());
  for (std::size_t m = 0; m < machine_count && !remaining.empty(); ++m) {
    out.machine(m) = greedy_infinity(jobs, remaining);
    std::erase_if(remaining,
                  [&](JobId id) { return out.machine(m).contains(id); });
  }
  return out;
}

}  // namespace pobp
