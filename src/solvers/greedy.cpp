// Greedy ∞-preemptive heuristic (density order + EDF feasibility check).
#include <algorithm>

#include "pobp/schedule/edf.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"
#include "pobp/util/budget.hpp"

namespace pobp {

namespace {

/// Columnar core: the caller owns the view's column storage, so the O(n)
/// SoA build is paid once per JobSet even though the trial-acceptance loop
/// probes O(n) candidate subsets.
void greedy_infinity_view_into(const JobSetView& jobs,
                               std::span<const JobId> candidates,
                               GreedyScratch& scratch, MachineSchedule& out) {
  auto& order = scratch.order;
  order.assign(candidates.begin(), candidates.end());
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const double lhs = jobs.value[a] * static_cast<double>(jobs.length[b]);
    const double rhs = jobs.value[b] * static_cast<double>(jobs.length[a]);
    if (lhs != rhs) return lhs > rhs;
    return a < b;
  });

  // Trial acceptance needs only feasibility; the schedule of the final
  // accepted set is the same EDF run either way, so one materialization at
  // the end replaces one per accepted candidate.
  auto& accepted = scratch.accepted;
  accepted.clear();
  for (const JobId id : order) {
    BudgetGuard::poll();
    accepted.push_back(id);
    if (!edf_feasible(jobs, accepted, scratch.edf)) accepted.pop_back();
  }
  if (accepted.empty()) {
    out.clear();
    return;
  }
  POBP_CHECK_MSG(edf_schedule_into(jobs, accepted, scratch.edf, out),
                 "greedy accepted set must be EDF-feasible");
}

}  // namespace

void greedy_infinity_into(const JobSet& jobs, std::span<const JobId> candidates,
                          GreedyScratch& scratch, MachineSchedule& out) {
  scratch.edf.columns.build(jobs);
  greedy_infinity_view_into(scratch.edf.columns.view(), candidates, scratch,
                            out);
}

MachineSchedule greedy_infinity(const JobSet& jobs,
                                std::span<const JobId> candidates,
                                GreedyScratch& scratch) {
  MachineSchedule out;
  greedy_infinity_into(jobs, candidates, scratch, out);
  return out;
}

MachineSchedule greedy_infinity(const JobSet& jobs,
                                std::span<const JobId> candidates) {
  GreedyScratch scratch;
  return greedy_infinity(jobs, candidates, scratch);
}

void greedy_infinity_multi_into(const JobSetView& jobs,
                                std::span<const JobId> candidates,
                                std::size_t machine_count,
                                GreedyScratch& scratch, Schedule& out) {
  POBP_CHECK(machine_count >= 1);
  out.reset(machine_count);
  auto& remaining = scratch.residual;
  remaining.assign(candidates.begin(), candidates.end());
  for (std::size_t m = 0; m < machine_count && !remaining.empty(); ++m) {
    greedy_infinity_view_into(jobs, remaining, scratch, out.machine(m));
    std::erase_if(remaining,
                  [&](JobId id) { return out.machine(m).contains(id); });
  }
}

void greedy_infinity_multi_into(const JobSet& jobs,
                                std::span<const JobId> candidates,
                                std::size_t machine_count,
                                GreedyScratch& scratch, Schedule& out) {
  scratch.edf.columns.build(jobs);  // once for all machines' residual passes
  greedy_infinity_multi_into(scratch.edf.columns.view(), candidates,
                             machine_count, scratch, out);
}

Schedule greedy_infinity_multi(const JobSet& jobs,
                               std::span<const JobId> candidates,
                               std::size_t machine_count,
                               GreedyScratch& scratch) {
  Schedule out(machine_count);
  greedy_infinity_multi_into(jobs, candidates, machine_count, scratch, out);
  return out;
}

Schedule greedy_infinity_multi(const JobSet& jobs,
                               std::span<const JobId> candidates,
                               std::size_t machine_count) {
  GreedyScratch scratch;
  return greedy_infinity_multi(jobs, candidates, machine_count, scratch);
}

}  // namespace pobp
