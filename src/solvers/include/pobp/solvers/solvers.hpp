// Ground-truth solvers.
//
// The paper's price is a ratio against OPT∞ (and, for §5, implicitly
// against OPT_0); these solvers provide the exact and heuristic reference
// values the tests and benches compare against.
//
//  * opt_infinity      — exact max-value ∞-preemptive subset on one machine,
//                        branch-and-bound over the interval feasibility
//                        condition (a subset is feasible iff every window
//                        [r, d] has enough room — see interval_condition.hpp).
//                        Exponential worst case; intended for n ≤ ~26.
//  * opt_zero          — exact max-value *non-preemptive* subset on one
//                        machine via bitmask DP over subsets (state: minimal
//                        completion time).  O(2^n · n); n ≤ 22.
//  * opt_k_slots       — exact max-value k-preemptive schedule for *tiny*
//                        integer-horizon instances by DP over unit time
//                        slots.  Exists purely as a cross-check oracle.
//  * greedy_infinity   — density-ordered greedy with an EDF feasibility
//                        check; a fast ∞-preemptive heuristic used to seed
//                        the pipeline on instances too large for B&B.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/schedule.hpp"

namespace pobp {

struct SubsetSolution {
  std::vector<JobId> members;
  Value value = 0;
};

/// Exact OPT∞(J) on one machine (B&B; the first two branching levels are
/// fanned out over the global thread pool).
SubsetSolution opt_infinity(const JobSet& jobs,
                            std::span<const JobId> candidates);

/// Exact OPT_0(J) on one machine (bitmask DP).
SubsetSolution opt_zero(const JobSet& jobs, std::span<const JobId> candidates);

/// Exact OPT_k by unit-slot DP.  Requires a small horizon; aborts when the
/// state space would exceed `max_states`.
std::optional<Value> opt_k_slots(const JobSet& jobs, std::size_t k,
                                 std::size_t max_states = 50'000'000);

/// Reusable buffers for the greedy seed.  Each candidate probe runs the
/// feasibility-only EDF simulator (edf_feasible) — only the final accepted
/// set is materialized as a schedule, which is identical because EDF is a
/// pure function of the job set.
struct GreedyScratch {
  std::vector<JobId> order;     ///< density-sorted consideration order
  std::vector<JobId> accepted;  ///< growing accepted set
  std::vector<JobId> residual;  ///< multi-machine leftover staging
  EdfScratch edf;
};

/// Greedy ∞-preemptive heuristic: jobs in descending density order, each
/// accepted iff the accepted set stays EDF-feasible.  Returns the EDF
/// schedule of the accepted set.
MachineSchedule greedy_infinity(const JobSet& jobs,
                                std::span<const JobId> candidates);

/// Scratch-reusing form (identical result).
MachineSchedule greedy_infinity(const JobSet& jobs,
                                std::span<const JobId> candidates,
                                GreedyScratch& scratch);

/// Multi-machine greedy: fills machine 0 with greedy_infinity, then machine
/// 1 with the residual, and so on.
Schedule greedy_infinity_multi(const JobSet& jobs,
                               std::span<const JobId> candidates,
                               std::size_t machine_count);

/// Scratch-reusing form (identical result).
Schedule greedy_infinity_multi(const JobSet& jobs,
                               std::span<const JobId> candidates,
                               std::size_t machine_count,
                               GreedyScratch& scratch);

/// Pooled forms: write into `out` (cleared/reset first, slot storage
/// recycled — zero heap allocations once scratch and `out` are warmed).
void greedy_infinity_into(const JobSet& jobs, std::span<const JobId> candidates,
                          GreedyScratch& scratch, MachineSchedule& out);
void greedy_infinity_multi_into(const JobSet& jobs,
                                std::span<const JobId> candidates,
                                std::size_t machine_count,
                                GreedyScratch& scratch, Schedule& out);

/// Columnar form (identical result): the caller owns the view's column
/// storage (SolveScratch builds it once per solve), so the O(n) SoA
/// rebuild the JobSet overload performs per call is skipped.
void greedy_infinity_multi_into(const JobSetView& jobs,
                                std::span<const JobId> candidates,
                                std::size_t machine_count,
                                GreedyScratch& scratch, Schedule& out);

}  // namespace pobp
