// Exact OPT_k for tiny instances by DP over unit time slots.
//
// State after slot t: per job its remaining length and how many segments it
// has used, plus which job ran in slot t−1 (running the same job again does
// not open a new segment).  This is exponential in every dimension and
// exists solely as a cross-check oracle for micro instances in the tests.
#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "pobp/solvers/solvers.hpp"
#include "pobp/util/assert.hpp"

namespace pobp {
namespace {

struct SlotDp {
  const JobSet* jobs;
  std::size_t k;
  Time begin;
  Time horizon;
  std::vector<unsigned> rem_bits;   // bits to encode remaining per job
  std::vector<unsigned> seg_bits;   // bits to encode segments-used per job
  // B&B memo keyed by packed state; value lookup only, so bucket order
  // cannot reach results.
  // POBP-SRC-010: memo value lookup only; iteration order never observed
  std::unordered_map<std::uint64_t, Value> memo;

  std::uint64_t pack(Time t, std::size_t last,
                     const std::vector<Duration>& rem,
                     const std::vector<std::size_t>& segs) const {
    std::uint64_t key = static_cast<std::uint64_t>(t - begin);
    key = key * (jobs->size() + 2) + last;
    for (std::size_t i = 0; i < jobs->size(); ++i) {
      key = (key << rem_bits[i]) | static_cast<std::uint64_t>(rem[i]);
      key = (key << seg_bits[i]) | static_cast<std::uint64_t>(segs[i]);
    }
    return key;
  }

  Value solve(Time t, std::size_t last, std::vector<Duration>& rem,
              std::vector<std::size_t>& segs) {
    if (t >= horizon) return 0;
    const std::uint64_t key = pack(t, last, rem, segs);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;

    // Option 1: idle this slot.
    Value best = solve(t + 1, jobs->size(), rem, segs);

    // Option 2: run job i in [t, t+1).
    for (std::size_t i = 0; i < jobs->size(); ++i) {
      const Job& j = (*jobs)[static_cast<JobId>(i)];
      if (rem[i] == 0 || j.release > t || j.deadline < t + 1) continue;
      const bool new_segment = last != i;
      if (new_segment && segs[i] >= k + 1) continue;  // preemption budget
      rem[i] -= 1;
      if (new_segment) segs[i] += 1;
      const Value gained = rem[i] == 0 ? j.value : 0;
      best = std::max(best, gained + solve(t + 1, i, rem, segs));
      if (new_segment) segs[i] -= 1;
      rem[i] += 1;
    }
    memo.emplace(key, best);
    return best;
  }
};

unsigned bits_for(std::uint64_t max_value) {
  unsigned bits = 1;
  while ((std::uint64_t{1} << bits) <= max_value) ++bits;
  return bits;
}

}  // namespace

std::optional<Value> opt_k_slots(const JobSet& jobs, std::size_t k,
                                 std::size_t max_states) {
  if (jobs.empty()) return Value{0};

  SlotDp dp;
  dp.jobs = &jobs;
  dp.k = k;
  dp.begin = jobs.earliest_release();
  dp.horizon = jobs.horizon();

  // Key-width and state-space guards.
  std::uint64_t states = static_cast<std::uint64_t>(dp.horizon - dp.begin) *
                         (jobs.size() + 2);
  unsigned total_bits = 0;
  for (const Job& j : jobs) {
    // A job with p units of work never opens more than p segments, so the
    // per-job segment counter is bounded by min(k+1, p).
    const std::uint64_t max_segs =
        std::min<std::uint64_t>(k + 1, static_cast<std::uint64_t>(j.length));
    dp.rem_bits.push_back(bits_for(static_cast<std::uint64_t>(j.length)));
    dp.seg_bits.push_back(bits_for(max_segs));
    total_bits += dp.rem_bits.back() + dp.seg_bits.back();
    const std::uint64_t per_job =
        static_cast<std::uint64_t>(j.length + 1) * (max_segs + 1);
    if (states > max_states / per_job) return std::nullopt;  // too big
    states *= per_job;
  }
  if (total_bits > 44 || states > max_states) return std::nullopt;

  std::vector<Duration> rem;
  std::vector<std::size_t> segs(jobs.size(), 0);
  for (const Job& j : jobs) rem.push_back(j.length);
  return dp.solve(dp.begin, jobs.size(), rem, segs);
}

}  // namespace pobp
