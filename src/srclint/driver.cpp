#include "pobp/srclint/driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace pobp::srclint {
namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".hh" ||
         ext == ".h";
}

std::string relative_to(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") {
    return file.generic_string();  // outside the root: scope by full path
  }
  return rel.generic_string();
}

/// Pulls every `"file": "..."` value out of a compile_commands.json.  The
/// format is machine-written by CMake (flat array of objects, plain
/// escapes), so targeted key scanning beats dragging in a JSON parser.
std::vector<std::string> compile_commands_files(const std::string& db_path) {
  std::ifstream in(db_path, std::ios::binary);
  if (!in) throw DriveError("cannot open compile_commands: " + db_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::vector<std::string> files;
  constexpr std::string_view kKey = "\"file\"";
  for (std::size_t pos = text.find(kKey); pos != std::string::npos;
       pos = text.find(kKey, pos + 1)) {
    std::size_t i = pos + kKey.size();
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == ':' || text[i] == '\t')) {
      ++i;
    }
    if (i >= text.size() || text[i] != '"') continue;
    ++i;
    std::string value;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;  // unescape
      value.push_back(text[i++]);
    }
    files.push_back(std::move(value));
  }
  return files;
}

}  // namespace

std::vector<SourceEntry> collect_sources(const DriveRequest& request) {
  const fs::path root =
      request.root.empty() ? fs::current_path() : fs::path(request.root);

  std::vector<SourceEntry> entries;
  const auto add_file = [&](const fs::path& file) {
    entries.push_back(
        {file.string(), relative_to(fs::absolute(file), fs::absolute(root))});
  };

  for (const std::string& raw : request.paths) {
    fs::path p(raw);
    if (p.is_relative()) p = root / p;
    if (fs::is_directory(p)) {
      if (!request.as_path.empty()) {
        throw DriveError("--as-path requires a single input file, got "
                         "directory " + raw);
      }
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable_extension(entry.path())) {
          add_file(entry.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      add_file(p);
    } else {
      throw DriveError("no such file or directory: " + raw);
    }
  }

  if (!request.compile_commands.empty()) {
    if (!request.as_path.empty()) {
      throw DriveError("--as-path cannot be combined with "
                       "--compile-commands");
    }
    for (const std::string& file : compile_commands_files(
             request.compile_commands)) {
      const fs::path p(file);
      std::error_code ec;
      if (fs::is_regular_file(p, ec) && lintable_extension(p)) add_file(p);
    }
  }

  if (!request.as_path.empty()) {
    if (entries.size() != 1) {
      throw DriveError("--as-path requires exactly one input file");
    }
    entries.front().rel_path = request.as_path;
  }

  std::sort(entries.begin(), entries.end(),
            [](const SourceEntry& a, const SourceEntry& b) {
              return a.rel_path < b.rel_path;
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const SourceEntry& a, const SourceEntry& b) {
                              return a.rel_path == b.rel_path;
                            }),
                entries.end());
  if (entries.empty()) throw DriveError("no sources to lint");
  return entries;
}

diag::Report run_lint(const DriveRequest& request) {
  diag::Report report;
  for (const SourceEntry& entry : collect_sources(request)) {
    lint_file(entry.fs_path, entry.rel_path, request.options, report);
  }
  return report;
}

}  // namespace pobp::srclint
