// Shared driver for `pobp_srclint` and `pobp lint-src`: collects the
// source set (directory walks, explicit files, and/or the translation
// units named by a CMake compile_commands.json), computes repo-relative
// paths for rule scoping, and runs the rule pass over every file into one
// diag::Report.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/srclint/rules.hpp"

namespace pobp::srclint {

struct DriveRequest {
  /// Files or directories (resolved against `root` when relative).
  /// Directories are walked recursively for .cpp/.cc/.hpp/.hh/.h files.
  std::vector<std::string> paths;

  /// Repo root: rule scoping classifies each file by its path relative to
  /// this directory.  Empty = current working directory.
  std::string root;

  /// When exactly one input *file* is given, lint it as if it lived at
  /// this repo-relative path (fixture tests exercise path-scoped rules
  /// this way).
  std::string as_path;

  /// Optional CMake compile_commands.json: every "file" entry under
  /// `root` joins the source set, so the lint pass covers exactly what
  /// the build compiles (headers still come from directory walks).
  std::string compile_commands;

  LintOptions options;
};

/// Thrown for unusable requests (missing path, --as-path with a
/// directory, unreadable compile_commands).
class DriveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The resolved (filesystem path, repo-relative path) source set, sorted
/// by relative path and deduplicated.
struct SourceEntry {
  std::string fs_path;
  std::string rel_path;
};
std::vector<SourceEntry> collect_sources(const DriveRequest& request);

/// collect_sources + lint_file over every entry.
diag::Report run_lint(const DriveRequest& request);

}  // namespace pobp::srclint
