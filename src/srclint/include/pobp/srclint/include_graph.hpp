// Module layering for POBP-SRC-005.
//
// Every file under src/<module>/ belongs to that module; tools/, bench/
// and examples/ form the application layer (allowed to include anything).
// The declared layer map mirrors the CMake link graph in
// src/*/CMakeLists.txt: a module may include "pobp/<dep>/..." only for
// deps below it.  The map is the single source of truth the linter
// enforces — an include that compiles today but crosses the map upward
// (schedule → engine, diag → solvers) is a latent cycle and a layering
// leak.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/srclint/scanner.hpp"

namespace pobp::srclint {

/// The module a repo-relative path belongs to: "util", "engine", ...;
/// "<app>" for tools/bench/examples/tests, "" when unclassifiable.  The
/// src/include/ umbrella header is the aggregate and reports "<app>".
std::string module_of(std::string_view rel_path);

/// Modules `module` may include (not counting itself); empty span with
/// `known == false` for unknown modules.
struct LayerInfo {
  std::string_view module;
  std::span<const std::string_view> allowed;
};

/// The declared layer map, bottom-up.
std::span<const LayerInfo> layer_map();

/// Emits POBP-SRC-005 findings for every `#include "pobp/<m>/..."` in
/// `file` that crosses the layer map.
void check_layering(const SourceFile& file, diag::Report& report);

}  // namespace pobp::srclint
