// The POBP-SRC-* rule pass: token/function/include checks over a scanned
// SourceFile, reporting through diag::Report (text/SARIF render for free).
//
// Rule catalogue (registered in pobp/diag/registry.cpp, rendered in
// docs/LINT.md):
//
//   POBP-SRC-001  naked new/delete/malloc-family outside the allocator
//                 modules (allocspy, arena)
//   POBP-SRC-002  allocation-capable calls inside `*_into` producers and
//                 `// POBP_NOALLOC`-marked functions
//   POBP-SRC-003  std::atomic ops without an explicit std::memory_order in
//                 the concurrency-bearing modules (engine, util, solvers)
//   POBP-SRC-004  nondeterminism in result-affecting modules: unseeded
//                 randomness, wall clocks, iteration over unordered
//                 containers
//   POBP-SRC-005  #include crossing the declared layer map
//                 (include_graph.hpp)
//   POBP-SRC-006  throw statements inside `try_*` fault-containment
//                 boundaries
//   POBP-SRC-007  blocking syscalls/primitives in the lock-free MPSC
//                 submission hot path (engine/submit)
//   POBP-SRC-008  sleep-backoff loops in src/engine/ without a visible
//                 bound (BudgetGuard poll/charge or an attempt cap) — an
//                 unbounded retry spins forever on a persistent fault
//
// Every rule is suppressible at a site with `// POBP-SRC-nnn: reason` on
// the finding's line or the line above.
#pragma once

#include <string>
#include <vector>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/srclint/scanner.hpp"

namespace pobp::srclint {

struct LintOptions {
  /// Restrict to these rule ids (e.g. {"POBP-SRC-003"}); empty = all.
  std::vector<std::string> rules;
};

/// Runs every (selected) POBP-SRC rule on one scanned file.
void lint_source(const SourceFile& file, const LintOptions& options,
                 diag::Report& report);

/// Convenience: scan_file + lint_source.
void lint_file(const std::string& fs_path, std::string rel_path,
               const LintOptions& options, diag::Report& report);

}  // namespace pobp::srclint
