// Lightweight C++ source scanner for the POBP-SRC-* rules.
//
// This is deliberately not a compiler front end: the source rules
// (docs/LINT.md) are token-shaped contracts — naked `new`, an atomic op
// without a `std::memory_order` argument, an `#include` crossing the layer
// map — so a single-pass tokenizer that understands comments, string/char
// literals (including raw strings), preprocessor include lines and brace
// nesting is exact enough, runs over the whole tree in milliseconds, and
// has no toolchain dependency (the container's clang-less builds still get
// a gating static stage).
//
// Besides tokens, the scanner extracts the three comment-borne channels the
// rules need:
//   * suppressions  — a trailing `// POBP-SRC-nnn: reason` disables that
//     rule on its own line; a standalone comment disables it there and on
//     the line below (the comment-above idiom, NOLINT vs NOLINTNEXTLINE);
//   * POBP_NOALLOC  — marks the next function definition as a hot-path
//     producer for POBP-SRC-002 (functions named `*_into` are implied);
//   * includes      — every #include with its line and quote form, feeding
//     the layer checker (include_graph.hpp).
//
// The srclint module layers on diag + util only (it is itself subject to
// POBP-SRC-005).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pobp::srclint {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords
  kNumber,
  kString,      ///< string literal (contents not preserved)
  kChar,        ///< character literal
  kPunct,       ///< one punctuation character
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;        ///< identifier/number spelling; punct character
  std::size_t line = 0;    ///< 1-based
  std::size_t column = 0;  ///< 1-based
};

struct IncludeDirective {
  std::string path;        ///< between the quotes/brackets
  bool angled = false;     ///< <...> vs "..."
  std::size_t line = 0;    ///< 1-based
};

/// One function definition found by the brace-matching pass: `name(...)
/// ... { ... }` at namespace/class scope.  `first_token`/`last_token` index
/// into SourceFile::tokens and bound the body (inclusive of the braces).
struct FunctionSpan {
  std::string name;
  std::size_t line = 0;          ///< line of the name token
  std::size_t first_token = 0;   ///< index of the opening `{`
  std::size_t last_token = 0;    ///< index of the closing `}`
  bool noalloc_marked = false;   ///< preceded by a POBP_NOALLOC marker
};

/// A scanned translation unit (or header).
struct SourceFile {
  std::string path;  ///< repo-relative path used for rule scoping
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<FunctionSpan> functions;

  /// line -> rule ids suppressed on that line (standalone suppression
  /// comments are already expanded to cover the following line too).
  std::map<std::size_t, std::set<std::string>> suppressions;

  /// Lines bearing a POBP_NOALLOC marker comment.
  std::set<std::size_t> noalloc_lines;

  /// True iff `rule` is suppressed at `line`.
  bool suppressed(std::string_view rule, std::size_t line) const;
};

/// Scans `content`, recording `path` as the repo-relative name used for
/// rule scoping.  Never throws on malformed input: the scanner is a
/// best-effort lexer and simply stops classifying at the end of the
/// buffer (unterminated literals swallow the rest of the file, which is
/// also what a compiler would reject).
SourceFile scan_source(std::string path, std::string_view content);

/// Reads `fs_path` from disk and scans it as `rel_path`.  Throws
/// std::runtime_error when the file cannot be read.
SourceFile scan_file(const std::string& fs_path, std::string rel_path);

}  // namespace pobp::srclint
