#include "pobp/srclint/include_graph.hpp"

#include <algorithm>

#include "pobp/diag/registry.hpp"

namespace pobp::srclint {
namespace {

// The declared layer map, bottom-up; mirrors target_link_libraries in
// src/*/CMakeLists.txt.  A module implicitly includes itself.  Keep this
// in sync with the CMake graph — the srclint fixture tests pin the
// contested edges (schedule ↛ engine, core ↛ engine, diag ↛ solvers).
constexpr std::string_view kDiagDeps[] = {"util"};
constexpr std::string_view kScheduleDeps[] = {"diag", "util"};
constexpr std::string_view kForestDeps[] = {"diag", "schedule", "util"};
constexpr std::string_view kBasDeps[] = {"diag", "forest", "schedule",
                                         "util"};
constexpr std::string_view kReductionDeps[] = {"bas", "diag", "forest",
                                               "schedule", "util"};
constexpr std::string_view kLsaDeps[] = {"diag", "schedule", "util"};
constexpr std::string_view kFlowDeps[] = {"diag", "schedule", "solvers",
                                          "util"};
constexpr std::string_view kIoDeps[] = {"diag", "forest", "schedule",
                                        "util"};
constexpr std::string_view kSimDeps[] = {"diag", "schedule", "util"};
constexpr std::string_view kSolversDeps[] = {"diag", "forest", "schedule",
                                             "util"};
constexpr std::string_view kGenDeps[] = {"diag", "forest", "schedule",
                                         "util"};
constexpr std::string_view kSrclintDeps[] = {"diag", "util"};
constexpr std::string_view kCoreDeps[] = {
    "bas",  "diag", "flow",    "forest", "io",
    "lsa",  "reduction", "schedule", "solvers", "util"};
constexpr std::string_view kEngineDeps[] = {
    "bas",  "core", "diag",      "flow",     "forest",  "io",
    "lsa",  "reduction", "schedule", "solvers", "util"};

constexpr LayerInfo kLayers[] = {
    {"util", {}},                {"diag", kDiagDeps},
    {"schedule", kScheduleDeps}, {"forest", kForestDeps},
    {"bas", kBasDeps},           {"reduction", kReductionDeps},
    {"lsa", kLsaDeps},           {"flow", kFlowDeps},
    {"io", kIoDeps},             {"sim", kSimDeps},
    {"solvers", kSolversDeps},   {"gen", kGenDeps},
    {"srclint", kSrclintDeps},   {"core", kCoreDeps},
    {"engine", kEngineDeps},
};

const LayerInfo* find_layer(std::string_view module) {
  for (const LayerInfo& layer : kLayers) {
    if (layer.module == module) return &layer;
  }
  return nullptr;
}

}  // namespace

std::string module_of(std::string_view rel_path) {
  // Normalize a leading "./".
  if (rel_path.rfind("./", 0) == 0) rel_path.remove_prefix(2);
  if (rel_path.rfind("src/", 0) == 0) {
    const std::string_view rest = rel_path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) return "<app>";  // src/include peer
    const std::string_view module = rest.substr(0, slash);
    if (module == "include") return "<app>";  // the pobp.hpp umbrella
    return std::string(module);
  }
  if (rel_path.rfind("tools/", 0) == 0 || rel_path.rfind("bench/", 0) == 0 ||
      rel_path.rfind("examples/", 0) == 0 ||
      rel_path.rfind("tests/", 0) == 0) {
    return "<app>";
  }
  return "";
}

std::span<const LayerInfo> layer_map() { return kLayers; }

void check_layering(const SourceFile& file, diag::Report& report) {
  const std::string module = module_of(file.path);
  if (module.empty() || module == "<app>") return;
  const LayerInfo* layer = find_layer(module);
  for (const IncludeDirective& inc : file.includes) {
    if (inc.angled || inc.path.rfind("pobp/", 0) != 0) continue;
    const std::string_view rest = std::string_view(inc.path).substr(5);
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) continue;  // pobp/pobp.hpp umbrella
    const std::string included(rest.substr(0, slash));
    if (included == module) continue;
    const bool allowed =
        layer != nullptr &&
        std::find(layer->allowed.begin(), layer->allowed.end(), included) !=
            layer->allowed.end();
    if (allowed) continue;
    if (file.suppressed(diag::rules::kSrcLayering, inc.line)) continue;
    report
        .add(std::string(diag::rules::kSrcLayering),
             "module '" + module + "' must not include 'pobp/" + included +
                 "/...' (declared layer map, see docs/LINT.md)",
             diag::Location::at(file.path, inc.line))
        .with("module", module)
        .with("included", included);
  }
}

}  // namespace pobp::srclint
