#include "pobp/srclint/rules.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "pobp/diag/registry.hpp"
#include "pobp/srclint/include_graph.hpp"

namespace pobp::srclint {
namespace {

namespace rules = diag::rules;

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_punct(const Token& t, char c) {
  return t.kind == TokenKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}
bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdentifier && t.text == name;
}

/// Emits one source-anchored finding unless suppressed at its line.
void emit(const SourceFile& file, diag::Report& report, std::string_view rule,
          std::size_t line, std::size_t column, std::string message) {
  if (file.suppressed(rule, line)) return;
  report.add(std::string(rule), std::move(message),
             diag::Location::at(file.path, line, column));
}

// --- SRC-001: naked allocation ----------------------------------------------

// Files that *implement* the allocation layer: the operator new/delete
// counting hooks and the arena placement machinery.
constexpr std::string_view kAllocAllowlist[] = {
    "src/util/allocspy.cpp",
    "src/util/include/pobp/util/arena.hpp",
};

constexpr std::string_view kMallocFamily[] = {
    "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc",
};

bool malloc_family(std::string_view name) {
  return std::find(std::begin(kMallocFamily), std::end(kMallocFamily),
                   name) != std::end(kMallocFamily);
}

/// True when tokens[i] is a `new`/`delete` *expression* (not `operator
/// new`, `= delete`, `new (std::nothrow)` counts, placement new counts).
bool is_alloc_expression(const std::vector<Token>& toks, std::size_t i) {
  const Token& t = toks[i];
  const bool kw_new = is_ident(t, "new");
  const bool kw_delete = is_ident(t, "delete");
  if (!kw_new && !kw_delete) return false;
  if (i > 0) {
    const Token& prev = toks[i - 1];
    if (is_ident(prev, "operator")) return false;  // declarations/hooks
    if (kw_delete && is_punct(prev, '=')) return false;  // deleted fn
  }
  if (kw_delete) {
    // `delete p` / `delete[] p`: next token must be an identifier, `[`,
    // `(` or `*` — anything else (`;`, `,`, `)`) is the deleted-function
    // grammar position.
    if (i + 1 >= toks.size()) return false;
    const Token& next = toks[i + 1];
    return next.kind == TokenKind::kIdentifier || is_punct(next, '[') ||
           is_punct(next, '(') || is_punct(next, '*');
  }
  return true;
}

void check_naked_alloc(const SourceFile& file, diag::Report& report) {
  for (const std::string_view allowed : kAllocAllowlist) {
    if (file.path == allowed) return;
  }
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_alloc_expression(toks, i)) {
      emit(file, report, rules::kSrcNakedAlloc, toks[i].line, toks[i].column,
           "naked `" + toks[i].text +
               "` — use containers, smart pointers or an arena "
               "(docs/PERF.md)");
      continue;
    }
    if (toks[i].kind == TokenKind::kIdentifier &&
        malloc_family(toks[i].text) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], '(')) {
      // A call (possibly std::-qualified); declarations like `void
      // free(void*)` would also match but do not occur outside the
      // allocator modules.
      emit(file, report, rules::kSrcNakedAlloc, toks[i].line, toks[i].column,
           "raw `" + toks[i].text + "()` call outside the allocator modules");
    }
  }
}

// --- SRC-002: allocation-capable calls on the hot path ----------------------

constexpr std::string_view kAllocCapable[] = {
    "malloc",      "calloc",      "realloc", "free",
    "strdup",      "make_unique", "make_shared",
};

bool hot_path_function(const FunctionSpan& fn) {
  return fn.noalloc_marked || ends_with(fn.name, "_into");
}

void check_hot_path_alloc(const SourceFile& file, diag::Report& report) {
  const std::vector<Token>& toks = file.tokens;
  for (const FunctionSpan& fn : file.functions) {
    if (!hot_path_function(fn)) continue;
    for (std::size_t i = fn.first_token; i <= fn.last_token && i < toks.size();
         ++i) {
      const Token& t = toks[i];
      bool hit = is_alloc_expression(toks, i);
      if (!hit && t.kind == TokenKind::kIdentifier && i + 1 < toks.size() &&
          is_punct(toks[i + 1], '(')) {
        hit = std::find(std::begin(kAllocCapable), std::end(kAllocCapable),
                        t.text) != std::end(kAllocCapable);
      }
      if (!hit) continue;
      emit(file, report, rules::kSrcHotPathAlloc, t.line, t.column,
           "allocation-capable `" + t.text + "` inside hot-path producer `" +
               fn.name + "` (" +
               (fn.noalloc_marked ? "POBP_NOALLOC-marked" : "*_into contract") +
               ", docs/PERF.md)");
    }
  }
}

// --- SRC-003: implicit seq_cst atomics --------------------------------------

constexpr std::string_view kAtomicScopes[] = {
    "src/engine/", "src/util/", "src/solvers/",
};

constexpr std::string_view kAtomicOps[] = {
    "load",          "store",     "exchange",  "fetch_add",
    "fetch_sub",     "fetch_and", "fetch_or",  "fetch_xor",
    "test_and_set",  "compare_exchange_weak",  "compare_exchange_strong",
};

void check_atomic_orders(const SourceFile& file, diag::Report& report) {
  if (std::none_of(std::begin(kAtomicScopes), std::end(kAtomicScopes),
                   [&](std::string_view scope) {
                     return starts_with(file.path, scope);
                   })) {
    return;
  }
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (std::find(std::begin(kAtomicOps), std::end(kAtomicOps),
                  toks[i].text) == std::end(kAtomicOps)) {
      continue;
    }
    // Member call: preceded by `.` or `->` (the `>` of `->`), followed
    // by `(`.
    const bool member = is_punct(toks[i - 1], '.') ||
                        (is_punct(toks[i - 1], '>') && i >= 2 &&
                         is_punct(toks[i - 2], '-'));
    if (!member || !is_punct(toks[i + 1], '(')) continue;
    // Scan the argument list for a memory_order token.
    std::size_t j = i + 1;
    int depth = 0;
    bool has_order = false;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], '(')) ++depth;
      if (is_punct(toks[j], ')') && --depth == 0) break;
      if (toks[j].kind == TokenKind::kIdentifier &&
          starts_with(toks[j].text, "memory_order")) {
        has_order = true;
      }
    }
    if (has_order) continue;
    emit(file, report, rules::kSrcImplicitMemoryOrder, toks[i].line,
         toks[i].column,
         "atomic `" + toks[i].text +
             "` without an explicit std::memory_order (implicit seq_cst "
             "hides the synchronization protocol)");
  }
}

// --- SRC-004: nondeterminism in result-affecting code -----------------------

constexpr std::string_view kDeterministicScopes[] = {
    "src/schedule/", "src/forest/",  "src/bas/",  "src/reduction/",
    "src/lsa/",      "src/flow/",    "src/solvers/", "src/core/",
    "src/engine/",   "src/sim/",     "src/gen/",
};

constexpr std::string_view kNondeterminismBans[] = {
    "rand", "srand", "drand48", "random_device", "system_clock",
};

void check_nondeterminism(const SourceFile& file, diag::Report& report) {
  if (std::none_of(std::begin(kDeterministicScopes),
                   std::end(kDeterministicScopes),
                   [&](std::string_view scope) {
                     return starts_with(file.path, scope);
                   })) {
    return;
  }
  const std::vector<Token>& toks = file.tokens;
  // Pass 1: banned identifiers, and names of variables declared with an
  // unordered container type (`unordered_map<...> name` after template
  // argument skipping).
  std::vector<std::string> unordered_vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (std::find(std::begin(kNondeterminismBans),
                  std::end(kNondeterminismBans),
                  t.text) != std::end(kNondeterminismBans)) {
      emit(file, report, rules::kSrcNondeterminism, t.line, t.column,
           "`" + t.text +
               "` in result-affecting code breaks the bit-determinism "
               "contract (docs/ENGINE.md); use a seeded pobp::Rng / "
               "steady_clock via the budget layer");
      continue;
    }
    if (t.text != "unordered_map" && t.text != "unordered_set" &&
        t.text != "unordered_multimap" && t.text != "unordered_multiset") {
      continue;
    }
    // Skip the template argument list and take the declared name.
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], '<')) {
      int angle = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], '<')) ++angle;
        if (is_punct(toks[j], '>') && --angle == 0) {
          ++j;
          break;
        }
      }
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      unordered_vars.push_back(toks[j].text);
    }
  }
  if (unordered_vars.empty()) return;
  // Pass 2: range-for whose range expression names an unordered variable —
  // iteration order feeds results.  `for ( ... : expr )`.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], '(')) continue;
    std::size_t j = i + 1;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], '(')) ++depth;
      if (is_punct(toks[j], ')') && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && colon == 0 && is_punct(toks[j], ':') &&
          !(j > 0 && is_punct(toks[j - 1], ':')) &&
          !(j + 1 < toks.size() && is_punct(toks[j + 1], ':'))) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (toks[k].kind == TokenKind::kIdentifier &&
          std::find(unordered_vars.begin(), unordered_vars.end(),
                    toks[k].text) != unordered_vars.end()) {
        emit(file, report, rules::kSrcNondeterminism, toks[k].line,
             toks[k].column,
             "iteration over unordered container `" + toks[k].text +
                 "` feeds results in hash-table order — not deterministic "
                 "across platforms (docs/ENGINE.md)");
        break;
      }
    }
  }
}

// --- SRC-006: throw inside try_* containment boundaries ---------------------

void check_containment_throw(const SourceFile& file, diag::Report& report) {
  const std::vector<Token>& toks = file.tokens;
  for (const FunctionSpan& fn : file.functions) {
    if (!starts_with(fn.name, "try_")) continue;
    for (std::size_t i = fn.first_token; i <= fn.last_token && i < toks.size();
         ++i) {
      if (!is_ident(toks[i], "throw")) continue;
      emit(file, report, rules::kSrcThrowInContainment, toks[i].line,
           toks[i].column,
           "`throw` inside containment boundary `" + fn.name +
               "` — convert to an Expected/diag::Report outcome "
               "(docs/ROBUSTNESS.md)");
    }
  }
}

// --- SRC-007: blocking calls in the submission hot path ---------------------

// The lock-free MPSC producer path: a blocking syscall or primitive here
// stalls every producer behind one descheduled thread.  Blocking
// backpressure (submit() waiting out a full queue) lives in serve.cpp,
// above the queue.
constexpr std::string_view kSubmitHotPath[] = {
    "src/engine/include/pobp/engine/submit.hpp",
    "src/engine/submit.cpp",
};

// Blocking when *called*: identifier followed by `(`.
constexpr std::string_view kBlockingCalls[] = {
    "accept",     "connect",  "epoll_wait", "fopen",       "fprintf",
    "fputs",      "fread",    "fwrite",     "getline",     "nanosleep",
    "open",       "poll",     "printf",     "puts",        "read",
    "recv",       "select",   "send",       "sleep",       "sleep_for",
    "sleep_until", "usleep",  "wait",       "wait_for",    "wait_until",
    "write",
};

// Blocking by *type*: any mention is a finding (owning one of these in the
// producer path implies lock-based synchronization).
constexpr std::string_view kBlockingTypes[] = {
    "barrier",
    "binary_semaphore",
    "condition_variable",
    "condition_variable_any",
    "counting_semaphore",
    "latch",
    "lock_guard",
    "mutex",
    "recursive_mutex",
    "scoped_lock",
    "shared_lock",
    "shared_mutex",
    "timed_mutex",
    "unique_lock",
};

void check_blocking_submit(const SourceFile& file, diag::Report& report) {
  if (std::none_of(std::begin(kSubmitHotPath), std::end(kSubmitHotPath),
                   [&](std::string_view path) { return file.path == path; })) {
    return;
  }
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (std::find(std::begin(kBlockingTypes), std::end(kBlockingTypes),
                  t.text) != std::end(kBlockingTypes)) {
      emit(file, report, rules::kSrcBlockingSubmit, t.line, t.column,
           "blocking primitive `" + t.text +
               "` in the submission hot path — the MPSC queue must stay "
               "lock-free; blocking backpressure belongs in StreamEngine "
               "(docs/SERVING.md)");
      continue;
    }
    if (i + 1 < toks.size() && is_punct(toks[i + 1], '(') &&
        std::find(std::begin(kBlockingCalls), std::end(kBlockingCalls),
                  t.text) != std::end(kBlockingCalls)) {
      emit(file, report, rules::kSrcBlockingSubmit, t.line, t.column,
           "blocking call `" + t.text +
               "()` in the submission hot path — a descheduled producer "
               "would stall every other submitter (docs/SERVING.md)");
    }
  }
}

// --- SRC-008: unbounded sleep-retry loops in the engine ---------------------

// A retry loop that sleeps between attempts must carry a visible bound:
// either the budget layer (BudgetGuard poll()/charge() raises past the
// deadline) or an attempt cap.  Without one, a persistent fault turns the
// loop into an infinite backoff spin that drain() can never finish.
constexpr std::string_view kEngineScope = "src/engine/";

// Sleeping when *called*: identifier followed by `(`.  Condition-variable
// waits are exempt — they park on a predicate, not a blind clock.
constexpr std::string_view kSleepCalls[] = {
    "nanosleep", "sleep", "sleep_for", "sleep_until", "usleep",
};

/// True when an identifier inside the loop span evidences a bound: a
/// BudgetGuard poll/charge or anything attempt/retry-shaped (`attempt`,
/// `attempts`, `max_attempts`, `max_retries`, `retries_left`, ...).
bool is_retry_bound_marker(std::string_view name) {
  if (name == "poll" || name == "charge") return true;
  return name.find("attempt") != std::string_view::npos ||
         name.find("retries") != std::string_view::npos;
}

/// Token index one past the matching close of the bracket at `open`
/// (`(`/`)` or `{`/`}`), or toks.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          char open_c, char close_c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], open_c)) ++depth;
    if (is_punct(toks[i], close_c) && --depth == 0) return i + 1;
  }
  return toks.size();
}

void check_unbounded_retry(const SourceFile& file, diag::Report& report) {
  if (!starts_with(file.path, kEngineScope)) return;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool is_for = is_ident(toks[i], "for");
    const bool is_while = is_ident(toks[i], "while");
    if (!is_for && !is_while) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], '(')) continue;
    // (`} while (...)` of a do-loop degenerates to an empty span here and
    // is skipped — the sleeping body was already scanned as plain tokens.)
    // Header `( ... )`, then either a `{ ... }` body or one statement.
    std::size_t body = skip_balanced(toks, i + 1, '(', ')');
    std::size_t end;
    if (body < toks.size() && is_punct(toks[body], '{')) {
      end = skip_balanced(toks, body, '{', '}');
    } else {
      end = body;
      while (end < toks.size() && !is_punct(toks[end], ';')) ++end;
    }
    // Does the loop body sleep?
    std::size_t sleep_at = 0;
    for (std::size_t j = body; j < end && j + 1 < toks.size(); ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          is_punct(toks[j + 1], '(') &&
          std::find(std::begin(kSleepCalls), std::end(kSleepCalls),
                    toks[j].text) != std::end(kSleepCalls)) {
        sleep_at = j;
        break;
      }
    }
    if (sleep_at == 0) continue;
    // Bounded?  A marker anywhere in the loop span (header included — the
    // induction variable of `for (attempt = 1; ...)` counts).
    bool bounded = false;
    for (std::size_t j = i; j < end && j < toks.size(); ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          is_retry_bound_marker(toks[j].text)) {
        bounded = true;
        break;
      }
    }
    if (bounded) continue;
    emit(file, report, rules::kSrcUnboundedRetry, toks[sleep_at].line,
         toks[sleep_at].column,
         "`" + toks[sleep_at].text +
             "()` retry loop with no visible bound — add a BudgetGuard "
             "poll()/charge() or an attempt cap so a persistent fault "
             "cannot spin forever (docs/ROBUSTNESS.md)");
  }
}

// --- SRC-009: raw ISA intrinsics outside the portable SIMD wrapper ----------

// The SIMD kernels' portability contract (docs/PERF.md): every explicit
// vector operation goes through pobp/util/simd.hpp, whose GCC/Clang
// vector-extension helpers compile on any target and fall back to scalar
// code elsewhere.  A raw ISA intrinsic anywhere else pins that file to one
// architecture and sidesteps the wrapper's bit-identity guarantees.
constexpr std::string_view kSimdWrapper =
    "src/util/include/pobp/util/simd.hpp";

/// True for identifiers shaped like raw ISA intrinsics: x86 `_mm*` calls,
/// `__m128`-family vector types, `__builtin_ia32_*` builtins, and NEON
/// `vld1q_s64`-style load/store names (v + ld/st + lane digit).
bool is_raw_intrinsic(std::string_view name) {
  if (starts_with(name, "_mm") || starts_with(name, "__builtin_ia32_")) {
    return true;
  }
  if (name.size() >= 4 && starts_with(name, "__m") &&
      name[3] >= '0' && name[3] <= '9') {
    return true;  // __m128i, __m256d, __m512 ...
  }
  return name.size() >= 4 &&
         (starts_with(name, "vld") || starts_with(name, "vst")) &&
         name[3] >= '0' && name[3] <= '9';
}

void check_raw_intrinsics(const SourceFile& file, diag::Report& report) {
  if (file.path == kSimdWrapper) return;  // the one place they may live
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kIdentifier || !is_raw_intrinsic(t.text)) {
      continue;
    }
    emit(file, report, rules::kSrcRawIntrinsics, t.line, t.column,
         "raw ISA intrinsic `" + t.text +
             "` — kernels must use the portable helpers in "
             "pobp/util/simd.hpp so every target keeps the scalar "
             "fallback and bit-identical results (docs/PERF.md)");
  }
}

// --- SRC-010: implementation-defined hashing on result paths ----------------

// std::hash (and hence the std::unordered_* containers' default hashing)
// is implementation-defined: the same key bytes land in different buckets
// across standard libraries and even library versions.  On the modules
// that produce or key results — the solve pipeline and the engine,
// including the content-addressed solve cache (docs/CACHE.md) — that is a
// cross-build determinism hazard, so default hashing is banned outright;
// the sanctioned alternatives are the flat open-addressing indexes
// (MachineSchedule's job index) and the fully specified mixers in
// engine/cache.cpp.  Pure membership tests whose iteration order is never
// observed may suppress per site.
constexpr std::string_view kResultPathScopes[] = {
    "src/bas/",    "src/core/",      "src/engine/", "src/forest/",
    "src/lsa/",    "src/reduction/", "src/schedule/",
    "src/solvers/",
};

constexpr std::string_view kUnorderedContainers[] = {
    "unordered_map", "unordered_multimap", "unordered_multiset",
    "unordered_set",
};

void check_default_hash(const SourceFile& file, diag::Report& report) {
  if (std::none_of(std::begin(kResultPathScopes),
                   std::end(kResultPathScopes),
                   [&](std::string_view scope) {
                     return starts_with(file.path, scope);
                   })) {
    return;
  }
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (std::find(std::begin(kUnorderedContainers),
                  std::end(kUnorderedContainers),
                  t.text) != std::end(kUnorderedContainers)) {
      emit(file, report, rules::kSrcDefaultHash, t.line, t.column,
           "`std::" + t.text +
               "` default hashing on a result path is "
               "implementation-defined — use a flat open-addressing index "
               "or the specified mixers in engine/cache.cpp "
               "(docs/CACHE.md)");
      continue;
    }
    // `std::hash` specifically: `hash` preceded by `std ::` and followed
    // by `<` (bare member functions or locals named `hash` are fine).
    if (t.text == "hash" && i >= 3 && i + 1 < toks.size() &&
        is_punct(toks[i + 1], '<') && is_punct(toks[i - 1], ':') &&
        is_punct(toks[i - 2], ':') && is_ident(toks[i - 3], "std")) {
      emit(file, report, rules::kSrcDefaultHash, t.line, t.column,
           "`std::hash` on a result path is implementation-defined and "
           "breaks cross-build determinism — use the specified mixers in "
           "engine/cache.cpp (docs/CACHE.md)");
    }
  }
}

}  // namespace

void lint_source(const SourceFile& file, const LintOptions& options,
                 diag::Report& report) {
  const auto enabled = [&](std::string_view rule) {
    return options.rules.empty() ||
           std::find(options.rules.begin(), options.rules.end(), rule) !=
               options.rules.end();
  };
  if (enabled(rules::kSrcNakedAlloc)) check_naked_alloc(file, report);
  if (enabled(rules::kSrcHotPathAlloc)) check_hot_path_alloc(file, report);
  if (enabled(rules::kSrcImplicitMemoryOrder)) {
    check_atomic_orders(file, report);
  }
  if (enabled(rules::kSrcNondeterminism)) check_nondeterminism(file, report);
  if (enabled(rules::kSrcLayering)) check_layering(file, report);
  if (enabled(rules::kSrcThrowInContainment)) {
    check_containment_throw(file, report);
  }
  if (enabled(rules::kSrcBlockingSubmit)) check_blocking_submit(file, report);
  if (enabled(rules::kSrcUnboundedRetry)) check_unbounded_retry(file, report);
  if (enabled(rules::kSrcRawIntrinsics)) check_raw_intrinsics(file, report);
  if (enabled(rules::kSrcDefaultHash)) check_default_hash(file, report);
}

void lint_file(const std::string& fs_path, std::string rel_path,
               const LintOptions& options, diag::Report& report) {
  const SourceFile file = scan_file(fs_path, std::move(rel_path));
  lint_source(file, options, report);
}

}  // namespace pobp::srclint
