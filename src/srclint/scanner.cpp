#include "pobp/srclint/scanner.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pobp::srclint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Extracts the comment-borne channels from one comment's text: every
/// `POBP-SRC-nnn` id and the POBP_NOALLOC marker.  A trailing comment
/// (code earlier on the same line) suppresses its own line only; a
/// standalone comment suppresses its line and the next (the
/// comment-above idiom) — mirroring NOLINT vs NOLINTNEXTLINE.
void harvest_comment(std::string_view text, std::size_t line, bool trailing,
                     SourceFile& out) {
  constexpr std::string_view kRulePrefix = "POBP-SRC-";
  for (std::size_t pos = text.find(kRulePrefix); pos != std::string_view::npos;
       pos = text.find(kRulePrefix, pos + 1)) {
    std::size_t digits = pos + kRulePrefix.size();
    std::size_t end = digits;
    while (end < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    if (end == digits) continue;  // "POBP-SRC-" with no number
    const std::string rule(text.substr(pos, end - pos));
    out.suppressions[line].insert(rule);
    if (!trailing) out.suppressions[line + 1].insert(rule);
  }
  if (text.find("POBP_NOALLOC") != std::string_view::npos) {
    out.noalloc_lines.insert(line);
  }
}

/// Cursor over the raw buffer tracking 1-based line/column.
struct Cursor {
  std::string_view src;
  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t column = 1;

  bool done() const { return i >= src.size(); }
  char peek(std::size_t ahead = 0) const {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  }
  void advance() {
    if (src[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++i;
  }
};

/// Skips a raw string literal R"delim(...)delim" (cursor on the opening
/// R).  Returns false if this is not actually a raw string prefix.
bool skip_raw_string(Cursor& c) {
  // R"delim( — delim is up to 16 chars, no parens/space.
  std::size_t j = c.i + 2;  // past R"
  std::string delim;
  while (j < c.src.size() && c.src[j] != '(' && delim.size() <= 16) {
    delim.push_back(c.src[j++]);
  }
  if (j >= c.src.size() || c.src[j] != '(') return false;
  const std::string close = ")" + delim + "\"";
  const std::size_t end = c.src.find(close, j + 1);
  const std::size_t stop =
      end == std::string_view::npos ? c.src.size() : end + close.size();
  while (c.i < stop) c.advance();
  return true;
}

/// Consumes a quoted literal (cursor on the opening quote), honouring
/// backslash escapes; unterminated literals run to end of line.
void skip_quoted(Cursor& c, char quote) {
  c.advance();  // opening quote
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\' && c.i + 1 < c.src.size()) {
      c.advance();
      c.advance();
      continue;
    }
    if (ch == quote || ch == '\n') {
      c.advance();
      return;
    }
    c.advance();
  }
}

/// Parses one `#include` directive starting at the `#` and records it.
/// Consumes to end of line either way.
void scan_preprocessor_line(Cursor& c, SourceFile& out) {
  const std::size_t line = c.line;
  std::ostringstream text;
  while (!c.done() && c.peek() != '\n') {
    // Line continuations keep the directive going.
    if (c.peek() == '\\' && c.peek(1) == '\n') {
      c.advance();
      c.advance();
      continue;
    }
    // Comments inside directives end the interesting part.
    if (c.peek() == '/' && (c.peek(1) == '/' || c.peek(1) == '*')) break;
    text << c.peek();
    c.advance();
  }
  const std::string directive = text.str();
  std::size_t pos = directive.find("include");
  if (pos == std::string::npos) return;
  pos += 7;
  while (pos < directive.size() &&
         std::isspace(static_cast<unsigned char>(directive[pos]))) {
    ++pos;
  }
  if (pos >= directive.size()) return;
  const char open = directive[pos];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (close == '\0') return;  // computed include — out of scope
  const std::size_t end = directive.find(close, pos + 1);
  if (end == std::string::npos) return;
  IncludeDirective inc;
  inc.path = directive.substr(pos + 1, end - pos - 1);
  inc.angled = open == '<';
  inc.line = line;
  out.includes.push_back(std::move(inc));
}

/// Post-pass over the token stream: find function definitions by the
/// `name ( ... ) [qualifiers] {` shape and record their body spans.
void find_functions(SourceFile& out) {
  const std::vector<Token>& toks = out.tokens;
  std::set<std::size_t> unclaimed_noalloc = out.noalloc_lines;
  const auto is_punct = [&](std::size_t i, char c) {
    return i < toks.size() && toks[i].kind == TokenKind::kPunct &&
           toks[i].text.size() == 1 && toks[i].text[0] == c;
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || !is_punct(i + 1, '(')) {
      continue;
    }
    // Control-flow keywords look like calls; skip them.
    const std::string& name = toks[i].text;
    if (name == "if" || name == "for" || name == "while" ||
        name == "switch" || name == "return" || name == "catch" ||
        name == "sizeof" || name == "alignof" || name == "decltype" ||
        name == "static_assert" || name == "noexcept" || name == "alignas") {
      continue;
    }
    // Match the parameter list.
    std::size_t j = i + 1;
    int depth = 0;
    while (j < toks.size()) {
      if (is_punct(j, '(')) ++depth;
      if (is_punct(j, ')') && --depth == 0) break;
      ++j;
    }
    if (j >= toks.size()) break;
    // Allow trailing qualifiers (const, noexcept(...), override, ->Type,
    // member initializers) between `)` and `{`; a `;`, `=` or `,` before
    // the `{` means declaration / lambda-assignment / initializer list of
    // something else, not this function's body.  Member-initializer lists
    // contain parenthesized/braced initializers, so track nesting.
    std::size_t k = j + 1;
    bool body = false;
    int nest = 0;
    std::size_t guard = 0;
    for (; k < toks.size() && guard < 64; ++k, ++guard) {
      if (is_punct(k, '(')) ++nest;
      else if (is_punct(k, ')')) --nest;
      else if (nest == 0 && is_punct(k, '{')) {
        body = true;
        break;
      } else if (nest == 0 && (is_punct(k, ';') || is_punct(k, '='))) {
        break;
      }
    }
    if (!body) continue;
    // Body span: match braces from k.
    std::size_t e = k;
    int braces = 0;
    while (e < toks.size()) {
      if (is_punct(e, '{')) ++braces;
      if (is_punct(e, '}') && --braces == 0) break;
      ++e;
    }
    if (e >= toks.size()) e = toks.size() - 1;
    FunctionSpan fn;
    fn.name = name;
    fn.line = toks[i].line;
    fn.first_token = k;
    fn.last_token = e;
    // A POBP_NOALLOC marker applies to the next function definition within
    // a few lines (marker comment directly above the signature).  Each
    // marker binds to one function: consume it so it cannot bleed onto a
    // later definition that happens to start nearby.
    for (std::size_t m = fn.line >= 4 ? fn.line - 4 : 0; m <= fn.line; ++m) {
      if (unclaimed_noalloc.erase(m) != 0) {
        fn.noalloc_marked = true;
        break;
      }
    }
    out.functions.push_back(std::move(fn));
    // Continue scanning *inside* the body too (nested lambdas are cheap to
    // re-find and local functions don't exist), so just move on.
  }
}

}  // namespace

bool SourceFile::suppressed(std::string_view rule, std::size_t line) const {
  const auto it = suppressions.find(line);
  return it != suppressions.end() &&
         it->second.count(std::string(rule)) != 0;
}

SourceFile scan_source(std::string path, std::string_view content) {
  SourceFile out;
  out.path = std::move(path);
  Cursor c{content};
  bool at_line_start = true;  // only whitespace seen so far on this line
  while (!c.done()) {
    const char ch = c.peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.advance();
      if (ch == '\n') at_line_start = true;
      continue;
    }
    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      const std::size_t line = c.line;
      const std::size_t start = c.i;
      while (!c.done() && c.peek() != '\n') c.advance();
      harvest_comment(content.substr(start, c.i - start), line,
                      /*trailing=*/!at_line_start, out);
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      const std::size_t line = c.line;
      const std::size_t start = c.i;
      c.advance();
      c.advance();
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.advance();
      if (!c.done()) {
        c.advance();
        c.advance();
      }
      // Multi-line block comments suppress at their *last* line (+1), like
      // a line comment sitting there; harvest per starting line is enough
      // for the single-line `/* POBP-SRC-nnn: x */` form.
      harvest_comment(content.substr(start, c.i - start), line,
                      /*trailing=*/!at_line_start, out);
      continue;
    }
    // Preprocessor directives (only at line start).  A comment after the
    // directive on the same line counts as trailing.
    if (ch == '#' && at_line_start) {
      at_line_start = false;
      scan_preprocessor_line(c, out);
      continue;
    }
    at_line_start = false;
    // Raw strings, then plain literals.
    if (ch == 'R' && c.peek(1) == '"') {
      if (skip_raw_string(c)) {
        out.tokens.push_back({TokenKind::kString, "", c.line, c.column});
        continue;
      }
    }
    if (ch == '"') {
      const std::size_t line = c.line, col = c.column;
      skip_quoted(c, '"');
      out.tokens.push_back({TokenKind::kString, "", line, col});
      continue;
    }
    if (ch == '\'') {
      // Digit separators (1'000'000) are not char literals: a quote
      // directly after a number token's digits continues the number.
      if (!out.tokens.empty() && out.tokens.back().kind == TokenKind::kNumber &&
          std::isdigit(static_cast<unsigned char>(c.peek(1)))) {
        c.advance();  // separator
        while (!c.done() && (ident_char(c.peek()) || c.peek() == '\'')) {
          c.advance();
        }
        continue;
      }
      const std::size_t line = c.line, col = c.column;
      skip_quoted(c, '\'');
      out.tokens.push_back({TokenKind::kChar, "", line, col});
      continue;
    }
    // Identifiers / keywords.
    if (ident_start(ch)) {
      const std::size_t line = c.line, col = c.column;
      std::string text;
      while (!c.done() && ident_char(c.peek())) {
        text.push_back(c.peek());
        c.advance();
      }
      // String-literal prefixes (u8"x", L"x", ...) — consume the literal.
      if (!c.done() && c.peek() == '"' &&
          (text == "u8" || text == "u" || text == "U" || text == "L")) {
        skip_quoted(c, '"');
        out.tokens.push_back({TokenKind::kString, "", line, col});
        continue;
      }
      out.tokens.push_back(
          {TokenKind::kIdentifier, std::move(text), line, col});
      continue;
    }
    // Numbers (good enough: leading digit, then ident chars, dots and
    // exponent signs; separators handled at the quote branch above).
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      const std::size_t line = c.line, col = c.column;
      std::string text;
      while (!c.done() &&
             (ident_char(c.peek()) || c.peek() == '.' ||
              ((c.peek() == '+' || c.peek() == '-') && !text.empty() &&
               (text.back() == 'e' || text.back() == 'E' ||
                text.back() == 'p' || text.back() == 'P')))) {
        text.push_back(c.peek());
        c.advance();
      }
      out.tokens.push_back({TokenKind::kNumber, std::move(text), line, col});
      continue;
    }
    // Punctuation, one char at a time (the rules only ever look at single
    // characters plus the `->` pair, matched as '-' then '>').
    out.tokens.push_back(
        {TokenKind::kPunct, std::string(1, ch), c.line, c.column});
    c.advance();
  }
  find_functions(out);
  return out;
}

SourceFile scan_file(const std::string& fs_path, std::string rel_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + fs_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  return scan_source(std::move(rel_path), content);
}

}  // namespace pobp::srclint
