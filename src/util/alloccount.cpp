#include "pobp/util/alloccount.hpp"

namespace pobp::alloccount {
namespace detail {

namespace {
thread_local Counters tls_counters;
bool hooks_enabled = false;
}  // namespace

Counters& counters() { return tls_counters; }
void set_enabled(bool on) { hooks_enabled = on; }

}  // namespace detail

bool enabled() { return detail::hooks_enabled; }
std::uint64_t allocations() { return detail::counters().allocations; }
std::uint64_t deallocations() { return detail::counters().deallocations; }
std::uint64_t bytes_allocated() { return detail::counters().bytes; }

}  // namespace pobp::alloccount
