// Global operator new/delete replacement feeding pobp::alloccount.
//
// Compiled into the separate pobp::allocspy static library so only opt-in
// binaries (benches, perf tests) replace the global allocator; calling
// alloccount::arm() from the binary forces the linker to keep this TU.
//
// POBP_ALLOC_COUNT=OFF (the sanitizer presets) compiles the hooks out
// entirely — ASan/TSan install their own allocator interceptors and we
// keep their new/delete type checking intact — and arm() reports false so
// tests downgrade their zero-alloc assertions to skipped.
#include <cstddef>
#include <cstdlib>
#include <new>

#include "pobp/util/alloccount.hpp"

#if POBP_ALLOC_COUNT

namespace {

void* counted_alloc(std::size_t size, std::size_t align) {
  auto& c = pobp::alloccount::detail::counters();
  ++c.allocations;
  c.bytes += size;
  void* p = align <= alignof(std::max_align_t)
                ? std::malloc(size)
                : std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  ++pobp::alloccount::detail::counters().deallocations;
  std::free(p);
}

struct HookArmer {
  HookArmer() { pobp::alloccount::detail::set_enabled(true); }
};
const HookArmer armer;

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace pobp::alloccount {
bool arm() { return true; }
}  // namespace pobp::alloccount

#else  // !POBP_ALLOC_COUNT

namespace pobp::alloccount {
bool arm() { return false; }
}  // namespace pobp::alloccount

#endif  // POBP_ALLOC_COUNT
