#include "pobp/util/budget.hpp"

namespace pobp {

thread_local BudgetGuard* BudgetGuard::current_ = nullptr;

}  // namespace pobp
