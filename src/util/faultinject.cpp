#include "pobp/util/faultinject.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace pobp::fault {
namespace {

// Armed triggers are process-wide.  arm()/disarm() happen between
// batches (the Engine arms before any worker starts and the workers are
// handed their work through the pool's queue, which orders the writes),
// so a release/acquire flag around a plain vector is sufficient for the
// readers in hit(); g_arm_mutex additionally serializes concurrent
// armers so two Engine constructions cannot race the swap itself.
util::Mutex g_arm_mutex;
std::vector<Trigger> g_triggers               // NOLINT(cert-err58-cpp)
    POBP_GUARDED_BY(g_arm_mutex);
std::atomic_bool g_armed{false};

thread_local std::size_t t_instance = kAnyInstance;
thread_local std::uint64_t t_counts[kSiteCount] = {};
thread_local std::size_t t_suppress_depth = 0;

Site parse_site(const std::string& token) {
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    if (token == site_name(static_cast<Site>(s))) {
      return static_cast<Site>(s);
    }
  }
  throw std::invalid_argument("fault spec: unknown site '" + token +
                              "' (want alloc|laminarize|tm_dp|left_merge|"
                              "validate)");
}

std::uint64_t parse_count(const std::string& token, const char* what) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(std::string("fault spec: bad ") + what +
                                " '" + token + "'");
  }
  return std::stoull(token);
}

Trigger parse_one(const std::string& item) {
  const std::size_t colon = item.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("fault spec: missing ':nth' in '" + item +
                                "' (grammar: site[@instance]:nth)");
  }
  std::string head = item.substr(0, colon);
  Trigger trigger;
  trigger.nth = parse_count(item.substr(colon + 1), "call count");
  if (trigger.nth == 0) {
    throw std::invalid_argument("fault spec: call count must be >= 1 in '" +
                                item + "'");
  }
  const std::size_t at = head.find('@');
  if (at != std::string::npos) {
    trigger.instance = static_cast<std::size_t>(
        parse_count(head.substr(at + 1), "instance index"));
    head.resize(at);
  }
  trigger.site = parse_site(head);
  return trigger;
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kAlloc: return "alloc";
    case Site::kLaminarize: return "laminarize";
    case Site::kTmDp: return "tm_dp";
    case Site::kLeftMerge: return "left_merge";
    case Site::kValidate: return "validate";
  }
  return "?";
}

std::vector<Trigger> parse_spec(const std::string& spec) {
  std::vector<Trigger> triggers;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    if (!item.empty()) triggers.push_back(parse_one(item));
    start = end + 1;
  }
  return triggers;
}

void arm(std::vector<Trigger> triggers) {
  util::MutexLock lock(g_arm_mutex);
  g_armed.store(false, std::memory_order_release);
  g_triggers = std::move(triggers);
  g_armed.store(!g_triggers.empty(), std::memory_order_release);
}

void disarm() { arm({}); }

bool armed() { return g_armed.load(std::memory_order_acquire); }

bool arm_from_env() {
  const char* spec = std::getenv("POBP_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') return false;
  arm(parse_spec(spec));
  return armed();
}

InstanceScope::InstanceScope(std::size_t index)
    : previous_instance_(t_instance) {
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    previous_counts_[s] = t_counts[s];
    t_counts[s] = 0;
  }
  t_instance = index;
}

InstanceScope::~InstanceScope() {
  t_instance = previous_instance_;
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    t_counts[s] = previous_counts_[s];
  }
}

SuppressScope::SuppressScope() { ++t_suppress_depth; }

SuppressScope::~SuppressScope() { --t_suppress_depth; }

void hit(Site site) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  if (t_suppress_depth > 0) return;
  const std::uint64_t count = ++t_counts[static_cast<std::size_t>(site)];
  for (const Trigger& trigger : g_triggers) {
    if (trigger.site != site) continue;
    if (trigger.instance != kAnyInstance && trigger.instance != t_instance) {
      continue;
    }
    if (trigger.nth != count) continue;
    if (site == Site::kAlloc) throw std::bad_alloc();
    throw FaultInjected(site);
  }
}

}  // namespace pobp::fault
