// Heap-allocation counting for the perf harness.
//
// The counters are defined in the always-built pobp_util library; the
// global operator new/delete hooks that feed them live in the separate
// pobp::allocspy static library (src/util/allocspy.cpp) so that only
// binaries that opt in — the benches and the perf tests — replace the
// global allocator.  A binary that links allocspy AND calls
// alloccount::arm() reports live counts; everywhere else enabled() is
// false and the counters read 0.
//
// Counts are per-thread (thread_local), which is exactly what the
// steady-state assertions need: "this solve, on this worker, performed N
// heap allocations".
#pragma once

#include <cstdint>

namespace pobp::alloccount {

/// Pulls the allocspy hooks into the binary (forces the linker to keep the
/// TU that defines operator new) and reports whether counting is live.
/// Returns false when the build disables the hooks (POBP_ALLOC_COUNT=OFF,
/// e.g. the sanitizer presets) or when allocspy is not linked.
bool arm();

/// True iff the global operator new/delete hooks are installed and
/// counting.  Meaningful after arm().
bool enabled();

/// Calling-thread totals since thread start.
std::uint64_t allocations();
std::uint64_t deallocations();
std::uint64_t bytes_allocated();

/// RAII delta counter: allocations performed on this thread in scope.
class Scope {
 public:
  // The qualification matters: unqualified allocations() here would find
  // the *member* Scope::allocations(), which reads start_allocs_ before it
  // is initialized.
  Scope()
      : start_allocs_(alloccount::allocations()),
        start_bytes_(alloccount::bytes_allocated()) {}

  std::uint64_t allocations() const {
    return alloccount::allocations() - start_allocs_;
  }
  std::uint64_t bytes() const {
    return alloccount::bytes_allocated() - start_bytes_;
  }

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

// Internal: incremented by the allocspy hooks.
namespace detail {
struct Counters {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t bytes = 0;
};
Counters& counters();
void set_enabled(bool on);
}  // namespace detail

}  // namespace pobp::alloccount
