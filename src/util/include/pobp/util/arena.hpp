// Monotonic arena for per-solve scratch storage.
//
// The engine's per-worker Session owns one SolveScratch whose transient
// POD buffers draw from this arena: allocate() bumps a cursor inside a
// chunk, reset() rewinds the cursor without releasing memory, so after the
// first solve at a given instance size the arena serves every later solve
// without touching the heap.  Chunks grow geometrically; release() returns
// everything to the heap (used by tests and by callers that want to shed
// memory after a burst of large instances).
//
// The arena is single-threaded by design — one per Session, like the rest
// of the scratch state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "pobp/util/assert.hpp"

namespace pobp {

class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t first_chunk_bytes = 4096)
      : first_chunk_bytes_(first_chunk_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocates `bytes` with the given alignment.  O(1) amortized; a
  /// fresh chunk is only carved when the current one is exhausted.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    POBP_DASSERT(align != 0 && (align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
    if (p + bytes > chunk_end_) {
      grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
    }
    cursor_ = p + bytes;
    used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Typed bump allocation of `count` default-uninitialized Ts (T must be
  /// trivially destructible — nothing is ever destroyed).
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every chunk for reuse.  After the warmup
  /// solve, reset() + re-allocation touches no allocator.
  void reset() {
    current_ = 0;
    used_ = 0;
    if (!chunks_.empty()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[0].data.get());
      chunk_end_ = cursor_ + chunks_[0].bytes;
    } else {
      cursor_ = chunk_end_ = 0;
    }
  }

  /// Returns all chunks to the heap.
  void release() {
    chunks_.clear();
    current_ = 0;
    used_ = 0;
    cursor_ = chunk_end_ = 0;
  }

  /// Bytes handed out since the last reset().
  std::size_t used() const { return used_; }

  /// Total bytes owned (high-water footprint across resets).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.bytes;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
  };

  void grow(std::size_t need) {
    // Advance into an already-owned chunk if one is big enough (possible
    // after reset()); otherwise append a geometrically larger chunk.
    while (current_ + 1 < chunks_.size()) {
      ++current_;
      if (chunks_[current_].bytes >= need) {
        cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[current_].data.get());
        chunk_end_ = cursor_ + chunks_[current_].bytes;
        return;
      }
    }
    std::size_t bytes = chunks_.empty() ? first_chunk_bytes_
                                        : chunks_.back().bytes * 2;
    while (bytes < need) bytes *= 2;
    chunks_.push_back({std::make_unique<std::byte[]>(bytes), bytes});
    current_ = chunks_.size() - 1;
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
    chunk_end_ = cursor_ + bytes;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t chunk_end_ = 0;
  std::size_t used_ = 0;
};

}  // namespace pobp
