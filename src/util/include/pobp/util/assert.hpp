// Runtime assertion macros used throughout the library.
//
// POBP_ASSERT is active in every build type (the algorithms here are
// correctness-critical reference implementations; the cost of the checks is
// negligible next to the O(n log n) work they guard).  POBP_DASSERT compiles
// away in NDEBUG builds and is used inside hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pobp::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pobp assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace pobp::detail

#define POBP_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::pobp::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                  \
  } while (0)

#define POBP_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::pobp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
// sizeof keeps the expression parsed (so variables used only in the assert
// don't trip -Wunused-variable under -Werror) without ever evaluating it.
#define POBP_DASSERT(expr) ((void)sizeof(!(expr)))
#else
#define POBP_DASSERT(expr) POBP_ASSERT(expr)
#endif
