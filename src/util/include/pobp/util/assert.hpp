// Runtime assertion macros used throughout the library.
//
// POBP_ASSERT is active in every build type (the algorithms here are
// correctness-critical reference implementations; the cost of the checks is
// negligible next to the O(n log n) work they guard).  POBP_DASSERT compiles
// away in NDEBUG builds and is used inside hot inner loops.
//
// POBP_CHECK / POBP_CHECK_MSG throw pobp::InternalError instead of
// aborting.  Use them for invariants that malformed *input* can reach —
// the serving layer (Session::solve) catches the exception at the
// instance boundary and converts it into a diag::Report, so one poisoned
// instance never takes down a batch.  POBP_ASSERT stays for states that
// are impossible regardless of input.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pobp {

/// A pipeline invariant failed while solving one instance.  Thrown by
/// POBP_CHECK; caught at the Session boundary (rule POBP-RUN-001).
class InternalError : public std::logic_error {
 public:
  InternalError(const char* expr, const char* file, int line, const char* msg)
      : std::logic_error(format(expr, file, line, msg)) {}

 private:
  static std::string format(const char* expr, const char* file, int line,
                            const char* msg) {
    std::string out = "pipeline invariant failed: ";
    out += expr;
    out += " at ";
    out += file;
    out += ':';
    out += std::to_string(line);
    if (msg && *msg) {
      out += " (";
      out += msg;
      out += ')';
    }
    return out;
  }
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pobp assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const char* msg) {
  throw InternalError(expr, file, line, msg);
}

}  // namespace detail
}  // namespace pobp

#define POBP_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::pobp::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                  \
  } while (0)

#define POBP_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::pobp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)

#define POBP_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::pobp::detail::check_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                 \
  } while (0)

#define POBP_CHECK_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::pobp::detail::check_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                              \
  } while (0)

#ifdef NDEBUG
// sizeof keeps the expression parsed (so variables used only in the assert
// don't trip -Wunused-variable under -Werror) without ever evaluating it.
#define POBP_DASSERT(expr) ((void)sizeof(!(expr)))
#else
#define POBP_DASSERT(expr) POBP_ASSERT(expr)
#endif
