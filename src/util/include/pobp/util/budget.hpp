// Cooperative solve budgets: a wall-clock deadline plus an operation
// budget, polled at pipeline loop heads.
//
// The pipeline functions keep their signatures: the caller installs a
// BudgetGuard for the current thread with BudgetGuard::Scope, and the
// loops call the static BudgetGuard::poll().  When no guard is installed
// poll() is a thread-local pointer test — cheap enough for every loop
// head; when one is installed it counts operations and checks the
// steady clock every ~1024 operations (and on the very first poll, so a
// deadline of 0 fires deterministically).
//
// Exhaustion throws DeadlineExceeded / BudgetExhausted (both
// BudgetError).  Session::solve catches them at the instance boundary
// and either degrades to the approximate path or reports POBP-RUN-002 /
// POBP-RUN-003 — see docs/ROBUSTNESS.md.
//
// A guard may be shared across threads (the B&B seed fans out over the
// global pool): the operation counter is atomic and the expiry flag is
// sticky, so every participating thread observes the same verdict.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace pobp {

/// Limits for one instance's solve.  Default-constructed = unlimited.
struct SolveBudget {
  /// Wall-clock deadline in seconds (0 = no deadline).
  double deadline_s = 0;

  /// Cooperative operation budget: roughly one operation per pipeline
  /// loop iteration / B&B node (0 = no limit).
  std::uint64_t max_ops = 0;

  [[nodiscard]] bool unlimited() const {
    return deadline_s <= 0 && max_ops == 0;
  }
};

class BudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class DeadlineExceeded : public BudgetError {
 public:
  DeadlineExceeded() : BudgetError("solve deadline exceeded") {}
};

class BudgetExhausted : public BudgetError {
 public:
  BudgetExhausted() : BudgetError("solve operation budget exhausted") {}
};

/// One instance's budget accounting.  Install with BudgetGuard::Scope;
/// the pipeline polls via the static BudgetGuard::poll().
class BudgetGuard {
 public:
  explicit BudgetGuard(const SolveBudget& budget)
      : max_ops_(budget.max_ops),
        deadline_((budget.deadline_s > 0)
                      ? Clock::now() + std::chrono::duration_cast<
                                           Clock::duration>(
                            std::chrono::duration<double>(budget.deadline_s))
                      : Clock::time_point::max()) {}

  BudgetGuard(const BudgetGuard&) = delete;
  BudgetGuard& operator=(const BudgetGuard&) = delete;

  /// Installs a guard as the current thread's active guard (restoring the
  /// previous one on destruction, so nested solves compose).  Passing
  /// nullptr uninstalls — used when handing work to another thread that
  /// should share the same guard via `adopt()`.
  class Scope {
   public:
    explicit Scope(BudgetGuard* guard) : previous_(current_) {
      current_ = guard;
    }
    ~Scope() { current_ = previous_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BudgetGuard* previous_;
  };

  /// The guard installed on the calling thread, if any.
  static BudgetGuard* active() { return current_; }

  /// Loop-head check: charges `ops` operations against the installed
  /// guard (no-op when none is installed).  Throws DeadlineExceeded /
  /// BudgetExhausted once the budget is gone; the verdict is sticky.
  static void poll(std::uint64_t ops = 1) {
    if (current_ != nullptr) current_->charge(ops);
  }

  /// Direct (non-thread-local) check, for code that captured the guard.
  void charge(std::uint64_t ops) {
    if (expired_.load(std::memory_order_relaxed)) raise();
    const std::uint64_t seen =
        ops_.fetch_add(ops, std::memory_order_relaxed) + ops;
    if (max_ops_ != 0 && seen > max_ops_) {
      deadline_hit_.store(false, std::memory_order_relaxed);
      expired_.store(true, std::memory_order_relaxed);
      raise();
    }
    // Check the clock on the first poll and then every ~1024 operations,
    // so a zero deadline fires deterministically and steady_clock::now()
    // stays off the hot path.
    if (seen >= next_clock_check_.load(std::memory_order_relaxed)) {
      next_clock_check_.store(seen + 1024, std::memory_order_relaxed);
      if (Clock::now() > deadline_) {
        deadline_hit_.store(true, std::memory_order_relaxed);
        expired_.store(true, std::memory_order_relaxed);
        raise();
      }
    }
  }

  [[nodiscard]] std::uint64_t ops() const {
    return ops_.load(std::memory_order_relaxed);
  }

  /// Seconds until the wall-clock deadline (negative once past it,
  /// +infinity when the budget has none).  The retry backoff clamps its
  /// sleeps to this so a retrying solve never dozes past the deadline.
  [[nodiscard]] double remaining_deadline_s() const {
    if (deadline_ == Clock::time_point::max()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }
  [[nodiscard]] bool expired() const {
    return expired_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  [[noreturn]] void raise() const {
    if (deadline_hit_.load(std::memory_order_relaxed)) {
      throw DeadlineExceeded();
    }
    throw BudgetExhausted();
  }

  const std::uint64_t max_ops_;
  const Clock::time_point deadline_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> next_clock_check_{0};
  std::atomic<bool> expired_{false};
  std::atomic<bool> deadline_hit_{false};

  static thread_local BudgetGuard* current_;
};

}  // namespace pobp
