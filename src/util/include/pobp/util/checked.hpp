// Overflow-checked 64-bit arithmetic.
//
// The paper's lower-bound constructions (Appendix B) use job lengths that
// form a geometric progression with ratio 3K^2; instantiating them with
// integer ticks can approach the int64 range, so every arithmetic step in
// the generators goes through these helpers.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "pobp/util/assert.hpp"

namespace pobp {

/// Addition that aborts on signed overflow.
constexpr std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  POBP_ASSERT_MSG(!__builtin_add_overflow(a, b, &out), "int64 add overflow");
  return out;
}

/// Subtraction that aborts on signed overflow.
constexpr std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  POBP_ASSERT_MSG(!__builtin_sub_overflow(a, b, &out), "int64 sub overflow");
  return out;
}

/// Multiplication that aborts on signed overflow.
constexpr std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  POBP_ASSERT_MSG(!__builtin_mul_overflow(a, b, &out), "int64 mul overflow");
  return out;
}

/// True iff a + b overflows int64 (non-aborting form for input screening).
constexpr bool add_overflows(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  return __builtin_add_overflow(a, b, &out);
}

/// True iff a - b overflows int64 (non-aborting form for input screening).
constexpr bool sub_overflows(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  return __builtin_sub_overflow(a, b, &out);
}

/// Checked double → tick conversion for untrusted numeric input: nullopt
/// unless v is finite, integral, and representable as int64.  (The naive
/// static_cast is UB for NaN/inf/out-of-range doubles.)
constexpr std::optional<std::int64_t> double_to_tick(double v) {
  // 2^63 is exactly representable as a double; int64 covers [-2^63, 2^63).
  constexpr double kLo = -9223372036854775808.0;
  constexpr double kHi = 9223372036854775808.0;
  if (!(v >= kLo && v < kHi)) return std::nullopt;  // also rejects NaN/inf
  const auto tick = static_cast<std::int64_t>(v);
  if (static_cast<double>(tick) != v) return std::nullopt;  // fractional
  return tick;
}

/// Integer power base^exp with overflow checking. Requires exp >= 0.
constexpr std::int64_t checked_pow(std::int64_t base, int exp) {
  POBP_ASSERT(exp >= 0);
  std::int64_t result = 1;
  for (int i = 0; i < exp; ++i) result = checked_mul(result, base);
  return result;
}

/// True iff base^exp fits in int64 (same loop as checked_pow, non-aborting).
constexpr bool pow_fits_int64(std::int64_t base, int exp) {
  std::int64_t result = 1;
  for (int i = 0; i < exp; ++i) {
    if (__builtin_mul_overflow(result, base, &result)) return false;
  }
  return true;
}

/// Exact integer division: aborts if b does not divide a.
constexpr std::int64_t exact_div(std::int64_t a, std::int64_t b) {
  POBP_ASSERT(b != 0);
  POBP_ASSERT_MSG(a % b == 0, "exact_div: not divisible");
  return a / b;
}

/// floor(log_base(x)) for x >= 1, base >= 2.
constexpr int floor_log(std::int64_t base, std::int64_t x) {
  POBP_ASSERT(base >= 2 && x >= 1);
  int l = 0;
  // Divide instead of multiply so the loop cannot overflow.
  while (x >= base) {
    x /= base;
    ++l;
  }
  return l;
}

}  // namespace pobp
