// Minimal expected<T, E> (the toolchain targets C++20, which predates
// std::expected).  Used by the option-checked solve entry points to return
// a diag::Report instead of throwing; only the operations those call sites
// need are provided.
#pragma once

#include <utility>
#include <variant>

#include "pobp/util/assert.hpp"

namespace pobp {

/// Error carrier for constructing a failed Expected:
///   return Unexpected{std::move(report)};
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// Either a value (success) or an error.  Accessing the wrong side is a
/// programming error (POBP_ASSERT), not UB.
template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> e)
      : storage_(std::in_place_index<1>, std::move(e.error)) {}

  [[nodiscard]] bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    POBP_ASSERT_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    POBP_ASSERT_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    POBP_ASSERT_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const E& error() const& {
    POBP_ASSERT_MSG(!has_value(), "Expected::error() on a value");
    return std::get<1>(storage_);
  }
  [[nodiscard]] E& error() & {
    POBP_ASSERT_MSG(!has_value(), "Expected::error() on a value");
    return std::get<1>(storage_);
  }
  [[nodiscard]] E&& error() && {
    POBP_ASSERT_MSG(!has_value(), "Expected::error() on a value");
    return std::get<1>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }
  [[nodiscard]] T value_or(T fallback) && {
    return has_value() ? std::get<0>(std::move(storage_))
                       : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace pobp
