// pobp::fault — deterministic fault injection for the serving layer.
//
// Named sites inside the pipeline call POBP_FAULT_POINT(site).  When a
// matching trigger is armed, the N-th execution of that site *within the
// current instance* throws (FaultInjected, or std::bad_alloc for the
// `alloc` site), exercising the Session's containment path.  Counters
// are thread-local and reset per instance by fault::InstanceScope, and
// triggers match on the instance index — so the set of faulting
// instances is identical for every worker count, which is what lets the
// fault-containment tests assert bit-determinism of the survivors.
//
// Trigger spec grammar (EngineOptions::fault_injection or the
// POBP_FAULT_INJECT env var), comma-separated:
//
//   site[@instance]:nth
//
//   laminarize:1          first laminarize call of *every* instance
//   tm_dp@7:2             second tm_dp call of instance 7 only
//   alloc@3:1,validate@5:1
//
// Sites: alloc, laminarize, tm_dp, left_merge, validate.
//
// Compile-time gating: unless POBP_FAULT_INJECTION is defined (the
// asan-ubsan preset turns it on), POBP_FAULT_POINT expands to nothing —
// zero overhead on the serving path.  The runtime (arm/parse) is always
// compiled so tools and tests can probe fault::compiled_in().
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pobp/util/thread_annotations.hpp"

namespace pobp::fault {

enum class Site : std::uint8_t {
  kAlloc = 0,
  kLaminarize,
  kTmDp,
  kLeftMerge,
  kValidate,
};
inline constexpr std::size_t kSiteCount = 5;

const char* site_name(Site site);

/// Thrown by a triggered fault point (except `alloc`, which throws
/// std::bad_alloc to exercise the allocation-failure containment path).
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(Site site)
      : std::runtime_error(std::string("injected fault at site ") +
                           site_name(site)),
        site_(site) {}
  [[nodiscard]] Site site() const { return site_; }

 private:
  Site site_;
};

inline constexpr std::size_t kAnyInstance = static_cast<std::size_t>(-1);

struct Trigger {
  Site site = Site::kAlloc;
  std::size_t instance = kAnyInstance;  ///< instance index, or any
  std::uint64_t nth = 1;                ///< 1-based call count within instance
};

/// Parses the comma-separated trigger spec; throws std::invalid_argument
/// with a descriptive message on malformed input.
std::vector<Trigger> parse_spec(const std::string& spec);

/// Replaces the armed trigger set (process-wide; call before solving).
void arm(std::vector<Trigger> triggers);
void disarm();
[[nodiscard]] bool armed();

/// Arms from the POBP_FAULT_INJECT environment variable if it is set.
/// Returns true when triggers were armed.
bool arm_from_env();

/// True when the library was built with POBP_FAULT_INJECTION, i.e. the
/// POBP_FAULT_POINT sites are live.  Tests skip themselves otherwise.
constexpr bool compiled_in() {
#ifdef POBP_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

/// RAII: enters instance `index` on the calling thread, zeroing the
/// per-site call counters so `nth` is counted per instance.  The Session
/// opens one scope per solve.
class InstanceScope {
 public:
  explicit InstanceScope(std::size_t index);
  ~InstanceScope();
  InstanceScope(const InstanceScope&) = delete;
  InstanceScope& operator=(const InstanceScope&) = delete;

 private:
  std::size_t previous_instance_;
  std::uint64_t previous_counts_[kSiteCount];
};

/// RAII: suppresses fault points on the calling thread while alive.
/// For harness/checker code — e.g. the `pobp chaos` differential checks
/// re-validating answers — that shares fault-instrumented routines with
/// the system under test but must not trip triggers aimed at it.
/// Nestable; covers only the calling thread.
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
};

/// Records one execution of `site` on this thread and throws if an armed
/// trigger matches.  Called via POBP_FAULT_POINT; cheap no-trigger path
/// (one branch on a process-wide flag).  Reads the trigger set lock-free
/// behind the release/acquire armed flag — beyond the thread-safety
/// analysis, hence the escape hatch.
void hit(Site site) POBP_NO_THREAD_SAFETY_ANALYSIS;

}  // namespace pobp::fault

#ifdef POBP_FAULT_INJECTION
#define POBP_FAULT_POINT(site) ::pobp::fault::hit(::pobp::fault::Site::site)
#else
#define POBP_FAULT_POINT(site) ((void)0)
#endif
