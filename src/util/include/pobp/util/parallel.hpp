// Minimal shared-memory parallelism layer.
//
// The algorithms in the paper are linear-time and inherently sequential;
// parallelism in this repository lives in the harness: parameter sweeps in
// the benchmarks, seed fan-out in property tests, and root splitting in the
// branch-and-bound solver.  A small fixed thread pool plus a blocked
// parallel_for covers all of those uses without dragging in OpenMP.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "pobp/util/thread_annotations.hpp"

namespace pobp {

/// Fixed-size worker pool with a simple FIFO task queue.
///
/// Tasks are `void()` closures; exceptions escaping a task terminate the
/// process (tasks are expected to capture-and-report their own errors).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  The cv wait takes a
  /// std::unique_lock over mutex_.native(), which the thread-safety
  /// analysis cannot follow.
  void wait_idle() POBP_NO_THREAD_SAFETY_ANALYSIS;

  std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, default-sized).
  static ThreadPool& global();

 private:
  /// Same cv-wait caveat as wait_idle(); the queue/counter accesses all
  /// happen between the wait's relock and the scope's unlock.
  void worker_loop() POBP_NO_THREAD_SAFETY_ANALYSIS;

  util::Mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> queue_ POBP_GUARDED_BY(mutex_);
  std::size_t in_flight_ POBP_GUARDED_BY(mutex_) = 0;
  bool stopping_ POBP_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Blocked parallel loop: invokes `body(i)` for i in [begin, end) across the
/// global pool.  Falls back to a serial loop for tiny ranges or when called
/// from within a pool worker (no nested parallelism).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace pobp
