// Byte-wise LSD radix sorting for packed u64 sort keys.
//
// The hot sorts in the solve path (EDF release order, the validator's
// exclusivity sweep) sort keys of the form (field << 32) | index whose
// fields span a small, known range.  A stable least-significant-byte radix
// pass costs O(n) per *populated* byte — the helpers here take the maximum
// significant value and stop as soon as its bytes are exhausted, so a
// 16-bit field costs two linear passes where a comparator sort pays
// O(n log n) with data-dependent branches.
//
// Stability is the contract that makes composition work: sorting byte
// ranges from least to most significant (e.g. the index half first, the
// field half second) yields the full lexicographic (field, index) order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace pobp {

/// Stable LSD radix passes over `keys`, starting at bit `first_shift` and
/// covering exactly the bytes needed to represent `significant` (the
/// maximum value any key holds in the sorted bit range, pre-shift).  Keys
/// must agree on every byte above the covered range for the result to be a
/// total sort of that range; `tmp` is the scatter buffer (resized here,
/// capacity retained by the caller's scratch).  Requires n < 2^32.
inline void radix_sort_u64_bytes(std::vector<std::uint64_t>& keys,
                                 std::vector<std::uint64_t>& tmp,
                                 unsigned first_shift,
                                 std::uint64_t significant) {
  const std::size_t n = keys.size();
  tmp.resize(n);
  std::uint32_t counts[256];
  for (unsigned shift = first_shift; significant != 0;
       shift += 8, significant >>= 8) {
    std::fill(std::begin(counts), std::end(counts), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[(keys[i] >> shift) & 0xff];
    }
    std::uint32_t sum = 0;
    for (std::uint32_t& c : counts) {
      const std::uint32_t here = c;
      c = sum;
      sum += here;
    }
    for (std::size_t i = 0; i < n; ++i) {
      tmp[counts[(keys[i] >> shift) & 0xff]++] = keys[i];
    }
    keys.swap(tmp);
  }
}

}  // namespace pobp
