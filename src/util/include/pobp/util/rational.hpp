// Exact rational arithmetic on int64 (always stored in lowest terms).
//
// Used where the paper's constructions are stated with fractional
// quantities — e.g. the Appendix-B relative laxity λ = 1 + 1/(3K−1) and the
// Lemma-A.2 closed forms Σ (k/K)^j — so tests can assert *exact* equality
// against the paper's formulas instead of comparing doubles.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <string>

#include "pobp/util/checked.hpp"

namespace pobp {

class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t value) : num_(value) {}  // NOLINT(implicit)
  constexpr Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    POBP_ASSERT_MSG(den != 0, "rational with zero denominator");
    normalize();
  }

  constexpr std::int64_t num() const { return num_; }
  constexpr std::int64_t den() const { return den_; }

  constexpr bool is_integer() const { return den_ == 1; }
  constexpr double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Exact conversion; aborts unless the value is integral.
  constexpr std::int64_t to_int() const {
    POBP_ASSERT_MSG(den_ == 1, "rational is not an integer");
    return num_;
  }

  friend constexpr Rational operator+(const Rational& a, const Rational& b) {
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t bd = b.den_ / g;
    return Rational(
        checked_add(checked_mul(a.num_, bd), checked_mul(b.num_, a.den_ / g)),
        checked_mul(a.den_, bd));
  }
  friend constexpr Rational operator-(const Rational& a, const Rational& b) {
    return a + Rational(-b.num_, b.den_);
  }
  friend constexpr Rational operator*(const Rational& a, const Rational& b) {
    // Cross-reduce before multiplying to delay overflow.
    const std::int64_t g1 = std::gcd(a.num_ < 0 ? -a.num_ : a.num_, b.den_);
    const std::int64_t g2 = std::gcd(b.num_ < 0 ? -b.num_ : b.num_, a.den_);
    return Rational(checked_mul(a.num_ / g1, b.num_ / g2),
                    checked_mul(a.den_ / g2, b.den_ / g1));
  }
  friend constexpr Rational operator/(const Rational& a, const Rational& b) {
    POBP_ASSERT_MSG(b.num_ != 0, "rational division by zero");
    return a * Rational(b.den_, b.num_);
  }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }
  constexpr Rational operator-() const { return Rational(-num_, den_); }

  friend constexpr bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;  // both in lowest terms
  }
  friend constexpr std::strong_ordering operator<=>(const Rational& a,
                                                    const Rational& b) {
    // a.num/a.den <=> b.num/b.den, denominators positive.
    return checked_mul(a.num_, b.den_) <=> checked_mul(b.num_, a.den_);
  }

  std::string to_string() const {
    return den_ == 1 ? std::to_string(num_)
                     : std::to_string(num_) + "/" + std::to_string(den_);
  }

 private:
  constexpr void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// rational power with non-negative exponent.
constexpr Rational pow(Rational base, int exp) {
  POBP_ASSERT(exp >= 0);
  Rational result(1);
  for (int i = 0; i < exp; ++i) result *= base;
  return result;
}

}  // namespace pobp
