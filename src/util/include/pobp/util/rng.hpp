// Deterministic random number generation.
//
// xoshiro256++ (Blackman & Vigna) with a SplitMix64 seeder.  All generators,
// tests and benchmarks take explicit seeds so every experiment in
// EXPERIMENTS.md is bit-reproducible.  The engine satisfies the C++
// UniformRandomBitGenerator requirements, so <random> distributions work,
// but we also provide branch-light helpers for the common cases.
#pragma once

#include <cstdint>
#include <limits>

#include "pobp/util/assert.hpp"

namespace pobp {

/// xoshiro256++ engine.  Passes BigCrush; period 2^256 - 1.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).  Debiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    POBP_ASSERT(lo <= hi);
    const std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % range);
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    POBP_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derive an independent child generator (for per-thread streams).
  Rng split() { return Rng((*this)() ^ 0xD1B54A32D192ED03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace pobp
