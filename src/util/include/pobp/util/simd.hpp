// Portable explicit-width SIMD wrapper (docs/PERF.md).
//
// The solve kernels (TM child-merge, EDF sweep, LSA_CS classification,
// validate_fast) express their inner loops against these 4-lane types so
// the vector shape is explicit in the kernel source, while the
// implementation stays portable: under GCC/Clang the types are compiler
// vector extensions (the release preset's POBP_NATIVE flag lets the
// backend pick AVX2/NEON/… for them), everywhere else they fall back to a
// plain 4-element struct that optimizers autovectorize freely.
//
// Contract:
//   * No ISA intrinsics — not here, not in kernels.  `_mm*`/`vld*` et al.
//     are banned repo-wide by srclint rule POBP-SRC-009; this header is the
//     single allowed abstraction point and deliberately never needs them.
//   * Bit-identical semantics.  Every op is lane-wise two's-complement
//     int64 or IEEE-754 double arithmetic, identical to the scalar
//     expression per lane.  Kernels may reorder *integer* reductions
//     (associative); double summation order is part of the result contract
//     and must never be reassociated (see docs/PERF.md).
//   * Unaligned loads/stores only — callers never over-align scratch.
#pragma once

#include <cstdint>
#include <cstring>

namespace pobp::simd {

inline constexpr std::size_t kLanes = 4;

#if defined(__GNUC__) || defined(__clang__)
#define POBP_SIMD_VECTOR_EXT 1

using i64x4 = std::int64_t __attribute__((vector_size(32)));
using f64x4 = double __attribute__((vector_size(32)));

inline i64x4 load_i64(const std::int64_t* p) {
  i64x4 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store_i64(std::int64_t* p, i64x4 v) { std::memcpy(p, &v, sizeof v); }

inline i64x4 broadcast_i64(std::int64_t x) { return i64x4{x, x, x, x}; }

inline f64x4 load_f64(const double* p) {
  f64x4 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline i64x4 bitcast_i64(f64x4 v) {
  i64x4 out;
  std::memcpy(&out, &v, sizeof out);
  return out;
}

/// Lane-wise compare; lanes are all-ones (-1) where true, 0 where false.
inline i64x4 cmp_lt(i64x4 a, i64x4 b) { return a < b; }
inline i64x4 cmp_le(i64x4 a, i64x4 b) { return a <= b; }
inline i64x4 cmp_gt(i64x4 a, i64x4 b) { return a > b; }

inline i64x4 max_i64(i64x4 a, i64x4 b) { return a > b ? a : b; }

/// Deinterleaves 4 consecutive {lo, hi} int64 pairs starting at p:
/// lo = {p[0], p[2], p[4], p[6]}, hi = {p[1], p[3], p[5], p[7]}.
/// This is the Segment-array access pattern (begin/end pairs).
inline void load_pairs_i64(const std::int64_t* p, i64x4& lo, i64x4& hi) {
  const i64x4 a = load_i64(p);
  const i64x4 b = load_i64(p + 4);
  lo = __builtin_shufflevector(a, b, 0, 2, 4, 6);
  hi = __builtin_shufflevector(a, b, 1, 3, 5, 7);
}

inline bool any_true(i64x4 mask) {
  return (mask[0] | mask[1] | mask[2] | mask[3]) != 0;
}

/// Horizontal add.  Integer only: reassociating doubles is forbidden.
inline std::int64_t reduce_add_i64(i64x4 v) {
  return v[0] + v[1] + v[2] + v[3];
}

inline std::int64_t lane(i64x4 v, std::size_t i) { return v[i]; }

#else  // portable scalar fallback (autovector-friendly fixed-trip loops)

struct i64x4 {
  std::int64_t lane[kLanes];
};
struct f64x4 {
  double lane[kLanes];
};

inline i64x4 load_i64(const std::int64_t* p) {
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) v.lane[i] = p[i];
  return v;
}

inline void store_i64(std::int64_t* p, i64x4 v) {
  for (std::size_t i = 0; i < kLanes; ++i) p[i] = v.lane[i];
}

inline i64x4 broadcast_i64(std::int64_t x) { return {{x, x, x, x}}; }

inline f64x4 load_f64(const double* p) {
  f64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) v.lane[i] = p[i];
  return v;
}

inline i64x4 bitcast_i64(f64x4 v) {
  i64x4 out;
  std::memcpy(out.lane, v.lane, sizeof out.lane);
  return out;
}

inline i64x4 cmp_lt(i64x4 a, i64x4 b) {
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) {
    v.lane[i] = a.lane[i] < b.lane[i] ? -1 : 0;
  }
  return v;
}

inline i64x4 cmp_le(i64x4 a, i64x4 b) {
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) {
    v.lane[i] = a.lane[i] <= b.lane[i] ? -1 : 0;
  }
  return v;
}

inline i64x4 cmp_gt(i64x4 a, i64x4 b) {
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) {
    v.lane[i] = a.lane[i] > b.lane[i] ? -1 : 0;
  }
  return v;
}

inline i64x4 max_i64(i64x4 a, i64x4 b) {
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) {
    v.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  }
  return v;
}

inline void load_pairs_i64(const std::int64_t* p, i64x4& lo, i64x4& hi) {
  for (std::size_t i = 0; i < kLanes; ++i) {
    lo.lane[i] = p[2 * i];
    hi.lane[i] = p[2 * i + 1];
  }
}

inline bool any_true(i64x4 mask) {
  return (mask.lane[0] | mask.lane[1] | mask.lane[2] | mask.lane[3]) != 0;
}

inline std::int64_t reduce_add_i64(i64x4 v) {
  return v.lane[0] + v.lane[1] + v.lane[2] + v.lane[3];
}

inline std::int64_t lane(i64x4 v, std::size_t i) { return v.lane[i]; }

#endif

/// Lane-wise a + b for i64x4 in both representations.
inline i64x4 add_i64(i64x4 a, i64x4 b) {
#ifdef POBP_SIMD_VECTOR_EXT
  return a + b;
#else
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) v.lane[i] = a.lane[i] + b.lane[i];
  return v;
#endif
}

/// Lane-wise a - b.
inline i64x4 sub_i64(i64x4 a, i64x4 b) {
#ifdef POBP_SIMD_VECTOR_EXT
  return a - b;
#else
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) v.lane[i] = a.lane[i] - b.lane[i];
  return v;
#endif
}

/// Lane-wise mask or.
inline i64x4 or_i64(i64x4 a, i64x4 b) {
#ifdef POBP_SIMD_VECTOR_EXT
  return a | b;
#else
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) v.lane[i] = a.lane[i] | b.lane[i];
  return v;
#endif
}

/// Lane-wise arithmetic shift right by a compile-time-ish amount.
inline i64x4 shr_i64(i64x4 a, int bits) {
#ifdef POBP_SIMD_VECTOR_EXT
  return a >> bits;
#else
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) v.lane[i] = a.lane[i] >> bits;
  return v;
#endif
}

/// Lane-wise and with a broadcast constant.
inline i64x4 and_i64(i64x4 a, std::int64_t mask) {
#ifdef POBP_SIMD_VECTOR_EXT
  return a & broadcast_i64(mask);
#else
  i64x4 v;
  for (std::size_t i = 0; i < kLanes; ++i) v.lane[i] = a.lane[i] & mask;
  return v;
#endif
}

}  // namespace pobp::simd
