// Small statistics helpers used by the experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "pobp/util/assert.hpp"

namespace pobp {

/// Single-pass running statistics (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (by sorting a copy). q in [0, 1].
inline double percentile(std::vector<double> xs, double q) {
  POBP_ASSERT(!xs.empty());
  POBP_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace pobp
