// ASCII table printer for the benchmark harnesses.
//
// The benchmarks in bench/ regenerate the paper's constructions and print
// paper-style series ("level, n, OPT_inf, OPT_k, ratio, bound").  This tiny
// formatter keeps those tables aligned and diff-friendly so EXPERIMENTS.md
// can quote them verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pobp {

/// Column-aligned ASCII table with a title and header row.
class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> header);

  /// Append one row; cells are pre-formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(int v) { return fmt(static_cast<std::int64_t>(v)); }
  static std::string fmt(double v, int precision = 4);

  /// Render with box-drawing separators.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pobp
