// Clang thread-safety annotations (-Wthread-safety) for the concurrent
// parts of the tree: the ThreadPool, the Engine, and the fault harness.
//
// The macros expand to Clang's capability attributes when compiling with
// Clang and to nothing elsewhere, so GCC builds are unaffected.  Because
// libstdc++'s std::mutex is not itself capability-annotated, this header
// also provides pobp::util::Mutex / MutexLock — thin annotated wrappers
// over std::mutex / std::lock_guard — which the concurrent classes use
// for every analysable critical section.  The analysis is enabled (and
// promoted to an error by the werror preset) whenever the compiler is
// Clang; see the top-level CMakeLists.txt.
//
// Condition-variable waits need a std::unique_lock over the underlying
// std::mutex, which the analysis cannot follow; those few functions take
// Mutex::native() and carry POBP_NO_THREAD_SAFETY_ANALYSIS with a comment
// explaining the protocol.  Everything else should be expressible with
// POBP_GUARDED_BY / POBP_REQUIRES / MutexLock.
#pragma once

#include <mutex>

#if defined(__clang__)
#define POBP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define POBP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define POBP_CAPABILITY(x) POBP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in
/// its destructor (std::lock_guard shape).
#define POBP_SCOPED_CAPABILITY POBP_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define POBP_GUARDED_BY(x) POBP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define POBP_PT_GUARDED_BY(x) POBP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and holds it on return.
#define POBP_ACQUIRE(...) \
  POBP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller holds.
#define POBP_RELEASE(...) \
  POBP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define POBP_TRY_ACQUIRE(result, ...) \
  POBP_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must already hold the capability.
#define POBP_REQUIRES(...) \
  POBP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard).
#define POBP_EXCLUDES(...) POBP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define POBP_RETURN_CAPABILITY(x) POBP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct but beyond the
/// analysis (condition-variable waits, release/acquire publication).
/// Always pair with a comment stating the actual protocol.
#define POBP_NO_THREAD_SAFETY_ANALYSIS \
  POBP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pobp::util {

/// std::mutex with the capability annotation the analysis needs.
/// BasicLockable, so it also works with std::scoped_lock if ever needed —
/// but prefer MutexLock, which is annotated.
class POBP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() POBP_ACQUIRE() { impl_.lock(); }
  void unlock() POBP_RELEASE() { impl_.unlock(); }
  bool try_lock() POBP_TRY_ACQUIRE(true) { return impl_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable waits (which
  /// require std::unique_lock<std::mutex>).  Callers bypass the analysis
  /// and must carry POBP_NO_THREAD_SAFETY_ANALYSIS.
  std::mutex& native() { return impl_; }

 private:
  std::mutex impl_;
};

/// Annotated std::lock_guard over Mutex.
class POBP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) POBP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() POBP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace pobp::util
