// Wall-clock instrumentation for the solve pipeline.
//
// The engine (src/engine) reports per-stage timings for every instance it
// solves; the stages are the ones the paper's pipeline is described in:
// seed ∞-schedule → laminarize → schedule forest → prune (TM / LSA_CS) →
// left-merge rebuild → validate.  The pipeline functions in core/ and
// reduction/ accept an optional PipelineTimings* and accumulate into it, so
// a nullptr keeps the non-instrumented paths free of clock calls.
#pragma once

#include <chrono>

namespace pobp {

/// Monotonic stopwatch, seconds as double.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds since construction or the last lap().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns seconds() and restarts the stopwatch.
  double lap() {
    const Clock::time_point now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-stage wall-clock accumulator for one solve (seconds).  Stages that a
/// particular configuration skips (e.g. laminarize when k = 0) stay 0.
struct PipelineTimings {
  double seed_s = 0;        ///< ∞-preemptive reference schedule
  double laminarize_s = 0;  ///< restrict + laminarize (§4.1)
  double forest_s = 0;      ///< build_schedule_forest
  double prune_s = 0;       ///< TM / LevelledContraction k-BAS pruning
  double lsa_s = 0;         ///< LSA_CS branches (and the whole §5 k=0 path)
  double merge_s = 0;       ///< left-merge rebuild (Lemma 4.1)
  double validate_s = 0;    ///< Def. 2.1 validation of the result

  double total() const {
    return seed_s + laminarize_s + forest_s + prune_s + lsa_s + merge_s +
           validate_s;
  }

  PipelineTimings& operator+=(const PipelineTimings& other) {
    seed_s += other.seed_s;
    laminarize_s += other.laminarize_s;
    forest_s += other.forest_s;
    prune_s += other.prune_s;
    lsa_s += other.lsa_s;
    merge_s += other.merge_s;
    validate_s += other.validate_s;
    return *this;
  }
};

}  // namespace pobp
