#include "pobp/util/parallel.hpp"

#include <algorithm>
#include <atomic>

namespace pobp {
namespace {

thread_local bool t_inside_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    util::MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_.native());
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_.native());
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_.native());
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  ThreadPool& pool = ThreadPool::global();
  // Serial fallback: tiny range, single-threaded pool, or nested call from a
  // pool worker (nesting would deadlock wait_idle on the shared queue).
  if (count <= grain || pool.thread_count() == 1 || t_inside_pool_worker) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t blocks =
      std::min(count / std::max<std::size_t>(grain, 1) + 1,
               pool.thread_count() * 4);
  const std::size_t block_size = (count + blocks - 1) / blocks;
  std::atomic<std::size_t> next{begin};
  // Work-stealing-lite: each submitted task grabs the next block index.
  for (std::size_t b = 0; b < blocks; ++b) {
    pool.submit([&next, end, block_size, &body] {
      for (;;) {
        const std::size_t lo =
            next.fetch_add(block_size, std::memory_order_relaxed);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + block_size);
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace pobp
