#include "pobp/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "pobp/util/assert.hpp"

namespace pobp {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  POBP_ASSERT(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  POBP_ASSERT_MSG(cells.size() == header_.size(),
                  "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }
std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_rule = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  os << "## " << title_ << '\n';
  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) print_cells(row);
  print_rule();
}

}  // namespace pobp
