// srclint fixture: POBP-SRC-001 — naked allocation outside the allocator
// modules.  Linted with --as-path src/core/leaky.cpp --rule POBP-SRC-001;
// must yield exit 1 with three findings.
#include <cstdlib>

int* make_buffer(int n) {
  int* raw = new int[n];           // finding 1: naked new
  void* blob = std::malloc(64);    // finding 2: raw malloc() call
  std::free(blob);                 // finding 3: raw free() call
  return raw;
}

struct NotAFinding {
  NotAFinding(const NotAFinding&) = delete;  // `= delete` is grammar, not
  void* operator new(std::size_t);           // an allocation; so is an
  void operator delete(void*);               // operator new/delete hook.
};
