// srclint fixture: POBP-SRC-002 — allocation-capable calls inside
// hot-path producers.  Linted with --as-path src/core/hot.cpp
// --rule POBP-SRC-002; must yield exit 1 with three findings (the new,
// the delete, and the malloc).
#include <cstdlib>
#include <vector>

// The *_into suffix is the pooled-producer contract: the function must
// recycle its output's storage, never allocate fresh.
void fill_into(std::vector<int>& out) {
  int* scratch = new int[16];  // finding 1: new inside a *_into producer
  out.assign(scratch, scratch + 16);
  delete[] scratch;
}

// POBP_NOALLOC
int sum_marked(int n) {
  int* tmp = static_cast<int*>(malloc(sizeof(int) * n));  // finding 2
  int total = 0;
  for (int i = 0; i < n; ++i) total += tmp[i];
  return total;
}

// A plain function may allocate freely — no finding here.
std::vector<int> build(int n) { return std::vector<int>(n, 0); }
