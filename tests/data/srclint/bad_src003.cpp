// srclint fixture: POBP-SRC-003 — atomic operations without an explicit
// std::memory_order.  Linted with --as-path src/engine/atomics.cpp
// --rule POBP-SRC-003; must yield exit 1 with two findings.
#include <atomic>

int drain(std::atomic<int>& counter, std::atomic<bool>* done) {
  const int seen = counter.load();        // finding 1: implicit seq_cst
  done->store(true);                      // finding 2: implicit seq_cst
  counter.fetch_add(1, std::memory_order_relaxed);  // explicit — clean
  return seen;
}
