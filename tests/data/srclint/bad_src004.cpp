// srclint fixture: POBP-SRC-004 — nondeterminism in result-affecting
// code.  Linted with --as-path src/core/nondet.cpp --rule POBP-SRC-004;
// must yield exit 1 with two findings.
#include <cstdlib>
#include <unordered_map>
#include <vector>

std::vector<int> jittered_order(const std::vector<int>& ids) {
  std::unordered_map<int, int> weight;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    weight[ids[i]] = rand();  // finding 1: rand() feeds the result
  }
  std::vector<int> out;
  for (const auto& entry : weight) {  // finding 2: hash-order iteration
    out.push_back(entry.first);
  }
  return out;
}
