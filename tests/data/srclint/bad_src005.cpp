// srclint fixture: POBP-SRC-005 — module layering violation.  Linted
// with --as-path src/schedule/upward.cpp --rule POBP-SRC-005; must yield
// exit 1 with one finding: schedule sits below engine in the layer map
// and must not include it.
#include "pobp/engine/engine.hpp"   // finding: schedule -> engine is upward
#include "pobp/diag/diagnostic.hpp" // clean: diag is a declared dependency
#include "pobp/schedule/types.hpp"  // clean: a module may include itself
#include <vector>                   // clean: system headers are exempt

int touch() { return 1; }
