// srclint fixture: POBP-SRC-006 — throw inside a try_* containment
// boundary.  Linted with --as-path src/core/boundary.cpp
// --rule POBP-SRC-006; must yield exit 1 with one finding.
#include <stdexcept>

// try_* functions are containment boundaries: every failure must come
// back as a value (Expected / diag::Report), never as an exception.
bool try_parse_flag(const char* text) {
  if (text == nullptr) {
    throw std::invalid_argument("null flag");  // finding: throw at boundary
  }
  return *text == '1';
}

// Plain functions may throw — no finding here.
int parse_or_throw(const char* text) {
  if (text == nullptr) throw std::invalid_argument("null");
  return *text - '0';
}
