// srclint fixture: POBP-SRC-007 — blocking syscalls/primitives in the
// MPSC submission hot path.  Linted with --as-path src/engine/submit.cpp
// --rule POBP-SRC-007; must yield exit 1 with findings.
#include <chrono>
#include <mutex>
#include <thread>

// The producer fast path must stay lock-free: owning a mutex here means
// lock-based synchronization on the hot path.
std::mutex queue_lock;  // finding: blocking primitive `mutex`

bool enqueue_slot(unsigned* slot, unsigned value) {
  const std::lock_guard<std::mutex> hold(queue_lock);  // findings: both
  *slot = value;
  return true;
}

void backoff() {
  // Sleeping deschedules the producer while others spin behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // finding
}
