// srclint fixture: POBP-SRC-008 — sleep-backoff retry loops in the engine
// with no visible bound.  Linted with --as-path src/engine/backoff.cpp
// --rule POBP-SRC-008; must yield exit 1 with findings.
#include <chrono>
#include <thread>

bool transient_call();

// An unbounded retry: on a persistent fault this spins (and sleeps)
// forever, so drain() never completes and shutdown hangs.
void wait_until_it_works() {
  while (!transient_call()) {                                     // finding
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Same defect in for-loop clothing — the loop has no induction bound and
// no BudgetGuard poll to raise past the deadline.
void retry_forever() {
  for (;;) {
    if (transient_call()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));    // finding
  }
}
