// srclint fixture: POBP-SRC-009 — raw ISA intrinsics outside the
// portable SIMD wrapper (pobp/util/simd.hpp).  Linted with
// --as-path src/schedule/kernels.cpp --rule POBP-SRC-009; must yield
// exit 1 with findings.
#include <cstdint>

// An x86-only inner loop: the __m128i type and _mm_* calls pin this file
// to SSE2 and skip the wrapper's scalar fallback.
std::int64_t sum_pairs(const std::int64_t* p, int n) {
  __m128i acc = _mm_setzero_si128();                              // finding
  for (int i = 0; i + 2 <= n; i += 2) {
    acc = _mm_add_epi64(                                          // finding
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)));
  }
  alignas(16) std::int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);        // finding
  return lanes[0] + lanes[1];
}

// The NEON spelling of the same defect.
std::int64_t sum_neon(const std::int64_t* p) {
  return vgetq_lane_s64(vld1q_s64(p), 0);                         // finding
}
