// srclint fixture: POBP-SRC-010 — implementation-defined hashing
// (std::hash / std::unordered_*) on a solver/engine result path.  Linted
// with --as-path src/engine/keying.cpp --rule POBP-SRC-010; must yield
// exit 1 with findings.
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

// A result-keyed memo table whose bucket order (and therefore any
// iteration-derived output) depends on the standard library's hash
// implementation — the exact defect the solve cache's 128-bit mixers
// exist to avoid.
struct ResultIndex {
  std::unordered_map<std::uint64_t, double> by_key;       // finding
  std::unordered_set<std::string> seen;                   // finding
};

std::size_t key_of(const std::string& name) {
  return std::hash<std::string>{}(name);                  // finding
}
