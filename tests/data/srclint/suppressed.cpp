// srclint fixture: every POBP-SRC rule violated once, each suppressed at
// the site with `// POBP-SRC-nnn: reason`.  Linted with
// --as-path src/solvers/suppressed.cpp (all rules enabled); must yield
// exit 0 and no findings.
#include "pobp/engine/engine.hpp"  // POBP-SRC-005: fixture pins suppression
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <vector>

void fill_into(std::vector<int>& out) {
  // POBP-SRC-001 POBP-SRC-002: fixture — one comment can name both rules
  int* scratch = new int[8];
  out.assign(scratch, scratch + 8);
  delete[] scratch;  // POBP-SRC-001 POBP-SRC-002: fixture
}

int observe(std::atomic<int>& counter) {
  return counter.load();  // POBP-SRC-003: fixture
}

// POBP-SRC-010: fixture — suppression on the line above also applies
std::vector<int> hashed(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> weight;  // POBP-SRC-010: fixture
  weight[1] = rand();  // POBP-SRC-004: fixture
  std::vector<int> out;
  // POBP-SRC-004: fixture — suppression on the line above also applies
  for (const auto& entry : weight) out.push_back(entry.first);
  (void)unused;
  return out;
}

long lane0(const long* p) {
  // POBP-SRC-009: fixture — the wrapper itself is the only real home
  return _mm_cvtsi128_si64(_mm_loadu_si128((const __m128i*)p));
}

bool try_flag(const char* text) {
  if (text == nullptr) {
    throw std::invalid_argument("null");  // POBP-SRC-006: fixture
  }
  return *text == '1';
}
