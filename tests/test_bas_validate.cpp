// Tests for the k-BAS validator (Defs. 3.1–3.2) and the brute-force oracle.
#include <gtest/gtest.h>

#include "pobp/forest/bas.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

//      0
//     / \.
//    1   2
//   / \   \.
//  3   4   5
Forest chain_tree() {
  Forest f;
  f.add(1);
  f.add(1, 0);
  f.add(1, 0);
  f.add(1, 1);
  f.add(1, 1);
  f.add(1, 2);
  return f;
}

SubForest mask(const Forest& f, std::initializer_list<NodeId> kept) {
  SubForest sel{std::vector<char>(f.size(), 0)};
  for (const NodeId v : kept) sel.keep[v] = 1;
  return sel;
}

TEST(BasValidate, EmptySelectionIsValid) {
  const Forest f = chain_tree();
  EXPECT_TRUE(validate_bas(f, mask(f, {}), 1));
}

TEST(BasValidate, WholeTreeValidIffDegreeFits) {
  const Forest f = chain_tree();
  SubForest all{std::vector<char>(f.size(), 1)};
  EXPECT_TRUE(validate_bas(f, all, 2));
  EXPECT_FALSE(validate_bas(f, all, 1));  // node 0 and 1 have 2 children
}

TEST(BasValidate, DegreeCountsOnlyKeptChildren) {
  const Forest f = chain_tree();
  // Keep 0,1,3 — each kept node has ≤1 kept child.
  EXPECT_TRUE(validate_bas(f, mask(f, {0, 1, 3}), 1));
}

TEST(BasValidate, AncestorIndependenceViolation) {
  const Forest f = chain_tree();
  // Keep 0 and 3 but delete 1: 3 roots a component under kept ancestor 0.
  const auto r = validate_bas(f, mask(f, {0, 3}), 1);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("ancestor independence"), std::string::npos);
}

TEST(BasValidate, SiblingComponentsAreIndependent) {
  const Forest f = chain_tree();
  // Delete the root; both 1-subtree and 2-subtree kept: independent.
  EXPECT_TRUE(validate_bas(f, mask(f, {1, 3, 4, 2, 5}), 2));
}

TEST(BasValidate, DeepAncestorViolationDetected) {
  Forest f;  // path 0-1-2-3
  f.add(1);
  f.add(1, 0);
  f.add(1, 1);
  f.add(1, 2);
  EXPECT_FALSE(validate_bas(f, mask(f, {0, 3}), 3));
  EXPECT_TRUE(validate_bas(f, mask(f, {0, 1, 2, 3}), 1));
  EXPECT_TRUE(validate_bas(f, mask(f, {2, 3}), 1));  // lower component only
}

TEST(BasValidate, DegreeViolationMessage) {
  const Forest f = chain_tree();
  const auto r = validate_bas(f, mask(f, {1, 3, 4}), 1);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("degree bound"), std::string::npos);
}

TEST(BasValidate, MaskSizeMismatch) {
  const Forest f = chain_tree();
  SubForest bad{std::vector<char>(2, 1)};
  EXPECT_FALSE(validate_bas(f, bad, 1));
}

TEST(SubForest, ValueAndCount) {
  Forest f;
  f.add(10);
  f.add(20, 0);
  f.add(30, 0);
  const SubForest sel = mask(f, {0, 2});
  EXPECT_DOUBLE_EQ(sel.value(f), 40.0);
  EXPECT_EQ(sel.kept_count(), 2u);
}

TEST(BruteForce, FindsObviousOptimum) {
  // Star: root value 1, five leaves value 10 each.  For k=1 the best k-BAS
  // keeps... deleting the root and keeping all leaves (independent
  // components, degree 0): value 50.
  Forest f;
  f.add(1);
  for (int i = 0; i < 5; ++i) f.add(10, 0);
  const SubForest best = brute_force_bas(f, 1);
  EXPECT_TRUE(validate_bas(f, best, 1));
  EXPECT_DOUBLE_EQ(best.value(f), 50.0);
}

TEST(BruteForce, KeepsRootWhenItDominates) {
  Forest f;
  f.add(100);
  for (int i = 0; i < 3; ++i) f.add(1, 0);
  const SubForest best = brute_force_bas(f, 1);
  EXPECT_TRUE(best.kept(0));
  EXPECT_DOUBLE_EQ(best.value(f), 101.0);  // root + best child
}


// ---- differential check against an independent naive validator ----------

/// Naive reimplementation of Defs. 3.1–3.2 using is_ancestor() directly:
/// O(n³), structured completely differently from validate_bas.
bool naive_valid_bas(const Forest& f, const SubForest& sel, std::size_t k) {
  if (sel.keep.size() != f.size()) return false;
  // Degree bound.
  for (NodeId v = 0; v < f.size(); ++v) {
    if (!sel.kept(v)) continue;
    std::size_t kept_children = 0;
    for (const NodeId c : f.children(v)) kept_children += sel.kept(c);
    if (kept_children > k) return false;
  }
  // Ancestor independence: find the component of each kept node by walking
  // up through kept parents; two nodes in different components must not be
  // ancestor-related.
  auto component_root = [&](NodeId v) {
    while (f.parent(v) != kNoNode && sel.kept(f.parent(v))) v = f.parent(v);
    return v;
  };
  for (NodeId a = 0; a < f.size(); ++a) {
    if (!sel.kept(a)) continue;
    for (NodeId b = 0; b < f.size(); ++b) {
      if (!sel.kept(b) || a == b) continue;
      if (component_root(a) != component_root(b) && f.is_ancestor(a, b)) {
        return false;
      }
    }
  }
  return true;
}

TEST(BasValidateDifferential, AgreesWithNaiveOnRandomMasks) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    ForestGenConfig config;
    config.nodes = 1 + static_cast<std::size_t>(rng.uniform_int(1, 25));
    config.max_degree = 1 + static_cast<std::size_t>(rng.uniform_int(1, 4));
    config.root_probability = 0.15;
    const Forest f = random_forest(config, rng);
    for (int m = 0; m < 30; ++m) {
      SubForest sel{std::vector<char>(f.size(), 0)};
      for (NodeId v = 0; v < f.size(); ++v) {
        sel.keep[v] = rng.bernoulli(0.55);
      }
      const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
      EXPECT_EQ(validate_bas(f, sel, k).ok, naive_valid_bas(f, sel, k))
          << "trial " << trial << " mask " << m;
    }
  }
}

}  // namespace
}  // namespace pobp
