// Tests for the content-addressed solve cache (pobp/engine/cache.hpp,
// docs/CACHE.md): keying properties, the byte-identity contract of cached
// vs uncached solves across worker counts, delta re-solve equivalence,
// CLOCK eviction under a byte budget, the POBP-RUN-008 pressure rule, the
// concurrent-access soak (TSan target), and the no-partial-entry contract
// under mid-solve fault injection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pobp/pobp.hpp"
#include "pobp/engine/cache.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/schedule/columns.hpp"
#include "pobp/util/faultinject.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

std::vector<JobSet> corpus(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> instances;
  for (std::size_t i = 0; i < count; ++i) {
    JobGenConfig config;
    config.n = 10 + 3 * (i % 8);
    config.max_length = 1 << 6;
    config.horizon = 1 << 12;
    instances.push_back(random_jobs(config, rng));
  }
  return instances;
}

/// Bit-exact fingerprint of a result (CSV keeps every segment, machine and
/// order).
std::string fingerprint(const ScheduleResult& r) {
  return io::schedule_to_csv(r.schedule) + "|" + std::to_string(r.value) +
         "|" + std::to_string(r.unbounded_value);
}

/// `base` with `count` jobs mutated in place (a near-duplicate — the
/// delta-solve shape).
JobSet mutate_jobs(const JobSet& base, std::size_t count,
                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Job> jobs(base.jobs().begin(), base.jobs().end());
  for (std::size_t c = 0; c < count && !jobs.empty(); ++c) {
    Job& j = jobs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(jobs.size()) - 1))];
    j.length = j.length + 1;
    j.deadline = j.deadline + 2;
    j.value = j.value + 0.5;
  }
  return JobSet(std::move(jobs));
}

/// A dup/near-dup stream over `distinct`: exact repeats and small
/// mutations interleaved — the serving workload the cache targets.
std::vector<JobSet> dup_stream(const std::vector<JobSet>& distinct,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobSet> stream;
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      if (rng.bernoulli(0.4)) {
        stream.push_back(distinct[i]);  // exact duplicate
      } else if (rng.bernoulli(0.5)) {
        stream.push_back(mutate_jobs(distinct[i], 1 + (round % 3),
                                     rng()));  // near-duplicate
      } else {
        stream.push_back(distinct[(i * 7 + round) % distinct.size()]);
      }
    }
  }
  return stream;
}

CacheKey key_of(const JobSet& jobs, const ScheduleOptions& options,
                bool approximate = false) {
  JobColumns columns;
  columns.build(jobs);
  const JobSetView view = columns.view();
  std::vector<std::uint64_t> subhashes(view.n);
  SolveCache::job_subhashes(view, subhashes.data());
  return SolveCache::instance_key(
      view, subhashes.data(),
      SolveCache::params_signature(options, approximate));
}

// --- keying ----------------------------------------------------------------

TEST(CacheKey, PermutedJobSetsDoNotAlias) {
  // JobIds are positional and results address jobs by id, so an
  // attribute-wise equal set in a different order has a genuinely
  // different (permuted) result — the keys must differ.
  JobSet a;
  a.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
  a.add({.release = 2, .deadline = 12, .length = 3, .value = 4.0});
  JobSet b;
  b.add({.release = 2, .deadline = 12, .length = 3, .value = 4.0});
  b.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
  const ScheduleOptions options{.k = 1};
  EXPECT_NE(key_of(a, options), key_of(b, options));
  EXPECT_EQ(key_of(a, options), key_of(a, options));
}

TEST(CacheKey, EveryJobAttributeFeedsTheKey) {
  JobSet base;
  base.add({.release = 0, .deadline = 10, .length = 4, .value = 5.0});
  base.add({.release = 2, .deadline = 12, .length = 3, .value = 4.0});
  const ScheduleOptions options{.k = 1};
  const CacheKey k0 = key_of(base, options);
  for (int field = 0; field < 4; ++field) {
    std::vector<Job> jobs(base.jobs().begin(), base.jobs().end());
    switch (field) {
      case 0: jobs[1].release += 1; break;
      case 1: jobs[1].deadline += 1; break;
      case 2: jobs[1].length += 1; break;
      case 3: jobs[1].value += 0.25; break;
    }
    EXPECT_NE(key_of(JobSet(jobs), options), k0) << "field " << field;
  }
}

TEST(CacheKey, ParametersAndTierFeedTheSignature) {
  const ScheduleOptions base{.k = 1, .machine_count = 2};
  const std::uint64_t sig = SolveCache::params_signature(base, false);
  {
    ScheduleOptions other = base;
    other.k = 2;
    EXPECT_NE(SolveCache::params_signature(other, false), sig);
  }
  {
    ScheduleOptions other = base;
    other.machine_count = 3;
    EXPECT_NE(SolveCache::params_signature(other, false), sig);
  }
  // The degraded (approximate) tier must never alias an exact answer.
  EXPECT_NE(SolveCache::params_signature(base, true), sig);
  // tm_fork_min_nodes is a parallelism knob with bit-identical results —
  // deliberately excluded so warm entries survive tuning it.
  {
    ScheduleOptions other = base;
    other.tm_fork_min_nodes += 64;
    EXPECT_EQ(SolveCache::params_signature(other, false), sig);
  }
}

TEST(CacheKey, SubhashesAreIndependentPerJob) {
  const JobSet jobs = corpus(1, 99)[0];
  JobColumns columns;
  columns.build(jobs);
  std::vector<std::uint64_t> before(jobs.size());
  SolveCache::job_subhashes(columns.view(), before.data());

  const JobSet mutated = mutate_jobs(jobs, 1, 7);
  columns.build(mutated);
  std::vector<std::uint64_t> after(jobs.size());
  SolveCache::job_subhashes(columns.view(), after.data());

  std::size_t changed = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (before[i] != after[i]) ++changed;
  }
  EXPECT_EQ(changed, 1u);
}

// --- hit/miss behaviour ----------------------------------------------------

TEST(Cache, ExactDuplicateHitsAndIsBitIdentical) {
  const JobSet jobs = corpus(1, 42)[0];
  auto cache = std::make_shared<SolveCache>();
  Engine engine({.schedule = {.k = 1, .machine_count = 2}, .cache = cache});

  const SolveOutcome first = engine.try_solve(jobs);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(cache->stats().insertions, 1u);
  EXPECT_EQ(cache->stats().hits, 0u);

  const SolveOutcome second = engine.try_solve(jobs);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(fingerprint(*first), fingerprint(*second));
  EXPECT_EQ(engine.metrics().cache_hits, 1u);
  EXPECT_EQ(engine.metrics().cache_misses, 1u);
  EXPECT_EQ(engine.metrics().cache_insertions, 1u);

  // The counters surface in both metric exports.
  EXPECT_NE(engine.metrics().to_json().find("\"cache\":{\"hits\":1"),
            std::string::npos);
  EXPECT_NE(engine.metrics().to_table().find("cache hits"),
            std::string::npos);
}

TEST(Cache, ReadModeNeverPublishes) {
  const JobSet jobs = corpus(1, 43)[0];
  auto cache = std::make_shared<SolveCache>();
  Engine engine({.schedule = {.k = 1},
                 .cache = cache,
                 .cache_mode = CacheMode::kRead});
  ASSERT_TRUE(engine.try_solve(jobs).has_value());
  ASSERT_TRUE(engine.try_solve(jobs).has_value());
  EXPECT_EQ(cache->stats().insertions, 0u);
  EXPECT_EQ(cache->stats().hits, 0u);
  EXPECT_EQ(cache->stats().misses, 2u);
}

TEST(Cache, PerRequestModeOverridesEngineDefault) {
  const JobSet jobs = corpus(1, 44)[0];
  auto cache = std::make_shared<SolveCache>();
  Engine engine({.schedule = {.k = 1}, .cache = cache});

  SubmitOptions off;
  off.cache = CacheMode::kOff;
  const std::vector<JobSet> one{jobs};
  const std::vector<SolveOutcome> bypass = engine.try_solve_batch(one, off);
  ASSERT_TRUE(bypass[0].has_value());
  EXPECT_EQ(cache->stats().misses, 0u);
  EXPECT_EQ(cache->stats().insertions, 0u);

  const std::vector<SolveOutcome> rw = engine.try_solve_batch(one, {});
  ASSERT_TRUE(rw[0].has_value());
  EXPECT_EQ(cache->stats().insertions, 1u);
  EXPECT_EQ(fingerprint(*bypass[0]), fingerprint(*rw[0]));
}

TEST(Cache, DegradedResultsKeySeparatelyFromExact) {
  const JobSet jobs = corpus(1, 45)[0];
  auto cache = std::make_shared<SolveCache>();
  // Budget so tight every solve lands on the degraded path.
  Engine degraded({.schedule = {.k = 1},
                   .budget = {.max_ops = 1},
                   .degrade = DegradePolicy::kApproximate,
                   .cache = cache});
  const SolveOutcome d1 = degraded.try_solve(jobs);
  ASSERT_TRUE(d1.has_value());
  EXPECT_TRUE(d1->degraded);
  EXPECT_EQ(cache->stats().insertions, 1u);
  const SolveOutcome d2 = degraded.try_solve(jobs);
  ASSERT_TRUE(d2.has_value());
  EXPECT_TRUE(d2->degraded);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(fingerprint(*d1), fingerprint(*d2));

  // An exact solve of the same instance must miss the approximate entry.
  Engine exact({.schedule = {.k = 1}, .cache = cache});
  const SolveOutcome e = exact.try_solve(jobs);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->degraded);
  EXPECT_EQ(cache->stats().hits, 1u);  // unchanged: no aliasing
  EXPECT_EQ(cache->stats().insertions, 2u);
}

// --- the acceptance bar: byte-identity across worker counts ----------------

TEST(Cache, DupStreamBitIdenticalAcrossWorkersAndModes) {
  const std::vector<JobSet> stream = dup_stream(corpus(6, 2018), 777);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  Engine plain({.schedule = schedule, .workers = 1});
  const std::vector<SolveOutcome> base = plain.try_solve_batch(stream, {});
  std::vector<std::string> expected;
  for (const SolveOutcome& outcome : base) {
    ASSERT_TRUE(outcome.has_value());
    expected.push_back(fingerprint(*outcome));
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    auto cache = std::make_shared<SolveCache>();
    Engine engine({.schedule = schedule, .workers = workers,
                   .cache = cache});
    // Two passes: the first mixes misses, delta patches and hits; the
    // second is hit-dominated.  Both must be byte-identical to uncached.
    for (int pass = 0; pass < 2; ++pass) {
      const std::vector<SolveOutcome> results =
          engine.try_solve_batch(stream, {});
      ASSERT_EQ(results.size(), stream.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].has_value());
        EXPECT_EQ(fingerprint(*results[i]), expected[i])
            << "instance " << i << ", " << workers << " workers, pass "
            << pass;
      }
    }
    EXPECT_GT(cache->stats().hits, 0u) << workers << " workers";
  }
}

TEST(Cache, DeltaPatchedSolvesMatchFullResolve) {
  const std::vector<JobSet> distinct = corpus(4, 31337);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  // Near-duplicates within the delta radius of their base instance.
  std::vector<JobSet> stream;
  for (const JobSet& base : distinct) {
    stream.push_back(base);
    for (std::uint64_t m = 1; m <= 3; ++m) {
      stream.push_back(mutate_jobs(base, m, m * 17));
    }
  }

  Engine plain({.schedule = schedule, .workers = 1});
  const std::vector<SolveOutcome> base = plain.try_solve_batch(stream, {});

  auto cache = std::make_shared<SolveCache>();
  Engine cached({.schedule = schedule, .workers = 1, .cache = cache});
  const std::vector<SolveOutcome> patched =
      cached.try_solve_batch(stream, {});
  ASSERT_EQ(patched.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_TRUE(base[i].has_value());
    ASSERT_TRUE(patched[i].has_value());
    EXPECT_EQ(fingerprint(*patched[i]), fingerprint(*base[i]))
        << "instance " << i;
  }
  // The near-duplicates actually exercised the delta path (the patched
  // machines came from the neighbor entry, not a fresh reduction).
  EXPECT_GT(cached.metrics().cache_delta_patches, 0u);
  EXPECT_GT(cache->stats().delta_hits, 0u);
}

TEST(Cache, DeltaDisabledStillBitIdentical) {
  const std::vector<JobSet> distinct = corpus(3, 555);
  std::vector<JobSet> stream;
  for (const JobSet& base : distinct) {
    stream.push_back(base);
    stream.push_back(mutate_jobs(base, 2, 9));
  }
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  Engine plain({.schedule = schedule});
  const std::vector<SolveOutcome> base = plain.try_solve_batch(stream, {});

  auto cache = std::make_shared<SolveCache>(
      SolveCacheOptions{.delta_max_jobs = 0});
  Engine cached({.schedule = schedule, .cache = cache});
  const std::vector<SolveOutcome> results =
      cached.try_solve_batch(stream, {});
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(fingerprint(*results[i]), fingerprint(*base[i]));
  }
  EXPECT_EQ(cached.metrics().cache_delta_patches, 0u);
}

// --- eviction and pressure -------------------------------------------------

TEST(Cache, EvictsUnderByteBudgetAndStaysCorrect) {
  const std::vector<JobSet> instances = corpus(48, 8080);
  auto cache = std::make_shared<SolveCache>(
      SolveCacheOptions{.max_bytes = 64 << 10, .shards = 2});
  Engine engine({.schedule = {.k = 1}, .cache = cache});

  Engine plain({.schedule = {.k = 1}});
  for (int round = 0; round < 2; ++round) {
    for (const JobSet& jobs : instances) {
      const SolveOutcome cached_result = engine.try_solve(jobs);
      const SolveOutcome plain_result = plain.try_solve(jobs);
      ASSERT_TRUE(cached_result.has_value());
      ASSERT_TRUE(plain_result.has_value());
      EXPECT_EQ(fingerprint(*cached_result), fingerprint(*plain_result));
    }
  }
  const CacheStats stats = cache->stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, std::uint64_t{64} << 10);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_EQ(engine.metrics().cache_evictions, stats.evictions);
}

TEST(Cache, PressureRuleFiresOnlyWhenThrashing) {
  {
    auto cache = std::make_shared<SolveCache>(
        SolveCacheOptions{.max_bytes = 16 << 10, .shards = 1});
    Engine engine({.schedule = {.k = 1}, .cache = cache});
    for (const JobSet& jobs : corpus(64, 4444)) {
      ASSERT_TRUE(engine.try_solve(jobs).has_value());
    }
    const diag::Report report = cache->check_pressure();
    ASSERT_FALSE(report.diagnostics().empty());
    EXPECT_EQ(report.count("POBP-RUN-008"), 1u);
  }
  {
    auto cache = std::make_shared<SolveCache>();  // default 64 MiB: roomy
    Engine engine({.schedule = {.k = 1}, .cache = cache});
    for (const JobSet& jobs : corpus(16, 4445)) {
      ASSERT_TRUE(engine.try_solve(jobs).has_value());
    }
    EXPECT_TRUE(cache->check_pressure().diagnostics().empty());
  }
}

TEST(Cache, ClearDropsEntriesAndKeepsCounters) {
  const JobSet jobs = corpus(1, 46)[0];
  auto cache = std::make_shared<SolveCache>();
  Engine engine({.schedule = {.k = 1}, .cache = cache});
  ASSERT_TRUE(engine.try_solve(jobs).has_value());
  EXPECT_EQ(cache->stats().entries, 1u);
  cache->clear();
  EXPECT_EQ(cache->stats().entries, 0u);
  EXPECT_EQ(cache->stats().bytes, 0u);
  // Next solve misses and republishes.
  ASSERT_TRUE(engine.try_solve(jobs).has_value());
  EXPECT_EQ(cache->stats().hits, 0u);
  EXPECT_EQ(cache->stats().insertions, 2u);
}

// --- concurrency (TSan target) ---------------------------------------------

TEST(Cache, ConcurrentHitMissEvictSoak) {
  // One small shared cache, hammered from a multi-worker engine batch AND
  // a second engine on another thread: concurrent probes, publishes and
  // CLOCK evictions on the same shards.  Correctness bar: every result
  // bit-identical to an uncached solve; TSan owns the data-race bar.
  const std::vector<JobSet> stream = dup_stream(corpus(5, 606), 909);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  Engine plain({.schedule = schedule});
  const std::vector<SolveOutcome> base = plain.try_solve_batch(stream, {});
  std::vector<std::string> expected;
  for (const SolveOutcome& outcome : base) {
    ASSERT_TRUE(outcome.has_value());
    expected.push_back(fingerprint(*outcome));
  }

  auto cache = std::make_shared<SolveCache>(
      SolveCacheOptions{.max_bytes = 256 << 10, .shards = 2});
  Engine a({.schedule = schedule, .workers = 4, .cache = cache});
  Engine b({.schedule = schedule, .workers = 4, .cache = cache});

  std::vector<std::string> got_b;
  std::thread other([&] {
    for (int round = 0; round < 3; ++round) {
      const std::vector<SolveOutcome> results = b.try_solve_batch(stream, {});
      got_b.clear();
      for (const SolveOutcome& outcome : results) {
        got_b.push_back(outcome.has_value() ? fingerprint(*outcome) : "");
      }
    }
  });
  std::vector<std::string> got_a;
  for (int round = 0; round < 3; ++round) {
    const std::vector<SolveOutcome> results = a.try_solve_batch(stream, {});
    got_a.clear();
    for (const SolveOutcome& outcome : results) {
      got_a.push_back(outcome.has_value() ? fingerprint(*outcome) : "");
    }
  }
  other.join();

  ASSERT_EQ(got_a.size(), expected.size());
  ASSERT_EQ(got_b.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got_a[i], expected[i]) << "engine a, instance " << i;
    EXPECT_EQ(got_b[i], expected[i]) << "engine b, instance " << i;
  }
}

// --- fault injection: no partial entries -----------------------------------

/// Disarms process-wide fault-injection triggers on scope exit so a failing
/// assertion cannot leak armed triggers into later tests.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

TEST(CacheFaults, MidSolveFaultNeverPublishesAPartialEntry) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  const std::vector<JobSet> one = corpus(1, 618);
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};

  Engine plain({.schedule = schedule});
  const std::vector<SolveOutcome> clean = plain.try_solve_batch(one, {});
  ASSERT_TRUE(clean[0].has_value());

  const char* sites[] = {"alloc", "laminarize", "tm_dp", "left_merge",
                         "validate"};
  for (const char* site : sites) {
    auto cache = std::make_shared<SolveCache>();
    Engine engine({.schedule = schedule,
                   .fault_injection = std::string(site) + "@0:1",
                   .cache = cache});
    const std::vector<SolveOutcome> faulted = engine.try_solve_batch(one, {});
    ASSERT_FALSE(faulted[0].has_value())
        << "site " << site << " never fired";
    EXPECT_EQ(faulted[0].error().count("POBP-RUN-001"), 1u);
    // The fault unwound mid-pipeline: nothing may have been published.
    EXPECT_EQ(cache->stats().insertions, 0u) << "site " << site;
    EXPECT_EQ(cache->stats().entries, 0u) << "site " << site;

    // After disarming, the same engine publishes a complete entry whose
    // copy-out is bit-identical to the clean solve.
    fault::disarm();
    const std::vector<SolveOutcome> recovered =
        engine.try_solve_batch(one, {});
    ASSERT_TRUE(recovered[0].has_value()) << "site " << site;
    EXPECT_EQ(fingerprint(*recovered[0]), fingerprint(*clean[0]));
    EXPECT_EQ(cache->stats().insertions, 1u) << "site " << site;
    const std::vector<SolveOutcome> hit = engine.try_solve_batch(one, {});
    ASSERT_TRUE(hit[0].has_value());
    EXPECT_EQ(fingerprint(*hit[0]), fingerprint(*clean[0]));
    EXPECT_EQ(cache->stats().hits, 1u) << "site " << site;
  }
}

TEST(CacheFaults, CachedStreamUnderFaultsMatchesUncachedUnderFaults) {
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "built without POBP_FAULT_INJECTION";
  }
  const DisarmGuard disarm;
  // Duplicates of the faulted instance keep COLD-solving (the fault fires
  // before anything is published), so the cached stream's outcome pattern
  // must equal the uncached one: same instances fault, same instances
  // succeed with identical bytes.
  std::vector<JobSet> stream;
  const std::vector<JobSet> distinct = corpus(3, 202);
  for (int round = 0; round < 2; ++round) {
    for (const JobSet& jobs : distinct) stream.push_back(jobs);
  }
  const ScheduleOptions schedule{.k = 1, .machine_count = 2};
  const char* spec = "tm_dp@1:1,alloc@4:1";

  std::vector<std::string> expected;
  {
    Engine engine({.schedule = schedule, .fault_injection = spec});
    for (const SolveOutcome& outcome : engine.try_solve_batch(stream, {})) {
      expected.push_back(outcome.has_value() ? fingerprint(*outcome)
                                             : "fault");
    }
    fault::disarm();
  }
  for (const std::size_t workers : {1u, 2u, 8u}) {
    auto cache = std::make_shared<SolveCache>();
    Engine engine({.schedule = schedule,
                   .workers = workers,
                   .fault_injection = spec,
                   .cache = cache});
    const std::vector<SolveOutcome> results =
        engine.try_solve_batch(stream, {});
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].has_value() ? fingerprint(*results[i]) : "fault",
                expected[i])
          << "instance " << i << ", " << workers << " workers";
    }
    fault::disarm();
  }
}

}  // namespace
}  // namespace pobp
