// Tests for Algorithm 3 (k-PreemptionCombined), the §5 non-preemptive
// algorithm, and the one-call try_schedule_bounded().value() entry point.
#include <gtest/gtest.h>

#include <tuple>

#include "pobp/pobp.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(RestrictSchedule, KeepsOnlyRequestedJobs) {
  MachineSchedule ms;
  ms.add({0, {{0, 2}}});
  ms.add({1, {{2, 4}}});
  ms.add({2, {{4, 6}}});
  const std::vector<JobId> keep{0, 2};
  const MachineSchedule out = restrict_schedule(ms, keep);
  EXPECT_EQ(out.job_count(), 2u);
  EXPECT_TRUE(out.contains(0));
  EXPECT_FALSE(out.contains(1));
  EXPECT_TRUE(out.contains(2));
}

TEST(Combined, EmptyScheduleYieldsEmptyResult) {
  JobSet jobs;
  jobs.add({0, 4, 2, 1.0});
  const CombinedResult r =
      k_preemption_combined(jobs, MachineSchedule{}, {.k = 1});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(CombinedDeath, KZeroRejected) {
  JobSet jobs;
  jobs.add({0, 4, 2, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 2}}});
  EXPECT_DEATH(k_preemption_combined(jobs, ms, {.k = 0}),
               "schedule_nonpreemptive");
}

class CombinedProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(CombinedProperty, FeasibleAndWithinTheoremBounds) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    // Laminar instances with slack: a mix of strict and lax jobs.
    LaminarGenConfig config;
    config.target_jobs = 100;
    config.slack_factor = trial % 2 == 0 ? 0.0 : 2.0;
    const LaminarInstance inst = random_laminar_instance(config, rng);
    const Value opt_inf = inst.jobs.total_value();  // all scheduled

    const CombinedResult r =
        k_preemption_combined(inst.jobs, inst.schedule, {.k = k});
    const auto check = validate_machine(inst.jobs, r.schedule, k);
    EXPECT_TRUE(check) << check.error;

    // Theorem 4.2: the full-reduction branch guarantees
    // value ≥ OPT∞ / log_{k+1} n, and the combined result only improves.
    const double bound = log_k1(k, static_cast<double>(inst.jobs.size()));
    EXPECT_GE(r.value * bound, opt_inf * (1 - 1e-9))
        << "k=" << k << " trial=" << trial;

    EXPECT_GE(r.value, r.strict_value);
    EXPECT_GE(r.value, r.lax_value);
    EXPECT_GE(r.value, r.full_reduction_value);
    EXPECT_GE(r.full_reduction_value * bound, opt_inf * (1 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, CombinedProperty,
    ::testing::Combine(::testing::Values(81u, 82u, 83u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3})));

TEST(Combined, ContractionVariantAlsoFeasible) {
  Rng rng(91);
  LaminarGenConfig config;
  config.target_jobs = 80;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  const CombinedResult tm =
      k_preemption_combined(inst.jobs, inst.schedule, {.k = 1, .use_tm = true});
  const CombinedResult lc = k_preemption_combined(inst.jobs, inst.schedule,
                                                  {.k = 1, .use_tm = false});
  EXPECT_TRUE(validate_machine(inst.jobs, lc.schedule, 1));
  // TM prunes optimally, so its strict branch dominates contraction's.
  EXPECT_GE(tm.strict_value, lc.strict_value * (1 - 1e-12));
}

TEST(NonPreemptive, FallsBackToBestSingleJob) {
  // One huge-value job that LSA_CS's winning class would miss is still
  // returned thanks to the best-single-job branch.
  JobSet jobs;
  jobs.add({0, 4, 4, 1000.0});  // tight window, huge value
  jobs.add({0, 4, 1, 1.0});
  jobs.add({0, 4, 1, 1.0});
  const NonPreemptiveResult r = schedule_nonpreemptive(jobs, all_ids(jobs));
  EXPECT_TRUE(validate_machine(jobs, r.schedule, 0));
  EXPECT_GE(r.value, 1000.0);
}

class NonPreemptiveProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(NonPreemptiveProperty, WithinSection5BoundOfExactOpt0) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    JobGenConfig config;
    config.n = 14;
    config.min_length = 1;
    config.max_length = 128;
    config.max_laxity = 4.0;
    config.horizon = 1200;
    config.value_mode = JobGenConfig::ValueMode::kRandomDensity;
    const JobSet jobs = random_jobs(config, rng);

    const NonPreemptiveResult r = schedule_nonpreemptive(jobs, all_ids(jobs));
    const auto check = validate_machine(jobs, r.schedule, 0);
    EXPECT_TRUE(check) << check.error;

    // §5: val ≥ OPT∞ / O(min{n, log P}); empirically check against the
    // *stronger* reference OPT∞ with the 3·log₂P + n constants.
    const SubsetSolution opt_inf = opt_infinity(jobs, all_ids(jobs));
    const double log_bound =
        3.0 * log_base(2.0, jobs.length_ratio_P().to_double());
    const double n_bound = static_cast<double>(jobs.size());
    const double bound = std::min(log_bound, n_bound);
    EXPECT_GE(r.value * bound, opt_inf.value * (1 - 1e-9)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonPreemptiveProperty,
                         ::testing::Values(101, 102, 103));

class MultiMachineCombined : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiMachineCombined, FeasibleNonMigrativeAcrossMachineCounts) {
  const std::size_t machines = GetParam();
  Rng rng(111);
  JobGenConfig config;
  config.n = 50;
  config.max_length = 128;
  config.horizon = 2000;
  config.min_laxity = 1.0;
  config.max_laxity = 6.0;
  const JobSet jobs = random_jobs(config, rng);

  const Schedule seed = greedy_infinity_multi(jobs, all_ids(jobs), machines);
  ASSERT_TRUE(validate(jobs, seed));

  const CombinedMultiResult r =
      k_preemption_combined_multi(jobs, seed, {.k = 2});
  const auto check = validate(jobs, r.schedule, 2);
  EXPECT_TRUE(check) << check.error;
  EXPECT_GE(r.value, r.strict_value);
  EXPECT_GE(r.value, r.lax_value);
}

INSTANTIATE_TEST_SUITE_P(Machines, MultiMachineCombined,
                         ::testing::Values(1, 2, 4, 8));

class ScheduleBoundedEndToEnd
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ScheduleBoundedEndToEnd, OneCallPipeline) {
  const auto [k, machines] = GetParam();
  Rng rng(121);
  JobGenConfig config;
  config.n = 40;
  config.max_length = 256;
  config.horizon = 3000;
  config.max_laxity = 8.0;
  const JobSet jobs = random_jobs(config, rng);

  const ScheduleResult r =
      try_schedule_bounded(jobs, {.k = k, .machine_count = machines}).value();
  const auto check = validate(jobs, r.schedule, k);
  EXPECT_TRUE(check) << check.error;
  EXPECT_GT(r.value, 0.0);
  if (k >= 1) {
    // The bounded schedule draws from the seed's job set, so the paid price
    // is ≥ 1.  (For k = 0 the §5 algorithm re-selects from *all* jobs and
    // can occasionally beat a heuristic seed.)
    EXPECT_GE(r.unbounded_value, r.value - 1e-9);
    EXPECT_GE(r.price(), 1.0 - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndMachines, ScheduleBoundedEndToEnd,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{3}),
                       ::testing::Values(std::size_t{1}, std::size_t{2})));

TEST(ScheduleBounded, ExactSeedOnSmallInstance) {
  Rng rng(131);
  JobGenConfig config;
  config.n = 12;
  config.max_length = 32;
  config.horizon = 300;
  config.max_laxity = 3.0;
  const JobSet jobs = random_jobs(config, rng);
  const ScheduleResult r = try_schedule_bounded(
      jobs, {.k = 1, .seed = ScheduleOptions::Seed::kExact}).value();
  EXPECT_TRUE(validate(jobs, r.schedule, 1));
  EXPECT_DOUBLE_EQ(r.unbounded_value, opt_infinity(jobs, all_ids(jobs)).value);
}

TEST(ScheduleBounded, EmptyJobSet) {
  const ScheduleResult r = try_schedule_bounded(JobSet{}, {.k = 1}).value();
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_DOUBLE_EQ(r.price(), 1.0);
}

}  // namespace
}  // namespace pobp
