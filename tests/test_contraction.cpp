// Tests for Algorithm 1 (MaxContract / LevelledContraction):
// value conservation (Lemma 3.17), the iteration bound (Lemma 3.18), and
// validity of every level as a k-BAS (Lemma 3.16).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/schedule/metrics.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(Contraction, SingleNode) {
  Forest f;
  f.add(7);
  const ContractionResult r = levelled_contraction(f, 1);
  EXPECT_EQ(r.iterations(), 1u);
  EXPECT_DOUBLE_EQ(r.value, 7.0);
  EXPECT_TRUE(r.selection.kept(0));
}

TEST(Contraction, DegreeKTreeContractsInOneIteration) {
  // A binary tree is fully 1-contract... no: for k=1 a binary tree is NOT
  // 1-contractible; use k=2.
  Forest f;
  f.add(1);
  f.add(1, 0);
  f.add(1, 0);
  f.add(1, 1);
  f.add(1, 1);
  const ContractionResult r = levelled_contraction(f, 2);
  EXPECT_EQ(r.iterations(), 1u);
  EXPECT_DOUBLE_EQ(r.value, 5.0);  // whole tree in one contraction
}

TEST(Contraction, StarNeedsTwoIterationsForSmallK) {
  Forest f;
  f.add(1);
  for (int i = 0; i < 5; ++i) f.add(10, 0);
  const ContractionResult r = levelled_contraction(f, 1);
  // Iteration 1 removes the 5 leaves (each a maximal contractible node,
  // since the root has degree 5 > 1); iteration 2 removes the root.
  ASSERT_EQ(r.iterations(), 2u);
  EXPECT_DOUBLE_EQ(r.levels[0].value, 50.0);
  EXPECT_DOUBLE_EQ(r.levels[1].value, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 50.0);
}

TEST(ContractionDeath, KZeroRejected) {
  Forest f;
  f.add(1);
  EXPECT_DEATH(levelled_contraction(f, 0), "k >= 1");
}

class ContractionProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(ContractionProperty, LevelsPartitionValueAndFormValidBas) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 15; ++trial) {
    ForestGenConfig config;
    config.nodes = 1 + static_cast<std::size_t>(rng.uniform_int(1, 300));
    config.max_degree = 1 + static_cast<std::size_t>(rng.uniform_int(1, 6));
    config.root_probability = 0.05;
    const Forest f = random_forest(config, rng);

    const ContractionResult r = levelled_contraction(f, k);

    // Lemma 3.17 machinery: the levels partition the node set, so the
    // total value is conserved across levels.
    Value level_sum = 0;
    std::size_t member_count = 0;
    for (const auto& level : r.levels) {
      level_sum += level.value;
      member_count += level.members.size();
      // Lemma 3.16: every level is a valid k-BAS.
      SubForest level_sel{std::vector<char>(f.size(), 0)};
      for (const NodeId v : level.members) level_sel.keep[v] = 1;
      const auto check = validate_bas(f, level_sel, k);
      EXPECT_TRUE(check) << check.error;
    }
    EXPECT_EQ(member_count, f.size());
    EXPECT_NEAR(level_sum, f.total_value(), 1e-6);

    // Lemma 3.18: L ≤ log_{k+1} n (+1 for the rounding of tiny forests).
    const double bound = std::log(static_cast<double>(f.size())) /
                         std::log(static_cast<double>(k + 1));
    EXPECT_LE(static_cast<double>(r.iterations()), bound + 1.0);

    // Best level value ≥ total / L (eq. 3.2).
    EXPECT_GE(r.value * static_cast<double>(r.iterations()),
              f.total_value() * (1 - 1e-12));

    // The returned selection is itself a valid k-BAS.
    EXPECT_TRUE(validate_bas(f, r.selection, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, ContractionProperty,
    ::testing::Combine(::testing::Values(3u, 13u, 23u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{5})));

// Theorem 3.9's proof structure: TM (optimal) is at least as good as
// LevelledContraction on every input.
class TmDominatesContraction
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TmDominatesContraction, OnRandomForests) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    ForestGenConfig config;
    config.nodes = 500;
    config.max_degree = 6;
    config.value_dist = ForestGenConfig::ValueDist::kHeavyTail;
    const Forest f = random_forest(config, rng);
    for (const std::size_t k : {1u, 3u}) {
      const TmResult tm = tm_optimal_bas(f, k);
      const ContractionResult lc = levelled_contraction(f, k);
      EXPECT_GE(tm.value, lc.value * (1 - 1e-12));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TmDominatesContraction,
                         ::testing::Values(41, 42, 43));

// On the Appendix-A lower-bound tree the contraction levels are exactly the
// tree levels (every level i is K-regular with K > k).
TEST(Contraction, AppendixATreeContractsLevelByLevel) {
  const std::size_t k = 1;
  const std::size_t L = 5;
  const BasLowerBoundTree lb = bas_lower_bound_tree(k, 2, L);
  const ContractionResult r = levelled_contraction(lb.forest, k);
  ASSERT_EQ(r.iterations(), L + 1);
  // Each iteration harvests one tree level (bottom-up), each worth K^L.
  for (const auto& level : r.levels) {
    EXPECT_DOUBLE_EQ(level.value, std::pow(2.0, static_cast<double>(L)));
  }
}

}  // namespace
}  // namespace pobp
