// Tests for the diagnostics engine: every failure branch of every checker
// must emit its stable rule id (pobp/diag/registry.hpp), multi-violation
// inputs must report *all* violations, and the first-failure shims must
// stay faithful to the Report they wrap.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pobp/diag/diagnostic.hpp"
#include "pobp/diag/registry.hpp"
#include "pobp/diag/render.hpp"
#include "pobp/forest/bas.hpp"
#include "pobp/schedule/interval_condition.hpp"
#include "pobp/schedule/laminar.hpp"
#include "pobp/schedule/validate.hpp"

namespace pobp {
namespace {

using diag::Report;
using diag::Severity;
namespace rules = diag::rules;

JobSet two_jobs() {
  JobSet jobs;
  jobs.add({0, 10, 4, 1.0});  // job 0
  jobs.add({2, 20, 6, 2.0});  // job 1
  return jobs;
}

// --- registry ---------------------------------------------------------------

TEST(DiagRegistry, CatalogueIsSortedAndComplete) {
  const auto all = diag::all_rules();
  ASSERT_FALSE(all.empty());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const diag::RuleInfo& a,
                                const diag::RuleInfo& b) { return a.id < b.id; }));
  for (const auto& rule : all) {
    EXPECT_FALSE(rule.title.empty()) << rule.id;
    EXPECT_FALSE(rule.paper_ref.empty()) << rule.id;
    EXPECT_FALSE(rule.description.empty()) << rule.id;
  }
}

TEST(DiagRegistry, EveryNamedIdResolves) {
  for (std::string_view id :
       {rules::kSchedUnknownJob, rules::kSchedEmptyAssignment,
        rules::kSchedEmptySegment, rules::kSchedUnsortedSegments,
        rules::kSchedWindowEscape, rules::kSchedLengthMismatch,
        rules::kSchedPreemptionBudget, rules::kSchedMachineConflict,
        rules::kSchedMigration, rules::kLaminarInterleaving,
        rules::kBasMaskSize, rules::kBasAncestorDependence,
        rules::kBasDegreeOverflow, rules::kJobMalformed,
        rules::kIntervalOverload, rules::kGenParamDomain,
        rules::kGenOverflow}) {
    const auto* info = diag::find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->id, id);
  }
  EXPECT_EQ(diag::find_rule("POBP-NOPE-001"), nullptr);
}

// --- Report mechanics -------------------------------------------------------

TEST(DiagReport, SeverityDefaultsFromRegistryAndCanBeOverridden) {
  Report report;
  report.add(std::string(rules::kSchedWindowEscape), "escape");
  report.add(std::string(rules::kIntervalOverload), Severity::kWarning,
             "overload");
  report.add("POBP-NOPE-001", "unknown rules default to error");
  ASSERT_EQ(report.size(), 3u);
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(report.diagnostics()[1].severity, Severity::kWarning);
  EXPECT_EQ(report.diagnostics()[2].severity, Severity::kError);
  EXPECT_EQ(report.error_count(), 2u);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.first_error(), "escape");
}

TEST(DiagReport, WarningsAloneAreOk) {
  Report report;
  report.add(std::string(rules::kIntervalOverload), Severity::kWarning, "w");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.first_error(), "");
}

TEST(DiagReport, CountByRuleAndRuleIds) {
  Report report;
  report.add(std::string(rules::kSchedWindowEscape), "a");
  report.add(std::string(rules::kSchedWindowEscape), "b");
  report.add(std::string(rules::kLaminarInterleaving), "c");
  EXPECT_EQ(report.count(rules::kSchedWindowEscape), 2u);
  EXPECT_EQ(report.count(rules::kLaminarInterleaving), 1u);
  EXPECT_EQ(report.count(rules::kSchedMigration), 0u);
  const auto ids = report.rule_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], rules::kSchedWindowEscape);
  EXPECT_EQ(ids[1], rules::kLaminarInterleaving);
}

TEST(DiagReport, MergeAppendsPreservingOrder) {
  Report a;
  a.add(std::string(rules::kSchedWindowEscape), "first");
  Report b;
  b.add(std::string(rules::kLaminarInterleaving), "second");
  a.merge(std::move(b));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.diagnostics()[1].message, "second");
}

TEST(DiagReport, PayloadChainingAndLocationRendering) {
  Report report;
  diag::Location where;
  where.machine = 0;
  where.job = 3;
  where.segment = 2;
  where.begin = 4;
  where.end = 9;
  auto& d = report.add(std::string(rules::kSchedWindowEscape), "msg", where)
                .with("release", std::int64_t{7})
                .with("kind", "window");
  ASSERT_EQ(d.payload.size(), 2u);
  EXPECT_EQ(d.payload[0].second, "7");
  const std::string loc = where.to_string();
  EXPECT_NE(loc.find("machine 0"), std::string::npos);
  EXPECT_NE(loc.find("job#3"), std::string::npos);
  const std::string line = d.to_string();
  EXPECT_NE(line.find("POBP-SCHED-005"), std::string::npos);
  EXPECT_NE(line.find("error"), std::string::npos);
}

// --- Def. 2.1 schedule rules ------------------------------------------------

TEST(DiagSchedule, UnknownJobStopsFurtherChecks) {
  Report report;
  diagnose_assignment(two_jobs(), Assignment{7, {{0, 1}}}, 0, report);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].rule, rules::kSchedUnknownJob);
}

TEST(DiagSchedule, EmptyAssignmentList) {
  Report report;
  diagnose_assignment(two_jobs(), Assignment{0, {}}, 0, report);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].rule, rules::kSchedEmptyAssignment);
}

TEST(DiagSchedule, EmptySegmentDoesNotAlsoChargeTheBudget) {
  // job0: p = 4, window [0, 10).  One empty segment among two real ones:
  // rule 003 fires once, and with k = 1 the two *non-empty* segments are
  // within budget, so 007 must stay silent — one defect, one finding.
  Report report;
  diagnose_assignment(two_jobs(), Assignment{0, {{0, 2}, {5, 5}, {8, 10}}}, 1,
                      report);
  EXPECT_EQ(report.count(rules::kSchedEmptySegment), 1u);
  EXPECT_EQ(report.count(rules::kSchedPreemptionBudget), 0u);
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(DiagSchedule, ReversedSegmentIsEmptySegmentRule) {
  Report report;
  diagnose_assignment(two_jobs(), Assignment{0, {{6, 2}}}, 0, report);
  EXPECT_EQ(report.count(rules::kSchedEmptySegment), 1u);
}

TEST(DiagSchedule, UnsortedAndOverlappingSegments) {
  Report report;
  diagnose_assignment(two_jobs(), Assignment{1, {{8, 11}, {2, 5}}}, 1, report);
  EXPECT_GE(report.count(rules::kSchedUnsortedSegments), 1u);

  Report overlap;
  diagnose_assignment(two_jobs(), Assignment{1, {{2, 6}, {4, 6}}}, 1, overlap);
  EXPECT_GE(overlap.count(rules::kSchedUnsortedSegments), 1u);
}

TEST(DiagSchedule, WindowEscapeBothSides) {
  Report report;
  // job1 window is [2, 20): one segment starts early, one ends late.
  diagnose_assignment(two_jobs(), Assignment{1, {{0, 3}, {18, 21}}}, 1, report);
  EXPECT_EQ(report.count(rules::kSchedWindowEscape), 2u);
}

TEST(DiagSchedule, LengthMismatch) {
  Report report;
  diagnose_assignment(two_jobs(), Assignment{0, {{0, 3}}}, 0, report);
  ASSERT_EQ(report.count(rules::kSchedLengthMismatch), 1u);
  const auto& d = *std::find_if(
      report.diagnostics().begin(), report.diagnostics().end(),
      [](const auto& x) { return x.rule == rules::kSchedLengthMismatch; });
  EXPECT_NE(d.message.find("expected 4"), std::string::npos);
}

TEST(DiagSchedule, PreemptionBudget) {
  Report report;
  diagnose_assignment(two_jobs(), Assignment{1, {{2, 4}, {6, 8}, {10, 12}}}, 1,
                      report);
  EXPECT_EQ(report.count(rules::kSchedPreemptionBudget), 1u);

  Report within;
  diagnose_assignment(two_jobs(), Assignment{1, {{2, 4}, {6, 8}, {10, 12}}}, 2,
                      within);
  EXPECT_EQ(within.count(rules::kSchedPreemptionBudget), 0u);
  EXPECT_TRUE(within.ok());

  Report unbounded;
  diagnose_assignment(two_jobs(), Assignment{1, {{2, 4}, {6, 8}, {10, 12}}},
                      kUnboundedPreemptions, unbounded);
  EXPECT_TRUE(unbounded.ok());
}

TEST(DiagSchedule, MultiViolationAssignmentReportsAll) {
  // job0 (p = 4, window [0, 10)), k = 0: empty segment (003), escape past
  // the deadline (005), wrong total (006), over budget (007) — all at once.
  Report report;
  diagnose_assignment(two_jobs(), Assignment{0, {{0, 2}, {3, 3}, {9, 12}}}, 0,
                      report);
  EXPECT_EQ(report.count(rules::kSchedEmptySegment), 1u);
  EXPECT_EQ(report.count(rules::kSchedWindowEscape), 1u);
  EXPECT_EQ(report.count(rules::kSchedLengthMismatch), 1u);
  EXPECT_EQ(report.count(rules::kSchedPreemptionBudget), 1u);
  EXPECT_EQ(report.error_count(), 4u);
}

TEST(DiagSchedule, MachineConflictAcrossJobs) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 4}}});
  ms.add({1, {{3, 9}}});
  Report report;
  diagnose_machine(jobs, ms, kUnboundedPreemptions, report, 0);
  ASSERT_EQ(report.count(rules::kSchedMachineConflict), 1u);
  EXPECT_EQ(report.diagnostics()[0].where.machine, std::size_t{0});
}

TEST(DiagSchedule, RawAssignmentsSpanMatchesMachineSchedule) {
  const JobSet jobs = two_jobs();
  const std::vector<Assignment> raw = {{0, {{0, 4}}}, {1, {{3, 9}}}};
  Report report;
  diagnose_assignments(jobs, raw, kUnboundedPreemptions, report);
  EXPECT_EQ(report.count(rules::kSchedMachineConflict), 1u);
}

TEST(DiagSchedule, MigrationAcrossMachines) {
  JobSet jobs;
  jobs.add({0, 40, 8, 1.0});
  Schedule schedule(2);
  schedule.machine(0).add({0, {{0, 4}}});
  schedule.machine(1).add({0, {{10, 14}}});
  Report report;
  diagnose_schedule(jobs, schedule, kUnboundedPreemptions, report);
  EXPECT_EQ(report.count(rules::kSchedMigration), 1u);
  // Each half also mis-sums p_j on its machine — still reported per machine.
  EXPECT_EQ(report.count(rules::kSchedLengthMismatch), 2u);
}

TEST(DiagSchedule, CleanScheduleHasNoFindings) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {8, 10}}});
  ms.add({1, {{2, 8}}});
  Report report;
  diagnose_machine(jobs, ms, 1, report);
  EXPECT_TRUE(report.empty());
}

// --- shims ------------------------------------------------------------------

TEST(DiagShims, ValidateMachineReportsFirstError) {
  const JobSet jobs = two_jobs();
  MachineSchedule ms;
  ms.add({1, {{1, 7}}});  // release is 2
  const auto r = validate_machine(jobs, ms);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("outside the job window"), std::string::npos);
}

TEST(DiagShims, ValidatePrefixesMachineButNotMigration) {
  JobSet jobs;
  jobs.add({0, 40, 4, 1.0});
  Schedule bad(2);
  bad.machine(1).add({0, {{0, 3}}});  // wrong length on machine 1
  const auto r = validate(jobs, bad, kUnboundedPreemptions);
  EXPECT_FALSE(r);
  EXPECT_EQ(r.error.rfind("machine 1: ", 0), 0u) << r.error;

  // The job appears in full on both machines: each machine validates on
  // its own, so migration is the only error the shim can surface.
  Schedule migrated(2);
  migrated.machine(0).add({0, {{0, 4}}});
  migrated.machine(1).add({0, {{10, 14}}});
  const auto m = validate(jobs, migrated, kUnboundedPreemptions);
  EXPECT_FALSE(m);
  EXPECT_NE(m.error.find("more than one machine"), std::string::npos);
  EXPECT_EQ(m.error.find("machine 0: "), std::string::npos);
}

// --- laminarity (§4.1) ------------------------------------------------------

TEST(DiagLaminar, InterleavingReported) {
  JobSet jobs;
  jobs.add({0, 40, 4, 1.0});  // job 0
  jobs.add({0, 40, 4, 1.0});  // job 1
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {4, 6}}});
  ms.add({1, {{2, 4}, {6, 8}}});  // a1 < b1 < a2 < b2
  EXPECT_FALSE(is_laminar(ms));
  Report report;
  diagnose_laminar(ms, report, 2);
  ASSERT_EQ(report.count(rules::kLaminarInterleaving), 1u);
  const auto& d = report.diagnostics()[0];
  EXPECT_EQ(d.where.machine, std::size_t{2});
  const bool names_open_job = std::any_of(
      d.payload.begin(), d.payload.end(),
      [](const auto& kv) { return kv.first == "open_job"; });
  EXPECT_TRUE(names_open_job);
}

TEST(DiagLaminar, NestedPreemptionIsClean) {
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {6, 8}}});
  ms.add({1, {{2, 4}}});
  ms.add({2, {{4, 6}}});
  EXPECT_TRUE(is_laminar(ms));
  Report report;
  diagnose_laminar(ms, report);
  EXPECT_TRUE(report.empty());
}

// --- interval condition (§4.1) ----------------------------------------------

TEST(DiagInterval, OverloadedWindowReported) {
  JobSet jobs;
  for (int i = 0; i < 3; ++i) jobs.add({0, 10, 5, 1.0});  // demand 15 > 10
  const std::vector<JobId> subset = {0, 1, 2};
  EXPECT_FALSE(preemptive_feasible(jobs, subset));
  Report report;
  diagnose_interval_condition(jobs, subset, report);
  ASSERT_EQ(report.count(rules::kIntervalOverload), 1u);
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kError);

  Report lint;
  diagnose_interval_condition(jobs, subset, lint, Severity::kWarning);
  EXPECT_TRUE(lint.ok());
  EXPECT_EQ(lint.count(Severity::kWarning), 1u);
}

TEST(DiagInterval, FeasibleSubsetIsClean) {
  JobSet jobs;
  jobs.add({0, 10, 5, 1.0});
  jobs.add({0, 10, 5, 1.0});
  const std::vector<JobId> subset = {0, 1};
  EXPECT_TRUE(preemptive_feasible(jobs, subset));
  Report report;
  diagnose_interval_condition(jobs, subset, report);
  EXPECT_TRUE(report.empty());
}

// --- k-BAS (Defs. 3.1–3.2) --------------------------------------------------

Forest chain_with_leaves() {
  //  0 → 1 → 2, with leaves 3, 4 under 2.
  Forest f;
  f.add(1);
  f.add(1, 0);
  f.add(1, 1);
  f.add(1, 2);
  f.add(1, 2);
  return f;
}

TEST(DiagBas, MaskSizeMismatchShortCircuits) {
  const Forest f = chain_with_leaves();
  Report report;
  diagnose_bas(f, SubForest{{1, 1}}, 1, report);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.diagnostics()[0].rule, rules::kBasMaskSize);
}

TEST(DiagBas, AncestorDependenceAndDegreeOverflow) {
  const Forest f = chain_with_leaves();
  // Node 1 deleted: node 2 becomes a component root under kept ancestor 0
  // (BAS-002), and node 2 keeps both children with k = 1 (BAS-003).
  const SubForest sel{{1, 0, 1, 1, 1}};
  Report report;
  diagnose_bas(f, sel, 1, report);
  EXPECT_EQ(report.count(rules::kBasAncestorDependence), 1u);
  EXPECT_EQ(report.count(rules::kBasDegreeOverflow), 1u);
  EXPECT_EQ(report.error_count(), 2u);

  const auto shim = validate_bas(f, sel, 1);
  EXPECT_FALSE(shim);
  EXPECT_FALSE(shim.error.empty());
}

TEST(DiagBas, PerNodeBoundsVariant) {
  const Forest f = chain_with_leaves();
  const SubForest sel{{1, 1, 1, 1, 1}};
  const std::vector<std::size_t> loose = {2, 2, 2, 2, 2};
  Report ok;
  diagnose_bas(f, sel, loose, ok);
  EXPECT_TRUE(ok.empty());

  const std::vector<std::size_t> tight = {2, 2, 1, 2, 2};  // node 2 over
  Report over;
  diagnose_bas(f, sel, tight, over);
  ASSERT_EQ(over.count(rules::kBasDegreeOverflow), 1u);
  EXPECT_EQ(over.diagnostics()[0].where.node, std::uint32_t{2});
}

TEST(DiagBas, ValidSelectionIsClean) {
  const Forest f = chain_with_leaves();
  Report report;
  diagnose_bas(f, SubForest{{1, 1, 1, 1, 0}}, 1, report);
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(validate_bas(f, SubForest{{1, 1, 1, 1, 0}}, 1));
}

// --- renderers --------------------------------------------------------------

TEST(DiagRender, TextListsEveryFindingAndSummary) {
  Report report;
  diagnose_assignment(two_jobs(), Assignment{0, {{0, 2}, {3, 3}, {9, 12}}}, 0,
                      report);
  const std::string text = diag::to_text(report);
  for (const auto& id : report.rule_ids()) {
    EXPECT_NE(text.find(id), std::string::npos) << id;
  }
  EXPECT_NE(text.find("4 error"), std::string::npos);
  EXPECT_EQ(diag::to_text(Report{}), "no findings\n");
}

TEST(DiagRender, SarifNamesRulesAndResults) {
  Report report;
  report.add(std::string(rules::kSchedWindowEscape), "a \"quoted\" message")
      .with("release", std::int64_t{7});
  const std::string sarif = diag::to_sarif(report);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("POBP-SCHED-005"), std::string::npos);
  EXPECT_NE(sarif.find("\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace pobp
