// Tests for the EDF simulator and the interval feasibility condition, and
// the equivalence between them (the classic witness theorem the solvers
// rely on).
#include <gtest/gtest.h>

#include <vector>

#include "pobp/gen/random_jobs.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/interval_condition.hpp"
#include "pobp/schedule/validate.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(Edf, SchedulesSingleJob) {
  JobSet jobs;
  jobs.add({3, 10, 4, 1.0});
  const auto ms = edf_schedule(jobs, all_ids(jobs));
  ASSERT_TRUE(ms);
  EXPECT_TRUE(validate_machine(jobs, *ms));
  EXPECT_EQ(ms->find(0)->segments[0], (Segment{3, 7}));
}

TEST(Edf, PreemptsForEarlierDeadline) {
  JobSet jobs;
  jobs.add({0, 20, 10, 1.0});  // long, late deadline
  jobs.add({2, 5, 3, 1.0});    // short, urgent, released mid-run
  const auto ms = edf_schedule(jobs, all_ids(jobs));
  ASSERT_TRUE(ms);
  EXPECT_TRUE(validate_machine(jobs, *ms));
  const Assignment* a = ms->find(0);
  ASSERT_EQ(a->segments.size(), 2u);
  EXPECT_EQ(a->segments[0], (Segment{0, 2}));
  EXPECT_EQ(a->segments[1], (Segment{5, 13}));
  EXPECT_EQ(ms->find(1)->segments[0], (Segment{2, 5}));
}

TEST(Edf, IdlesUntilRelease) {
  JobSet jobs;
  jobs.add({0, 2, 2, 1.0});
  jobs.add({10, 12, 2, 1.0});
  const auto ms = edf_schedule(jobs, all_ids(jobs));
  ASSERT_TRUE(ms);
  EXPECT_EQ(ms->find(1)->segments[0], (Segment{10, 12}));
}

TEST(Edf, DetectsInfeasibility) {
  JobSet jobs;
  jobs.add({0, 4, 3, 1.0});
  jobs.add({0, 4, 3, 1.0});
  EXPECT_FALSE(edf_schedule(jobs, all_ids(jobs)));
}

TEST(Edf, EmptySubset) {
  JobSet jobs;
  jobs.add({0, 4, 3, 1.0});
  const std::vector<JobId> none;
  const auto ms = edf_schedule(jobs, none);
  ASSERT_TRUE(ms);
  EXPECT_TRUE(ms->empty());
}

TEST(Edf, NoPreemptionRecordedWhenContinuing) {
  // A release that does NOT preempt (later deadline) must not split the
  // running job's segment.
  JobSet jobs;
  jobs.add({0, 10, 6, 1.0});
  jobs.add({3, 20, 2, 1.0});
  const auto ms = edf_schedule(jobs, all_ids(jobs));
  ASSERT_TRUE(ms);
  EXPECT_EQ(ms->find(0)->segments.size(), 1u);
  EXPECT_EQ(ms->find(0)->segments[0], (Segment{0, 6}));
}

TEST(IntervalCondition, SimpleFeasibleAndNot) {
  JobSet jobs;
  jobs.add({0, 4, 3, 1.0});
  jobs.add({0, 4, 3, 1.0});
  const std::vector<JobId> one{0};
  EXPECT_TRUE(preemptive_feasible(jobs, one));
  EXPECT_FALSE(preemptive_feasible(jobs, all_ids(jobs)));
}

TEST(IntervalCondition, DisjointWindowsAlwaysFit) {
  JobSet jobs;
  jobs.add({0, 4, 4, 1.0});
  jobs.add({4, 8, 4, 1.0});
  EXPECT_TRUE(preemptive_feasible(jobs, all_ids(jobs)));
}

TEST(FeasibilityOracle, AddPopStackDiscipline) {
  JobSet jobs;
  jobs.add({0, 4, 3, 1.0});
  jobs.add({0, 4, 3, 1.0});
  jobs.add({4, 8, 2, 1.0});
  FeasibilityOracle oracle(jobs);
  EXPECT_TRUE(oracle.try_add(0));
  EXPECT_FALSE(oracle.try_add(1));  // rejected, not committed
  EXPECT_EQ(oracle.size(), 1u);
  EXPECT_TRUE(oracle.try_add(2));
  oracle.pop();
  EXPECT_EQ(oracle.size(), 1u);
  EXPECT_TRUE(oracle.try_add(2));
}

// The witness theorem: EDF succeeds ⟺ the interval condition holds.
class EdfEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfEquivalence, EdfSucceedsIffIntervalConditionHolds) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 12;
  config.min_length = 1;
  config.max_length = 64;
  config.min_laxity = 1.0;
  config.max_laxity = 3.0;
  config.horizon = 256;  // tight horizon: plenty of infeasible subsets
  const JobSet jobs = random_jobs(config, rng);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<JobId> subset;
    for (JobId id = 0; id < jobs.size(); ++id) {
      if (rng.bernoulli(0.5)) subset.push_back(id);
    }
    const bool edf_ok = edf_schedule(jobs, subset).has_value();
    const bool cond_ok = preemptive_feasible(jobs, subset);
    EXPECT_EQ(edf_ok, cond_ok) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// EDF output is always a feasible schedule of exactly the subset.
class EdfFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfFeasibility, OutputValidatesAndCoversSubset) {
  Rng rng(GetParam());
  JobGenConfig config;
  config.n = 30;
  config.max_length = 128;
  config.max_laxity = 6.0;
  config.horizon = 1 << 13;
  const JobSet jobs = random_jobs(config, rng);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<JobId> subset;
    for (JobId id = 0; id < jobs.size(); ++id) {
      if (rng.bernoulli(0.3)) subset.push_back(id);
    }
    const auto ms = edf_schedule(jobs, subset);
    if (!ms) continue;
    const auto check = validate_machine(jobs, *ms);
    EXPECT_TRUE(check) << check.error;
    EXPECT_EQ(ms->job_count(), subset.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfFeasibility,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace pobp
