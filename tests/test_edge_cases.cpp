// Edge-case sweep across modules: the degenerate inputs every production
// library gets fed eventually.
#include <gtest/gtest.h>

#include "pobp/pobp.hpp"
#include "pobp/bas/contraction.hpp"
#include "pobp/bas/tm.hpp"
#include "pobp/reduction/rebuild.hpp"
#include "pobp/schedule/edf.hpp"
#include "pobp/schedule/interval_condition.hpp"
#include "pobp/schedule/interval_cover.hpp"
#include "pobp/solvers/solvers.hpp"
#include "pobp/gen/forest_gen.hpp"
#include "pobp/gen/lower_bounds.hpp"
#include "pobp/gen/random_jobs.hpp"
#include "pobp/gen/schedule_gen.hpp"
#include "pobp/util/rng.hpp"

namespace pobp {
namespace {

TEST(EdgeCases, SingleTickJobEverywhere) {
  JobSet jobs;
  jobs.add({0, 1, 1, 1.0});  // tightest possible job
  const ScheduleResult r = try_schedule_bounded(jobs, {.k = 0}).value();
  EXPECT_DOUBLE_EQ(r.value, 1.0);
  EXPECT_TRUE(validate(jobs, r.schedule, 0));
  EXPECT_TRUE(edf_schedule(jobs, all_ids(jobs)).has_value());
  EXPECT_TRUE(preemptive_feasible(jobs, all_ids(jobs)));
}

TEST(EdgeCases, EdfDeadlineTiesBrokenById) {
  JobSet jobs;
  jobs.add({0, 10, 3, 1.0});
  jobs.add({0, 10, 3, 1.0});
  const auto ms = edf_schedule(jobs, all_ids(jobs));
  ASSERT_TRUE(ms);
  // Lower id first under the strict tie order.
  EXPECT_EQ(ms->find(0)->segments[0], (Segment{0, 3}));
  EXPECT_EQ(ms->find(1)->segments[0], (Segment{3, 6}));
}

TEST(EdgeCases, SimultaneousReleaseBurst) {
  // 20 identical jobs released together, exactly filling the horizon.
  JobSet jobs;
  for (int i = 0; i < 20; ++i) jobs.add({0, 100, 5, 1.0});
  const auto ms = edf_schedule(jobs, all_ids(jobs));
  ASSERT_TRUE(ms);
  EXPECT_EQ(ms->job_count(), 20u);
  EXPECT_EQ(ms->max_preemptions(), 0u);  // EDF runs them back to back
}

TEST(EdgeCases, AppendixATreeAtDepthZero) {
  const BasLowerBoundTree lb = bas_lower_bound_tree(1, 2, 0);
  EXPECT_EQ(lb.forest.size(), 1u);
  EXPECT_EQ(lb.total_value, 1);
  const TmResult r = tm_optimal_bas(lb.forest, 1);
  EXPECT_DOUBLE_EQ(r.value, 1.0);
}

TEST(EdgeCases, GeometricChainOfOne) {
  const K0GeometricInstance inst = k0_geometric_instance(1);
  EXPECT_EQ(inst.jobs.size(), 1u);
  EXPECT_TRUE(validate_machine(inst.jobs, inst.witness, 0));
}

TEST(EdgeCases, LaminarGeneratorMinimalTarget) {
  Rng rng(1);
  LaminarGenConfig config;
  config.target_jobs = 1;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  EXPECT_GE(inst.jobs.size(), 1u);
  EXPECT_TRUE(validate_machine(inst.jobs, inst.schedule));
}

TEST(EdgeCases, SingleNodeForestGenerator) {
  Rng rng(2);
  ForestGenConfig config;
  config.nodes = 1;
  const Forest f = random_forest(config, rng);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(levelled_contraction(f, 1).iterations(), 1u);
}

TEST(EdgeCases, AllJobsLaxGoThroughLsaBranch) {
  Rng rng(3);
  JobGenConfig config;
  config.n = 30;
  config.max_length = 32;
  config.min_laxity = 10.0;  // λ ≥ k+1 for any small k
  config.max_laxity = 20.0;
  config.horizon = 4096;
  const JobSet jobs = random_jobs(config, rng);
  const MachineSchedule seed = greedy_infinity(jobs, all_ids(jobs));
  const CombinedResult r = k_preemption_combined(jobs, seed, {.k = 2});
  EXPECT_EQ(r.strict_jobs, 0u);
  EXPECT_GT(r.lax_jobs, 0u);
  EXPECT_TRUE(validate_machine(jobs, r.schedule, 2));
}

TEST(EdgeCases, AllJobsStrictGoThroughReductionBranch) {
  Rng rng(4);
  JobGenConfig config;
  config.n = 30;
  config.max_length = 32;
  config.min_laxity = 1.0;
  config.max_laxity = 1.4;  // λ < k+1 for every k ≥ 1
  config.horizon = 4096;
  const JobSet jobs = random_jobs(config, rng);
  const MachineSchedule seed = greedy_infinity(jobs, all_ids(jobs));
  const CombinedResult r = k_preemption_combined(jobs, seed, {.k = 2});
  EXPECT_EQ(r.lax_jobs, 0u);
  EXPECT_DOUBLE_EQ(r.lax_value, 0.0);
  EXPECT_TRUE(validate_machine(jobs, r.schedule, 2));
}

TEST(EdgeCases, HugeKEquivalentToUnbounded) {
  Rng rng(5);
  LaminarGenConfig config;
  config.target_jobs = 60;
  config.max_children = 4;
  const LaminarInstance inst = random_laminar_instance(config, rng);
  // k larger than any forest degree: the reduction keeps everything.
  const ReductionResult r =
      reduce_to_k_preemptive(inst.jobs, inst.schedule, 100);
  EXPECT_DOUBLE_EQ(r.value, inst.jobs.total_value());
}

TEST(EdgeCases, ValidatorHandlesAdjacentSegmentsOfSameJob) {
  // Adjacent segments are merged on add(), so they count as one.
  JobSet jobs;
  jobs.add({0, 10, 4, 1.0});
  MachineSchedule ms;
  ms.add({0, {{0, 2}, {2, 4}}});
  EXPECT_TRUE(validate_machine(jobs, ms, 0));
}

TEST(EdgeCases, IntervalCoverOfIdenticalIntervals) {
  const std::vector<Segment> s{{0, 5}, {0, 5}, {0, 5}};
  const IntervalCover c = greedy_interval_cover(s);
  EXPECT_EQ(c.chosen.size(), 1u);
}

TEST(EdgeCases, MaxLPickerSmallBudget) {
  // A job budget of 1 only fits L = 0.
  EXPECT_EQ(pobp_lower_bound_max_L(2, 1), 0u);
}

}  // namespace
}  // namespace pobp
